#!/usr/bin/env python
"""Production workflow: profile, focus, and trust your numbers.

Shows the parts of MemGaze around the core metrics that make it usable
day to day:

1. hotspot pre-pass -> region of interest (paper SS:II);
2. hardware-guard (ROI) tracing: better resolution on the hot code for
   a fraction of the records;
3. undersampling detection: which per-function estimates to trust
   (paper SS:VI-A's confidence-interval suggestion, implemented);
4. working-set curve at OS-page granularity (paper SS:V-B).

Run:  python examples/profile_and_focus.py
"""

from __future__ import annotations

from repro import SamplingConfig, collect_sampled_trace
from repro.core.confidence import code_window_confidence
from repro.core.hotspot import find_hotspots, roi_from_hotspots
from repro.core.windows import code_windows
from repro.core.workingset import working_set_curve
from repro.trace.guards import apply_guards
from repro.workloads.minivite import run_minivite

SAMPLING = SamplingConfig(period=12_000, buffer_capacity=1024, seed=0)


def main() -> None:
    print("running miniVite v2 ...")
    run = run_minivite("v2", scale=10, edge_factor=8, max_iters=2)

    print("\n== 1. hotspot pre-pass ==")
    pre = collect_sampled_trace(run.events, run.n_loads, SAMPLING)
    hotspots = find_hotspots(pre.events, run.fn_names, coverage=0.8)
    for h in hotspots:
        print(f"  {h.function:<14} {100 * h.share:5.1f}% of loads")

    print("\n== 2. ROI tracing through hardware guards ==")
    roi = roi_from_hotspots(hotspots[:2], run.events)
    guarded, masked = apply_guards(run.events, roi)
    print(f"  guard ranges: {[(hex(a), hex(b)) for a, b in roi.ranges]}")
    print(f"  records kept: {len(guarded):,} / {len(run.events):,} "
          f"({masked:,} ptwrites hardware-masked)")
    col = collect_sampled_trace(guarded, run.n_loads, SAMPLING)
    for fn, d in code_windows(col.events, fn_names=run.fn_names).items():
        print(f"  {fn:<14} dF={d.dF:.3f}  F_str%={d.F_str_pct:5.1f}  "
              f"(observed {d.A_obs:,} records)")

    print("\n== 3. which estimates can you trust? ==")
    full_col = collect_sampled_trace(run.events, run.n_loads, SAMPLING)
    conf = code_window_confidence(full_col, run.fn_names)
    for name, c in sorted(conf.items(), key=lambda kv: -kv[1].A_est):
        lo, hi = c.ci95
        flag = "  <-- UNDERSAMPLED" if c.undersampled else ""
        print(f"  {name:<14} A~{c.A_est:>12,.0f}  95% CI [{lo:,.0f}, {hi:,.0f}]  "
              f"in {c.n_samples_present}/{c.n_samples_total} samples{flag}")

    print("\n== 4. working set over time (4 KiB pages) ==")
    for p in working_set_curve(full_col, n_intervals=6):
        bar = "#" * max(1, int(p.pages_est / 40))
        print(f"  interval {p.interval}: ~{p.pages_est:7.0f} pages "
              f"({p.mb_est:6.1f} MiB est)  reuse {100 * p.captured_fraction:4.1f}%  {bar}")


if __name__ == "__main__":
    main()
