#!/usr/bin/env python
"""Case study: algorithm choice in graph analytics (GAP, SS:VII-C).

Compares PageRank's Gauss-Seidel-style `pr` against the Jacobi/SpMV
`pr-spmv`, and Afforest (`cc`) against Shiloach-Vishkin (`cc-sv`),
through the paper's lenses: hot-object reuse distance, access counts,
and the (region page x time) heatmaps that expose what averages hide.

Run:  python examples/graph_analytics_reuse.py
"""

from __future__ import annotations

from repro import SamplingConfig, access_heatmap, collect_sampled_trace
from repro.core.heatmap import render_heatmap_ascii
from repro.core.reuse import region_reuse
from repro.workloads.gap import run_cc, run_pagerank

SAMPLING = SamplingConfig(period=12_000, buffer_capacity=1024, seed=0)


def hot_object_row(run, label: str) -> str:
    lo, hi = run.region_extents[label]
    col = collect_sampled_trace(run.events, run.n_loads, SAMPLING)
    d, d_max, a = region_reuse(col.events, lo, hi - lo, block=64, sample_id=col.sample_id)
    return f"D={d:6.2f}  maxD={d_max:4d}  A={a:6d}  time={run.sim_time:12,.0f}"


def main() -> None:
    print("== PageRank: pr (in-place updates) vs pr-spmv (explicit SpMV) ==")
    for alg in ("pr", "pr-spmv"):
        run = run_pagerank(alg, scale=10, edge_factor=8, max_iters=20)
        print(f"  {alg:<8} o-score: {hot_object_row(run, 'o-score')}  "
              f"({run.n_iterations} iterations)")
    print(
        "  pr folds 1/deg into the contribution array, so each edge costs one"
        "\n  gather; pr-spmv reads explicit per-edge values too — more accesses,"
        "\n  longer reuse spans, a slower run.\n"
    )

    print("== Connected Components: cc (Afforest) vs cc-sv (Shiloach-Vishkin) ==")
    runs = {}
    for alg in ("cc", "cc-sv"):
        runs[alg] = run_cc(alg, scale=10, edge_factor=8)
        print(f"  {alg:<6} cc array: {hot_object_row(runs[alg], 'cc')}")

    print("\n== Fig. 8-style heatmaps over the cc array (darker = more) ==")
    for alg, run in runs.items():
        lo, hi = run.region_extents["cc"]
        col = collect_sampled_trace(run.events, run.n_loads, SAMPLING)
        hm = access_heatmap(
            col.events, lo, hi - lo, n_pages=16, n_bins=60, sample_id=col.sample_id
        )
        print(f"\n  {alg}: access frequency (rows = pages, cols = time)")
        for line in render_heatmap_ascii(hm.counts).splitlines():
            print("   |" + line + "|")

    print(
        "\n  Summary metrics alone would mislead here — the heatmaps show cc"
        "\n  concentrating accesses into short dark bands (its sampling and"
        "\n  finish phases) while cc-sv re-sweeps everything each round; that,"
        "\n  not the average reuse distance, is why Afforest wins."
    )


if __name__ == "__main__":
    main()
