#!/usr/bin/env python
"""Case study: locality of conv-net inference over time (SS:VII-B).

Traces Darknet-style AlexNet and ResNet152 inference (im2col + gemm),
then looks at gemm through the time lens of paper Table VIII: equal
access intervals with footprint, growth, and intra-sample reuse distance
per interval — showing how the shrinking inner dimension N moves B-row
reuse across the sample-window observability boundary.

Run:  python examples/inference_locality.py
"""

from __future__ import annotations

from repro import SamplingConfig, collect_sampled_trace
from repro.core.interval_tree import access_interval_metrics
from repro.core.pipeline import AnalysisConfig, MemGaze
from repro.core.report import render_function_table, render_interval_table
from repro.trace.compress import sample_ratio_from
from repro.workloads.darknet import MODELS, run_darknet

SAMPLING = SamplingConfig(period=2_000, buffer_capacity=256, seed=0)


def main() -> None:
    mg = MemGaze(AnalysisConfig(SAMPLING))
    for model in ("alexnet", "resnet152"):
        print(f"== {model}: {len(MODELS[model])} conv layers ==")
        run = run_darknet(model)
        result = mg.analyze_events(
            run.events, n_loads_total=run.n_loads, fn_names=run.fn_names
        )
        hot = {
            f: d for f, d in result.per_function.items() if f in ("gemm", "im2col")
        }
        print(render_function_table(hot, title="hot kernels", order=["gemm", "im2col"]))

        col = collect_sampled_trace(run.events, run.n_loads, SAMPLING)
        gemm_fid = next(f for f, n in run.fn_names.items() if n == "gemm")
        mask = col.events["fn"] == gemm_fid
        rows = access_interval_metrics(
            col.events[mask],
            8,
            rho=sample_ratio_from(col),
            reuse_block=64,
            sample_id=col.sample_id[mask],
        )
        print()
        print(render_interval_table(rows, title="gemm locality over access intervals"))
        print()

    print(
        "Both kernels are fully strided (F_str% = 100) — the expected shape"
        "\nfor dense linear algebra. Reuse distance grows through the network:"
        "\nearly layers have large N, so B-row reuse spans exceed the sample"
        "\nwindow and go unobserved; as N shrinks the reuse comes into view."
    )


if __name__ == "__main__":
    main()
