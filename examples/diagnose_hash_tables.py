#!/usr/bin/env python
"""Case study: how data-structure choice shapes memory behaviour.

Reproduces the workflow of the paper's miniVite study (SS:VII-A): run
Louvain community detection with three hash-map implementations, trace
each, and let the diagnostics explain the performance differences —

* v1 (chained open hash, `std::unordered_map`-like): few accesses but
  irregular pointer chases -> poor locality;
* v2 (hopscotch closed hash, default-sized): strided probes that
  prefetch well, but per-vertex resizing copies inflate access counts;
* v3 (hopscotch right-sized per vertex): strided probes and no copies.

Run:  python examples/diagnose_hash_tables.py
"""

from __future__ import annotations

from repro import AnalysisConfig, MemGaze, SamplingConfig
from repro.core.report import render_function_table
from repro.core.reuse import region_reuse
from repro.workloads.minivite import run_minivite

HOT = ["buildMap", "map.insert", "getMax"]


def main() -> None:
    mg = MemGaze(AnalysisConfig(SamplingConfig(period=12_000, buffer_capacity=1024)))
    runs = {}
    for variant in ("v1", "v2", "v3"):
        print(f"running miniVite {variant} ...")
        runs[variant] = run_minivite(variant, scale=10, edge_factor=8, max_iters=2)

    print("\n== run times (memory-cost model units) ==")
    for v, r in runs.items():
        print(f"  {v}: {r.sim_time:12,.0f}   (modularity {r.modularity:.3f})")

    for v, r in runs.items():
        result = mg.analyze_events(r.events, n_loads_total=r.n_loads, fn_names=r.fn_names)
        hot = {f: d for f, d in result.per_function.items() if f in HOT}
        print()
        print(render_function_table(hot, title=f"{v}: hot function locality", order=HOT))

        lo, hi = r.region_extents["map"]
        if "map-nodes" in r.region_extents:
            lo = min(lo, r.region_extents["map-nodes"][0])
            hi = max(hi, r.region_extents["map-nodes"][1])
        d_mean, d_max, a = region_reuse(
            result.events, lo, hi - lo, block=64, sample_id=result.sample_id
        )
        print(f"  map object: D={d_mean:.2f} (max {d_max}), {a} sampled accesses")

    print(
        "\nReading the tables: v1's map.insert has F_str% near 0 — every probe"
        "\nis a pointer chase. v2 converts the probes to strided runs (high"
        "\nF_str%) but pays for per-instance resizing with the largest access"
        "\ncount. v3 keeps the strided probes and drops the copies: fewer"
        "\naccesses, lowest run time. The paper's conclusion holds: sparse"
        "\nstructures have smaller footprints but irregular patterns; dense"
        "\nstructures trade footprint for prefetchable accesses."
    )


if __name__ == "__main__":
    main()
