#!/usr/bin/env python
"""Quickstart: trace a workload and read MemGaze's core diagnostics.

Runs a composable microbenchmark ('str4|irr': a strided phase followed
by a pointer-chase phase), samples its
access trace exactly as the ptwrite/PT pipeline would, and prints the
paper's headline metrics: footprint F, footprint growth dF, the
strided/irregular decomposition, and the windowed footprint histogram.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import AnalysisConfig, MemGaze, SamplingConfig, mape, window_histogram
from repro.workloads.microbench import run_microbench


def main() -> None:
    print("== running microbenchmark 'str4|irr' (strided phase, then pointer-chase) ==")
    bench = run_microbench("str4|irr", n_elems=4096, repeats=60, seed=0)
    print(f"retired loads:          {bench.n_loads:,}")
    print(f"observed records:       {len(bench.events_observed):,} "
          f"(Constant loads compressed into proxies)")

    mg = MemGaze(
        AnalysisConfig(SamplingConfig(period=9_973, buffer_capacity=2048, seed=0))
    )
    result = mg.analyze_events(
        bench.events_observed, n_loads_total=bench.n_loads, fn_names=bench.fn_names
    )
    col = result.collection
    print("\n== sampled trace ==")
    print(f"samples:                {col.n_samples} (mean w = {col.mean_w:.0f})")
    print(f"sampled fraction:       {len(col.events) / len(bench.events_observed):.1%}")
    print(f"sample ratio rho:       {result.rho:.1f}")
    print(f"compression kappa:      {result.kappa:.2f}")

    d = result.diagnostics
    print("\n== footprint access diagnostics (whole trace) ==")
    print(f"estimated accesses:     {d.A_est:,.0f}")
    print(f"estimated footprint:    {d.F_est:,.0f} bytes touched")
    print(f"footprint growth dF:    {d.dF:.3f} new bytes/access")
    print(f"strided footprint:      {d.F_str_pct:.1f}%  (prefetchable)")
    print(f"irregular footprint:    {d.F_irr_pct:.1f}%  (cache-hostile)")
    print(f"constant accesses:      {d.A_const_pct:.1f}%")

    print("\n== per-function code windows ==")
    for fn, diag in sorted(result.per_function.items(), key=lambda kv: -kv[1].A_est):
        print(
            f"  {fn:<22} A={diag.A_est:>12,.0f}  dF={diag.dF:.3f}  "
            f"F_str%={diag.F_str_pct:5.1f}"
        )

    sizes = [8, 16, 32, 64, 128, 256]
    _, sampled = window_histogram(col.events, "F", sizes=sizes, sample_id=col.sample_id)
    _, full = window_histogram(bench.events_observed, "F", sizes=sizes)
    print("\n== windowed footprint histogram: sampled vs full trace ==")
    print("  window:  " + "  ".join(f"{s:>6}" for s in sizes))
    print("  sampled: " + "  ".join(f"{v:6.1f}" for v in sampled))
    print("  full:    " + "  ".join(f"{v:6.1f}" for v in full))
    print(f"  MAPE:    {mape(sampled, full):.1f}%  (paper bound: <25%)")


if __name__ == "__main__":
    main()
