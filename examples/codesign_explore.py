#!/usr/bin/env python
"""Hardware/software co-design: trace once, explore memory systems.

The paper's closing direction (SS:IX): "Using models of different memory
systems, we can obtain insight into memory system performance ... with
respect to data location, data movement, and workload accesses."

This example traces two ISA kernels once — a dense stencil and an
irregular gather — and then replays the same traces against a family of
cache hierarchies, mapping each kernel's AMAT across L1/L2 sizes. The
diagnostics predict the outcome: the stencil's tiny footprint and 100%
strided traffic are insensitive to cache size, while the gather's
irregular component chases capacity.

Run:  python examples/codesign_explore.py
"""

from __future__ import annotations

from repro.core.cachesim import CacheConfig, HierarchyConfig, simulate_hierarchy
from repro.core.diagnostics import compute_diagnostics
from repro.workloads.kernels import run_kernel


def hierarchy(l1_kib: int, l2_kib: int) -> HierarchyConfig:
    return HierarchyConfig(
        l1=CacheConfig(size_bytes=l1_kib * 1024, ways=8, prefetch_next_line=True),
        l2=CacheConfig(size_bytes=l2_kib * 1024, ways=16, prefetch_next_line=True),
    )


def main() -> None:
    traces = {}
    for name, n in (("stencil", 2048), ("gather", 4096)):
        r = run_kernel(name, n=n, repeats=3)
        d = compute_diagnostics(r.events_observed)
        traces[name] = r.events_observed
        print(
            f"{name:<8} accesses={d.A_implied:>8,}  footprint={d.F:>8,} addrs  "
            f"dF={d.dF:.3f}  F_str%={d.F_str_pct:.0f}"
        )

    points = [(2, 16), (4, 32), (8, 64), (16, 128)]
    print("\nAMAT (cycles) across cache hierarchies:")
    header = "  kernel   " + "  ".join(f"L1={a}K/L2={b}K" for a, b in points)
    print(header)
    for name, events in traces.items():
        cells = []
        for l1, l2 in points:
            stats = simulate_hierarchy(events, hierarchy(l1, l2))
            cells.append(f"{stats.amat:11.1f}")
        print(f"  {name:<8}" + "  ".join(cells))

    print(
        "\nThe stencil saturates at L1 latency in every configuration — its"
        "\nworking set is a handful of lines and the streamer hides the rest."
        "\nThe gather's AMAT falls only when the table finally fits: exactly"
        "\nthe footprint-vs-capacity relationship the trace diagnostics"
        "\n(F, F_irr%) predict without running any simulation."
    )


if __name__ == "__main__":
    main()
