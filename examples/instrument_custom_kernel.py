#!/usr/bin/env python
"""Toolchain walkthrough: instrument your own kernel end to end.

Authors a small kernel in the synthetic ISA (a blocked stencil-ish sweep
plus an indirection table), then drives every stage of the MemGaze
pipeline by hand:

1. static load classification (Constant / Strided / Irregular);
2. ptwrite insertion with per-block Constant-load proxies;
3. instrumented execution -> raw ptwrite packet stream;
4. trace rebuild from packets + annotations ('Analysis/1');
5. sampling and analysis with source-line attribution ('Analysis/2').

Run:  python examples/instrument_custom_kernel.py
"""

from __future__ import annotations

import numpy as np

from repro import SamplingConfig, collect_sampled_trace
from repro.core.diagnostics import compute_diagnostics
from repro.instrument import (
    SourceMap,
    classify_module,
    instrument_module,
    rebuild_trace,
)
from repro.isa import Interpreter, ProgramBuilder
from repro.simmem import AddressSpace


def build_kernel():
    """out[i] = table[idx[i]] + row[i] for i in range(n), repeated."""
    b = ProgramBuilder("custom", source_file="kernel.c")
    with b.proc("kernel", params=("row", "idx", "table", "n")) as p:
        with p.loop("i", 0, "n"):
            p.load_local("bound", offset=8)  # Constant: spilled loop bound
            p.load("r", base="row", index="i", scale=8)  # Strided
            p.load("j", base="idx", index="i", scale=8)  # Strided
            p.load("t", base="table", index="j", scale=8)  # Irregular
            p.add("sum", "r", "t")
            p.store("sum", base="row", index="i", scale=8)
        p.ret(0)
    with b.proc("main", params=("row", "idx", "table", "n")) as p:
        with p.loop("rep", 0, 50):
            p.call(None, "kernel", "row", "idx", "table", "n")
        p.ret(0)
    return b.build()


def main() -> None:
    module = build_kernel()

    print("== 1. static classification ==")
    classes = classify_module(module)
    for addr, info in sorted(classes.items()):
        print(f"  {hex(addr)}  {info.proc:<8} {info.cls.name:<10} stride={info.stride}")

    print("\n== 2. instrumentation ==")
    inst = instrument_module(module, classes)
    ann = inst.annotations
    print(f"  static loads:        {ann.n_static_loads}")
    print(f"  instrumented:        {ann.n_static_instrumented}")
    print(f"  suppressed Constant: {ann.n_static_suppressed}")
    print(f"  ptwrites inserted:   {len(ann.ptwrites)}")

    print("\n== 3. instrumented execution ==")
    n = 1024
    space = AddressSpace()
    row = space.malloc(8 * n, "row")
    idx = space.malloc(8 * n, "idx")
    table = space.malloc(8 * n, "table")
    rng = np.random.default_rng(0)
    for i, j in enumerate(rng.integers(0, n, n)):
        space.store_value(idx.base + 8 * i, int(j))
    res = Interpreter(inst.module, space).run(
        "main", row.base, idx.base, table.base, n, mode="instrumented"
    )
    print(f"  retired loads:   {res.n_loads:,}")
    print(f"  ptwrite packets: {len(res.packets):,}")

    print("\n== 4. trace rebuild (Analysis/1) ==")
    events = rebuild_trace(res.packets, ann)
    print(f"  load-level records: {len(events):,} "
          f"(+{int(events['n_const'].sum()):,} Constant loads via proxies)")

    print("\n== 5. sampling + analysis (Analysis/2) ==")
    col = collect_sampled_trace(
        events, res.n_loads, SamplingConfig(period=4_999, buffer_capacity=512)
    )
    d = compute_diagnostics(col.events)
    print(f"  samples: {col.n_samples}, records: {len(col.events)}")
    print(f"  dF={d.dF:.3f}  F_str%={d.F_str_pct:.1f}  A_const%={d.A_const_pct:.1f}")

    sm = SourceMap.from_annotations(ann)
    print("\n  hottest source lines (function, file, line -> sampled accesses):")
    for (fn, file, line), count in sm.attribute_events(col.events).most_common(4):
        print(f"    {fn:<8} {file}:{line:<4} {count:>8,}")


if __name__ == "__main__":
    main()
