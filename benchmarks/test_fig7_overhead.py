"""Fig. 7: time overhead of memory tracing.

Paper claims to reproduce in shape:

* MemGaze (PT continuous) overhead is typically 10-95%, with Darknet the
  7x worst case (its high store rate interferes with ptwrite);
* overhead is higher at O3 than O0 (higher instrumented-load rate);
* MemGaze-opt (PT only during samples) cuts overhead to near the
  execution rate of ptwrites;
* total overhead correlates strongly with the executed ptwrite :
  instruction ratio (the paper's red series).
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import APP_SAMPLING, UBENCH_SAMPLING, once, save_result
from repro._util.tables import format_table
from repro.trace.compress import compression_ratio
from repro.trace.overhead import ExecCounts, OverheadModel, PTMode
from repro.workloads.microbench import run_microbench

MODEL = OverheadModel()


def _counts_from_events(events, n_stores: int) -> ExecCounts:
    """Synthesize dynamic counts for a library-path workload.

    Loads = records + suppressed constants; each non-constant record
    executed one ptwrite; surrounding integer/FP work is modelled at 3
    non-memory instructions per access (typical pointer-chasing graph
    codes).
    """
    n_loads = len(events) + int(events["n_const"].sum())
    n_ptwrites = int((events["cls"] != 0).sum())
    n_instrs = 8 * n_loads + n_stores + n_ptwrites
    return ExecCounts(
        n_instrs=n_instrs, n_loads=n_loads, n_stores=n_stores, n_ptwrites=n_ptwrites
    )


def _phase_slice(events, bounds):
    lo, hi = bounds
    return events[lo:hi]


def test_fig7_app_overhead(benchmark, minivite_runs, cc_runs, pagerank_runs, darknet_runs):
    def run():
        rows = []
        cases = []
        for v, r in minivite_runs.items():
            cases.append((f"miniVite-{v}/gen", _phase_slice(r.events, r.phase_bounds["graph_gen"]), 0))
            cases.append((f"miniVite-{v}/modularity", _phase_slice(r.events, r.phase_bounds["modularity"]), 0))
        for alg, r in cc_runs.items():
            cases.append((f"GAP-{alg}/rank", _phase_slice(r.events, r.phase_bounds["components"]), 0))
        for alg, r in pagerank_runs.items():
            cases.append((f"GAP-{alg}/rank", _phase_slice(r.events, r.phase_bounds["rank"]), 0))
        for m, r in darknet_runs.items():
            cases.append((f"Darknet-{m}", r.events, r.n_stores))
        out = []
        for name, events, n_stores in cases:
            counts = _counts_from_events(events, n_stores)
            kappa = compression_ratio(events)
            cont = MODEL.report(name, counts, PTMode.CONTINUOUS, APP_SAMPLING, kappa)
            opt = MODEL.report(name, counts, PTMode.SAMPLED_ONLY, APP_SAMPLING, kappa)
            rows.append(
                [
                    name,
                    f"{cont.overhead_pct:.0f}%",
                    f"{opt.overhead_pct:.0f}%",
                    f"{100 * counts.ptwrite_ratio:.1f}%",
                    f"{100 * counts.store_ratio:.1f}%",
                ]
            )
            out.append((name, cont.overhead_pct, opt.overhead_pct, counts.ptwrite_ratio))
        return rows, out

    rows, out = once(benchmark, run)
    table = format_table(
        ["phase", "MemGaze", "MemGaze-opt", "ptwrite/instr", "store/instr"],
        rows,
        title="Fig. 7: tracing time overhead by phase (model)",
    )
    save_result("fig7_overhead", table)

    names = [o[0] for o in out]
    cont = np.array([o[1] for o in out])
    opt = np.array([o[2] for o in out])
    ptw = np.array([o[3] for o in out])

    # opt is always far below continuous and in the paper's 10-35% band
    assert np.all(opt < cont)
    assert np.all((opt >= 5) & (opt <= 40)), "MemGaze-opt outside 5-40% band"
    # non-darknet continuous overhead sits in the paper's typical band
    non_dn = np.array([c for n, c in zip(names, cont) if not n.startswith("Darknet")])
    assert np.all((non_dn >= 10) & (non_dn <= 120)), non_dn
    # overhead correlates with executed-ptwrite ratio among the
    # store-light workloads (the red series in Fig. 7)
    mask = np.array([not n.startswith("Darknet") for n in names])
    r = np.corrcoef(non_dn, ptw[mask])[0, 1]
    assert r > 0.9, f"overhead vs ptwrite-ratio correlation {r:.2f}"
    # darknet is the multiple-x worst case (5-7x in the paper)
    darknet = max(c for n, c in zip(names, cont) if n.startswith("Darknet"))
    assert darknet > non_dn.max()
    assert darknet > 200, f"darknet slowdown should be multiple x, got {darknet:.0f}%"


def test_fig7_opt_levels(benchmark):
    """Overhead is higher with more compiler optimisation (O3 vs O0)."""

    def run():
        rows = []
        for spec in ("str4", "irr"):
            per_opt = {}
            for opt_level in ("O0", "O3"):
                r = run_microbench(spec, n_elems=2048, repeats=20, opt_level=opt_level)
                rep = MODEL.report(
                    f"{spec}-{opt_level}", r.counts, PTMode.CONTINUOUS, UBENCH_SAMPLING
                )
                per_opt[opt_level] = rep
                rows.append(
                    [
                        f"{spec}-{opt_level}",
                        f"{rep.overhead_pct:.0f}%",
                        f"{100 * r.counts.ptwrite_ratio:.1f}%",
                    ]
                )
            assert (
                per_opt["O3"].overhead_pct > per_opt["O0"].overhead_pct
            ), f"{spec}: O3 should pay more than O0"
        return rows

    rows = once(benchmark, run)
    table = format_table(
        ["benchmark", "MemGaze overhead", "ptwrite/instr"],
        rows,
        title="Fig. 7 (companion): overhead rises with optimisation level",
    )
    save_result("fig7_opt_levels", table)
