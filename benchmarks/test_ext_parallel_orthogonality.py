"""Extension: sampling under CPU parallelism (paper SS:VI's orthogonality).

The paper runs its applications with and without OpenMP and notes that
the analysis "is orthogonal to CPU parallelism". Here four simulated
worker threads execute miniVite's vertex loop in parallel (their record
streams interleave at a scheduling quantum), and the bench checks which
diagnostics survive the interleaving unchanged:

* extensive and class-mix metrics are exactly invariant (same records);
* sampled code windows estimate the same per-function behaviour;
* intra-sample reuse distance grows — the cross-thread dilution the
  paper explicitly defers to future work.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import APP_SAMPLING, once, save_result
from repro._util.tables import format_table
from repro.core.diagnostics import compute_diagnostics
from repro.core.reuse import mean_reuse_distance
from repro.core.windows import code_windows
from repro.trace.collector import collect_sampled_trace
from repro.workloads.parallel import interleave_streams

N_THREADS = 4


def test_ext_parallel_orthogonality(benchmark, minivite_runs):
    run = minivite_runs["v2"]
    lo, hi = run.phase_bounds["modularity"]
    serial = run.events[lo:hi].copy()
    serial["t"] = np.arange(len(serial))
    # the vertex loop partitions across threads: model each worker's
    # stream as one contiguous quarter of the serial record stream
    streams = [s.copy() for s in np.array_split(serial, N_THREADS)]

    def work():
        merged = interleave_streams(streams, quantum=256, seed=3)
        col_s = collect_sampled_trace(serial, config=APP_SAMPLING)
        col_m = collect_sampled_trace(merged, config=APP_SAMPLING)
        d_serial = compute_diagnostics(col_s.events)
        d_merged = compute_diagnostics(col_m.events)
        cw_s = code_windows(col_s.events, fn_names=run.fn_names)
        cw_m = code_windows(col_m.events, fn_names=run.fn_names)
        reuse_s = mean_reuse_distance(col_s.events, 64, col_s.sample_id)
        reuse_m = mean_reuse_distance(col_m.events, 64, col_m.sample_id)
        return merged, d_serial, d_merged, cw_s, cw_m, reuse_s, reuse_m

    merged, d_s, d_m, cw_s, cw_m, reuse_s, reuse_m = once(benchmark, work)

    rows = [
        ["dF", f"{d_s.dF:.3f}", f"{d_m.dF:.3f}"],
        ["F_str%", f"{d_s.F_str_pct:.1f}", f"{d_m.F_str_pct:.1f}"],
        ["A_const%", f"{d_s.A_const_pct:.1f}", f"{d_m.A_const_pct:.1f}"],
        ["intra-sample D", f"{reuse_s:.2f}", f"{reuse_m:.2f}"],
    ]
    table = format_table(
        ["metric", "serial", f"{N_THREADS} threads"],
        rows,
        title="Extension: diagnostics under simulated OpenMP interleaving",
    )
    save_result("ext_parallel_orthogonality", table)

    # the full merged trace is a permutation-by-bursts of the serial one
    assert len(merged) == len(serial)
    # sampled intensive diagnostics agree (orthogonality)
    assert abs(d_s.dF - d_m.dF) < 0.1
    assert abs(d_s.F_str_pct - d_m.F_str_pct) < 10
    # per-function class mixes agree for the hot functions
    for fn in ("map.insert", "getMax"):
        if fn in cw_s and fn in cw_m:
            assert abs(cw_s[fn].F_str_pct - cw_m[fn].F_str_pct) < 15, fn
    # the one expected casualty: cross-thread dilution of reuse windows
    assert reuse_m > reuse_s * 0.9
