"""Table II: binary instrumentation & analysis wall-clock times.

The paper reports per-benchmark times for the instrumenter and the two
analysis sub-steps: trace building ('Analysis/1' — perf packets to the
analysis trace) and trace analysis ('Analysis/2'). Shapes to hold:
instrumentation time grows with binary size/complexity, and analysis
time grows with trace size.
"""

from __future__ import annotations

from benchmarks.conftest import UBENCH_SAMPLING, once, save_result
from repro._util.tables import format_table
from repro._util.timers import Timer
from repro.core.diagnostics import compute_diagnostics
from repro.core.windows import code_windows
from repro.instrument.instrumenter import instrument_module
from repro.instrument.rebuild import rebuild_trace
from repro.isa.interp import Interpreter
from repro.simmem.address_space import AddressSpace
from repro.trace.collector import collect_sampled_trace
from repro.workloads.microbench import _setup_data, build_microbench


def _one_case(spec: str, n_elems: int, repeats: int):
    module = build_microbench(spec, n_elems=n_elems, repeats=repeats)
    with Timer() as t_inst:
        inst = instrument_module(module)
    space = AddressSpace()
    regions = _setup_data(space, n_elems, 0)
    res = Interpreter(inst.module, space).run(
        "main", regions["arr"].base, regions["cond"].base, mode="instrumented"
    )
    with Timer() as t_a1:  # Analysis/1: packets -> load-level trace
        events = rebuild_trace(res.packets, inst.annotations)
    with Timer() as t_a2:  # Analysis/2: sampling + diagnostic suite
        col = collect_sampled_trace(events, res.n_loads, UBENCH_SAMPLING)
        compute_diagnostics(col.events)
        code_windows(col.events)
    return {
        "binary_instrs": inst.module.n_instructions(),
        "trace_records": len(events),
        "t_instrument": t_inst.elapsed,
        "t_analysis1": t_a1.elapsed,
        "t_analysis2": t_a2.elapsed,
    }


def test_table2_times(benchmark):
    cases = {
        # name: (spec, n_elems, repeats) — binary size grows with segments
        "ubench-small": ("str4", 1024, 40),
        "ubench-multi": ("str1|str8|irr|str4/irr", 1024, 20),
        "ubench-large-trace": ("str1|irr", 4096, 60),
    }

    def run():
        return {name: _one_case(*args) for name, args in cases.items()}

    stats = once(benchmark, run)
    rows = [
        [
            name,
            s["binary_instrs"],
            s["trace_records"],
            f"{s['t_instrument'] * 1e3:.1f}ms",
            f"{s['t_analysis1'] * 1e3:.1f}ms",
            f"{s['t_analysis2'] * 1e3:.1f}ms",
        ]
        for name, s in stats.items()
    ]
    table = format_table(
        ["benchmark", "binary instrs", "trace records", "Instrument", "Analysis/1", "Analysis/2"],
        rows,
        title="Table II: toolchain wall-clock times",
    )
    save_result("table2_toolchain_times", table)

    small, multi, large = (
        stats["ubench-small"],
        stats["ubench-multi"],
        stats["ubench-large-trace"],
    )
    # instrumentation cost follows binary size
    assert multi["binary_instrs"] > small["binary_instrs"]
    assert multi["t_instrument"] > 0
    # analysis cost follows trace size
    assert large["trace_records"] > small["trace_records"]
    assert large["t_analysis1"] >= 0 and large["t_analysis2"] >= 0
