"""Ablation: proxy-based Constant-load compression vs instrument-everything.

DESIGN.md calls out the per-block proxy scheme (paper Fig. 2) as a design
choice: suppressing Constant loads and carrying their counts on a proxy
shrinks the packet stream 1.2-2x without losing any information needed by
the analyses. This bench measures both sides of the trade:

* packet-stream bytes with vs without compression;
* that the decompression math recovers the exact suppressed counts, so
  kappa-corrected metrics (A-hat, dF, A_const%) are unchanged.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import once, save_result
from repro._util.tables import format_table
from repro.core.diagnostics import compute_diagnostics
from repro.trace.compress import compression_ratio, decompress_counts
from repro.trace.event import LoadClass
from repro.trace.tracefile import packet_bytes
from repro.workloads.microbench import run_microbench


def test_ablation_compression(benchmark):
    def run():
        rows = []
        for spec in ("str1", "irr", "str1|irr"):
            for opt in ("O0", "O3"):
                r = run_microbench(spec, n_elems=2048, repeats=20, opt_level=opt)
                compressed_b = packet_bytes(r.events_observed)
                uncompressed_b = 8 * len(r.events_full)
                kappa = compression_ratio(r.events_observed)
                rows.append(
                    {
                        "name": f"{spec}-{opt}",
                        "kappa": kappa,
                        "saving": uncompressed_b / compressed_b,
                        "observed": r.events_observed,
                        "full": r.events_full,
                    }
                )
        return rows

    rows = once(benchmark, run)
    table = format_table(
        ["benchmark", "kappa", "space saving"],
        [[r["name"], f"{r['kappa']:.2f}", f"{r['saving']:.2f}x"] for r in rows],
        title="Ablation: class-based compression vs instrument-everything",
    )
    save_result("ablation_compression", table)

    for r in rows:
        # compression is lossless for every analysis input:
        # 1. implied access counts match the uncompressed trace exactly
        assert decompress_counts(r["observed"]) == len(r["full"])
        # 2. non-constant addresses identical
        nc = r["full"][r["full"]["cls"] != int(LoadClass.CONSTANT)]
        assert np.array_equal(nc["addr"], r["observed"]["addr"])
        # 3. kappa-corrected diagnostics equal the uncompressed ones
        d_c = compute_diagnostics(r["observed"])
        d_u = compute_diagnostics(r["full"])
        assert d_c.A_implied == d_u.A_implied
        assert abs(d_c.dF - d_u.dF) < 1e-12
        assert abs(d_c.A_const_pct - d_u.A_const_pct) < 1e-9
        # 4. the saving equals kappa by construction
        assert r["saving"] == r["kappa"]

    o0 = [r["saving"] for r in rows if r["name"].endswith("O0")]
    o3 = [r["saving"] for r in rows if r["name"].endswith("O3")]
    assert min(o0) > max(o3), "O0 always compresses more than O3"
