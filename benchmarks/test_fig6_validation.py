"""Fig. 6: validation of sampled footprint access diagnostics.

Paper claim: for sampled traces around 1% of the full trace, metric
histograms (F, F_str, F_irr over power-of-2 trace windows) show MAPE
below 25%, and code-window aggregation reduces per-function error to a
few percent. Microbenchmarks validate against *full* traces; graph
benchmarks validate against 10x denser sampling (collecting full traces
was infeasible for the paper too).
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import APP_SAMPLING, UBENCH_SAMPLING, once, save_result
from repro._util.tables import format_table
from repro.core.histograms import mape, window_histogram
from repro.core.windows import code_windows
from repro.trace.collector import collect_sampled_trace
from repro.trace.compress import sample_ratio_from
from repro.trace.sampler import SamplingConfig

SIZES = [8, 16, 32, 64, 128, 256]
METRICS = ["F", "F_str", "F_irr"]


def _masked_mape(sampled: np.ndarray, ref: np.ndarray) -> float:
    """MAPE over histogram points whose reference is meaningful (>= 2
    blocks): percentage error against a 0-or-1-block footprint is noise,
    not signal."""
    sampled = sampled.copy()
    sampled[ref < 2] = np.nan
    return mape(sampled, np.where(ref < 2, np.nan, ref))


def _trace_window_mapes(events_ref, col) -> dict[str, float]:
    out = {}
    for metric in METRICS:
        _, sampled = window_histogram(
            col.events, metric, sizes=SIZES, sample_id=col.sample_id
        )
        _, ref = window_histogram(events_ref, metric, sizes=SIZES)
        out[metric] = _masked_mape(sampled, ref)
    return out


def _code_window_errors(events_ref, col, fn_names) -> dict[str, float]:
    """Percentage error of estimated per-function accesses and footprint."""
    rho = sample_ratio_from(col)
    sampled = code_windows(col.events, rho=rho, fn_names=fn_names)
    ref = code_windows(events_ref, fn_names=fn_names)
    errs = {}
    for fn, d_ref in ref.items():
        if d_ref.A_implied < 3000 or fn in ("main", "graph_gen", "graph_build"):
            continue
        d_s = sampled.get(fn)
        if d_s is None:
            continue
        errs[fn] = 100 * abs(d_s.A_est - d_ref.A_implied) / d_ref.A_implied
    return errs


def test_fig6_microbench_trace_and_code_windows(benchmark, ubench_runs):
    def run():
        rows = []
        for spec, r in ubench_runs.items():
            col = collect_sampled_trace(
                r.events_observed, n_loads_total=r.n_loads, config=UBENCH_SAMPLING
            )
            mapes = _trace_window_mapes(r.events_observed, col)
            errs = _code_window_errors(r.events_observed, col, r.fn_names)
            code_err = max(errs.values()) if errs else float("nan")
            frac = 100 * len(col.events) / len(r.events_observed)
            rows.append(
                [
                    spec,
                    f"{frac:.1f}%",
                    f"{mapes['F']:.1f}",
                    f"{mapes['F_str']:.1f}" if not np.isnan(mapes["F_str"]) else "-",
                    f"{mapes['F_irr']:.1f}" if not np.isnan(mapes["F_irr"]) else "-",
                    f"{code_err:.1f}" if not np.isnan(code_err) else "-",
                ]
            )
        return rows

    rows = once(benchmark, run)
    table = format_table(
        ["benchmark", "trace%", "MAPE F", "MAPE F_str", "MAPE F_irr", "code-window err%"],
        rows,
        title="Fig. 6 (microbenchmarks): sampled vs full-trace metric histograms",
    )
    save_result("fig6_microbench", table)
    # paper bound: trace-window MAPE < 25%
    for row in rows:
        for cell in row[2:5]:
            if cell != "-":
                assert float(cell) < 25.0, f"{row[0]}: {cell}% MAPE"
    # code windows reduce error (paper: <5%; we allow 10% at small scale)
    for row in rows:
        if row[5] != "-":
            assert float(row[5]) < 10.0, f"{row[0]}: code window {row[5]}%"


def test_fig6_graph_benchmarks_vs_denser_sampling(benchmark, minivite_runs, cc_runs):
    """Graph benchmarks: validate 1x sampling against 10x denser sampling."""
    dense = SamplingConfig(
        period=APP_SAMPLING.period // 10,
        buffer_capacity=APP_SAMPLING.buffer_capacity,
        seed=1,
    )
    cases = {
        "miniVite-v1": minivite_runs["v1"].events,
        "miniVite-v2": minivite_runs["v2"].events,
        "GAP-cc": cc_runs["cc"].events,
        "GAP-cc-sv": cc_runs["cc-sv"].events,
    }

    def run():
        rows = []
        for name, events in cases.items():
            col = collect_sampled_trace(events, config=APP_SAMPLING)
            ref = collect_sampled_trace(events, config=dense)
            mapes = {}
            for metric in METRICS:
                _, s = window_histogram(
                    col.events, metric, sizes=SIZES, sample_id=col.sample_id
                )
                _, d = window_histogram(
                    ref.events, metric, sizes=SIZES, sample_id=ref.sample_id
                )
                mapes[metric] = _masked_mape(s, d)
            rows.append(
                [name]
                + [
                    f"{mapes[m]:.1f}" if not np.isnan(mapes[m]) else "-"
                    for m in METRICS
                ]
            )
        return rows

    rows = once(benchmark, run)
    table = format_table(
        ["benchmark", "MAPE F", "MAPE F_str", "MAPE F_irr"],
        rows,
        title="Fig. 6 (graph benchmarks): 1x sampling vs 10x denser sampling",
    )
    save_result("fig6_graph", table)
    for row in rows:
        for cell in row[1:]:
            if cell != "-":
                assert float(cell) < 25.0, f"{row[0]}: {cell}%"
