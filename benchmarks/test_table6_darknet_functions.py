"""Table VI: Darknet data locality of hot function accesses.

Shapes: gemm dominates footprint and accesses for both models; every
access is strided (F_str% = 100); ResNet152's footprint dwarfs
AlexNet's (more and larger layers).
"""

from __future__ import annotations

from benchmarks.conftest import once, save_result
from repro.core.pipeline import AnalysisConfig, MemGaze
from repro.core.report import render_function_table
from repro.trace.sampler import SamplingConfig

#: darknet sampling: a short period so every im2col burst (the paper's
#: second hotspot, ~3% of accesses) catches triggers, and a small buffer
#: so early (large-N) layer reuse spans escape the sample window, as on
#: the paper's platform
DARKNET_SAMPLING = SamplingConfig(period=2_000, buffer_capacity=256, seed=0)


def test_table6(benchmark, darknet_runs):
    mg = MemGaze(AnalysisConfig(DARKNET_SAMPLING))

    def run():
        return {
            m: mg.analyze_events(
                r.events, n_loads_total=r.n_loads, fn_names=r.fn_names
            ).per_function
            for m, r in darknet_runs.items()
        }

    per_model = once(benchmark, run)

    blocks = [
        render_function_table(
            {f: d for f, d in diags.items() if f in ("gemm", "im2col")},
            title=f"Table VI ({m}): locality of hot function accesses",
            order=["gemm", "im2col"],
        )
        for m, diags in per_model.items()
    ]
    save_result("table6_darknet_functions", "\n\n".join(blocks))

    for m, diags in per_model.items():
        assert "gemm" in diags and "im2col" in diags, m
        assert diags["gemm"].F_str_pct == 100.0, m
        assert diags["im2col"].F_str_pct == 100.0, m
        assert diags["gemm"].A_est > 5 * diags["im2col"].A_est, m

    assert (
        per_model["resnet152"]["gemm"].F_est > 2 * per_model["alexnet"]["gemm"].F_est
    )
    assert (
        per_model["resnet152"]["gemm"].A_est > 2 * per_model["alexnet"]["gemm"].A_est
    )
