"""Fig. 9: GAP data locality of hot access intervals (intra-sample).

Histogram plots of average data locality (footprint growth / reuse
distance) against hot access-interval size. Shapes:

* for every algorithm, larger intra-sample windows expose more reuse —
  average footprint growth falls as window size grows;
* the optimized variants' locality profiles dominate (pr at-or-below
  pr-spmv in growth across window sizes).
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import APP_SAMPLING, once, save_result
from repro._util.tables import format_table
from repro.core.histograms import window_histogram
from repro.trace.collector import collect_sampled_trace

SIZES = [8, 16, 32, 64]


def _profile(run):
    col = collect_sampled_trace(run.events, run.n_loads, APP_SAMPLING)
    _, growth = window_histogram(
        col.events, "dF", sizes=SIZES, sample_id=col.sample_id
    )
    return growth


def test_fig9(benchmark, pagerank_runs, cc_runs):
    def run():
        out = {}
        for alg, r in pagerank_runs.items():
            out[alg] = _profile(r)
        for alg, r in cc_runs.items():
            out[alg] = _profile(r)
        return out

    profiles = once(benchmark, run)
    rows = [
        [alg] + [f"{v:.3f}" if np.isfinite(v) else "-" for v in growth]
        for alg, growth in profiles.items()
    ]
    table = format_table(
        ["algorithm"] + [f"w={s}" for s in SIZES],
        rows,
        title="Fig. 9: mean footprint growth vs intra-sample window size",
    )
    save_result("fig9_gap_locality", table)

    for alg, growth in profiles.items():
        vals = growth[np.isfinite(growth)]
        assert len(vals) >= 3, alg
        # growth falls with window size: larger windows capture reuse
        assert vals[-1] < vals[0], alg
        assert np.all((vals > 0) & (vals <= 1)), alg

    # pr (optimized) at-or-below pr-spmv across the profile
    ok = np.nan_to_num(profiles["pr"], nan=0.0) <= np.nan_to_num(
        profiles["pr-spmv"], nan=1.0
    ) * 1.1
    assert ok.all()
