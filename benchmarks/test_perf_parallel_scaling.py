"""Performance: parallel sharded analysis engine scaling and exactness.

Two claims are pinned here:

1. **exactness** — on a large synthetic trace, the sharded parallel
   path produces *bit-identical* merged metrics (diagnostics,
   captures/survivals, reuse histogram) for every worker count;
2. **scaling** — with 4 workers the full diagnostic suite runs >= 2x
   faster than the serial path on a >= 10M-event trace. The speedup
   assertion needs real cores, so it skips on machines with fewer than
   4 CPUs (the exactness assertions always run);
3. **observability overhead** — attaching a run journal and metrics
   registry to the engine costs < 3% wall clock (the hooks sit on
   stage/shard boundaries, never per-event paths).

Trace size is tunable via ``MEMGAZE_BENCH_EVENTS`` (default 10M for the
timed test; the exactness tests use a smaller trace so the Fenwick
reuse pass stays affordable in CI). Set ``MEMGAZE_BENCH_JOURNAL`` to a
path to journal the scaling run — CI uploads that file as a build
artifact.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from benchmarks.conftest import save_result
from repro._util.timers import Timer
from repro.core.diagnostics import compute_diagnostics
from repro.core.metrics import captures_survivals
from repro.core.parallel import ParallelEngine
from repro.core.reuse import reuse_histogram
from repro.obs.journal import RunJournal
from repro.obs.metrics import MetricsRegistry
from repro.trace.event import make_events

N_TIMED = int(os.environ.get("MEMGAZE_BENCH_EVENTS", 10_000_000))
N_EXACT = min(N_TIMED, 500_000)


def _synthetic_trace(n: int, seed: int = 0):
    """A mixed-pattern trace: strided sweeps + irregular accesses + proxies."""
    rng = np.random.default_rng(seed)
    idx = np.arange(n, dtype=np.uint64)
    strided = 0x10_0000 + (idx * 8) % (1 << 24)
    irregular = 0x200_0000 + rng.integers(0, 1 << 22, n).astype(np.uint64) * 8
    cls = rng.choice([0, 1, 2], n, p=[0.1, 0.5, 0.4]).astype(np.uint8)
    addr = np.where(cls == 1, strided, irregular)
    ev = make_events(
        ip=(idx % 64) + 1,
        addr=addr,
        cls=cls,
        n_const=np.where(rng.random(n) < 0.05, 3, 0).astype(np.uint16),
        fn=(idx % 8).astype(np.uint32),
    )
    # ~1K-record samples: the window geometry real sampled traces have
    sid = (np.arange(n, dtype=np.int64) // 1024).astype(np.int32)
    return ev, sid


def _serial_suite(ev, sid, block=64):
    d = compute_diagnostics(ev, rho=2.0, block=block)
    cs = captures_survivals(ev, block)
    h = reuse_histogram(ev, block, sid)
    return d, cs, h


def _parallel_suite(eng, ev, sid, block=64):
    d = eng.diagnostics(ev, rho=2.0, block=block, sample_id=sid)
    cs = eng.captures_survivals(ev, block, sample_id=sid)
    h = eng.reuse_histogram(ev, block, sid)
    return d, cs, h


@pytest.fixture(scope="module")
def exact_trace():
    return _synthetic_trace(N_EXACT)


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_parallel_bit_identical(exact_trace, workers):
    ev, sid = exact_trace
    ds, css, hs = _serial_suite(ev, sid)
    with ParallelEngine(workers=workers) as eng:
        dp, csp, hp = _parallel_suite(eng, ev, sid)
    assert dp == ds  # dataclass of ints/floats: exact equality
    assert csp == css
    assert np.array_equal(hp.counts, hs.counts)
    assert (hp.n_cold, hp.n_reuse, hp.d_sum, hp.d_max) == (
        hs.n_cold, hs.n_reuse, hs.d_sum, hs.d_max,
    )
    assert hp.mean == hs.mean


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="speedup measurement needs >= 4 CPUs",
)
@pytest.mark.perf
def test_parallel_scaling_4_workers(benchmark):
    ev, sid = _synthetic_trace(N_TIMED)

    with Timer() as t_serial:
        serial = _serial_suite(ev, sid)

    journal_path = os.environ.get("MEMGAZE_BENCH_JOURNAL")
    journal = RunJournal(journal_path) if journal_path else None
    metrics = MetricsRegistry() if journal_path else None
    eng = ParallelEngine(workers=4, journal=journal, metrics=metrics)
    try:
        eng.footprint(ev[:200_000], sample_id=sid[:200_000])  # warm the pool up
        with Timer() as t_parallel:
            parallel = benchmark.pedantic(
                _parallel_suite, args=(eng, ev, sid), rounds=1, iterations=1
            )
    finally:
        eng.close()

    assert parallel[0] == serial[0]
    assert parallel[1] == serial[1]
    assert np.array_equal(parallel[2].counts, serial[2].counts)

    speedup = t_serial.elapsed / max(t_parallel.elapsed, 1e-9)
    if journal is not None:
        journal.record_timers(eng.timers)
        journal.record_metrics(metrics)
        journal.emit(
            "scaling-run",
            n_events=len(ev),
            serial_seconds=t_serial.elapsed,
            parallel_seconds=t_parallel.elapsed,
            speedup=speedup,
        )
        journal.close()
    save_result(
        "perf_parallel_scaling",
        "parallel sharded analysis engine, synthetic trace\n"
        f"events:            {len(ev):,}\n"
        f"serial suite:      {t_serial.elapsed:8.2f} s\n"
        f"4-worker suite:    {t_parallel.elapsed:8.2f} s\n"
        f"speedup:           {speedup:8.2f}x",
    )
    assert speedup >= 2.0, f"expected >= 2x with 4 workers, got {speedup:.2f}x"


@pytest.mark.perf
def test_fused_scan_not_slower_than_per_metric(tmp_path):
    """One fused scan for the full report must beat N per-metric scans.

    The pass framework's performance claim: computing diagnostics,
    captures, and the reuse histogram through one ``run_passes``
    schedule (a single scan over the trace, shared per-chunk
    intermediates) is at least as fast as the per-metric baseline that
    scans the trace once per metric. Interleaved best-of-rounds, like
    the overhead test, damps scheduler noise.
    """
    ev, sid = _synthetic_trace(N_EXACT)
    requests = [
        ("diagnostics", {"block": 64}),
        ("captures", {"block": 64}),
        ("reuse", {"block": 64}),
    ]
    rounds = 5

    journal_path = os.environ.get("MEMGAZE_BENCH_JOURNAL")
    journal = RunJournal(journal_path) if journal_path else None
    metrics = MetricsRegistry()
    per_times, fused_times = [], []
    fused = None
    with ParallelEngine(workers=1, journal=journal, metrics=metrics) as eng:
        for r in range(-1, rounds):  # round -1 is warm-up
            # no window_id -> no memoization; every round rescans
            with Timer() as t_per:
                baseline = _parallel_suite(eng, ev, sid)
            with Timer() as t_fused:
                fused = eng.run_passes(ev, requests, rho=2.0, sample_id=sid)
            if r >= 0:
                per_times.append(t_per.elapsed)
                fused_times.append(t_fused.elapsed)
        if journal is not None:
            journal.record_timers(eng.timers)
            journal.record_metrics(metrics)

    # same bits, fewer scans
    assert fused["diagnostics"] == baseline[0]
    assert fused["captures"] == baseline[1]
    assert np.array_equal(fused["reuse"].counts, baseline[2].counts)

    t_per, t_fused = min(per_times), min(fused_times)
    counters = metrics.as_dict()["counters"]
    shared = counters["passes.artifact_hits"]["value"]
    if journal is not None:
        journal.emit(
            "fused-scan-run",
            n_events=len(ev),
            per_metric_seconds=t_per,
            fused_seconds=t_fused,
            speedup=t_per / max(t_fused, 1e-9),
            artifact_hits=shared,
        )
        journal.close()
    save_result(
        "perf_fused_scan",
        "fused pass schedule vs per-metric scans (3 metrics, 1 worker)\n"
        f"events:            {len(ev):,}\n"
        f"per-metric suite:  {t_per * 1e3:9.1f} ms  (3 scans)\n"
        f"fused schedule:    {t_fused * 1e3:9.1f} ms  (1 scan)\n"
        f"speedup:           {t_per / max(t_fused, 1e-9):8.2f}x\n"
        f"artifact hits:     {shared:,}",
    )
    assert shared > 0, "fused scan shared no per-chunk intermediates"
    # "not slower": the Fenwick reuse pass dominates both sides, so the
    # expected fused win is small; 5% headroom absorbs scheduler jitter
    # that best-of-rounds cannot fully damp on shared CI runners.
    assert t_fused <= t_per * 1.05, (
        f"fused scan ({t_fused * 1e3:.1f} ms) slower than "
        f"per-metric baseline ({t_per * 1e3:.1f} ms)"
    )


def _write_archive(path, ev, sid):
    from repro.trace.tracefile import TraceMeta, write_trace

    meta = TraceMeta(
        module="bench", kind="sampled", period=12_000, buffer_capacity=1024,
        n_loads_total=len(ev) * 2, n_samples=int(sid[-1]) + 1,
    )
    write_trace(path, ev, meta, sid)
    return path


def _analysis_fingerprint(fa):
    return (
        fa.n_events, fa.rho, fa.diagnostics, fa.captures, fa.survivals,
        fa.reuse.counts.tolist(), fa.reuse.n_cold, fa.reuse.n_reuse,
        fa.reuse.d_sum, fa.reuse.d_max, fa.reuse.scope,
    )


@pytest.mark.perf
def test_cache_warmup_cold_vs_warm(tmp_path):
    """Acceptance: a warm cached analysis is >= 5x faster, bit-identical.

    The cold run streams the archive and persists every pass's merged
    partial to the artifact store; the warm run must serve all of them
    from disk — no event is read — and still produce exactly the cold
    run's numbers. The Fenwick reuse scan dominates the cold cost, so
    the expected warm speedup is orders of magnitude; 5x is the floor
    the acceptance criterion pins.
    """
    from repro.core.artifacts import ArtifactStore
    from repro.obs.journal import read_journal

    ev, sid = _synthetic_trace(N_EXACT)
    path = _write_archive(tmp_path / "bench.npz", ev, sid)
    jpath = os.environ.get("MEMGAZE_BENCH_JOURNAL") or (tmp_path / "cache.jsonl")

    def run():
        journal = RunJournal(jpath)
        store = ArtifactStore(tmp_path / "cache", journal=journal,
                              metrics=MetricsRegistry())
        with ParallelEngine(workers=1, store=store, journal=journal) as eng:
            with Timer() as t:
                fa = eng.analyze_file(path)
        journal.close()
        return fa, t.elapsed

    cold, t_cold = run()
    warm, t_warm = run()
    assert _analysis_fingerprint(warm) == _analysis_fingerprint(cold)

    recs = list(read_journal(jpath))
    modes = [r["mode"] for r in recs if r.get("stage") == "analyze-file"]
    assert modes[-2:] == ["full", "cached"]
    speedup = t_cold / max(t_warm, 1e-9)
    save_result(
        "cache_warmup",
        "persistent analysis cache: cold vs warm analyze_file (1 worker)\n"
        f"events:            {len(ev):,}\n"
        f"cold (scan+store): {t_cold * 1e3:9.1f} ms\n"
        f"warm (cache hits): {t_warm * 1e3:9.1f} ms\n"
        f"speedup:           {speedup:8.1f}x  (floor: 5x)",
    )
    assert speedup >= 5.0, f"warm cache run only {speedup:.1f}x faster"


def test_cache_incremental_append(tmp_path):
    """Acceptance: an appended archive rescans only its new tail.

    A trace is analyzed and cached, then ten more samples are appended
    and the longer archive analyzed through the same store. The journal
    must show the prefix skipped (``chunk-skip``) with ``chunk-read``
    lines covering exactly the appended events, and the merged result
    must equal a cold full analysis of the longer trace.
    """
    from repro.core.artifacts import ArtifactStore
    from repro.obs.journal import read_journal

    n_total = N_EXACT
    n_prefix = (n_total // 1024 - 10) * 1024  # sample-aligned cut, 10 samples early
    ev, sid = _synthetic_trace(n_total)
    short = _write_archive(tmp_path / "short.npz", ev[:n_prefix], sid[:n_prefix])
    full = _write_archive(tmp_path / "full.npz", ev, sid)
    jpath = tmp_path / "incremental.jsonl"
    chunk = 64 * 1024

    def run(path, t):
        journal = RunJournal(jpath)
        store = ArtifactStore(tmp_path / "cache", journal=journal)
        with ParallelEngine(workers=1, store=store, journal=journal) as eng:
            with t:
                fa = eng.analyze_file(path, chunk_size=chunk)
        journal.close()
        return fa

    run(short, Timer())  # prime the cache with the shorter trace
    t_incr, t_cold = Timer(), Timer()
    incr = run(full, t_incr)
    with ParallelEngine(workers=1) as eng:  # cold reference, no store
        with t_cold:
            cold = eng.analyze_file(full, chunk_size=chunk)
    assert _analysis_fingerprint(incr) == _analysis_fingerprint(cold)

    recs = list(read_journal(jpath))
    stage = [r for r in recs if r.get("stage") == "analyze-file"][-1]
    assert stage["mode"] == "incremental"
    assert stage["skipped_events"] == n_prefix
    i_skip = max(i for i, r in enumerate(recs) if r.get("event") == "chunk-skip")
    tail_read = sum(
        r["n_events"] for r in recs[i_skip:] if r.get("event") == "chunk-read"
    )
    assert tail_read == n_total - n_prefix, "rescan must touch only the tail"
    save_result(
        "cache_incremental",
        "incremental re-analysis of an appended archive (1 worker)\n"
        f"prefix events:     {n_prefix:,} (cached)\n"
        f"appended events:   {n_total - n_prefix:,} (rescanned)\n"
        f"incremental:       {t_incr.elapsed * 1e3:9.1f} ms\n"
        f"cold full scan:    {t_cold.elapsed * 1e3:9.1f} ms\n"
        f"speedup:           {t_cold.elapsed / max(t_incr.elapsed, 1e-9):8.1f}x",
    )


@pytest.mark.perf
def test_obs_overhead(tmp_path):
    """Journal + metrics instrumentation must cost < 3% wall clock.

    The hooks sit on stage/shard boundaries, so their cost is bounded by
    shard count, not trace size. Bare and instrumented analyses run
    interleaved and the minimum of several rounds is compared, which
    damps scheduler noise far below the 3% budget being verified.
    """
    ev, sid = _synthetic_trace(N_EXACT)
    rounds = 5

    def run_suite(engine):
        # no window_id -> nothing is memoized; every round recomputes
        with Timer() as t:
            _parallel_suite(engine, ev, sid)
        return t.elapsed

    bare_times, instr_times = [], []
    with ParallelEngine(workers=1) as bare:
        journal = RunJournal(tmp_path / "overhead.jsonl")
        with ParallelEngine(
            workers=1, journal=journal, metrics=MetricsRegistry()
        ) as instr:
            run_suite(bare), run_suite(instr)  # warm-up round
            for _ in range(rounds):
                bare_times.append(run_suite(bare))
                instr_times.append(run_suite(instr))
        journal.close()

    t_bare, t_instr = min(bare_times), min(instr_times)
    overhead = (t_instr - t_bare) / t_bare
    n_lines = sum(1 for _ in open(tmp_path / "overhead.jsonl"))
    save_result(
        "obs_overhead",
        "observability overhead: journal + metrics on the analysis engine\n"
        f"events:               {len(ev):,}\n"
        f"rounds:               best of {rounds} (interleaved)\n"
        f"bare suite:           {t_bare * 1e3:9.1f} ms\n"
        f"instrumented suite:   {t_instr * 1e3:9.1f} ms\n"
        f"journal lines:        {n_lines:,}\n"
        f"overhead:             {overhead * 100:8.2f}%  (budget: < 3%)",
    )
    assert overhead < 0.03, f"observability overhead {overhead:.1%} exceeds 3%"
