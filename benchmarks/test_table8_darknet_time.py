"""Table VIII: Darknet gemm data locality over time (access intervals).

The paper splits gemm's trace into 8 equal access intervals and shows:

* reuse distance D shifts as the network progresses — dimension N
  (gemm's innermost loop) shrinks with depth, moving B-row reuse spans
  across the sample-window observability boundary;
* footprint per interval follows the layer shapes: AlexNet's mixed
  conv/pool/fc stack makes Delta-F vary more across intervals than
  ResNet152's uniform bottleneck stacks.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import once, save_result
from repro.core.interval_tree import access_interval_metrics
from repro.core.report import render_interval_table
from repro.trace.collector import collect_sampled_trace
from repro.trace.compress import sample_ratio_from
from benchmarks.test_table6_darknet_functions import DARKNET_SAMPLING

N_INTERVALS = 8


def test_table8(benchmark, darknet_runs):
    def run():
        out = {}
        for m, r in darknet_runs.items():
            gemm_fid = next(
                fid for fid, name in r.fn_names.items() if name == "gemm"
            )
            col = collect_sampled_trace(r.events, r.n_loads, DARKNET_SAMPLING)
            mask = col.events["fn"] == gemm_fid
            gemm_events = col.events[mask]
            gemm_sid = col.sample_id[mask]
            rows = access_interval_metrics(
                gemm_events,
                N_INTERVALS,
                rho=sample_ratio_from(col),
                reuse_block=64,
                sample_id=gemm_sid,
            )
            out[m] = rows
        return out

    per_model = once(benchmark, run)
    blocks = [
        render_interval_table(
            rows, title=f"Table VIII ({m}): gemm locality over access intervals"
        )
        for m, rows in per_model.items()
    ]
    save_result("table8_darknet_time", "\n\n".join(blocks))

    for m, rows in per_model.items():
        assert len(rows) == N_INTERVALS
        a = np.array([r["A_obs"] for r in rows])
        assert np.all(a > 0), m
        d = np.array([r["D"] for r in rows])
        # D moves substantially over time (layer shapes change); late
        # intervals (small N -> reuse captured in-sample) differ from
        # early ones
        assert d.max() > 1.5 * max(d.min(), 0.05), m

    # AlexNet's dF varies more across intervals than ResNet152's
    spread = {
        m: np.std([r["dF"] for r in rows]) / max(1e-9, np.mean([r["dF"] for r in rows]))
        for m, rows in per_model.items()
    }
    assert spread["alexnet"] > spread["resnet152"]
