"""Extension: memory-system co-design with a cache model (paper SS:IX).

The paper's future work: "Using models of different memory systems, we
can obtain insight into memory system performance and concurrency with
respect to data location, data movement, and workload accesses."

This bench drives the LRU cache model with the miniVite traces and
checks that the analytical diagnostics predict the simulated hardware:

* the chained map (v1) misses far more than the hopscotch maps;
* strided accesses hit better than irregular ones in every variant;
* across variants, higher footprint growth -> lower hit ratio.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import once, save_result
from repro._util.tables import format_table
from repro.core.cachesim import CacheConfig, simulate_cache
from repro.core.diagnostics import compute_diagnostics
from repro.trace.event import LoadClass

#: a 4 KiB cache, proportional to our reduced working sets (scale-10
#: graphs), with the stream prefetcher on — the paper's premise
CACHE = CacheConfig(size_bytes=4 * 1024, line_bytes=64, ways=8, prefetch_next_line=True)
PREFIX = 150_000  # bounded prefix keeps the python-level simulation fast


def test_ext_cache_codesign(benchmark, minivite_runs):
    def work():
        out = {}
        for v, r in minivite_runs.items():
            lo, hi = r.phase_bounds["modularity"]
            ev = r.events[lo : min(hi, lo + PREFIX)]
            stats = simulate_cache(ev, CACHE)
            diag = compute_diagnostics(ev)
            out[v] = (stats, diag)
        return out

    results = once(benchmark, work)
    rows = []
    for v, (stats, diag) in results.items():
        rows.append(
            [
                v,
                f"{100 * stats.hit_ratio:.1f}%",
                f"{100 * stats.class_hit_ratio(LoadClass.STRIDED):.1f}%",
                f"{100 * stats.class_hit_ratio(LoadClass.IRREGULAR):.1f}%",
                f"{diag.dF:.3f}",
            ]
        )
    table = format_table(
        ["variant", "hit ratio", "strided hits", "irregular hits", "dF"],
        rows,
        title="Extension: 4 KiB 8-way LRU + stream prefetch driven by miniVite traces",
    )
    save_result("ext_cache_codesign", table)

    hit = {v: s.hit_ratio for v, (s, _) in results.items()}
    # hopscotch variants beat the chained map in the cache
    assert hit["v2"] > hit["v1"]
    assert hit["v3"] > hit["v1"]
    for v, (stats, _) in results.items():
        s = stats.class_hit_ratio(LoadClass.STRIDED)
        i = stats.class_hit_ratio(LoadClass.IRREGULAR)
        assert s > i, f"{v}: strided should hit better ({s:.2f} vs {i:.2f})"
    # footprint growth anti-correlates with hit ratio across variants
    dfs = np.array([d.dF for _, d in results.values()])
    hits = np.array([s.hit_ratio for s, _ in results.values()])
    r = np.corrcoef(dfs, hits)[0, 1]
    assert r < 0, f"dF vs hit-ratio correlation should be negative, got {r:.2f}"
