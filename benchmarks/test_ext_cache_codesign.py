"""Extension: memory-system co-design with a cache model (paper SS:IX).

The paper's future work: "Using models of different memory systems, we
can obtain insight into memory system performance and concurrency with
respect to data location, data movement, and workload accesses."

This bench drives the LRU cache model with the miniVite traces and
checks that the analytical diagnostics predict the simulated hardware:

* the chained map (v1) misses far more than the hopscotch maps;
* strided accesses hit better than irregular ones in every variant;
* across variants, higher footprint growth -> lower hit ratio.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import once, save_result
from repro._util.tables import format_table
from repro._util.timers import Timer
from repro.core.cachesim import (
    CacheConfig,
    SweepPartial,
    simulate_cache,
    sweep_configs,
    sweep_finalize,
    sweep_update,
)
from repro.core.diagnostics import compute_diagnostics
from repro.trace.event import LoadClass

#: a 4 KiB cache, proportional to our reduced working sets (scale-10
#: graphs), with the stream prefetcher on — the paper's premise
CACHE = CacheConfig(size_bytes=4 * 1024, line_bytes=64, ways=8, prefetch_next_line=True)
PREFIX = 150_000  # bounded prefix keeps the python-level simulation fast


def test_ext_cache_codesign(benchmark, minivite_runs):
    def work():
        out = {}
        for v, r in minivite_runs.items():
            lo, hi = r.phase_bounds["modularity"]
            ev = r.events[lo : min(hi, lo + PREFIX)]
            stats = simulate_cache(ev, CACHE)
            diag = compute_diagnostics(ev)
            out[v] = (stats, diag)
        return out

    results = once(benchmark, work)
    rows = []
    for v, (stats, diag) in results.items():
        rows.append(
            [
                v,
                f"{100 * stats.hit_ratio:.1f}%",
                f"{100 * stats.class_hit_ratio(LoadClass.STRIDED):.1f}%",
                f"{100 * stats.class_hit_ratio(LoadClass.IRREGULAR):.1f}%",
                f"{diag.dF:.3f}",
            ]
        )
    table = format_table(
        ["variant", "hit ratio", "strided hits", "irregular hits", "dF"],
        rows,
        title="Extension: 4 KiB 8-way LRU + stream prefetch driven by miniVite traces",
    )
    save_result("ext_cache_codesign", table)

    hit = {v: s.hit_ratio for v, (s, _) in results.items()}
    # hopscotch variants beat the chained map in the cache
    assert hit["v2"] > hit["v1"]
    assert hit["v3"] > hit["v1"]
    for v, (stats, _) in results.items():
        s = stats.class_hit_ratio(LoadClass.STRIDED)
        i = stats.class_hit_ratio(LoadClass.IRREGULAR)
        assert s > i, f"{v}: strided should hit better ({s:.2f} vs {i:.2f})"
    # footprint growth anti-correlates with hit ratio across variants
    dfs = np.array([d.dF for _, d in results.values()])
    hits = np.array([s.hit_ratio for s, _ in results.values()])
    r = np.corrcoef(dfs, hits)[0, 1]
    assert r < 0, f"dF vs hit-ratio correlation should be negative, got {r:.2f}"


# -- what-if sweep: one fused scan vs per-config re-simulation ----------------

#: an 8-way-axis grid sharing one (line size, set count) geometry group:
#: the regime the fusion targets — associativity becomes a threshold on
#: one set-local stack-distance computation instead of 8 simulations
SWEEP_WAYS = (1, 2, 4, 8, 16, 32, 64, 128)


@pytest.mark.perf
def test_ext_fused_sweep_speedup(benchmark):
    """The fused ``cache_sweep`` must be >= 3x faster than re-simulating
    every grid configuration — and bit-identical to it."""
    from repro.workloads.kvreuse import run_kvreuse

    events = run_kvreuse("sessions", scale=24, seed=0).events
    grid = sweep_configs(lines=(64,), sets=(64,), ways=SWEEP_WAYS)

    with Timer() as t_naive:
        naive = [simulate_cache(events, cfg) for cfg in grid]

    def fused():
        return sweep_finalize(sweep_update(SweepPartial(grid), events), grid)

    with Timer() as t_fused:
        rows = once(benchmark, fused)

    for row, ref in zip(rows, naive):
        assert row.n_accesses == ref.n_accesses
        assert row.n_hits == ref.n_hits
        assert row.hit_ratio == ref.hit_ratio

    speedup = t_naive.elapsed / max(t_fused.elapsed, 1e-9)
    lines = [
        "fused cache sweep vs per-config re-simulation, kvreuse:sessions trace",
        f"events:             {len(events):,}",
        f"configurations:     {len(grid)} (64 B lines, 64 sets, ways {SWEEP_WAYS})",
        f"per-config total:   {t_naive.elapsed:8.3f} s",
        f"fused sweep:        {t_fused.elapsed:8.3f} s",
        f"speedup:            {speedup:8.2f}x",
        "",
    ]
    header = f"{'size':>8} {'ways':>5} {'hit ratio':>10} {'predicted':>10}"
    lines.append(header)
    for row in rows:
        lines.append(
            f"{row.size_bytes:>8} {row.ways:>5} "
            f"{100 * row.hit_ratio:>9.1f}% {100 * row.predicted_hit_ratio:>9.1f}%"
        )
    save_result("ext_cache_sweep_speedup", "\n".join(lines))
    assert speedup >= 3.0, f"expected >= 3x from fusion, got {speedup:.2f}x"
