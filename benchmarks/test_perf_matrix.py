"""Performance: fleet-scale matrix runs, cold vs warm (docs/matrix.md).

The corpus layer's acceptance criterion, pinned: over a directory
corpus of >= 4 archives, a warm `run_matrix` (every cell served from
the content-addressed artifact store) is >= 5x faster than the cold
run that populated it, and the aggregated corpus payload is
*byte-identical* — the cache can speed a verdict up but can never
change it. The journal's per-cell ``matrix-cell`` lines are the
cache-hit evidence (``mode: "cached"`` for every warm cell).

Trace size per cell is tunable via ``MEMGAZE_BENCH_EVENTS`` (total
across cells, default 600K). Set ``MEMGAZE_BENCH_JOURNAL`` to a path
to keep the journal — CI uploads it as a build artifact.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from benchmarks.conftest import save_result
from repro._util.timers import Timer
from repro.core.corpus import CorpusSpec
from repro.core.matrix import run_matrix
from repro.core.report import payload_json
from repro.obs.journal import RunJournal, read_journal
from repro.obs.metrics import MetricsRegistry
from repro.trace.event import make_events
from repro.trace.tracefile import TraceMeta, write_trace

N_CELLS = 4
N_TOTAL = int(os.environ.get("MEMGAZE_BENCH_EVENTS", 600_000))
N_PER_CELL = max(N_TOTAL // N_CELLS, 10_000)


def _cell_trace(n: int, seed: int):
    """One cell's synthetic mixed-pattern trace (distinct per seed)."""
    rng = np.random.default_rng(seed)
    idx = np.arange(n, dtype=np.uint64)
    strided = 0x10_0000 + (idx * 8) % (1 << 22)
    irregular = 0x200_0000 + rng.integers(0, 1 << 20, n).astype(np.uint64) * 8
    cls = rng.choice([0, 1, 2], n, p=[0.1, 0.5, 0.4]).astype(np.uint8)
    ev = make_events(
        ip=(idx % 64) + 1,
        addr=np.where(cls == 1, strided, irregular),
        cls=cls,
        n_const=np.where(rng.random(n) < 0.05, 3, 0).astype(np.uint16),
        fn=(idx % 8).astype(np.uint32),
    )
    sid = (np.arange(n, dtype=np.int64) // 1024).astype(np.int32)
    return ev, sid


def _corpus_dir(root) -> CorpusSpec:
    root.mkdir()
    for i in range(N_CELLS):
        ev, sid = _cell_trace(N_PER_CELL, seed=100 + i)
        meta = TraceMeta(
            module=f"cell{i}", kind="sampled", period=12_000,
            buffer_capacity=1024, n_loads_total=len(ev) * 2,
            n_samples=int(sid[-1]) + 1,
        )
        write_trace(root / f"cell{i}.npz", ev, meta, sid)
    return CorpusSpec.from_directory(root)


@pytest.mark.perf
def test_matrix_warm_vs_cold(tmp_path):
    """Acceptance: a warm matrix run is >= 5x faster, byte-identical."""
    spec = _corpus_dir(tmp_path / "corpus")
    jpath = os.environ.get("MEMGAZE_BENCH_JOURNAL") or (tmp_path / "matrix.jsonl")

    def run():
        journal = RunJournal(jpath)
        with Timer() as t:
            result = run_matrix(
                spec,
                cache_dir=tmp_path / "cache",
                journal=journal,
                metrics=MetricsRegistry(),
            )
        journal.close()
        return result, t.elapsed

    cold, t_cold = run()
    warm, t_warm = run()

    assert set(cold.modes.values()) == {"full"}
    assert set(warm.modes.values()) == {"cached"}
    cold_bytes = payload_json(cold.corpus_payload())
    assert payload_json(warm.corpus_payload()) == cold_bytes

    # journal evidence: the last N_CELLS matrix-cell lines are all cache hits
    cells = [r for r in read_journal(jpath) if r["event"] == "matrix-cell"]
    assert [r["mode"] for r in cells[-N_CELLS:]] == ["cached"] * N_CELLS

    speedup = t_cold / max(t_warm, 1e-9)
    save_result(
        "perf_matrix_warmup",
        f"matrix corpus run: cold vs warm ({N_CELLS} cells, "
        f"{N_PER_CELL:,} events/cell)\n"
        f"cold (scan+store): {t_cold * 1e3:9.1f} ms\n"
        f"warm (cache hits): {t_warm * 1e3:9.1f} ms\n"
        f"speedup:           {speedup:8.1f}x  (floor: 5x)\n"
        f"payload:           {len(cold_bytes):,} bytes, warm == cold",
    )
    assert speedup >= 5.0, f"warm matrix run only {speedup:.1f}x faster"
