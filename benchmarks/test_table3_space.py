"""Table III: space savings of MemGaze's sampled, compressed traces.

Per benchmark the paper reports three 'full' sizes — 'Rec' (what perf
actually kept, after unpredictable 30-50% drops), 'All' (drop-corrected),
'All+' (uncompressed, i.e. with suppressed Constant loads restored) —
against the sampled MemGaze trace, as ratios. Shapes:

* sampled traces are a small percent of full ones (paper: ~1% at O3);
* class-based compression buys ~2x at O0 and ~1.2x at O3;
* 'Rec' understates 'All' by the drop fraction.
"""

from __future__ import annotations

from benchmarks.conftest import APP_SAMPLING, UBENCH_SAMPLING, once, save_result
from repro._util.tables import format_table
from repro.trace.collector import collect_full_trace, collect_sampled_trace
from repro.trace.compress import compression_ratio, decompress_counts
from repro.trace.tracefile import packet_bytes
from repro.workloads.microbench import run_microbench


def _row(name, events_observed, n_loads_total, sampling, seed):
    full = collect_full_trace(events_observed, seed=seed)
    col = collect_sampled_trace(events_observed, n_loads_total, sampling)
    rec_b = packet_bytes(full.events)
    all_b = packet_bytes(events_observed)
    allp_b = 8 * decompress_counts(events_observed)  # uncompressed records
    mg_b = packet_bytes(col.events)
    return {
        "name": name,
        "rec": rec_b,
        "all": all_b,
        "allp": allp_b,
        "memgaze": mg_b,
        "kappa": compression_ratio(events_observed),
        "drop": full.drop_fraction,
    }


def test_table3_space(benchmark, minivite_runs, cc_runs, pagerank_runs, darknet_runs):
    def run():
        rows = []
        for opt in ("O0", "O3"):
            r = run_microbench("str1|irr", n_elems=4096, repeats=60, opt_level=opt)
            rows.append(
                _row(f"ubench-{opt}", r.events_observed, r.n_loads, UBENCH_SAMPLING, 1)
            )
        for v, r in minivite_runs.items():
            rows.append(_row(f"miniVite-{v}", r.events, r.n_loads, APP_SAMPLING, 2))
        for alg, r in cc_runs.items():
            rows.append(_row(f"GAP-{alg}", r.events, r.n_loads, APP_SAMPLING, 3))
        for alg, r in pagerank_runs.items():
            rows.append(_row(f"GAP-{alg}", r.events, r.n_loads, APP_SAMPLING, 4))
        for m, r in darknet_runs.items():
            rows.append(_row(f"Darknet-{m}", r.events, r.n_loads, APP_SAMPLING, 5))
        return rows

    rows = once(benchmark, run)
    table_rows = [
        [
            s["name"],
            f"{s['rec'] / 1024:.0f}K",
            f"{s['all'] / 1024:.0f}K",
            f"{s['allp'] / 1024:.0f}K",
            f"{s['memgaze'] / 1024:.1f}K",
            f"{100 * s['memgaze'] / s['rec']:.2f}",
            f"{100 * s['memgaze'] / s['all']:.2f}",
            f"{100 * s['memgaze'] / s['allp']:.2f}",
        ]
        for s in rows
    ]
    table = format_table(
        ["benchmark", "Rec", "All", "All+", "MemGaze", "%Rec", "%All", "%All+"],
        table_rows,
        title="Table III: trace sizes and ratios",
    )
    save_result("table3_space", table)

    by_name = {s["name"]: s for s in rows}
    # compression: O0 ~2x, O3 ~1.2x (paper SS:VI-C)
    assert 1.7 <= by_name["ubench-O0"]["kappa"] <= 2.3
    assert 1.05 <= by_name["ubench-O3"]["kappa"] <= 1.4
    for s in rows:
        if s["name"].startswith("ubench"):
            # microbench config trades size for short-phase coverage
            # (paper's 16 KiB buffer / 10K period is ~11% too)
            assert s["memgaze"] / s["all"] < 0.25, s["name"]
        else:
            # applications: sampled trace is a small percent of full
            assert s["memgaze"] / s["all"] < 0.05, s["name"]
        # Rec lost the paper's 30-50%
        assert 0.25 <= s["drop"] <= 0.55, s["name"]
        # All+ is never smaller than All
        assert s["allp"] >= s["all"], s["name"]


def test_table3_size_controllability(benchmark, minivite_runs):
    """Trace size is proportional to |sigma| x buffer size (paper SS:VI-C)."""
    from repro.trace.sampler import SamplingConfig

    events = minivite_runs["v1"].events
    n_loads = minivite_runs["v1"].n_loads

    def run():
        sizes = {}
        for cap in (64, 128, 256):
            cfg = SamplingConfig(period=5000, buffer_capacity=cap, fill_jitter=0.0)
            col = collect_sampled_trace(events, n_loads, cfg)
            sizes[cap] = len(col.events)
        return sizes

    sizes = once(benchmark, run)
    assert sizes[128] > 1.8 * sizes[64]
    assert sizes[256] > 1.8 * sizes[128]
    save_result(
        "table3_controllability",
        format_table(
            ["buffer capacity", "sampled records"],
            [[k, v] for k, v in sizes.items()],
            title="Table III (companion): trace size scales with buffer size",
        ),
    )
