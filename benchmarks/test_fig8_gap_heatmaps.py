"""Fig. 8: GAP heatmaps — distributions of access frequency and reuse
distance over (hot-region page, time).

The paper's point: cc vs cc-sv summary statistics are driven by
outliers; the full distributions show cc's accesses concentrate into
fewer, smaller dark bands (more access locality), while the *typical*
reuse-distance behaviour of the two algorithms is comparable.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import APP_SAMPLING, once, save_result
from repro.core.heatmap import access_heatmap, render_heatmap_ascii
from repro.trace.collector import collect_sampled_trace

N_PAGES, N_BINS = 32, 48


def _heatmap(run):
    lo, hi = run.region_extents["cc"]
    col = collect_sampled_trace(run.events, run.n_loads, APP_SAMPLING)
    return access_heatmap(
        col.events, lo, hi - lo, n_pages=N_PAGES, n_bins=N_BINS,
        sample_id=col.sample_id,
    )


def _concentration(counts: np.ndarray) -> float:
    """Fraction of accesses in the top 10% of cells (higher = more
    concentrated = more access locality)."""
    flat = np.sort(counts.ravel())[::-1]
    k = max(1, len(flat) // 10)
    total = flat.sum()
    return float(flat[:k].sum() / total) if total else 0.0


def test_fig8(benchmark, cc_runs):
    def run():
        return {alg: _heatmap(r) for alg, r in cc_runs.items()}

    maps = once(benchmark, run)

    art = []
    for alg, hm in maps.items():
        art.append(f"Fig. 8 ({alg}): access-frequency heatmap (page x time)")
        art.append(render_heatmap_ascii(hm.counts))
        art.append(f"Fig. 8 ({alg}): reuse-distance heatmap (page x time)")
        art.append(render_heatmap_ascii(np.nan_to_num(hm.reuse)))
        art.append("")
    save_result("fig8_gap_heatmaps", "\n".join(art))

    cc, sv = maps["cc"], maps["cc-sv"]
    assert cc.counts.sum() > 0 and sv.counts.sum() > 0
    # cc concentrates accesses into fewer dark bands than cc-sv
    assert _concentration(cc.counts) > _concentration(sv.counts)
    # typical (median-cell) reuse distances are comparable even though
    # the summary means differ — the paper's outlier point
    cc_typ = np.nanmedian(cc.reuse)
    sv_typ = np.nanmedian(sv.reuse)
    assert np.isfinite(cc_typ) and np.isfinite(sv_typ)
    spread = abs(cc_typ - sv_typ) / max(cc_typ, sv_typ, 1.0)
    assert spread < 0.9, f"typical D should be same order: {cc_typ:.2f} vs {sv_typ:.2f}"
    # outliers exist: the cell-wise max well exceeds the typical cell
    assert np.nanmax(cc.reuse) > 2 * max(cc_typ, 0.1)
