"""Shared fixtures for the experiment-reproduction benchmarks.

Every paper table and figure has one bench module. Workload runs are
session-scoped (they are the expensive part); each bench test wraps its
*analysis* step in the pytest-benchmark fixture — that is the part whose
cost the paper's Table II discusses — then asserts the paper's shape and
writes the rendered table to ``benchmarks/results/``.

Scales are reduced relative to the paper (Python event-level simulation;
see DESIGN.md SS:2): graphs default to 2^9-2^10 vertices instead of 2^22,
and the sampled-trace fraction targets the paper's ~1%.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.trace.sampler import SamplingConfig
from repro.workloads.darknet import run_darknet
from repro.workloads.gap.cc import run_cc
from repro.workloads.gap.pagerank import run_pagerank
from repro.workloads.microbench import run_microbench
from repro.workloads.minivite import run_minivite

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: application sampling (paper: 8 KiB buffer -> ~500 addresses per
#: 5M-10M-load period). The ~560-record effective window matters for the
#: reuse analyses: shorter windows cannot observe cross-vertex reuse at
#: all (the R2 blind spot of SS:IV-A). The period is scaled to our
#: smaller runs so dozens of samples still accumulate.
APP_SAMPLING = SamplingConfig(period=12_000, buffer_capacity=1024, seed=0)
#: microbenchmark sampling: small period, large buffer (paper SS:VI:
#: ~10K-load period, 16 KiB buffer yielding ~1150 addresses). The period
#: is prime — standard PMU-sampling practice so the trigger cannot alias
#: with the kernels' loop-phase lengths.
UBENCH_SAMPLING = SamplingConfig(period=9_973, buffer_capacity=2048, seed=0)


def save_result(name: str, text: str) -> None:
    """Persist a rendered table under benchmarks/results/ and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}")


def once(benchmark, fn):
    """Run ``fn`` exactly once under the benchmark fixture.

    Workload generation is deterministic but expensive; one round keeps
    the harness honest about analysis cost without re-running workloads.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture(scope="session")
def minivite_runs():
    return {
        v: run_minivite(v, scale=10, edge_factor=8, seed=0, max_iters=2)
        for v in ("v1", "v2", "v3")
    }


@pytest.fixture(scope="session")
def pagerank_runs():
    return {
        alg: run_pagerank(alg, scale=10, edge_factor=8, seed=0, max_iters=20)
        for alg in ("pr", "pr-spmv")
    }


@pytest.fixture(scope="session")
def cc_runs():
    return {alg: run_cc(alg, scale=10, edge_factor=8, seed=0) for alg in ("cc", "cc-sv")}


@pytest.fixture(scope="session")
def darknet_runs():
    return {m: run_darknet(m, seed=0) for m in ("alexnet", "resnet152")}


@pytest.fixture(scope="session")
def ubench_runs():
    """A representative microbenchmark subset at validation scale
    (hotspots repeated 100x, as in the paper)."""
    specs = ["str1", "str8", "irr", "str4/irr", "str1|irr"]
    return {
        spec: run_microbench(spec, n_elems=4096, repeats=100, seed=0)
        for spec in specs
    }
