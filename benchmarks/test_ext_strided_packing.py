"""Extension: strided-run packing and 32-bit payloads (paper SS:VI-B).

"It may be possible to further reduce overhead with 32-bit packets and
additional compression that reduces ptwrites for Strided loads." This
bench measures how much each buys on the paper's workload spectrum:
darknet (pure strided -> packs almost entirely), miniVite (mixed), and a
pointer-chase microbenchmark (nothing to pack) — verifying losslessness
along the way.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import once, save_result
from repro._util.tables import format_table
from repro.trace.packing import pack_strided_runs, packed_bytes, unpack_strided_runs
from repro.trace.tracefile import packet_bytes
from repro.workloads.microbench import run_microbench


def test_ext_strided_packing(benchmark, darknet_runs, minivite_runs):
    ub = run_microbench("irr", n_elems=2048, repeats=20)
    cases = {
        "Darknet-alexnet": darknet_runs["alexnet"].events,
        "miniVite-v2": minivite_runs["v2"].events,
        "miniVite-v1": minivite_runs["v1"].events,
        "ubench-irr": ub.events_observed,
    }

    def work():
        out = {}
        for name, events in cases.items():
            # pack a bounded prefix so the bench stays fast
            ev = events[:300_000]
            packed = pack_strided_runs(ev)
            out[name] = {
                "events": ev,
                "packed": packed,
                "raw_b": packet_bytes(ev),
                "packed_b": packed_bytes(packed),
                "packed32_b": packed_bytes(packed, payload32=True),
            }
        return out

    stats = once(benchmark, work)
    rows = [
        [
            name,
            f"{s['packed'].packing_ratio:.1f}x",
            f"{s['raw_b'] / max(1, s['packed_b']):.1f}x",
            f"{s['raw_b'] / max(1, s['packed32_b']):.1f}x",
        ]
        for name, s in stats.items()
    ]
    table = format_table(
        ["workload", "record packing", "byte saving", "+32-bit payloads"],
        rows,
        title="Extension: strided-run packing (lossless) per workload",
    )
    save_result("ext_strided_packing", table)

    # losslessness on the mixed workload
    mixed = stats["miniVite-v2"]
    assert np.array_equal(
        unpack_strided_runs(mixed["packed"]), mixed["events"]
    )
    # the strided-heavy workloads pack hard; pointer chasing does not
    assert stats["Darknet-alexnet"]["packed"].packing_ratio > 5
    assert stats["miniVite-v2"]["packed"].packing_ratio > 1.3
    assert stats["ubench-irr"]["packed"].packing_ratio < 1.5
    # 32-bit payloads always help further
    for name, s in stats.items():
        assert s["packed32_b"] < s["packed_b"], name
