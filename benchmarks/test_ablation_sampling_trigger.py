"""Ablation: uniform-in-loads vs uniform-in-time sampling triggers.

Paper SS:III-C footnote 2: the sample trigger should be a hardware
counter of memory accesses; sampling in time decreases accuracy when the
load rate changes over time. This bench builds a two-phase workload — a
load-dense irregular phase and a load-sparse strided phase that takes
most of the wall-clock — and shows the load trigger samples accesses
proportionally while the time trigger oversamples the slow phase and
skews every footprint-mix estimate.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import once, save_result
from repro._util.tables import format_table
from repro.trace.collector import collect_sampled_trace
from repro.trace.event import LoadClass, make_events
from repro.trace.sampler import SamplingConfig


def _two_phase_stream(n_each=200_000, slow_factor=9, seed=0):
    """Phase A: irregular, 1 load per cycle. Phase B: strided, 1 load per
    ``slow_factor+1`` cycles (compute-bound)."""
    rng = np.random.default_rng(seed)
    addr_a = 0x10_0000 + rng.integers(0, 1 << 16, n_each) * 8
    addr_b = 0x80_0000 + (np.arange(n_each) * 8) % (1 << 16)
    ev = make_events(
        ip=1,
        addr=np.concatenate([addr_a, addr_b]),
        cls=np.concatenate(
            [np.full(n_each, int(LoadClass.IRREGULAR)), np.full(n_each, int(LoadClass.STRIDED))]
        ),
    )
    # wall-clock-ish timeline: phase B's loads are spread out
    cycles_a = np.arange(n_each)
    cycles_b = n_each + np.arange(n_each) * (slow_factor + 1)
    timeline = np.concatenate([cycles_a, cycles_b])
    return ev, timeline


def test_ablation_sampling_trigger(benchmark):
    ev, timeline = _two_phase_stream()
    true_irr_frac = 0.5  # by construction: equal access counts per phase

    def run():
        out = {}
        cfg_loads = SamplingConfig(period=10_000, buffer_capacity=512, seed=0)
        col = collect_sampled_trace(ev, config=cfg_loads)
        out["loads"] = (col.events["cls"] == int(LoadClass.IRREGULAR)).mean()
        cfg_time = SamplingConfig(
            period=25_000, buffer_capacity=512, seed=0, trigger="time"
        )
        col_t = collect_sampled_trace(ev, config=cfg_time, load_rate=timeline)
        out["time"] = (col_t.events["cls"] == int(LoadClass.IRREGULAR)).mean()
        return out

    fracs = once(benchmark, run)
    table = format_table(
        ["trigger", "sampled irregular fraction", "true fraction", "bias"],
        [
            [name, f"{frac:.3f}", f"{true_irr_frac:.3f}", f"{abs(frac - true_irr_frac):.3f}"]
            for name, frac in fracs.items()
        ],
        title="Ablation: load-count trigger vs time trigger under bursty load rates",
    )
    save_result("ablation_sampling_trigger", table)

    bias_loads = abs(fracs["loads"] - true_irr_frac)
    bias_time = abs(fracs["time"] - true_irr_frac)
    assert bias_loads < 0.05, "load trigger stays unbiased"
    assert bias_time > 2 * bias_loads, "time trigger skews toward the slow phase"
    # the time trigger undersamples the load-dense irregular phase
    assert fracs["time"] < true_irr_frac
