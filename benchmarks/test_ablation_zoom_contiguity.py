"""Ablation: contiguous hot regions vs hot-blocks-only filtering.

Paper SS:IV-C2: a hot region is a maximal run of *contiguous* pages; cold
gaps inside the run are kept so a leaf captures a whole object and its
reuse distance D reflects the locality of the entire object. "Only
focusing on a region's hot blocks filters all other accesses to the
region, frequently making spatio-temporal locality appear very good."

The bench constructs one object whose accesses alternate between a few
hot lines and a spread of cold lines — the classic shape that fools the
hot-blocks-only filter.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import once, save_result
from repro._util.tables import format_table
from repro.core.reuse import reuse_distances
from repro.core.zoom import ZoomConfig, location_zoom, zoom_leaves
from repro.trace.event import make_events


def _object_stream(n=60_000, seed=0):
    """One 64 KiB object: every other access hits 4 hot lines, the rest
    sweep the whole object."""
    rng = np.random.default_rng(seed)
    base = 0x200000
    hot = base + rng.integers(0, 4, n // 2) * 64
    cold = base + (np.arange(n // 2) * 64) % 65536
    addr = np.empty(n, dtype=np.uint64)
    addr[0::2] = hot
    addr[1::2] = cold
    return make_events(ip=1, addr=addr, cls=2), base


def test_ablation_zoom_contiguity(benchmark):
    ev, base = _object_stream()

    def run():
        d = reuse_distances(ev, 64)
        addr = ev["addr"].astype(np.int64)
        # contiguous-region view: all accesses to the object
        region_hits = d[d >= 0]
        d_region = float(region_hits.mean())
        # hot-blocks-only view: keep the 10% hottest lines, recompute D
        lines, counts = np.unique(addr // 64, return_counts=True)
        hot_lines = set(lines[np.argsort(counts)][-max(1, len(lines) // 10) :])
        mask = np.isin(addr // 64, list(hot_lines))
        d_hot = reuse_distances(ev[mask], 64)
        d_hot_mean = float(d_hot[d_hot >= 0].mean())
        # and the zoom tree keeps the object in one leaf
        root = location_zoom(ev, ZoomConfig(page_size=4096, min_region_bytes=16384))
        leaves = zoom_leaves(root, min_pct=50)
        return d_region, d_hot_mean, leaves

    d_region, d_hot_mean, leaves = once(benchmark, run)
    table = format_table(
        ["view", "mean D"],
        [
            ["whole contiguous object (paper)", f"{d_region:.2f}"],
            ["hot blocks only (ablation)", f"{d_hot_mean:.2f}"],
        ],
        title="Ablation: hot-blocks-only filtering makes locality look falsely good",
    )
    save_result("ablation_zoom_contiguity", table)

    # the filtered view underestimates reuse distance dramatically
    assert d_hot_mean < 0.25 * d_region
    # the zoom keeps the whole object as one (or few) leaf regions
    assert leaves, "zoom found no dominant region"
    span = max(l.end for l in leaves) - min(l.base for l in leaves)
    assert span >= 60_000, "contiguous region covers the whole object"
