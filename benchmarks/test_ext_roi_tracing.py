"""Extension: region-of-interest tracing with PT hardware guards.

Paper SS:II: a hotspot pre-pass defines a region of interest; PT's
hardware guards then limit tracing to it without re-instrumentation.
This bench runs the full workflow on miniVite — coarse profile, ROI
selection, guarded collection — and measures both sides of the trade:

* the guarded trace is much smaller (and the overhead model's continuous
  tracing cost drops accordingly, since masked ptwrites retire cheaply);
* analysis *inside* the ROI is unchanged: the hot functions' diagnostics
  match the unguarded trace's.
"""

from __future__ import annotations

from benchmarks.conftest import APP_SAMPLING, once, save_result
from repro._util.tables import format_table
from repro.core.hotspot import find_hotspots, roi_from_hotspots
from repro.core.windows import code_windows
from repro.trace.collector import collect_sampled_trace
from repro.trace.guards import apply_guards


def test_ext_roi_tracing(benchmark, minivite_runs):
    run = minivite_runs["v1"]

    def work():
        # 1. coarse hotspot pre-pass on a cheap (sparse) sample
        pre = collect_sampled_trace(run.events, run.n_loads, APP_SAMPLING)
        # focus on the top two hot functions (the paper's example limits
        # tracing to the modularity hotspot, excluding graph generation)
        hotspots = find_hotspots(pre.events, run.fn_names, coverage=0.8)[:2]
        roi = roi_from_hotspots(hotspots, run.events)
        # 2. guarded collection
        guarded, n_suppressed = apply_guards(run.events, roi)
        col_all = collect_sampled_trace(run.events, run.n_loads, APP_SAMPLING)
        col_roi = collect_sampled_trace(guarded, run.n_loads, APP_SAMPLING)
        # 3. analyze both
        cw_all = code_windows(col_all.events, fn_names=run.fn_names)
        cw_roi = code_windows(col_roi.events, fn_names=run.fn_names)
        return hotspots, roi, guarded, n_suppressed, cw_all, cw_roi

    hotspots, roi, guarded, n_suppressed, cw_all, cw_roi = once(benchmark, work)

    hot_names = [h.function for h in hotspots]
    rows = [
        [h.function, f"{100 * h.share:.1f}%", "yes" if h.function in cw_roi else "no"]
        for h in hotspots
    ]
    table = format_table(
        ["hotspot", "load share", "in guarded trace"],
        rows,
        title=(
            "Extension: ROI tracing — guards keep "
            f"{len(guarded):,}/{len(run.events):,} records "
            f"({n_suppressed:,} ptwrites masked by hardware)"
        ),
    )
    save_result("ext_roi_tracing", table)

    # guards cut the record stream substantially
    assert len(guarded) < 0.95 * len(run.events)
    assert n_suppressed > 0
    # every chosen hotspot is still observed under guards
    for name in hot_names:
        assert name in cw_roi, name
    # ROI functions' scale-free diagnostics agree between guarded and
    # full traces, while the guarded trace observes MORE of the ROI per
    # sample (the buffer holds only ROI records — that is the payoff)
    for name in hot_names:
        a, b = cw_all.get(name), cw_roi.get(name)
        if a is None or a.A_obs < 500:
            continue
        assert b.A_obs >= a.A_obs, name
        assert abs(b.dF - a.dF) < 0.15, name
        assert abs(b.F_str_pct - a.F_str_pct) < 15, name
    # non-ROI functions are absent from the guarded trace
    cold = set(cw_all) - set(hot_names)
    assert cold & set(cw_roi) == set() or all(
        cw_roi[f].A_obs == 0 for f in cold & set(cw_roi)
    )
