"""Ablation: buffer size / period sweep — trace size vs analysis error.

Paper SS:VI-C: "The size is controllable by changing the sample buffer
size and the sampling period." This bench sweeps both knobs over one
workload and maps the trade-off: larger buffers / shorter periods cost
proportionally more trace bytes and buy lower windowed-metric error.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import once, save_result
from repro._util.tables import format_table
from repro.core.histograms import mape, window_histogram
from repro.trace.collector import collect_sampled_trace
from repro.trace.sampler import SamplingConfig
from repro.trace.tracefile import packet_bytes
from repro.workloads.microbench import run_microbench

SIZES = [8, 16, 32, 64]


def test_ablation_buffer_sweep(benchmark):
    r = run_microbench("str4/irr", n_elems=4096, repeats=100, seed=0)
    _, full_hist = window_histogram(r.events_observed, "F", sizes=SIZES)

    def run():
        rows = []
        for period, cap in [
            (40_000, 256),
            (20_000, 256),
            (10_000, 256),
            (10_000, 512),
            (10_000, 1024),
            (5_000, 1024),
        ]:
            cfg = SamplingConfig(period=period, buffer_capacity=cap, seed=3)
            col = collect_sampled_trace(r.events_observed, r.n_loads, cfg)
            _, hist = window_histogram(
                col.events, "F", sizes=SIZES, sample_id=col.sample_id
            )
            err = mape(hist, full_hist)
            rows.append(
                {
                    "period": period,
                    "cap": cap,
                    "bytes": packet_bytes(col.events),
                    "frac": len(col.events) / len(r.events_observed),
                    "mape": err,
                }
            )
        return rows

    rows = once(benchmark, run)
    table = format_table(
        ["period", "buffer", "trace bytes", "trace %", "MAPE F"],
        [
            [
                s["period"],
                s["cap"],
                s["bytes"],
                f"{100 * s['frac']:.1f}%",
                f"{s['mape']:.2f}" if np.isfinite(s["mape"]) else "-",
            ]
            for s in rows
        ],
        title="Ablation: buffer/period sweep — trace size vs histogram error",
    )
    save_result("ablation_buffer_sweep", table)

    # trace size scales ~linearly with capacity at fixed period...
    by_key = {(s["period"], s["cap"]): s for s in rows}
    assert by_key[(10_000, 1024)]["bytes"] > 3.0 * by_key[(10_000, 256)]["bytes"]
    # ...and inversely with period at fixed capacity
    assert by_key[(10_000, 256)]["bytes"] > 3.0 * by_key[(40_000, 256)]["bytes"]
    # every configuration keeps MAPE inside the paper's bound, and the
    # densest configuration is at least as accurate as the sparsest
    finite = [s for s in rows if np.isfinite(s["mape"])]
    assert all(s["mape"] < 25 for s in finite)
    densest = by_key[(5_000, 1024)]["mape"]
    sparsest = by_key[(40_000, 256)]["mape"]
    assert densest <= sparsest + 1.0
