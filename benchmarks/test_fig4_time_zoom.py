"""Fig. 4: multi-resolution execution-time analysis (the interval tree).

Fig. 4 is the paper's methodological figure: an execution interval tree
built bottom-up from samples, zoomed along the "hot interval with poor
reuse" path, with intra-sample splits and per-function leaf nodes below
the samples. This bench builds the tree over a miniVite run and checks
the figure's structural claims:

* inter-sample nodes carry rho-scaled *estimates*, intra-sample nodes
  exact metrics;
* the default zoom descends monotonically into intervals whose
  accesses-x-growth criterion is at least their siblings';
* the zoom lands inside the modularity phase (the hotspot, not graph
  generation);
* function leaf nodes attribute each sample's accesses to procedures.
"""

from __future__ import annotations

from benchmarks.conftest import APP_SAMPLING, once, save_result
from repro._util.tables import format_table
from repro.core.interval_tree import ExecutionIntervalTree
from repro.trace.collector import collect_sampled_trace
from repro.trace.compress import sample_ratio_from


def test_fig4_time_zoom(benchmark, minivite_runs):
    run = minivite_runs["v1"]

    def work():
        col = collect_sampled_trace(run.events, run.n_loads, APP_SAMPLING)
        tree = ExecutionIntervalTree.build(
            col,
            rho=sample_ratio_from(col),
            intra_splits=1,
            fn_names=run.fn_names,
        )
        return col, tree, tree.zoom()

    col, tree, path = once(benchmark, work)

    rows = [
        [
            i,
            node.level,
            f"[{node.t_start:,}, {node.t_end:,})",
            f"{node.diagnostics.A_est:,.0f}",
            f"{node.diagnostics.dF:.3f}",
            "exact" if node.exact else "estimate",
        ]
        for i, node in enumerate(path)
    ]
    table = format_table(
        ["depth", "level", "interval (loads)", "A (est)", "dF", "kind"],
        rows,
        title="Fig. 4: zoom path through the execution interval tree",
    )
    save_result("fig4_time_zoom", table)

    # structure: root estimates, sample leaves exact
    assert not tree.root.exact
    assert all(s.exact for s in tree.samples)
    # every non-empty sample becomes a leaf (trailing triggers may be empty)
    assert 0 < len(tree.samples) <= col.n_samples
    # intra-sample splits + function leaves hang below samples
    sample = tree.samples[0]
    assert len(sample.children) == 2
    assert all(c.exact for c in sample.children)
    fn_leaves = [g for c in sample.children for g in c.children]
    assert all(leaf.function is not None for leaf in fn_leaves)

    # the zoom path descends into the children it claims are hottest
    crit = lambda n: n.diagnostics.dF * n.diagnostics.A_implied
    for parent, child in zip(path, path[1:]):
        assert child in parent.children
        assert crit(child) == max(crit(c) for c in parent.children)

    # the zoom found an interval with genuinely poor reuse: its footprint
    # growth is well above the whole trace's (here it lands on the
    # graph-generation phase — pure streaming, dF ~ 1.0, exactly the
    # "many accesses, poor reuse" target of Fig. 4's red path)
    sample_node = next(n for n in path if n.level == 0)
    assert sample_node.diagnostics.dF > 1.5 * tree.root.diagnostics.dF

    # estimates at the root cover the whole population of accesses
    assert tree.root.diagnostics.A_est == (
        sample_ratio_from(col) * (len(col.events) + col.events["n_const"].sum())
    )
