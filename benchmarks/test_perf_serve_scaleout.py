"""Performance: multi-tenant serve scale-out (session sharding).

The sharded daemon's claim is not raw CPU parallelism — on a one-core
box there is none to be had — but the end of *head-of-line blocking*:
one tenant's slow queries must no longer stall every other tenant, the
way they did under the single serialized executor. This bench drives a
mixed multi-session load (concurrent submitters and queriers) with one
deliberate straggler tenant whose every query stalls its shard worker
(a ``query_hook`` sleep standing in for an expensive full-report query),
and measures the aggregate light-tenant query throughput at 1 shard
worker vs 4, plus p50/p99 latency and the shed count.

At one worker the straggler serializes in front of everyone; at four
the straggler's shard stalls alone (tenant names are routed with
:func:`repro.serve.shard.route_session`, so the bench pins the light
tenants off the straggler's worker). The gate is the ratio of the two
runs in the same process, so it holds on oversubscribed machines.

Scale knobs (env): ``MEMGAZE_BENCH_SERVE_TENANTS`` light tenants (3),
``MEMGAZE_BENCH_SERVE_CHUNKS`` chunks streamed per tenant (6),
``MEMGAZE_BENCH_SERVE_STALL`` straggler stall seconds per query (0.15).
Set ``MEMGAZE_BENCH_JOURNAL`` to journal both runs (CI uploads it).
"""

from __future__ import annotations

import asyncio
import os
import threading
import time

import numpy as np
import pytest

from benchmarks.conftest import save_result
from repro._util.timers import Timer
from repro.obs.journal import RunJournal
from repro.obs.metrics import MetricsRegistry
from repro.serve.client import ServeBusy, ServeClient
from repro.serve.daemon import ServeConfig, TraceServer
from repro.serve.shard import route_session
from repro.trace.event import LoadClass, make_events
from repro.trace.tracefile import TraceMeta

pytestmark = pytest.mark.perf

N_TENANTS = int(os.environ.get("MEMGAZE_BENCH_SERVE_TENANTS", 3))
N_CHUNKS = int(os.environ.get("MEMGAZE_BENCH_SERVE_CHUNKS", 6))
STALL_S = float(os.environ.get("MEMGAZE_BENCH_SERVE_STALL", 0.15))
PER_CHUNK = 200
PASSES = ["diagnostics", "captures"]
STRAGGLER = "straggler"


def _chunks(seed: int):
    """``N_CHUNKS`` deterministic event chunks for one tenant."""
    rng = np.random.default_rng(seed)
    n = N_CHUNKS * PER_CHUNK
    kind = np.arange(n) % 2
    addr = np.where(
        kind == 0,
        0x1000_0000 + (np.arange(n) * 8) % 4096,
        0x2000_0000 + rng.integers(0, 512, n) * 8,
    )
    cls = np.where(kind == 0, int(LoadClass.STRIDED), int(LoadClass.IRREGULAR))
    events = make_events(ip=0x40_0000 + kind * 4, addr=addr, cls=cls)
    sid = (np.arange(n, dtype=np.int64) // PER_CHUNK).astype(np.int32)
    return [
        (events[i * PER_CHUNK : (i + 1) * PER_CHUNK],
         sid[i * PER_CHUNK : (i + 1) * PER_CHUNK])
        for i in range(N_CHUNKS)
    ]


def _meta(name: str) -> TraceMeta:
    return TraceMeta(
        module=name, kind="sampled", period=1000, buffer_capacity=PER_CHUNK,
        n_loads_total=N_CHUNKS * PER_CHUNK * 2, n_samples=N_CHUNKS,
    )


def _light_tenants(serve_workers: int) -> list[str]:
    """Tenant names that never share the straggler's shard (when >1)."""
    bad = route_session(STRAGGLER, serve_workers)
    names, i = [], 0
    while len(names) < N_TENANTS:
        name = f"tenant{i}"
        i += 1
        if serve_workers == 1 or route_session(name, serve_workers) != bad:
            names.append(name)
    return names


class _Harness:
    """A TraceServer on a private loop in a thread (bench-local copy)."""

    def __init__(self, config: ServeConfig, **kwargs) -> None:
        self.server = TraceServer(config, **kwargs)
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._started = threading.Event()

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)

        async def main() -> None:
            await self.server.start()
            self._started.set()
            await self.server.serve_until_stopped()

        try:
            self._loop.run_until_complete(main())
        finally:
            self._started.set()
            self._loop.close()

    def start(self) -> int:
        self._thread.start()
        assert self._started.wait(timeout=60), "server never booted"
        return self.server.port

    def stop(self) -> None:
        if self._thread.is_alive():
            try:
                self._loop.call_soon_threadsafe(self.server._stopping.set)
            except RuntimeError:
                pass
        self._thread.join(timeout=120)
        for w in self.server.workers:
            w.kill()
        assert not self._thread.is_alive(), "server did not shut down"


def _append_retrying(client, name, events, sid, sheds: list) -> None:
    while True:
        try:
            client.append(name, events, sid)
            return
        except ServeBusy as busy:
            sheds.append(1)
            time.sleep(busy.retry_ms / 1000.0)


def _tenant_thread(port, name, seed, latencies, sheds, errors) -> None:
    """One light tenant: stream chunks, query after each (a submitter
    and a querier on the same session — FIFO makes the query see every
    chunk appended so far)."""
    try:
        with ServeClient(port=port) as c:
            c.open(name, _meta(name))
            for k, (events, sid) in enumerate(_chunks(seed), start=1):
                _append_retrying(c, name, events, sid, sheds)
                with Timer() as t:
                    info, _ = c.query(name, PASSES)
                latencies.append(t.elapsed)
                assert info["n_chunks"] == k
            info = c.close_session(name)
            assert info["n_chunks"] == N_CHUNKS
    except BaseException as exc:
        errors.append(exc)


def _straggler_thread(port, stop: threading.Event, errors) -> None:
    """The noisy neighbor: back-to-back stalling queries until told off."""
    try:
        with ServeClient(port=port) as c:
            c.open(STRAGGLER, _meta(STRAGGLER))
            events, sid = _chunks(seed=999)[0]
            _append_retrying(c, STRAGGLER, events, sid, [])
            while not stop.is_set():
                c.query(STRAGGLER, PASSES)
            c.close_session(STRAGGLER)
    except BaseException as exc:
        errors.append(exc)


def _run_load(tmp_path, serve_workers: int, journal) -> dict:
    """One full mixed-load run; returns the aggregate numbers."""
    stall = STALL_S

    def query_hook(name, passes):  # inside the owning worker process
        if name == STRAGGLER:
            time.sleep(stall)

    metrics = MetricsRegistry()
    config = ServeConfig(
        root=tmp_path / f"state-{serve_workers}w",
        queue_size=64,
        session_queue_size=16,
        serve_workers=serve_workers,
    )
    harness = _Harness(
        config, journal=journal, metrics=metrics, query_hook=query_hook
    )
    port = harness.start()
    try:
        errors: list = []
        stop = threading.Event()
        strag = threading.Thread(target=_straggler_thread, args=(port, stop, errors))
        strag.start()
        latencies: list[float] = []
        sheds: list[int] = []
        tenants = [
            threading.Thread(
                target=_tenant_thread,
                args=(port, name, 100 + i, latencies, sheds, errors),
            )
            for i, name in enumerate(_light_tenants(serve_workers))
        ]
        with Timer() as t:
            for th in tenants:
                th.start()
            for th in tenants:
                th.join(timeout=600)
        stop.set()
        strag.join(timeout=600)
        for exc in errors:
            raise exc
    finally:
        harness.stop()

    n_queries = len(latencies)
    ms = np.asarray(latencies) * 1e3
    return {
        "workers": serve_workers,
        "elapsed": t.elapsed,
        "qps": n_queries / t.elapsed,
        "p50": float(np.percentile(ms, 50)),
        "p99": float(np.percentile(ms, 99)),
        "sheds": int(metrics.counter("serve.shed").value),
        "n_queries": n_queries,
    }


def test_serve_scaleout_straggler_isolation(tmp_path):
    """Acceptance: >= 2x aggregate light-tenant query throughput at 4
    shard workers vs 1 under the mixed load with a straggler tenant."""
    journal_path = os.environ.get("MEMGAZE_BENCH_JOURNAL")
    journal = RunJournal(journal_path) if journal_path else None

    runs = [_run_load(tmp_path, w, journal) for w in (1, 4)]
    one, four = runs
    speedup = four["qps"] / max(one["qps"], 1e-9)

    if journal is not None:
        for r in runs:
            journal.emit("serve-scaleout-run", **r)
        journal.emit("serve-scaleout-speedup", speedup=speedup)
        journal.close()

    rows = [
        "serve scale-out: straggler isolation under mixed multi-session load "
        f"(cpus: {os.cpu_count()})",
        f"light tenants: {N_TENANTS} (append+query x{N_CHUNKS}, "
        f"{PER_CHUNK} events/chunk); straggler: {STALL_S:.2f}s stall/query",
        f"{'workers':>8} {'light q/s':>10} {'p50 ms':>9} {'p99 ms':>9} "
        f"{'sheds':>6} {'elapsed':>8}",
    ]
    for r in runs:
        rows.append(
            f"{r['workers']:>8} {r['qps']:>10.2f} {r['p50']:>9.1f} "
            f"{r['p99']:>9.1f} {r['sheds']:>6} {r['elapsed']:>7.2f}s"
        )
    rows.append(
        f"aggregate light-query speedup, 4w vs 1w: {speedup:.2f}x  (floor: 2x)"
    )
    save_result("perf_serve_scaleout", "\n".join(rows))

    assert speedup >= 2.0, f"expected >= 2x scale-out speedup, got {speedup:.2f}x"
