"""Table V: miniVite spatio-temporal reuse of hot memory (64 B blocks).

The location analysis names three hot objects: the *map* (hash table),
the *remote edges of local vertices* (CSR targets), and the other
objects reached from buildMap's caller. Shapes:

* all three regions receive a meaningful share of accesses;
* the map is the most intensely reused object (highest accesses/block);
* v3's right-sized map improves (lowers) reuse distance over v2;
* the hash-table redesign changes D on the map region while the graph
  region's D ordering v1 > v2/v3 reflects fewer irregular interleavings.
"""

from __future__ import annotations

from benchmarks.conftest import APP_SAMPLING, once, save_result
from repro.core.reuse import region_reuse
from repro.core.zoom import ZoomRegion
from repro.core.report import render_region_table
from repro.trace.collector import collect_sampled_trace

OBJECTS = {
    "map (hash table)": ("map",),
    "remote edges": ("graph-targets",),
    "other objs (comm)": ("comm",),
}


def _region_stats(run, labels, block=64):
    lo = min(run.region_extents[l][0] for l in labels if l in run.region_extents)
    hi = max(run.region_extents[l][1] for l in labels if l in run.region_extents)
    col = collect_sampled_trace(run.events, run.n_loads, APP_SAMPLING)
    d_mean, d_max, a = region_reuse(
        col.events, lo, hi - lo, block=block, sample_id=col.sample_id
    )
    n_blocks = max(1, (hi - lo) // block)
    region = ZoomRegion(
        base=lo,
        size=hi - lo,
        depth=0,
        n_accesses=a,
        pct_of_total=100 * a / max(1, len(col.events)),
        D_mean=d_mean,
        D_max=d_max,
        n_blocks=n_blocks,
        accesses_per_block=a / n_blocks,
    )
    return region


def test_table5(benchmark, minivite_runs):
    def run():
        out = {}
        for v, r in minivite_runs.items():
            objects = dict(OBJECTS)
            if "map-nodes" in r.region_extents:
                # v1's map object spans bucket array + node chunks
                objects["map (hash table)"] = ("map", "map-nodes")
            out[v] = {
                name: _region_stats(r, labels) for name, labels in objects.items()
            }
        return out

    stats = once(benchmark, run)
    blocks = []
    for v, regions in stats.items():
        blocks.append(
            render_region_table(
                list(regions.items()),
                title=f"Table V ({v}): spatio-temporal reuse of hot memory (64 B)",
            )
        )
    save_result("table5_minivite_regions", "\n\n".join(blocks))

    for v, regions in stats.items():
        m = regions["map (hash table)"]
        edges = regions["remote edges"]
        assert m.n_accesses > 0 and edges.n_accesses > 0, v
        # the map is the hottest object per block (paper: 72-155 vs ~4)
        assert m.accesses_per_block > edges.accesses_per_block, v

    # the hash-table redesign transforms the map's locality: v1's chained
    # chases have far worse reuse distance than either hopscotch variant
    # (the paper's v2-vs-v3 sub-ordering is within noise at our scale;
    # see EXPERIMENTS.md)
    d_map = {v: stats[v]["map (hash table)"].D_mean for v in stats}
    assert d_map["v1"] > 2 * d_map["v2"]
    assert d_map["v1"] > 2 * d_map["v3"]

    # remote-edges locality improves monotonically v1 -> v2 -> v3
    # (paper: 8.71 -> 4.90 -> 3.32)
    d_edges = {v: stats[v]["remote edges"].D_mean for v in stats}
    assert d_edges["v1"] > d_edges["v2"] >= d_edges["v3"] * 0.9
