"""Table IX: GAP spatio-temporal reuse of hot memory + run times.

Hot objects: *o-score* for PageRank, the *cc* component array for
Connected Components. Shapes:

* pr's in-place (Gauss-Seidel-style) updates give better locality than
  pr-spmv: fewer accesses, lower or equal D, and a faster run;
* cc (Afforest) beats cc-sv on run time by a wide margin even though its
  per-access behaviour looks worse in summary statistics — the paper's
  point that averages mislead (Fig. 8 shows why).
"""

from __future__ import annotations

from benchmarks.conftest import APP_SAMPLING, once, save_result
from repro._util.tables import format_table
from repro.core.reuse import region_reuse
from repro.trace.collector import collect_sampled_trace


def _stats(run, label):
    lo, hi = run.region_extents[label]
    col = collect_sampled_trace(run.events, run.n_loads, APP_SAMPLING)
    d_mean, d_max, a = region_reuse(
        col.events, lo, hi - lo, block=64, sample_id=col.sample_id
    )
    n_blocks = max(1, (hi - lo) // 64)
    return {
        "D": d_mean,
        "maxD": d_max,
        "A": a,
        "A_per_block": a / n_blocks,
        "time": run.sim_time,
    }


def test_table9(benchmark, pagerank_runs, cc_runs):
    def run():
        out = {}
        for alg, r in pagerank_runs.items():
            out[(alg, "o-score")] = _stats(r, "o-score")
        for alg, r in cc_runs.items():
            out[(alg, "cc")] = _stats(r, "cc")
        return out

    stats = once(benchmark, run)
    rows = [
        [
            obj,
            alg,
            f"{s['D']:.2f}",
            s["maxD"],
            s["A"],
            f"{s['A_per_block']:.2f}",
            f"{s['time']:.0f}",
        ]
        for (alg, obj), s in stats.items()
    ]
    table = format_table(
        ["Object", "Algorithm", "Reuse (D)", "Max D", "A", "A/block", "Time"],
        rows,
        title="Table IX: GAP spatio-temporal reuse of hot memory (64 B)",
    )
    save_result("table9_gap_regions", table)

    pr = stats[("pr", "o-score")]
    spmv = stats[("pr-spmv", "o-score")]
    # pr's optimized algorithm: fewer accesses and a faster run
    assert pr["A"] < spmv["A"]
    assert pr["time"] < spmv["time"]
    # its D is no worse (paper: noticeably smaller)
    assert pr["D"] <= spmv["D"] * 1.1

    cc = stats[("cc", "cc")]
    sv = stats[("cc-sv", "cc")]
    # the headline: Afforest wins run time decisively
    assert cc["time"] < 0.7 * sv["time"]
    # both exhibit outlier-heavy distributions: max D far above mean D
    assert cc["maxD"] > 5 * max(cc["D"], 1)
    assert sv["maxD"] > 5 * max(sv["D"], 1)
