"""Performance: analysis-layer throughput (real pytest-benchmark timing).

Table II's point is that analysis cost tracks trace size; these benches
pin the per-operation throughput of the hot analysis primitives on a
standard 100K-record trace so regressions show up in the benchmark
history. Unlike the experiment benches, these run multiple rounds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.reuse import reuse_distances
from repro.core.windows import trace_window_metrics
from repro.core.zoom import location_zoom
from repro.trace.collector import collect_sampled_trace
from repro.trace.event import make_events
from repro.trace.packing import pack_strided_runs
from repro.trace.sampler import SamplingConfig

# every bench here asserts wall-clock behavior via pytest-benchmark:
# excluded from default runs, opted back in by CI with -m perf
pytestmark = pytest.mark.perf

N = 100_000


@pytest.fixture(scope="module")
def stream():
    rng = np.random.default_rng(0)
    addr = np.where(
        np.arange(N) % 2 == 0,
        0x10_0000 + (np.arange(N) * 8) % (1 << 20),
        0x40_0000 + rng.integers(0, 1 << 14, N) * 8,
    )
    cls = np.where(np.arange(N) % 2 == 0, 1, 2)
    return make_events(ip=1 + (np.arange(N) % 5), addr=addr, cls=cls)


@pytest.fixture(scope="module")
def sampled(stream):
    cfg = SamplingConfig(period=2_000, buffer_capacity=512, fill_jitter=0.0)
    return collect_sampled_trace(stream, config=cfg)


def test_perf_collect(benchmark, stream):
    cfg = SamplingConfig(period=2_000, buffer_capacity=512, fill_jitter=0.0)
    col = benchmark(collect_sampled_trace, stream, None, cfg)
    assert col.n_samples == 50


def test_perf_window_metrics(benchmark, stream):
    vals = benchmark(trace_window_metrics, stream, 64)
    assert len(vals) >= N // 64


def test_perf_reuse_distance_sampled(benchmark, sampled):
    d = benchmark(reuse_distances, sampled.events, 64, sampled.sample_id)
    assert len(d) == len(sampled.events)


def test_perf_zoom(benchmark, sampled):
    root = benchmark(location_zoom, sampled.events)
    assert root.n_accesses == len(sampled.events)


def test_perf_packing(benchmark, stream):
    packed = benchmark(pack_strided_runs, stream[:20_000])
    assert packed.n_original == 20_000
