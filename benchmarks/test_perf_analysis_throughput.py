"""Performance: analysis-layer throughput (real pytest-benchmark timing).

Table II's point is that analysis cost tracks trace size; these benches
pin the per-operation throughput of the hot analysis primitives on a
standard 100K-record trace so regressions show up in the benchmark
history. Unlike the experiment benches, these run multiple rounds.

The second half of the module pins the zero-copy + vectorized-kernel
speedups (methodology: docs/performance.md): a cold ``analyze_file`` at
4 workers must be >= 2x faster with the shm handoff + vector kernels
than with the pickle fan-out + Fenwick reference loop, the handoff
itself is microbenchmarked per chunk size, and per-worker scaling rows
are recorded. Trace size for those is tunable via
``MEMGAZE_BENCH_EVENTS``; set ``MEMGAZE_BENCH_JOURNAL`` to journal the
cold-throughput run (CI uploads it as a build artifact).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from benchmarks.conftest import save_result
from repro._util.timers import Timer
from repro.core.parallel import ParallelEngine
from repro.core.reuse import reuse_distances
from repro.core.shm import active_segments, attach_shard, publish_shard
from repro.core.windows import trace_window_metrics
from repro.core.zoom import location_zoom
from repro.obs.journal import RunJournal
from repro.obs.metrics import MetricsRegistry
from repro.trace.collector import collect_sampled_trace
from repro.trace.event import make_events
from repro.trace.packing import pack_strided_runs
from repro.trace.sampler import SamplingConfig
from repro.trace.tracefile import TraceMeta, write_trace

# every bench here asserts wall-clock behavior via pytest-benchmark:
# excluded from default runs, opted back in by CI with -m perf
pytestmark = pytest.mark.perf

N = 100_000


@pytest.fixture(scope="module")
def stream():
    rng = np.random.default_rng(0)
    addr = np.where(
        np.arange(N) % 2 == 0,
        0x10_0000 + (np.arange(N) * 8) % (1 << 20),
        0x40_0000 + rng.integers(0, 1 << 14, N) * 8,
    )
    cls = np.where(np.arange(N) % 2 == 0, 1, 2)
    return make_events(ip=1 + (np.arange(N) % 5), addr=addr, cls=cls)


@pytest.fixture(scope="module")
def sampled(stream):
    cfg = SamplingConfig(period=2_000, buffer_capacity=512, fill_jitter=0.0)
    return collect_sampled_trace(stream, config=cfg)


def test_perf_collect(benchmark, stream):
    cfg = SamplingConfig(period=2_000, buffer_capacity=512, fill_jitter=0.0)
    col = benchmark(collect_sampled_trace, stream, None, cfg)
    assert col.n_samples == 50


def test_perf_window_metrics(benchmark, stream):
    vals = benchmark(trace_window_metrics, stream, 64)
    assert len(vals) >= N // 64


def test_perf_reuse_distance_sampled(benchmark, sampled):
    d = benchmark(reuse_distances, sampled.events, 64, sampled.sample_id)
    assert len(d) == len(sampled.events)


def test_perf_zoom(benchmark, sampled):
    root = benchmark(location_zoom, sampled.events)
    assert root.n_accesses == len(sampled.events)


def test_perf_packing(benchmark, stream):
    packed = benchmark(pack_strided_runs, stream[:20_000])
    assert packed.n_original == 20_000


# --------------------------------------------------------------------------
# zero-copy handoff + vectorized kernels (docs/performance.md)
# --------------------------------------------------------------------------

N_COLD = int(os.environ.get("MEMGAZE_BENCH_EVENTS", 2_000_000))
_SAMPLE_LEN = 1024
_CHUNK = 128 * 1024


def _mixed_trace(n: int, seed: int = 0):
    """Strided sweeps + irregular accesses, ~1K-record samples.

    The footprint is bounded (~300K distinct addresses) so the bench is
    dominated by the per-event work being compared — handoff and reuse
    kernel — not by set-union merges of artificially huge block sets.
    """
    rng = np.random.default_rng(seed)
    idx = np.arange(n, dtype=np.uint64)
    strided = 0x10_0000 + (idx * 8) % (1 << 21)
    irregular = 0x200_0000 + rng.integers(0, 1 << 15, n).astype(np.uint64) * 8
    cls = rng.choice([0, 1, 2], n, p=[0.1, 0.5, 0.4]).astype(np.uint8)
    ev = make_events(
        ip=(idx % 64) + 1,
        addr=np.where(cls == 1, strided, irregular),
        cls=cls,
        fn=(idx % 8).astype(np.uint32),
    )
    sid = (np.arange(n, dtype=np.int64) // _SAMPLE_LEN).astype(np.int32)
    return ev, sid


@pytest.fixture(scope="module")
def cold_archive(tmp_path_factory):
    ev, sid = _mixed_trace(N_COLD)
    meta = TraceMeta(
        module="bench", kind="sampled", period=12_000, buffer_capacity=1024,
        n_loads_total=len(ev) * 2, n_samples=int(sid[-1]) + 1,
    )
    path = tmp_path_factory.mktemp("throughput") / "cold.npz"
    write_trace(path, ev, meta, sid)
    return path


def _fingerprint(fa):
    return (
        fa.n_events, fa.rho, fa.diagnostics, fa.captures, fa.survivals,
        fa.reuse.counts.tolist(), fa.reuse.n_cold, fa.reuse.n_reuse,
        fa.reuse.d_sum, fa.reuse.d_max,
    )


def _cold_run(path, *, workers, shm, reuse_kernel, journal=None, metrics=None):
    """One cold ``analyze_file``: fresh engine, fresh pool, no cache.

    The reuse kernel is selected through the environment so forked pool
    workers inherit it — the same mechanism ``--reuse-kernel`` uses.
    """
    prev = os.environ.get("MEMGAZE_REUSE_KERNEL")
    os.environ["MEMGAZE_REUSE_KERNEL"] = reuse_kernel
    try:
        with ParallelEngine(
            workers=workers, shm=shm, journal=journal, metrics=metrics
        ) as eng:
            with Timer() as t:
                fa = eng.analyze_file(path, chunk_size=_CHUNK)
        return fa, t.elapsed
    finally:
        if prev is None:
            del os.environ["MEMGAZE_REUSE_KERNEL"]
        else:
            os.environ["MEMGAZE_REUSE_KERNEL"] = prev


@pytest.mark.perf
def test_cold_throughput_shm_vector_vs_pickle_fenwick(cold_archive):
    """Acceptance: cold analyze_file at 4 workers is >= 2x faster with
    the shm handoff + vector kernels than with pickle + Fenwick.

    The gate is a ratio of two runs in the same process on the same
    archive, so it holds on oversubscribed machines too: the vector
    kernel's win over the per-event Fenwick loop is algorithmic, and
    both configurations pay the same pool overhead. Bit-identity of the
    two results is asserted alongside the speedup.
    """
    journal_path = os.environ.get("MEMGAZE_BENCH_JOURNAL")
    journal = RunJournal(journal_path) if journal_path else None
    metrics = MetricsRegistry() if journal_path else None

    # warm-up: fault the archive into the page cache so run order
    # cannot bias the comparison
    _cold_run(cold_archive, workers=4, shm=True, reuse_kernel="vector")

    old, t_old = _cold_run(
        cold_archive, workers=4, shm=False, reuse_kernel="fenwick"
    )
    new, t_new = _cold_run(
        cold_archive, workers=4, shm=True, reuse_kernel="vector",
        journal=journal, metrics=metrics,
    )
    assert _fingerprint(new) == _fingerprint(old)
    assert active_segments() == []

    speedup = t_old / max(t_new, 1e-9)
    n = N_COLD
    if journal is not None:
        journal.emit(
            "throughput-run",
            n_events=n,
            pickle_fenwick_seconds=t_old,
            shm_vector_seconds=t_new,
            speedup=speedup,
        )
        journal.record_metrics(metrics)
        journal.close()
    save_result(
        "perf_throughput_cold",
        "cold analyze_file, 4 workers: pickle+fenwick vs shm+vector\n"
        f"events:            {n:,}  (cpus: {os.cpu_count()})\n"
        f"pickle + fenwick:  {t_old:8.2f} s  ({n / t_old / 1e6:6.2f} M ev/s)\n"
        f"shm + vector:      {t_new:8.2f} s  ({n / t_new / 1e6:6.2f} M ev/s)\n"
        f"speedup:           {speedup:8.2f}x  (floor: 2x; bit-identical)",
    )
    assert speedup >= 2.0, f"expected >= 2x cold speedup, got {speedup:.2f}x"


def _recv_pickled(ev, sid):
    # runs in the worker: the arrays arrived through the pickle pipe
    return int(ev["addr"][0]) + len(ev) + len(sid)


def _recv_ref(ref):
    # runs in the worker: only the tiny ShardRef crossed the pipe
    ev, sid = attach_shard(ref)
    return int(ev["addr"][0]) + len(ev) + len(sid)


@pytest.mark.perf
def test_shard_handoff_shm_vs_pickle():
    """Microbenchmark the handoff alone: one chunk, parent to worker.

    The pickle fan-out serializes the arrays, pushes every byte through
    the executor pipe, and deserializes in the worker — three copies,
    all on the dispatch path. The shm handoff copies once into the
    segment; the worker maps the parent's pages and only a ~100-byte
    ``ShardRef`` crosses the pipe. Measured as a real cross-process
    round trip against a warm single-worker pool (best of several reps,
    so pool dispatch latency — common to both — is the floor).
    """
    import multiprocessing as mp
    from concurrent.futures import ProcessPoolExecutor

    rows = ["shard handoff, parent -> pool worker round trip: pickle vs shm",
            f"{'chunk':>12} {'nbytes':>12} {'pickle':>10} {'shm':>10} {'ratio':>7}"]
    reps = 7
    with ProcessPoolExecutor(1, mp_context=mp.get_context("fork")) as pool:
        pool.submit(int, 0).result()  # warm the worker up
        for n in (16_384, 131_072, 1_048_576):
            ev, sid = _mixed_trace(n, seed=1)
            want = int(ev["addr"][0]) + 2 * n
            nbytes = ev.nbytes + sid.nbytes

            t_pickle, t_shm = [], []
            for _ in range(reps):
                with Timer() as t:
                    assert pool.submit(_recv_pickled, ev, sid).result() == want
                t_pickle.append(t.elapsed)

                with Timer() as t:
                    slab = publish_shard(ev, sid)
                    assert pool.submit(_recv_ref, slab.ref(0, n)).result() == want
                t_shm.append(t.elapsed)
                slab.release()

            p, s = min(t_pickle), min(t_shm)
            rows.append(
                f"{n:>12,} {nbytes:>12,} {p * 1e3:>8.2f}ms {s * 1e3:>8.2f}ms "
                f"{p / max(s, 1e-9):>6.1f}x"
            )
    assert active_segments() == []
    save_result("perf_shard_handoff", "\n".join(rows))


@pytest.mark.perf
def test_worker_scaling_analyze_file(cold_archive):
    """Record cold analyze_file throughput at 1/2/4 workers, shm on.

    No speedup gate: scaling is bounded by physical cores and this
    bench also runs on 1-CPU machines (the core count is in the row
    header — compare ratios per machine). Bit-identity across worker
    counts is asserted unconditionally.
    """
    rows = [f"cold analyze_file worker scaling, shm on (cpus: {os.cpu_count()})",
            f"{'workers':>8} {'seconds':>9} {'M ev/s':>8} {'vs 1w':>6}"]
    prints = {}
    base = None
    for workers in (1, 2, 4):
        fa, elapsed = _cold_run(
            cold_archive, workers=workers, shm=True, reuse_kernel="vector"
        )
        prints[workers] = _fingerprint(fa)
        base = base or elapsed
        rows.append(
            f"{workers:>8} {elapsed:>8.2f}s {N_COLD / elapsed / 1e6:>8.2f} "
            f"{base / elapsed:>5.2f}x"
        )
    assert prints[2] == prints[1] and prints[4] == prints[1]
    assert active_segments() == []
    save_result("perf_worker_scaling", "\n".join(rows))
