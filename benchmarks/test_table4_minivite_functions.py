"""Table IV: miniVite data locality of hot function accesses.

Shapes to reproduce from the paper's case study:

* the hotspot analysis surfaces buildMap, map.insert, and getMax;
* v1's map.insert is almost entirely irregular (F_str% near 0) while
  v2/v3's hopscotch probes are strided (high F_str%);
* v2 pays the most map.insert accesses (per-instance resizing copies);
  v3's right-sizing removes them;
* run times improve monotonically v1 -> v2 -> v3.
"""

from __future__ import annotations

from benchmarks.conftest import APP_SAMPLING, once, save_result
from repro.core.pipeline import AnalysisConfig, MemGaze
from repro.core.report import render_function_table

HOT_FUNCTIONS = ["buildMap", "map.insert", "getMax"]


def test_table4(benchmark, minivite_runs):
    mg = MemGaze(AnalysisConfig(APP_SAMPLING))

    def run():
        out = {}
        for v, r in minivite_runs.items():
            res = mg.analyze_events(
                r.events, n_loads_total=r.n_loads, fn_names=r.fn_names
            )
            out[v] = res.per_function
        return out

    per_variant = once(benchmark, run)

    blocks = []
    for v, diags in per_variant.items():
        hot = {f: d for f, d in diags.items() if f in HOT_FUNCTIONS}
        blocks.append(
            render_function_table(
                hot,
                title=f"Table IV ({v}): locality of hot function accesses "
                f"(run time {minivite_runs[v].sim_time:.0f} units)",
                order=HOT_FUNCTIONS,
            )
        )
    save_result("table4_minivite_functions", "\n\n".join(blocks))

    # hotspots present in every variant's sampled trace
    for v, diags in per_variant.items():
        for fn in HOT_FUNCTIONS:
            assert fn in diags, f"{v} missing {fn}"

    # v1 irregular insert vs v2/v3 strided insert
    assert per_variant["v1"]["map.insert"].F_str_pct < 10
    assert per_variant["v2"]["map.insert"].F_str_pct > 40
    assert per_variant["v3"]["map.insert"].F_str_pct > 40

    # v2's resizing inflates insert accesses; v3 avoids it
    a2 = per_variant["v2"]["map.insert"].A_est
    a3 = per_variant["v3"]["map.insert"].A_est
    a1 = per_variant["v1"]["map.insert"].A_est
    assert a2 > 1.2 * a3
    assert a2 > a1

    # getMax: v1 irregular iteration, v2/v3 strided sweep
    assert per_variant["v1"]["getMax"].F_str_pct < per_variant["v3"]["getMax"].F_str_pct

    # run times: each variant strictly improves
    t = {v: r.sim_time for v, r in minivite_runs.items()}
    assert t["v1"] > t["v2"] > t["v3"]

    # buildMap behaves similarly across variants (same graph traversal;
    # sampled windows interleave differently with differently-sized maps,
    # so allow a loose band)
    dfs = [per_variant[v]["buildMap"].dF for v in ("v1", "v2", "v3")]
    assert max(dfs) < 2 * min(dfs)
