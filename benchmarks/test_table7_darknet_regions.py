"""Table VII: Darknet spatio-temporal reuse of hot memory (64 B blocks).

The location analysis highlights the gemm matrices as the primary hot
region for both models. Shapes: the gemm I/O + column-buffer region is
the hottest object; reuse per block is substantial (B rows are re-read
per output row); the weights region is cooler per block.
"""

from __future__ import annotations

from benchmarks.conftest import once, save_result
from repro.core.report import render_region_table
from repro.core.reuse import region_reuse
from repro.core.zoom import ZoomRegion
from repro.trace.collector import collect_sampled_trace
from benchmarks.test_table6_darknet_functions import DARKNET_SAMPLING


def _region(run, labels, block=64):
    lo = min(run.region_extents[l][0] for l in labels)
    hi = max(run.region_extents[l][1] for l in labels)
    col = collect_sampled_trace(run.events, run.n_loads, DARKNET_SAMPLING)
    d_mean, d_max, a = region_reuse(
        col.events, lo, hi - lo, block=block, sample_id=col.sample_id
    )
    n_blocks = max(1, (hi - lo) // block)
    return ZoomRegion(
        base=lo, size=hi - lo, depth=0, n_accesses=a,
        pct_of_total=100 * a / max(1, len(col.events)),
        D_mean=d_mean, D_max=d_max, n_blocks=n_blocks,
        accesses_per_block=a / n_blocks,
    )


def test_table7(benchmark, darknet_runs):
    def run():
        out = {}
        for m, r in darknet_runs.items():
            out[m] = {
                "gemm matrices (B, C)": _region(r, ("gemm-io", "col-buffer")),
                "weights (A)": _region(r, ("weights",)),
            }
        return out

    stats = once(benchmark, run)
    blocks = [
        render_region_table(
            list(regions.items()),
            title=f"Table VII ({m}): spatio-temporal reuse of hot memory (64 B)",
        )
        for m, regions in stats.items()
    ]
    save_result("table7_darknet_regions", "\n\n".join(blocks))

    for m, regions in stats.items():
        matrices = regions["gemm matrices (B, C)"]
        weights = regions["weights (A)"]
        assert matrices.n_accesses > weights.n_accesses, m
        # matrix blocks see real reuse within samples (B-row re-reads)
        assert matrices.accesses_per_block > 1.0, m
