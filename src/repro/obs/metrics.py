"""Pipeline metrics: counters, gauges, histograms with exact merges.

The registry follows the same merge discipline as the analysis partials
in :mod:`repro.core.parallel`: every instrument's :meth:`merge` is
**associative and commutative with an identity**, and all tallies are
integers (or order-free extrema), so per-worker or per-shard registries
fold into one in any order without losing a count — the observability
analogue of the engine's bit-identical partial merges.

* :class:`Counter` — monotone integer total; merge is integer addition.
* :class:`Gauge` — an observed level; merge keeps the extremum under the
  gauge's ``mode`` (``"max"`` default, or ``"min"``), the only
  order-free combination of point-in-time observations. Use gauges for
  peaks and floors (peak in-flight chunks, worst shard skew), not for
  last-write-wins state.
* :class:`Histogram` — power-of-two bins (geometry shared with
  :class:`repro.core.reuse.ReuseHistogram`): ``counts[0]`` holds value
  0, ``counts[k]`` values in ``[2**(k-1), 2**k)``. Integer bin counts,
  sum, and extrema all merge exactly.

Registries serialize to plain JSON (:meth:`MetricsRegistry.as_dict` /
:meth:`from_dict`), which is what ``memgaze report --metrics PATH``
writes and what crosses process boundaries from pool workers.
"""

from __future__ import annotations

import json
from typing import Iterable

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

#: Histogram geometry: power-of-two bins up to 2**_HIST_MAX_EXP.
_HIST_MAX_EXP = 48


class Counter:
    """A monotone integer counter; merge = integer addition."""

    __slots__ = ("value",)

    def __init__(self, value: int = 0) -> None:
        self.value = int(value)

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (must be >= 0: counters only move forward)."""
        if n < 0:
            raise ValueError(f"counter increment must be >= 0, got {n}")
        self.value += int(n)

    def merge(self, other: "Counter") -> None:
        """Fold another counter in (associative, commutative, exact)."""
        self.value += other.value

    def as_dict(self) -> dict:
        return {"value": self.value}

    @classmethod
    def from_dict(cls, d: dict) -> "Counter":
        return cls(d["value"])


class Gauge:
    """An observed level; merge keeps the extremum (``mode``: max|min).

    ``None`` until first set — the merge identity.
    """

    __slots__ = ("value", "mode")

    def __init__(self, value: float | None = None, mode: str = "max") -> None:
        if mode not in ("max", "min"):
            raise ValueError(f"gauge mode must be 'max' or 'min', got {mode!r}")
        self.value = value
        self.mode = mode

    def set(self, v: float) -> None:
        """Observe a level; the gauge keeps the extremum seen so far."""
        if self.value is None:
            self.value = v
        else:
            self.value = max(self.value, v) if self.mode == "max" else min(self.value, v)

    def merge(self, other: "Gauge") -> None:
        """Fold another gauge in (extremum of extrema is order-free)."""
        if other.mode != self.mode:
            raise ValueError(f"gauge mode mismatch: {self.mode} vs {other.mode}")
        if other.value is not None:
            self.set(other.value)

    def as_dict(self) -> dict:
        return {"value": self.value, "mode": self.mode}

    @classmethod
    def from_dict(cls, d: dict) -> "Gauge":
        return cls(d["value"], d.get("mode", "max"))


class Histogram:
    """Power-of-two-binned distribution with an exact merge.

    Bin ``0`` counts value 0; bin ``k >= 1`` counts values in
    ``[2**(k-1), 2**k)``; values past the last edge land in the top bin.
    All fields are integer totals (or extrema), so :meth:`merge` is
    associative, commutative, and lossless.
    """

    __slots__ = ("counts", "n", "total", "vmin", "vmax", "max_exp")

    def __init__(self, max_exp: int = _HIST_MAX_EXP) -> None:
        if max_exp <= 0:
            raise ValueError(f"max_exp must be > 0, got {max_exp}")
        self.max_exp = max_exp
        self.counts = [0] * (max_exp + 1)
        self.n = 0
        self.total = 0
        self.vmin: int | None = None
        self.vmax: int | None = None

    def observe(self, v: int) -> None:
        """Tally one non-negative integer observation."""
        v = int(v)
        if v < 0:
            raise ValueError(f"histogram values must be >= 0, got {v}")
        self.counts[min(v.bit_length(), self.max_exp)] += 1
        self.n += 1
        self.total += v
        self.vmin = v if self.vmin is None else min(self.vmin, v)
        self.vmax = v if self.vmax is None else max(self.vmax, v)

    def observe_many(self, values: Iterable[int]) -> None:
        """Tally a batch of observations."""
        for v in values:
            self.observe(v)

    @property
    def mean(self) -> float:
        """Mean observation (0.0 when empty)."""
        return self.total / self.n if self.n else 0.0

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram in (exact integer addition)."""
        if other.max_exp != self.max_exp:
            raise ValueError(
                f"histogram geometry mismatch: {self.max_exp} vs {other.max_exp}"
            )
        self.counts = [a + b for a, b in zip(self.counts, other.counts)]
        self.n += other.n
        self.total += other.total
        for v in (other.vmin, other.vmax):
            if v is not None:
                self.vmin = v if self.vmin is None else min(self.vmin, v)
                self.vmax = v if self.vmax is None else max(self.vmax, v)

    def as_dict(self) -> dict:
        return {
            "counts": list(self.counts),
            "n": self.n,
            "total": self.total,
            "min": self.vmin,
            "max": self.vmax,
            "mean": self.mean,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Histogram":
        h = cls(max_exp=len(d["counts"]) - 1)
        h.counts = [int(c) for c in d["counts"]]
        h.n = int(d["n"])
        h.total = int(d["total"])
        h.vmin = d["min"]
        h.vmax = d["max"]
        return h


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Named instruments with get-or-create access and an exact merge.

    >>> m = MetricsRegistry()
    >>> m.counter("trace.chunks_read").inc()
    >>> m.histogram("parallel.shard_events").observe(4096)
    >>> sorted(m.as_dict()["counters"])
    ['trace.chunks_read']
    """

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    # -- get-or-create accessors --

    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created on first use)."""
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter()
        return c

    def gauge(self, name: str, mode: str = "max") -> Gauge:
        """The gauge registered under ``name`` (created on first use)."""
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge(mode=mode)
        return g

    def histogram(self, name: str, max_exp: int = _HIST_MAX_EXP) -> Histogram:
        """The histogram registered under ``name`` (created on first use)."""
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram(max_exp=max_exp)
        return h

    # -- merge / serialization --

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in, instrument by instrument.

        Merging is exact and order-free under the per-instrument
        contracts above; a name bound to different instrument kinds in
        the two registries is a programming error and raises.
        """
        for name in other.counters:
            if name in self.gauges or name in self.histograms:
                raise ValueError(f"metric {name!r} kind mismatch in merge")
            self.counter(name).merge(other.counters[name])
        for name in other.gauges:
            if name in self.counters or name in self.histograms:
                raise ValueError(f"metric {name!r} kind mismatch in merge")
            self.gauge(name, mode=other.gauges[name].mode).merge(other.gauges[name])
        for name in other.histograms:
            if name in self.counters or name in self.gauges:
                raise ValueError(f"metric {name!r} kind mismatch in merge")
            self.histogram(
                name, max_exp=other.histograms[name].max_exp
            ).merge(other.histograms[name])

    def as_dict(self) -> dict:
        """Plain-JSON snapshot of every instrument."""
        return {
            "counters": {k: v.as_dict() for k, v in self.counters.items()},
            "gauges": {k: v.as_dict() for k, v in self.gauges.items()},
            "histograms": {k: v.as_dict() for k, v in self.histograms.items()},
        }

    @classmethod
    def from_dict(cls, d: dict) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`as_dict` output."""
        m = cls()
        for k, v in d.get("counters", {}).items():
            m.counters[k] = Counter.from_dict(v)
        for k, v in d.get("gauges", {}).items():
            m.gauges[k] = Gauge.from_dict(v)
        for k, v in d.get("histograms", {}).items():
            m.histograms[k] = Histogram.from_dict(v)
        return m

    def to_json(self, **kwargs) -> str:
        """:meth:`as_dict` as a JSON string."""
        return json.dumps(self.as_dict(), **kwargs)

    @classmethod
    def from_json(cls, text: str) -> "MetricsRegistry":
        """Parse :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))
