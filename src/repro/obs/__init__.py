"""Observability layer: structured run journal + pipeline metrics.

MemGaze's pitch is *rapid* analysis at production trace volumes, which
makes the pipeline itself something to measure. This package provides
the two instruments every stage reports through:

* :mod:`repro.obs.journal` — an append-only JSONL **run journal**. Every
  pipeline stage (trace collection, shard planning, per-shard analysis,
  merge, report) emits one self-describing line with timings, item
  counts, and its rho/kappa/window parameters. The writer is
  process-safe (``O_APPEND`` + single-``write`` lines), so the parallel
  engine's pool workers journal directly from their own processes.
* :mod:`repro.obs.metrics` — a **metrics registry** of counters, gauges,
  and power-of-two histograms whose merge operators follow the same
  exactness contracts as the analysis partials in
  :mod:`repro.core.parallel`: integer addition, associative and
  commutative, so per-worker registries fold into one without loss.

Both are optional everywhere they are wired (``journal=None`` /
``metrics=None`` skips all work), so the instrumented hot paths cost
nothing when observability is off. ``memgaze report --journal PATH
--metrics PATH`` turns both on from the command line; see
``docs/observability.md`` for the schema and catalog.
"""

from repro.obs.journal import RunJournal, read_journal
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "RunJournal",
    "read_journal",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]
