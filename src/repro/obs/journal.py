"""Structured JSONL run journal, safe across processes.

A :class:`RunJournal` appends one JSON object per line to a file. Lines
are written with a single ``os.write`` on a descriptor opened with
``O_APPEND``, which POSIX guarantees to be atomic for writes well under
``PIPE_BUF``-scale sizes — so any number of processes (the parallel
engine's pool workers in particular) can share one journal file without
locks or interleaved lines.

Journals pickle cheaply: only the path and run id cross a process
boundary; the receiving process reopens the file lazily on its first
emit. Every line carries the schema fields

``ts``
    Seconds since the epoch (``time.time()``) at emit.
``run``
    The run id — shared by every line of one toolchain invocation,
    across all worker processes.
``pid``
    The emitting process (worker id for pool-side lines).
``event``
    The record kind: ``"stage"``, ``"shard-analyzed"``, ``"warning"``,
    ``"stage-summary"``, ``"metrics"``, or any caller-chosen name.

plus whatever keyword fields the call site adds (stage names, timings,
item counts, rho/kappa/window parameters). See ``docs/observability.md``
for the worked example and the full field catalog.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from types import TracebackType
from typing import Any, Iterator

__all__ = ["RunJournal", "BoundJournal", "read_journal"]


def _new_run_id() -> str:
    return f"{os.getpid():x}-{time.time_ns():x}"


class _JournalStage:
    """Context manager that journals a stage's elapsed time on exit."""

    def __init__(self, journal: "RunJournal", stage: str, fields: dict) -> None:
        self._journal = journal
        self._stage = stage
        self._fields = fields
        self._start = 0.0

    def __enter__(self) -> "_JournalStage":
        self._start = time.perf_counter()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        fields = dict(self._fields)
        fields["seconds"] = time.perf_counter() - self._start
        if exc is not None:
            fields["error"] = f"{type(exc).__name__}: {exc}"
        self._journal.emit("stage", stage=self._stage, **fields)


class RunJournal:
    """Append-only JSONL journal shared by every process of one run.

    >>> j = RunJournal("/tmp/doctest-journal.jsonl")  # doctest: +SKIP
    >>> j.emit("stage", stage="merge", seconds=0.01)  # doctest: +SKIP
    """

    def __init__(self, path, run_id: str | None = None) -> None:
        self.path = Path(path)
        self.run_id = run_id or _new_run_id()
        self._fd: int | None = None

    # -- process safety --

    def _descriptor(self) -> int:
        if self._fd is None:
            self._fd = os.open(
                self.path, os.O_APPEND | os.O_CREAT | os.O_WRONLY, 0o644
            )
        return self._fd

    def __getstate__(self) -> dict:
        # only the address crosses process boundaries; workers reopen
        return {"path": self.path, "run_id": self.run_id}

    def __setstate__(self, state: dict) -> None:
        self.path = state["path"]
        self.run_id = state["run_id"]
        self._fd = None

    def close(self) -> None:
        """Close the underlying descriptor (idempotent)."""
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- emitters --

    def emit(self, event: str, **fields: Any) -> None:
        """Append one journal line (a single atomic ``write``)."""
        record = {"ts": time.time(), "run": self.run_id, "pid": os.getpid(),
                  "event": event}
        record.update(fields)
        line = json.dumps(record, default=str) + "\n"
        os.write(self._descriptor(), line.encode("utf-8"))

    def stage(self, stage: str, **fields: Any) -> _JournalStage:
        """Journal a timed stage region::

            with journal.stage("shard-plan", n_shards=8):
                ...
        """
        return _JournalStage(self, stage, fields)

    def warning(self, message: str, **fields: Any) -> None:
        """Journal a degradation the run survived (recovery, fallback)."""
        self.emit("warning", message=message, **fields)

    def record_timers(self, timers, **fields: Any) -> None:
        """Bridge a :class:`~repro._util.timers.StageTimers` registry in.

        Emits one ``stage-summary`` line per accumulated stage, carrying
        its total seconds, call count, items, and throughput.
        """
        for rec in timers.as_records():
            self.emit("stage-summary", **rec, **fields)

    def record_metrics(self, registry, **fields: Any) -> None:
        """Journal a metrics registry snapshot as one ``metrics`` line."""
        self.emit("metrics", metrics=registry.as_dict(), **fields)

    def bind(self, **fields: Any) -> "BoundJournal":
        """A view of this journal that adds ``fields`` to every line.

        See :class:`BoundJournal`; the streaming service binds
        ``session=<name>`` so one daemon journal is filterable per
        client stream.
        """
        return BoundJournal(self, fields)


class BoundJournal:
    """A journal view that stamps fixed fields onto every line.

    ``journal.bind(session="s1")`` gives the streaming service (or any
    multi-tenant caller) a handle it can pass anywhere a
    :class:`RunJournal` goes — the engine, ``iter_trace_chunks``, pool
    workers — and every emitted line carries the bound fields, so one
    shared journal file can be filtered per session after the fact.
    Binding nests (``bind(a=1).bind(b=2)``) and call-site fields win
    over bound ones. Pickles like the underlying journal: only the
    address and the bound fields cross process boundaries.
    """

    def __init__(self, journal: "RunJournal", fields: dict) -> None:
        self._journal = journal
        self._fields = dict(fields)

    @property
    def path(self):
        return self._journal.path

    @property
    def run_id(self) -> str:
        return self._journal.run_id

    def bind(self, **fields: Any) -> "BoundJournal":
        """A further-bound view (the new fields win on key collision)."""
        return BoundJournal(self._journal, {**self._fields, **fields})

    def emit(self, event: str, **fields: Any) -> None:
        self._journal.emit(event, **{**self._fields, **fields})

    def stage(self, stage: str, **fields: Any) -> _JournalStage:
        return _JournalStage(self, stage, fields)

    def warning(self, message: str, **fields: Any) -> None:
        self.emit("warning", message=message, **fields)

    def record_timers(self, timers, **fields: Any) -> None:
        self._journal.record_timers(timers, **{**self._fields, **fields})

    def record_metrics(self, registry, **fields: Any) -> None:
        self._journal.record_metrics(registry, **{**self._fields, **fields})

    def close(self) -> None:
        """No-op: the underlying journal owns the descriptor."""


def read_journal(path) -> Iterator[dict]:
    """Parse a journal file back into dicts (tooling/test helper)."""
    with open(path, "r", encoding="utf-8") as fp:
        for line in fp:
            line = line.strip()
            if line:
                yield json.loads(line)
