"""Access and reuse-distance heatmaps over (region page, time) (Fig. 8).

The paper's CC case study shows that summary metrics can be dominated by
outliers; the heatmaps expose the full distributions — access frequency
and reuse distance D per (page of a hot region, time bin) — where darker
bands reveal access locality structure that averages hide.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util.validate import check_power_of_two
from repro.core.reuse import reuse_distances
from repro.trace.event import EVENT_DTYPE, LoadClass

__all__ = [
    "HeatmapResult",
    "heatmap_geometry",
    "region_points",
    "accumulate_heatmap",
    "finalize_heatmap",
    "access_heatmap",
    "render_heatmap_ascii",
]


@dataclass
class HeatmapResult:
    """A (pages x time-bins) matrix plus its bin geometry."""

    counts: np.ndarray  # accesses per cell
    reuse: np.ndarray  # mean D per cell (NaN where no reusing access)
    base: int
    page_size: int
    t_edges: np.ndarray  # time-bin edges, len = n_bins + 1

    @property
    def n_pages(self) -> int:
        """Rows of the matrix."""
        return self.counts.shape[0]

    @property
    def n_bins(self) -> int:
        """Columns of the matrix."""
        return self.counts.shape[1]


def heatmap_geometry(
    nc: np.ndarray, size: int, n_pages: int, n_bins: int
) -> tuple[int, np.ndarray]:
    """(page_size, t_edges) shared by every shard of one heatmap.

    ``nc`` is the whole trace's non-Constant record stream; the geometry
    must be fixed *before* sharding so partial matrices line up.
    """
    page_size = max(1, size // n_pages)
    t_lo = int(nc["t"][0]) if len(nc) else 0
    t_hi = int(nc["t"][-1]) + 1 if len(nc) else 1
    return page_size, np.linspace(t_lo, t_hi, n_bins + 1)


def region_points(
    nc: np.ndarray, d: np.ndarray, base: int, size: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(addr, t, d) of the non-Constant accesses falling in the region.

    Shared by the serial :func:`access_heatmap` and the heatmap analysis
    pass so both filter identically.
    """
    addr = nc["addr"].astype(np.int64)
    t = nc["t"].astype(np.int64)
    in_region = (addr >= base) & (addr < base + size)
    return addr[in_region], t[in_region], d[in_region]


def accumulate_heatmap(
    addr: np.ndarray,
    t: np.ndarray,
    d: np.ndarray,
    *,
    base: int,
    page_size: int,
    t_edges: np.ndarray,
    n_pages: int,
    n_bins: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(counts, dsum, dcnt) partial matrices for one shard of accesses.

    ``addr``/``t``/``d`` are the shard's region-filtered addresses, times,
    and reuse distances. Partials from different shards merge by matrix
    addition: counts and dcnt are integer, and dsum accumulates
    integer-valued distances below 2**53, so float addition is exact and
    the merged result is bit-identical to a single-pass accumulation.
    """
    counts = np.zeros((n_pages, n_bins), dtype=np.int64)
    dsum = np.zeros((n_pages, n_bins), dtype=np.float64)
    dcnt = np.zeros((n_pages, n_bins), dtype=np.int64)
    if len(addr):
        rows = np.minimum((addr - base) // page_size, n_pages - 1)
        cols = np.minimum(
            np.searchsorted(t_edges, t, side="right") - 1, n_bins - 1
        )
        cols = np.maximum(cols, 0)
        np.add.at(counts, (rows, cols), 1)
        reusing = d >= 0
        np.add.at(dsum, (rows[reusing], cols[reusing]), d[reusing])
        np.add.at(dcnt, (rows[reusing], cols[reusing]), 1)
    return counts, dsum, dcnt


def finalize_heatmap(
    counts: np.ndarray,
    dsum: np.ndarray,
    dcnt: np.ndarray,
    *,
    base: int,
    page_size: int,
    t_edges: np.ndarray,
) -> HeatmapResult:
    """Turn merged partial matrices into a :class:`HeatmapResult`."""
    with np.errstate(invalid="ignore"):
        reuse = np.where(dcnt > 0, dsum / np.maximum(dcnt, 1), np.nan)
    return HeatmapResult(
        counts=counts, reuse=reuse, base=base, page_size=page_size, t_edges=t_edges
    )


def access_heatmap(
    events: np.ndarray,
    base: int,
    size: int,
    *,
    n_pages: int = 64,
    n_bins: int = 64,
    access_block: int = 64,
    sample_id: np.ndarray | None = None,
) -> HeatmapResult:
    """Heatmaps for the region ``[base, base+size)``.

    ``counts[p, b]`` is the number of accesses to page ``p`` during time
    bin ``b``; ``reuse[p, b]`` the mean intra-sample reuse distance of
    the reusing accesses in that cell (NaN when none reuse).
    """
    if events.dtype != EVENT_DTYPE:
        raise TypeError(f"expected EVENT_DTYPE events, got {events.dtype}")
    if size <= 0 or n_pages <= 0 or n_bins <= 0:
        raise ValueError("size, n_pages and n_bins must be > 0")
    check_power_of_two("block", access_block)

    mask = events["cls"] != int(LoadClass.CONSTANT)
    nc = events[mask]
    sid = sample_id[mask] if sample_id is not None else None
    d = reuse_distances(nc, access_block, sid)
    addr, t, d = region_points(nc, d, base, size)

    page_size, t_edges = heatmap_geometry(nc, size, n_pages, n_bins)
    counts, dsum, dcnt = accumulate_heatmap(
        addr,
        t,
        d,
        base=base,
        page_size=page_size,
        t_edges=t_edges,
        n_pages=n_pages,
        n_bins=n_bins,
    )
    return finalize_heatmap(
        counts, dsum, dcnt, base=base, page_size=page_size, t_edges=t_edges
    )


_SHADES = " .:-=+*#%@"


def render_heatmap_ascii(matrix: np.ndarray, *, log: bool = True) -> str:
    """Render a matrix as ASCII art (darker character = larger value)."""
    m = np.array(matrix, dtype=np.float64)
    m = np.where(np.isnan(m), 0.0, m)
    if log:
        m = np.log1p(m)
    top = m.max()
    if top == 0:
        top = 1.0
    idx = np.minimum((m / top * (len(_SHADES) - 1)).astype(int), len(_SHADES) - 1)
    return "\n".join("".join(_SHADES[v] for v in row) for row in idx)
