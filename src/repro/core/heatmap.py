"""Access and reuse-distance heatmaps over (region page, time) (Fig. 8).

The paper's CC case study shows that summary metrics can be dominated by
outliers; the heatmaps expose the full distributions — access frequency
and reuse distance D per (page of a hot region, time bin) — where darker
bands reveal access locality structure that averages hide.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.metrics import nonconstant
from repro.core.reuse import reuse_distances
from repro.trace.event import EVENT_DTYPE, LoadClass

__all__ = ["HeatmapResult", "access_heatmap", "render_heatmap_ascii"]


@dataclass
class HeatmapResult:
    """A (pages x time-bins) matrix plus its bin geometry."""

    counts: np.ndarray  # accesses per cell
    reuse: np.ndarray  # mean D per cell (NaN where no reusing access)
    base: int
    page_size: int
    t_edges: np.ndarray  # time-bin edges, len = n_bins + 1

    @property
    def n_pages(self) -> int:
        """Rows of the matrix."""
        return self.counts.shape[0]

    @property
    def n_bins(self) -> int:
        """Columns of the matrix."""
        return self.counts.shape[1]


def access_heatmap(
    events: np.ndarray,
    base: int,
    size: int,
    *,
    n_pages: int = 64,
    n_bins: int = 64,
    access_block: int = 64,
    sample_id: np.ndarray | None = None,
) -> HeatmapResult:
    """Heatmaps for the region ``[base, base+size)``.

    ``counts[p, b]`` is the number of accesses to page ``p`` during time
    bin ``b``; ``reuse[p, b]`` the mean intra-sample reuse distance of
    the reusing accesses in that cell (NaN when none reuse).
    """
    if events.dtype != EVENT_DTYPE:
        raise TypeError(f"expected EVENT_DTYPE events, got {events.dtype}")
    if size <= 0 or n_pages <= 0 or n_bins <= 0:
        raise ValueError("size, n_pages and n_bins must be > 0")

    mask = events["cls"] != int(LoadClass.CONSTANT)
    nc = events[mask]
    sid = sample_id[mask] if sample_id is not None else None
    d = reuse_distances(nc, access_block, sid)

    addr = nc["addr"].astype(np.int64)
    t = nc["t"].astype(np.int64)
    in_region = (addr >= base) & (addr < base + size)
    addr, t, d = addr[in_region], t[in_region], d[in_region]

    page_size = max(1, size // n_pages)
    t_lo = int(nc["t"][0]) if len(nc) else 0
    t_hi = int(nc["t"][-1]) + 1 if len(nc) else 1
    t_edges = np.linspace(t_lo, t_hi, n_bins + 1)

    counts = np.zeros((n_pages, n_bins), dtype=np.int64)
    dsum = np.zeros((n_pages, n_bins), dtype=np.float64)
    dcnt = np.zeros((n_pages, n_bins), dtype=np.int64)
    if len(addr):
        rows = np.minimum((addr - base) // page_size, n_pages - 1)
        cols = np.minimum(
            np.searchsorted(t_edges, t, side="right") - 1, n_bins - 1
        )
        cols = np.maximum(cols, 0)
        np.add.at(counts, (rows, cols), 1)
        reusing = d >= 0
        np.add.at(dsum, (rows[reusing], cols[reusing]), d[reusing])
        np.add.at(dcnt, (rows[reusing], cols[reusing]), 1)
    with np.errstate(invalid="ignore"):
        reuse = np.where(dcnt > 0, dsum / np.maximum(dcnt, 1), np.nan)
    return HeatmapResult(
        counts=counts, reuse=reuse, base=base, page_size=page_size, t_edges=t_edges
    )


_SHADES = " .:-=+*#%@"


def render_heatmap_ascii(matrix: np.ndarray, *, log: bool = True) -> str:
    """Render a matrix as ASCII art (darker character = larger value)."""
    m = np.array(matrix, dtype=np.float64)
    m = np.where(np.isnan(m), 0.0, m)
    if log:
        m = np.log1p(m)
    top = m.max()
    if top == 0:
        top = 1.0
    idx = np.minimum((m / top * (len(_SHADES) - 1)).astype(int), len(_SHADES) - 1)
    return "\n".join("".join(_SHADES[v] for v in row) for row in idx)
