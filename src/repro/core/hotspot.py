"""Hotspot analysis: picking the region of interest (paper SS:II).

"To help focus results, one may optionally perform standard hotspot
analysis based on time or memory loads. This result defines a region of
interest (set of functions) that are used to limit tracing."

:func:`find_hotspots` ranks functions by sampled load counts (a cheap
coarse pre-pass — in practice a PEBS/perf profile); the top functions
whose cumulative share crosses a threshold become the ROI.
:func:`roi_from_hotspots` converts them into hardware guard ranges.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trace.event import EVENT_DTYPE
from repro.trace.guards import RegionOfInterest

__all__ = [
    "Hotspot",
    "access_counts",
    "rank_hotspots",
    "find_hotspots",
    "roi_from_hotspots",
    "roi_from_ranges",
    "function_ranges",
]


@dataclass(frozen=True)
class Hotspot:
    """One function's share of the profiled loads."""

    function: str
    fn_id: int
    n_accesses: int
    share: float  # fraction of total profiled accesses


def access_counts(events: np.ndarray) -> np.ndarray:
    """Per-function load weights (suppressed constants included).

    Index ``fid`` holds that function's weight; the array length is the
    highest observed function id + 1 (empty for an empty trace). Counts
    from two shards merge by zero-padded addition, which is what lets the
    hotspot analysis pass fold chunk partials exactly.
    """
    if events.dtype != EVENT_DTYPE:
        raise TypeError(f"expected EVENT_DTYPE events, got {events.dtype}")
    if len(events) == 0:
        return np.zeros(0, dtype=np.int64)
    counts = np.bincount(events["fn"])
    # include suppressed constants in per-function load weight
    np.add.at(
        counts, events["fn"], events["n_const"].astype(np.int64)
    )
    return counts


def rank_hotspots(
    counts: np.ndarray,
    fn_names: dict[int, str] | None = None,
    *,
    coverage: float = 0.90,
    max_functions: int = 8,
) -> list[Hotspot]:
    """Rank :func:`access_counts` output; keep the head covering ``coverage``."""
    if not 0 < coverage <= 1:
        raise ValueError(f"coverage must be in (0, 1], got {coverage}")
    fn_names = fn_names or {}
    if len(counts) == 0:
        return []
    total = counts.sum()
    order = np.argsort(counts)[::-1]
    out: list[Hotspot] = []
    covered = 0
    for fid in order:
        if counts[fid] == 0 or len(out) >= max_functions:
            break
        out.append(
            Hotspot(
                function=fn_names.get(int(fid), f"fn{int(fid)}"),
                fn_id=int(fid),
                n_accesses=int(counts[fid]),
                share=counts[fid] / total,
            )
        )
        covered += counts[fid]
        if covered / total >= coverage:
            break
    return out


def find_hotspots(
    events: np.ndarray,
    fn_names: dict[int, str] | None = None,
    *,
    coverage: float = 0.90,
    max_functions: int = 8,
) -> list[Hotspot]:
    """Rank functions by access count; keep the head covering ``coverage``.

    ``events`` may be any (even crudely) sampled record stream — the
    pre-pass does not need load-level fidelity, only relative hotness.
    """
    return rank_hotspots(
        access_counts(events),
        fn_names,
        coverage=coverage,
        max_functions=max_functions,
    )


def function_ranges(events: np.ndarray) -> dict[int, tuple[int, int]]:
    """Observed [lo, hi) ip range per function id (from the trace itself)."""
    if events.dtype != EVENT_DTYPE:
        raise TypeError(f"expected EVENT_DTYPE events, got {events.dtype}")
    out: dict[int, tuple[int, int]] = {}
    for fid in np.unique(events["fn"]):
        ips = events["ip"][events["fn"] == fid]
        out[int(fid)] = (int(ips.min()), int(ips.max()) + 4)
    return out


def roi_from_ranges(
    hotspots: list[Hotspot],
    ranges: dict[int, tuple[int, int]],
    *,
    top: int | None = None,
) -> RegionOfInterest:
    """Guard ranges for the chosen hotspots from precomputed code ranges.

    ``ranges`` is :func:`function_ranges` output (or an exact merge of
    per-chunk min/max folds, as the ``roi`` analysis pass accumulates).
    """
    from repro.trace.guards import MAX_GUARD_RANGES

    chosen = hotspots[: top if top is not None else MAX_GUARD_RANGES]
    fn_ranges = {h.function: ranges[h.fn_id] for h in chosen if h.fn_id in ranges}
    return RegionOfInterest.from_functions(
        [h.function for h in chosen if h.fn_id in ranges], fn_ranges
    )


def roi_from_hotspots(
    hotspots: list[Hotspot],
    events: np.ndarray,
    *,
    top: int | None = None,
) -> RegionOfInterest:
    """Guard ranges covering the chosen hotspots' observed code ranges.

    ``top`` defaults to the hardware's guard-range budget.
    """
    return roi_from_ranges(hotspots, function_ranges(events), top=top)
