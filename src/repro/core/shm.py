"""Zero-copy shard handoff over POSIX shared memory.

The parallel engine's original fan-out pickled every shard's event
array into each pool worker — three copies (pickle, pipe, unpickle)
per shard of data that is never mutated. This module replaces that
with named ``multiprocessing.shared_memory`` segments: the parent
publishes a chunk's arrays once (:func:`publish_shard`, one memcpy
into ``/dev/shm``), and workers attach by name
(:func:`attach_shard`, an ``shm_open`` + ``mmap`` — no copy at all).
Only a tiny :class:`ShardRef` descriptor crosses the pipe.

Ownership and cleanup
---------------------

Segments are owned by the publishing (parent) process; workers only
ever map them. The guarantees, in layers:

* **normal exit** — the engine releases each slab in a ``finally``
  as soon as its futures are folded;
* **worker crash** — the parent's ``finally`` still runs when a
  future raises ``BrokenProcessPool``, so a killed worker cannot leak
  the segment it was reading;
* **parent SIGTERM / interpreter exit** — every published slab is
  tracked in the process-wide :class:`SegmentRegistry`, which unlinks
  all live segments from an ``atexit`` hook and from a chained
  ``SIGTERM`` handler installed on first publish;
* **parent SIGKILL** — nothing in-process can run, but Python's
  ``resource_tracker`` (a separate watchdog process) notices the
  leaked segments and unlinks them.

Worker-side attachments are deliberately *unregistered* from the
``resource_tracker``: on Python < 3.13 every attach registers the
segment as if the worker owned it, and the tracker would unlink the
parent's segment when the first worker exits (bpo-39959). The parent
owns the lifecycle; workers must not.

Observability: every publish/release emits a ``shm`` journal line and
moves the ``shm.segments_created`` / ``shm.segments_released`` /
``shm.bytes_published`` counters and the ``shm.active_segments``
gauge, so a leak is visible as a counter imbalance (see
``docs/performance.md``).
"""

from __future__ import annotations

import atexit
import os
import secrets
import signal
import threading
from collections import OrderedDict
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.trace.event import EVENT_DTYPE

__all__ = [
    "ShardRef",
    "SharedSlab",
    "SegmentRegistry",
    "publish_shard",
    "attach_shard",
    "active_segments",
]

#: alignment of the sample_id block inside a segment
_ALIGN = 64


@dataclass(frozen=True)
class ShardRef:
    """Picklable handle to an event range of a published slab.

    This is all that crosses the process boundary: a segment name, the
    layout needed to rebuild the array views, and the ``[lo, hi)`` row
    range this shard covers.
    """

    name: str
    n_events: int
    sid_dtype: str | None
    sid_offset: int
    lo: int
    hi: int


class SegmentRegistry:
    """Process-wide ledger of shared-memory segments this process owns.

    Every published slab registers here and unregisters on release; the
    registry's :meth:`release_all` unlinks whatever is still live and
    is wired to ``atexit`` plus a chained ``SIGTERM`` handler the first
    time a segment is tracked, so segments cannot outlive the parent on
    any orderly shutdown path.
    """

    def __init__(self) -> None:
        self._slabs: OrderedDict[str, "SharedSlab"] = OrderedDict()
        self._lock = threading.Lock()
        self._hooked = False

    def track(self, slab: "SharedSlab") -> None:
        with self._lock:
            self._slabs[slab.name] = slab
            self._install_hooks()

    def untrack(self, name: str) -> None:
        with self._lock:
            self._slabs.pop(name, None)

    def names(self) -> list[str]:
        """Names of currently live (unreleased) segments."""
        with self._lock:
            return list(self._slabs)

    def release_all(self) -> int:
        """Unlink every live segment; returns how many were reclaimed."""
        with self._lock:
            slabs = list(self._slabs.values())
            self._slabs.clear()
        for slab in slabs:
            slab._destroy()
        return len(slabs)

    def _install_hooks(self) -> None:
        # caller holds the lock
        if self._hooked:
            return
        self._hooked = True
        atexit.register(self.release_all)
        try:
            prev = signal.getsignal(signal.SIGTERM)

            def _on_term(signum, frame):
                self.release_all()
                if callable(prev):
                    prev(signum, frame)
                else:
                    signal.signal(signal.SIGTERM, signal.SIG_DFL)
                    os.kill(os.getpid(), signal.SIGTERM)

            signal.signal(signal.SIGTERM, _on_term)
        except (ValueError, OSError):
            # not the main thread (e.g. the serve daemon's executor):
            # atexit + the engine's finally blocks still cover us
            pass


#: the process-wide registry every publish goes through
_REGISTRY = SegmentRegistry()


def active_segments() -> list[str]:
    """Names of segments this process has published and not yet released."""
    return _REGISTRY.names()


class SharedSlab:
    """One published ``(events, sample_id)`` pair in a shm segment.

    Created by :func:`publish_shard` (parent side only). :meth:`ref`
    mints picklable worker handles; :meth:`release` closes *and
    unlinks* the segment (idempotent — the registry, ``finally``
    blocks, and signal hooks may race to it).
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        n_events: int,
        sid_dtype: str | None,
        sid_offset: int,
        journal=None,
        metrics=None,
    ) -> None:
        self._shm = shm
        self.name = shm.name
        self.n_events = n_events
        self.nbytes = shm.size
        self._sid_dtype = sid_dtype
        self._sid_offset = sid_offset
        self._journal = journal
        self._metrics = metrics
        self._released = False

    def ref(self, lo: int, hi: int) -> ShardRef:
        """A picklable handle to rows ``[lo, hi)`` of this slab."""
        if not 0 <= lo <= hi <= self.n_events:
            raise ValueError(f"bad shard range [{lo}, {hi}) of {self.n_events}")
        return ShardRef(
            name=self.name,
            n_events=self.n_events,
            sid_dtype=self._sid_dtype,
            sid_offset=self._sid_offset,
            lo=lo,
            hi=hi,
        )

    def release(self) -> None:
        """Close and unlink the segment (idempotent)."""
        if self._released:
            return
        _REGISTRY.untrack(self.name)
        self._destroy()
        if self._metrics is not None:
            self._metrics.counter("shm.segments_released").inc()
            self._metrics.gauge("shm.active_segments").set(len(active_segments()))
        if self._journal is not None:
            self._journal.emit("shm", action="release", name=self.name)

    def _destroy(self) -> None:
        if self._released:
            return
        self._released = True
        try:
            self._shm.close()
            self._shm.unlink()
        except FileNotFoundError:
            pass


def publish_shard(
    events: np.ndarray,
    sample_id: np.ndarray | None = None,
    *,
    journal=None,
    metrics=None,
) -> SharedSlab:
    """Copy ``(events, sample_id)`` into a fresh named segment.

    One memcpy here replaces the pickle → pipe → unpickle triple per
    worker; every worker then maps the same physical pages. The
    returned slab is registered for crash/exit cleanup and must be
    :meth:`~SharedSlab.release`\\ d by the caller once its shards are
    folded. Raises ``OSError`` when shared memory is unavailable (the
    engine falls back to the pickle path).
    """
    n = len(events)
    if sample_id is not None and len(sample_id) != n:
        raise ValueError("sample_id length must match events")
    ev_bytes = events.nbytes
    sid_offset = -(-ev_bytes // _ALIGN) * _ALIGN
    sid = None if sample_id is None else np.ascontiguousarray(sample_id)
    total = sid_offset + (sid.nbytes if sid is not None else 0)
    name = f"mg-{os.getpid():x}-{secrets.token_hex(4)}"
    shm = shared_memory.SharedMemory(name=name, create=True, size=max(total, 1))
    if n:
        view = np.ndarray(n, dtype=events.dtype, buffer=shm.buf)
        view[:] = events
    if sid is not None and len(sid):
        sview = np.ndarray(len(sid), dtype=sid.dtype, buffer=shm.buf, offset=sid_offset)
        sview[:] = sid
    slab = SharedSlab(
        shm,
        n,
        None if sid is None else sid.dtype.str,
        sid_offset,
        journal=journal,
        metrics=metrics,
    )
    _REGISTRY.track(slab)
    if metrics is not None:
        metrics.counter("shm.segments_created").inc()
        metrics.counter("shm.bytes_published").inc(total)
        metrics.gauge("shm.active_segments").set(len(active_segments()))
    if journal is not None:
        journal.emit(
            "shm", action="publish", name=slab.name, n_events=n, nbytes=total
        )
    return slab


# -- worker side --------------------------------------------------------------

#: per-process cache of open attachments. Keeping the most recent
#: mappings open costs a few pages of address space and guarantees any
#: arrays still referencing a mapping (e.g. a result the executor is
#: pickling) stay valid; old mappings are closed as new segments rotate
#: through (streaming publishes many short-lived slabs).
_ATTACH_CACHE: OrderedDict[str, shared_memory.SharedMemory] = OrderedDict()
_ATTACH_CACHE_SIZE = 8


def _attach(name: str) -> shared_memory.SharedMemory:
    shm = _ATTACH_CACHE.get(name)
    if shm is not None:
        _ATTACH_CACHE.move_to_end(name)
        return shm
    # the parent owns the segment: suppress this process's
    # resource_tracker registration during attach, so a worker exiting
    # cannot unlink a segment other workers still read and concurrent
    # workers cannot race the tracker's register/unregister bookkeeping
    # (bpo-39959; SharedMemory(track=False) only exists from 3.13)
    orig_register = resource_tracker.register
    resource_tracker.register = lambda *a, **k: None
    try:
        shm = shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = orig_register
    _ATTACH_CACHE[name] = shm
    while len(_ATTACH_CACHE) > _ATTACH_CACHE_SIZE:
        _ATTACH_CACHE.popitem(last=False)[1].close()
    return shm


def attach_shard(ref: ShardRef) -> tuple[np.ndarray, np.ndarray | None]:
    """Map a published shard and return ``(events, sample_id)`` views.

    Zero-copy: the views alias the parent's pages. The mapping is held
    in a small per-process cache (see ``_ATTACH_CACHE``), so repeated
    shards of one slab attach once; callers must treat the arrays as
    read-only scratch whose lifetime ends with the call — analysis
    partials already own their data (a requirement the pickle handoff
    imposed long before this module).
    """
    shm = _attach(ref.name)
    events = np.ndarray(ref.n_events, dtype=EVENT_DTYPE, buffer=shm.buf)[
        ref.lo : ref.hi
    ]
    sid = None
    if ref.sid_dtype is not None:
        sid = np.ndarray(
            ref.n_events,
            dtype=np.dtype(ref.sid_dtype),
            buffer=shm.buf,
            offset=ref.sid_offset,
        )[ref.lo : ref.hi]
    return events, sid
