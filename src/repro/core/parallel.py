"""Parallel sharded analysis engine over the analysis-pass framework.

The paper's analysis stage (SS:IV-V) is embarrassingly parallel across
trace windows: footprint is a set cardinality, captures/survivals a
saturating per-block count, the reuse histogram an integer tally that
resets at sample boundaries, and heatmaps are matrix sums. This module
exploits that by

1. **sharding** a trace into sample-aligned chunks (:func:`plan_shards` —
   a shard never splits a sample, so intra-sample computations are
   unaffected by the cut);
2. **fanning out** per-shard evaluation across a ``concurrent.futures``
   process pool — the event arrays are published once into named
   shared-memory segments (:mod:`repro.core.shm`) and workers attach
   zero-copy, so only a tiny :class:`~repro.core.shm.ShardRef` crosses
   the pipe (``shm=False`` or ``MEMGAZE_SHM=0`` falls back to pickling
   the slices); one :func:`~repro.core.passes.scan_chunk` call per
   shard evaluates *every* scheduled pass, so shared intermediates
   (block ids, class masks, reuse distances) are computed once per
   shard regardless of how many passes read them; and
3. **merging** partials with each pass's associative ``merge`` operator
   (:class:`~repro.core.passes.DiagnosticsPartial.merge`,
   :class:`~repro.core.passes.CapturesPartial.merge`,
   :meth:`~repro.core.reuse.ReuseHistogram.merge`, matrix addition for
   heatmaps) whose results are **bit-identical** to the serial path.

Every metric is a registered :class:`~repro.core.passes.AnalysisPass`;
the engine is "merely" the scheduler-aware shard-map-merge executor for
them. :meth:`ParallelEngine.run_passes` is the general entry point —
any set of registered passes, one fused scan — and the named methods
(:meth:`~ParallelEngine.footprint`, :meth:`~ParallelEngine.diagnostics`,
...) are convenience wrappers over it.

Exactness argument, per pass:

* *footprint / per-class footprint* — unique block ids are kept as
  sorted ``uint64`` arrays; ``union`` of sorted sets is associative and
  order-independent, so ``|union|`` equals the serial ``np.unique``
  count for any shard split (sample alignment not even required).
* *captures/survivals* — a block's observed count saturates at 2; the
  (once, multi) set pair forms a commutative monoid.
* *reuse histogram* — distances reset at sample boundaries, so a
  sample-aligned shard computes exactly the distances the serial pass
  assigns to its events; all tallies are integers and integer addition
  is exact.
* *heatmaps* — bin geometry is fixed globally before sharding; count
  matrices are integers, and the ``dsum`` float matrix accumulates
  integer-valued distances far below 2**53, so float addition is exact.
* *hotspots / roi* — per-function counts merge by zero-padded integer
  addition; code ranges by per-function (min, max) folds.
* *derived floats* (``dF``, ``A_est``, mean D, cell means) are computed
  once, from merged integer totals, by the same expressions the serial
  code uses — identical operands, identical results.

The engine also memoizes merged partials in an LRU cache keyed by
``(window_id, params, pass)`` so repeated zoom/interval queries over
the same window are free, and records per-stage wall-clock and
throughput in a :class:`~repro._util.timers.StageTimers` (surfaced by
``memgaze report --stats``), including a ``pass:<name>`` stage per
scheduled pass.

Observability is opt-in and zero-cost when off: pass a
:class:`~repro.obs.journal.RunJournal` and the engine journals its
shard plans, merges, and streaming progress — pool workers journal
their own ``shard-analyzed`` lines directly (the journal's ``O_APPEND``
writer is process-safe and pickles down to a path). Pass a
:class:`~repro.obs.metrics.MetricsRegistry` and the engine counts
shards, events, merges, and artifact-cache hits/misses
(``passes.artifact_hits`` / ``passes.artifact_misses``) and fills the
``parallel.shard_events`` histogram; the zero-copy handoff adds
``shm.*`` counters and journal lines (segment publish/release, so a
leaked segment is visible as a counter imbalance); ``memgaze report
--journal/--metrics`` exports both.
"""

from __future__ import annotations

import itertools
import os
import time
from concurrent.futures import Executor, Future, ProcessPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro._util.lru import LRUCache
from repro._util.timers import StageTimers
from repro._util.validate import check_power_of_two
from repro.core.artifacts import MISS, ArtifactStore, freeze_params
from repro.core.diagnostics import FootprintDiagnostics
from repro.core.heatmap import HeatmapResult, heatmap_geometry
from repro.core.passes import (
    CapturesPartial,
    DiagnosticsPartial,
    ResolvedRequest,
    RunContext,
    account_scan_stats,
    finalize_schedule,
    get_pass,
    merge_partial_lists,
    scan_chunk,
    schedule_passes,
)
from repro.core.reuse import _HIST_MAX_EXP, ReuseHistogram
from repro.core.shm import ShardRef, SharedSlab, attach_shard, publish_shard
from repro.trace.event import EVENT_DTYPE, LoadClass

__all__ = [
    "plan_shards",
    "DiagnosticsPartial",
    "CapturesPartial",
    "LRUCache",
    "ParallelEngine",
    "FileAnalysis",
]

#: below this many events a single shard is used — pool overhead would
#: dominate any gain.
_MIN_PARALLEL_EVENTS = 16_384
#: shards per worker when no explicit chunk size is given (load balance).
_CHUNKS_PER_WORKER = 4


# -- shard planning -----------------------------------------------------------


def plan_shards(
    n: int,
    sample_id: np.ndarray | None = None,
    *,
    n_shards: int | None = None,
    chunk_size: int | None = None,
) -> list[tuple[int, int]]:
    """Split ``[0, n)`` into contiguous shards that never cut a sample.

    Exactly one of ``n_shards`` / ``chunk_size`` picks the target shard
    size; with ``sample_id`` given, each cut is moved forward to the next
    sample boundary so every sample lands whole in one shard.
    """
    if n_shards is None and chunk_size is None:
        raise ValueError("pass n_shards or chunk_size")
    if n_shards is not None and chunk_size is not None:
        raise ValueError("pass only one of n_shards / chunk_size")
    if n <= 0:
        return []
    if chunk_size is None:
        if n_shards <= 0:
            raise ValueError(f"n_shards must be > 0, got {n_shards}")
        chunk_size = -(-n // n_shards)  # ceil
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be > 0, got {chunk_size}")

    if sample_id is None:
        cuts = list(range(0, n, chunk_size)) + [n]
        return list(zip(cuts[:-1], cuts[1:]))

    if len(sample_id) != n:
        raise ValueError("sample_id length must match events")
    # sample start indices (always includes 0)
    starts = np.concatenate(
        [[0], np.flatnonzero(np.diff(np.asarray(sample_id))) + 1, [n]]
    ).astype(np.int64)
    shards: list[tuple[int, int]] = []
    lo = 0
    while lo < n:
        target = lo + chunk_size
        if target >= n:
            hi = n
        else:
            # first sample boundary at or after the target; a sample
            # longer than chunk_size lands whole in one oversized shard
            hi = int(starts[np.searchsorted(starts, target, side="left")])
        shards.append((lo, hi))
        lo = hi
    return shards


#: environment kill-switch for the shared-memory handoff
_SHM_ENV = "MEMGAZE_SHM"


def _shm_default() -> bool:
    """Whether engines use the zero-copy handoff when not told explicitly."""
    return os.environ.get(_SHM_ENV, "1").lower() not in ("0", "off", "false", "no")


def scan_chunk_shm(ref: ShardRef, specs, journal):
    """Worker entry for the zero-copy path: attach, then scan as usual.

    The attached views alias the parent's pages; ``scan_chunk`` and the
    passes it runs never mutate their input, and partials own their
    buffers (a requirement the pickle handoff imposed all along), so the
    mapping can rotate out of the attachment cache once the scan
    returns.
    """
    events, sid = attach_shard(ref)
    return scan_chunk(events, sid, specs, journal)


def _fn_window_worker(
    events: np.ndarray, rho: float, block: int
) -> FootprintDiagnostics:
    """Per-function code-window diagnostics (runs in a worker)."""
    from repro.core.diagnostics import compute_diagnostics

    return compute_diagnostics(events, rho=rho, block=block)


# the canonical param-freezing now lives next to the persistent store so
# in-memory LRU keys and on-disk cache keys can never drift apart
_freeze = freeze_params


def _needs_whole(scheduled: list[ResolvedRequest], sample_id) -> bool:
    """Whether the schedule forbids sharding (cross-event state, no samples)."""
    return sample_id is None and any(
        get_pass(r.name).whole_without_samples for r in scheduled
    )


# -- the engine ---------------------------------------------------------------


class ParallelEngine:
    """Scheduler-aware shard-map-merge executor for the analysis passes.

    ``workers <= 1`` runs the identical shard+merge path inline (useful
    for testing the merge operators and as the no-pool fallback);
    ``workers > 1`` fans shards out over a process pool. Either way the
    output is bit-identical to the serial functions in
    :mod:`repro.core.metrics` / :mod:`repro.core.reuse` /
    :mod:`repro.core.heatmap` / :mod:`repro.core.hotspot`.
    """

    def __init__(
        self,
        workers: int | None = None,
        chunk_size: int | None = None,
        *,
        cache_size: int = 256,
        store: "ArtifactStore | None" = None,
        timers: StageTimers | None = None,
        journal=None,
        metrics=None,
        shm: bool | None = None,
    ) -> None:
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {self.workers}")
        self.chunk_size = chunk_size
        #: zero-copy shard handoff (:mod:`repro.core.shm`). ``None``
        #: resolves to on unless ``MEMGAZE_SHM=0``; ``False`` pickles
        #: event slices into the workers as the engine originally did
        self.shm = _shm_default() if shm is None else bool(shm)
        self.cache = LRUCache(cache_size)
        #: optional persistent ArtifactStore — merged pass partials are
        #: read from and written to it whenever a content digest is
        #: available (run_passes' ``store_key`` / analyze_file's health
        #: digest); None keeps the engine purely in-memory
        self.store = store
        self.timers = timers if timers is not None else StageTimers()
        #: optional RunJournal — shard plans, merges and per-shard worker
        #: lines are journaled when set (None = no journaling at all)
        self.journal = journal
        #: optional MetricsRegistry — pipeline counters/histograms land
        #: here when set (None = no metric accounting at all)
        self.metrics = metrics
        self._pool: Executor | None = None
        self._tokens = itertools.count()

    def window_token(self) -> int:
        """A fresh namespace for window ids, unique within this engine.

        Callers analyzing several traces through one engine prefix their
        ``window_id`` keys with a token so cached partials of different
        traces can never collide.
        """
        return next(self._tokens)

    # -- lifecycle --

    def _executor(self) -> Executor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=max(1, self.workers))
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "ParallelEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- shard-map-merge core --

    def _plan(self, n: int, sample_id: np.ndarray | None) -> list[tuple[int, int]]:
        with self.timers.stage("plan"):
            if self.workers <= 1 and self.chunk_size is None:
                shards = [(0, n)] if n else []
            elif self.chunk_size is not None:
                shards = plan_shards(n, sample_id, chunk_size=self.chunk_size)
            else:
                size = max(
                    -(-n // (max(1, self.workers) * _CHUNKS_PER_WORKER)),
                    _MIN_PARALLEL_EVENTS,
                )
                shards = plan_shards(n, sample_id, chunk_size=size)
        self._observe_plan(n, shards)
        return shards

    def _observe_plan(self, n: int, shards: list[tuple[int, int]]) -> None:
        if self.metrics is not None:
            self.metrics.counter("parallel.plans").inc()
            self.metrics.counter("parallel.shards").inc(len(shards))
            h = self.metrics.histogram("parallel.shard_events")
            for lo, hi in shards:
                h.observe(hi - lo)
        if self.journal is not None:
            self.journal.emit(
                "stage",
                stage="shard-plan",
                n_events=n,
                n_shards=len(shards),
                workers=self.workers,
                chunk_size=self.chunk_size,
            )

    def _publish(
        self, events: np.ndarray, sample_id: np.ndarray | None
    ) -> "SharedSlab | None":
        """Publish arrays for zero-copy workers; None = use the pickle path.

        Shared memory being unavailable (exhausted ``/dev/shm``, an
        exotic platform) downgrades the scan with a journaled warning
        rather than failing it.
        """
        if not self.shm:
            return None
        try:
            with self.timers.stage("publish", items=len(events)):
                return publish_shard(
                    events, sample_id, journal=self.journal, metrics=self.metrics
                )
        except OSError as exc:
            if self.metrics is not None:
                self.metrics.counter("shm.publish_failures").inc()
            if self.journal is not None:
                self.journal.warning(
                    f"shared-memory publish failed ({exc}); falling back to "
                    "pickled shard handoff for this scan",
                    n_events=len(events),
                )
            return None

    def _scan(
        self,
        events: np.ndarray,
        sample_id: np.ndarray | None,
        scheduled: list[ResolvedRequest],
        *,
        whole: bool = False,
    ) -> list:
        """One fused scan: every scheduled pass over sharded ``events``.

        ``whole`` forces a single shard (needed when a computation has
        cross-event state and no sample boundaries to cut at). Returns
        merged partials aligned with ``scheduled``.
        """
        specs = [r.spec for r in scheduled]
        n = len(events)
        shards = [(0, n)] if (whole and n) else self._plan(n, sample_id)
        if not shards:
            return [get_pass(r.name).init(r.params) for r in scheduled]
        use_pool = (
            self.workers > 1 and len(shards) > 1 and n >= _MIN_PARALLEL_EVENTS
        )
        if self.metrics is not None:
            self.metrics.counter("parallel.events").inc(n)
            self.metrics.counter(
                "parallel.runs_pooled" if use_pool else "parallel.runs_inline"
            ).inc()
        partials: list[list] = []
        if use_pool:
            pool = self._executor()
            slab = self._publish(events, sample_id)
            try:
                with self.timers.stage("scatter", items=n):
                    if slab is not None:
                        futures: list[Future] = [
                            pool.submit(
                                scan_chunk_shm, slab.ref(lo, hi), specs, self.journal
                            )
                            for lo, hi in shards
                        ]
                    else:
                        futures = [
                            pool.submit(
                                scan_chunk,
                                events[lo:hi],
                                sample_id[lo:hi] if sample_id is not None else None,
                                specs,
                                self.journal,
                            )
                            for lo, hi in shards
                        ]
                with self.timers.stage("compute", items=n):
                    for f in futures:
                        shard_partials, stats = f.result()
                        account_scan_stats(
                            stats, metrics=self.metrics, timers=self.timers
                        )
                        partials.append(shard_partials)
            finally:
                if slab is not None:
                    slab.release()
        else:
            with self.timers.stage("compute", items=n):
                for lo, hi in shards:
                    shard_partials, stats = scan_chunk(
                        events[lo:hi],
                        sample_id[lo:hi] if sample_id is not None else None,
                        specs,
                        self.journal,
                    )
                    account_scan_stats(stats, metrics=self.metrics, timers=self.timers)
                    partials.append(shard_partials)
        t_merge = time.perf_counter()
        with self.timers.stage("merge", items=len(shards)):
            merged = partials[0]
            for p in partials[1:]:
                merged = merge_partial_lists(merged, p, specs)
        if self.metrics is not None:
            self.metrics.counter("parallel.merges").inc(len(shards) - 1)
        if self.journal is not None:
            self.journal.emit(
                "stage",
                stage="merge",
                n_partials=len(shards),
                passes=[r.name for r in scheduled],
                seconds=time.perf_counter() - t_merge,
            )
        return merged

    def _merged_partials(
        self,
        events: np.ndarray,
        sample_id: np.ndarray | None,
        scheduled: list[ResolvedRequest],
        window_id,
        store_key: str | None = None,
    ) -> list:
        """Merged partials for a schedule, memoized per (window, params, pass).

        Lookup order per pass: the in-memory LRU, then (with a
        ``store_key`` content digest and a configured store) the
        persistent :class:`~repro.core.artifacts.ArtifactStore`, then
        one fused :meth:`_scan` for whatever is still missing. Scanned
        partials are written back to both layers.
        """
        use_store = self.store is not None and store_key is not None
        out: list = [None] * len(scheduled)
        missing: list[int] = []
        keys: list[tuple | None] = []
        for i, req in enumerate(scheduled):
            key = (
                (window_id, _freeze(req.params), req.name)
                if window_id is not None
                else None
            )
            keys.append(key)
            if key is not None:
                hit = self.cache.get(key)
                if hit is not None:
                    out[i] = hit
                    continue
            if use_store:
                stored = self.store.get_partial(store_key, req.name, req.params)
                if stored is not MISS:
                    out[i] = stored
                    if key is not None:
                        self.cache.put(key, stored)
                    continue
            missing.append(i)
        if missing:
            subset = [scheduled[i] for i in missing]
            merged = self._scan(
                events, sample_id, subset, whole=_needs_whole(subset, sample_id)
            )
            for i, partial in zip(missing, merged):
                out[i] = partial
                if keys[i] is not None:
                    self.cache.put(keys[i], partial)
                if use_store:
                    self.store.put_partial(
                        store_key, scheduled[i].name, scheduled[i].params, partial
                    )
        return out

    # -- the general fused entry point --

    def run_passes(
        self,
        events: np.ndarray,
        requests,
        *,
        sample_id: np.ndarray | None = None,
        rho: float = 1.0,
        fn_names: dict[int, str] | None = None,
        window_id=None,
        store_key: str | None = None,
    ) -> dict:
        """Run any set of registered passes in one fused scan.

        ``requests`` is what :func:`repro.core.passes.schedule_passes`
        accepts: pass names or ``(name, params)`` pairs. Dependencies are
        pulled in and ordered automatically; the trace is scanned
        **once** for every pass not already memoized under ``window_id``.
        Returns ``{pass name: finalized result}`` including dependencies.

        ``store_key`` enables the persistent cache for this call when
        the engine carries an :class:`~repro.core.artifacts.ArtifactStore`:
        it must be the content digest of exactly ``(events, sample_id)``
        (:meth:`ArtifactStore.digest_events` /
        :meth:`ArtifactStore.archive_digest`) — partials are then served
        from and persisted to disk, bit-identical to recomputation.
        """
        scheduled = schedule_passes(requests)
        merged = self._merged_partials(
            events, sample_id, scheduled, window_id, store_key=store_key
        )
        return finalize_schedule(
            scheduled, merged, RunContext(rho=rho, fn_names=fn_names or {})
        )

    def _partial(
        self,
        events: np.ndarray,
        sample_id: np.ndarray | None,
        request: tuple[str, dict],
        window_id,
    ):
        """One pass's merged (unfinalized) partial, memoized."""
        scheduled = schedule_passes([request])
        return self._merged_partials(events, sample_id, scheduled, window_id)[-1]

    # -- public metric API (mirrors the serial functions) --

    def footprint(
        self,
        events: np.ndarray,
        block: int = 1,
        sample_id: np.ndarray | None = None,
        window_id=None,
    ) -> int:
        """Observed footprint F; equals :func:`repro.core.metrics.footprint`."""
        p = self._partial(events, sample_id, ("diagnostics", {"block": block}), window_id)
        return p.footprint

    def footprint_by_class(
        self,
        events: np.ndarray,
        block: int = 1,
        sample_id: np.ndarray | None = None,
        window_id=None,
    ) -> dict[LoadClass, int]:
        """Per-class footprint; equals the serial decomposition."""
        p = self._partial(events, sample_id, ("diagnostics", {"block": block}), window_id)
        return p.footprint_by_class

    def captures_survivals(
        self,
        events: np.ndarray,
        block: int = 1,
        sample_id: np.ndarray | None = None,
        window_id=None,
    ) -> tuple[int, int]:
        """(C, S); equals :func:`repro.core.metrics.captures_survivals`."""
        p = self._partial(events, sample_id, ("captures", {"block": block}), window_id)
        return p.finalize()

    def diagnostics(
        self,
        events: np.ndarray,
        rho: float = 1.0,
        block: int = 1,
        sample_id: np.ndarray | None = None,
        window_id=None,
    ) -> FootprintDiagnostics:
        """The diagnostic bundle; equals
        :func:`repro.core.diagnostics.compute_diagnostics`."""
        p = self._partial(events, sample_id, ("diagnostics", {"block": block}), window_id)
        return p.finalize(rho)

    def reuse_histogram(
        self,
        events: np.ndarray,
        block: int = 64,
        sample_id: np.ndarray | None = None,
        window_id=None,
        max_exp: int = _HIST_MAX_EXP,
    ) -> ReuseHistogram:
        """Reuse-distance histogram; equals
        :func:`repro.core.reuse.reuse_histogram`.

        Distance tracking resets only at sample boundaries, so without
        ``sample_id`` the trace is one window and cannot be cut: the
        scheduler then runs the scan as a single shard
        (``ReusePass.whole_without_samples``).
        """
        return self._partial(
            events,
            sample_id,
            ("reuse", {"block": block, "max_exp": max_exp}),
            window_id,
        )

    def heatmap(
        self,
        events: np.ndarray,
        base: int,
        size: int,
        *,
        n_pages: int = 64,
        n_bins: int = 64,
        access_block: int = 64,
        sample_id: np.ndarray | None = None,
    ) -> HeatmapResult:
        """Region heatmap; equals :func:`repro.core.heatmap.access_heatmap`."""
        if events.dtype != EVENT_DTYPE:
            raise TypeError(f"expected EVENT_DTYPE events, got {events.dtype}")
        if size <= 0 or n_pages <= 0 or n_bins <= 0:
            raise ValueError("size, n_pages and n_bins must be > 0")
        check_power_of_two("block", access_block)
        # geometry must be fixed globally before sharding
        nc = events[events["cls"] != int(LoadClass.CONSTANT)]
        page_size, t_edges = heatmap_geometry(nc, size, n_pages, n_bins)
        request = (
            "heatmap",
            {
                "base": base,
                "size": size,
                "page_size": page_size,
                "t_edges": t_edges,
                "n_pages": n_pages,
                "n_bins": n_bins,
                "access_block": access_block,
            },
        )
        results = self.run_passes(events, [request], sample_id=sample_id)
        return results["heatmap"]

    def code_windows(
        self,
        events: np.ndarray,
        rho: float = 1.0,
        block: int = 1,
        fn_names: dict[int, str] | None = None,
    ) -> dict[str, FootprintDiagnostics]:
        """Per-function diagnostics; equals
        :func:`repro.core.windows.code_windows`.

        Functions are natural shards — each worker gets one function's
        accumulated accesses.
        """
        if events.dtype != EVENT_DTYPE:
            raise TypeError(f"expected EVENT_DTYPE events, got {events.dtype}")
        fn_names = fn_names or {}
        fids = np.unique(events["fn"])
        out: dict[str, FootprintDiagnostics] = {}
        if self.workers > 1 and len(fids) > 1 and len(events) >= _MIN_PARALLEL_EVENTS:
            pool = self._executor()
            with self.timers.stage("compute", items=len(events)):
                futures = {
                    int(fid): pool.submit(
                        _fn_window_worker, events[events["fn"] == fid], rho, block
                    )
                    for fid in fids
                }
                for fid, fut in futures.items():
                    out[fn_names.get(fid, f"fn{fid}")] = fut.result()
            return out
        from repro.core.windows import code_windows as serial_code_windows

        with self.timers.stage("compute", items=len(events)):
            return serial_code_windows(events, rho=rho, block=block, fn_names=fn_names)

    # -- streamed file analysis --

    def _fold_stream(self, chunks, specs) -> tuple[list | None, int, int | None, bool]:
        """Fold ``scan_chunk`` over an iterable of ``(events, sample_id)``.

        Feeds chunks to the pool as they arrive (at most ``2 * workers``
        in flight) and merges partials in arrival order. Returns
        ``(merged or None, n_events, last sample id or None, saw sample
        ids)``.
        """
        merged: list | None = None
        n_events = 0
        last_sid: int | None = None
        sid_seen = False
        pool = self._executor() if self.workers > 1 else None
        in_flight: list[tuple[Future, SharedSlab | None]] = []

        def fold(result: tuple[list, dict]) -> None:
            nonlocal merged
            partials, stats = result
            account_scan_stats(stats, metrics=self.metrics, timers=self.timers)
            with self.timers.stage("merge", items=1):
                merged = (
                    partials
                    if merged is None
                    else merge_partial_lists(merged, partials, specs)
                )

        def fold_future(entry: tuple[Future, "SharedSlab | None"]) -> None:
            fut, slab = entry
            try:
                result = fut.result()
            finally:
                if slab is not None:
                    slab.release()
            fold(result)

        try:
            with self.timers.stage("stream"):
                for ev, sid in chunks:
                    n_events += len(ev)
                    if sid is not None and len(sid):
                        sid_seen = True
                        last_sid = int(sid[-1])
                    if pool is None:
                        fold(scan_chunk(ev, sid, specs, self.journal))
                        continue
                    # each streamed chunk rides its own short-lived slab,
                    # released as soon as its partials fold — peak shm
                    # usage stays bounded by chunks in flight
                    slab = self._publish(ev, sid)
                    if slab is not None:
                        fut = pool.submit(
                            scan_chunk_shm, slab.ref(0, len(ev)), specs, self.journal
                        )
                    else:
                        fut = pool.submit(scan_chunk, ev, sid, specs, self.journal)
                    in_flight.append((fut, slab))
                    if self.metrics is not None:
                        self.metrics.gauge("parallel.peak_in_flight").set(
                            len(in_flight)
                        )
                    while len(in_flight) >= 2 * self.workers:
                        fold_future(in_flight.pop(0))
                while in_flight:
                    fold_future(in_flight.pop(0))
        finally:
            for _, slab in in_flight:
                if slab is not None:
                    slab.release()
        return merged, n_events, last_sid, sid_seen

    def _tail_scan(self, path, specs, size: int, state: dict):
        """Scan only the events appended after a cached trace state.

        Skips ``state['n_events']`` events while checksumming them
        (:class:`~repro.trace.tracefile.PrefixSkip`) and verifies the
        CRCs against the stored state before trusting any cached prefix
        partial: the entry proves the skipped bytes *are* the trace that
        was cached. Returns ``None`` — with a journaled warning — when
        the prefix does not verify or the appended tail continues the
        prefix's last sample (reuse windows would straddle the cut);
        the caller then falls back to a full rescan.
        """
        from repro.trace.tracefile import PrefixSkip, iter_trace_chunks

        skip = PrefixSkip(
            n_events=int(state["n_events"]),
            chunk_events=int(state["chunk_events"]),
        )
        chunks = iter_trace_chunks(
            path,
            chunk_size=size,
            metrics=self.metrics,
            journal=self.journal,
            skip=skip,
        )
        try:
            first = next(chunks, None)
        except (OSError, ValueError):
            return None
        reason = None
        if first is None:
            reason = "no events after the cached prefix"
        elif (
            skip.events_crc != [int(c) for c in state["events_crc"]]
            or skip.sample_id_crc != [int(c) for c in state["sample_id_crc"]]
        ):
            reason = "prefix checksums do not match the cached state"
        elif first[1] is None or len(first[1]) == 0:
            reason = "appended tail has no sample ids"
        elif int(first[1][0]) == state["last_sample_id"]:
            reason = "appended tail continues the prefix's last sample"
        if reason is not None:
            chunks.close()
            if self.journal is not None:
                self.journal.warning(
                    f"incremental re-analysis abandoned: {reason}; "
                    "falling back to a full rescan",
                    path=str(path),
                    state_n_events=int(state["n_events"]),
                )
            return None
        return self._fold_stream(itertools.chain([first], chunks), specs)

    def analyze_file(
        self,
        path,
        *,
        block: int = 1,
        reuse_block: int = 64,
        chunk_size: int | None = None,
        passes=(),
    ) -> "FileAnalysis":
        """Stream a trace archive through the pool without materializing it.

        The parent reads sample-aligned chunks sequentially
        (:func:`repro.trace.tracefile.iter_trace_chunks`) and feeds them
        to workers as they arrive, merging partials in arrival order; at
        most ``2 * workers`` chunks are in flight, so peak memory is
        bounded by the chunk size, not the trace size. Each chunk is
        read and scanned exactly **once** for the whole schedule —
        diagnostics, captures, reuse, and any extra ``passes`` requests
        (names or ``(name, params)`` pairs, e.g. ``["hotspot"]``) —
        whose finalized results land in
        :attr:`FileAnalysis.pass_results`.

        With a persistent store configured, the archive is content-
        addressed by its health-record digest: a pass whose whole-trace
        partial is already stored is served without touching the file at
        all, and an archive that *extends* a previously analyzed trace
        (same CRC prefix, new chunks appended) scans only the new tail
        and merges against the cached prefix partials. Either way the
        results are bit-identical to a cold scan.

        Footprint, diagnostics and captures/survivals are exactly the
        whole-trace values for any chunking. The reuse histogram resets
        at sample boundaries, so it matches the in-memory result when
        the archive stores sample ids; without them each chunk is its
        own reuse window — the histogram is then marked
        ``scope="chunk"`` and a journal warning records the degradation
        (chunk-scoped results are also never persisted to the store,
        since they vary with ``chunk_size``).
        """
        from repro.trace.tracefile import (
            iter_trace_chunks,
            read_trace_health,
            read_trace_meta,
        )

        meta = read_trace_meta(path)
        requests = [
            ("diagnostics", {"block": block}),
            ("captures", {"block": block}),
            ("reuse", {"block": reuse_block, "max_exp": _HIST_MAX_EXP}),
        ]
        base_names = {name for name, _ in requests}
        requests += [r for r in passes if (r if isinstance(r, str) else r[0]) not in base_names]
        scheduled = schedule_passes(requests)
        size = chunk_size or self.chunk_size or (1 << 20)
        t_stream = time.perf_counter()

        health = None
        digest: str | None = None
        if self.store is not None:
            health = read_trace_health(path)
            digest = None if health is None else ArtifactStore.digest_health(health)
            if digest is None and self.journal is not None:
                self.journal.warning(
                    "archive has no usable health record; analysis cache disabled",
                    path=str(path),
                )
        sid_present = health is not None and health.get("sample_id_crc") is not None

        def cacheable(name: str) -> bool:
            # chunk-scoped partials (whole_without_samples passes on an
            # archive without sample ids) vary with chunk_size — they are
            # never persisted and never read back
            return digest is not None and (
                sid_present or not get_pass(name).whole_without_samples
            )

        # 1. whole-trace cache hits: served without touching the events
        merged: list = [None] * len(scheduled)
        cached_names: list[str] = []
        for i, r in enumerate(scheduled):
            if cacheable(r.name):
                hit = self.store.get_partial(digest, r.name, r.params)
                if hit is not MISS:
                    merged[i] = hit
                    cached_names.append(r.name)
        missing = [i for i, v in enumerate(merged) if v is None]

        mode = "cached"
        n_events = int(health["n_events"]) if health is not None else 0
        skipped = 0
        last_sid: int | None = None
        sid_seen = sid_present  # cache hits require stored sample ids
        if missing:
            sub = [scheduled[i] for i in missing]
            specs_sub = [r.spec for r in sub]
            scanned = None

            # 2. incremental: a stored state whose CRCs prefix this trace
            if digest is not None and sid_present:
                state = self.store.find_prefix_state(health)
                if state is not None:
                    prior: list | None = []
                    for r in sub:
                        p = self.store.get_partial(state["digest"], r.name, r.params)
                        if p is MISS:
                            prior = None
                            break
                        prior.append(p)
                    if prior is not None:
                        got = self._tail_scan(path, specs_sub, size, state)
                        if got is not None:
                            tail, n_tail, last_sid, _ = got
                            scanned = (
                                prior
                                if tail is None
                                else merge_partial_lists(prior, tail, specs_sub)
                            )
                            skipped = int(state["n_events"])
                            n_events = skipped + n_tail
                            sid_seen = True
                            mode = "incremental"
                            if self.metrics is not None:
                                self.metrics.counter("cache.incremental_scans").inc()

            # 3. full scan for whatever the caches could not provide
            if scanned is None:
                scanned, n_events, last_sid, sid_seen = self._fold_stream(
                    iter_trace_chunks(
                        path,
                        chunk_size=size,
                        metrics=self.metrics,
                        journal=self.journal,
                    ),
                    specs_sub,
                )
                mode = "full"
                if scanned is None:
                    scanned = [get_pass(r.name).init(r.params) for r in sub]
            for i, partial in zip(missing, scanned):
                merged[i] = partial

            # persist what was just computed (and the trace's state, so a
            # future appended archive can match this one as its prefix)
            if digest is not None:
                for i in missing:
                    r = scheduled[i]
                    if cacheable(r.name):
                        self.store.put_partial(digest, r.name, r.params, merged[i])
                if sid_present and last_sid is not None:
                    self.store.put_state(digest, health, last_sid)
        self.timers.add("stream-events", 0.0, items=n_events - skipped)

        degraded = n_events > 0 and not sid_seen
        if degraded and self.journal is not None:
            self.journal.warning(
                "archive stores no sample ids: reuse windows are "
                "chunk-delimited and results depend on chunk_size",
                path=str(path),
                chunk_size=size,
                reuse_scope="chunk",
            )

        index = {r.name: i for i, r in enumerate(scheduled)}
        diag_p = merged[index["diagnostics"]]
        implied = diag_p.a_obs + diag_p.n_suppressed
        rho = (meta.n_loads_total / implied) if implied else 1.0
        rho = max(rho, 1.0)
        fn_names = {
            int(k): v
            for k, v in (getattr(meta, "extra", None) or {}).get("fn_names", {}).items()
        }
        results = finalize_schedule(
            scheduled, merged, RunContext(rho=rho, fn_names=fn_names)
        )
        captures, survivals = results["captures"]
        results["reuse"].scope = "chunk" if degraded else "sample"
        if self.journal is not None:
            self.journal.emit(
                "stage",
                stage="analyze-file",
                path=str(path),
                n_events=n_events,
                rho=rho,
                passes=[r.name for r in scheduled],
                chunk_size=size,
                workers=self.workers,
                mode=mode,
                cached_passes=cached_names,
                skipped_events=skipped,
                seconds=time.perf_counter() - t_stream,
            )
        return FileAnalysis(
            meta=meta,
            n_events=n_events,
            rho=rho,
            diagnostics=results["diagnostics"],
            captures=captures,
            survivals=survivals,
            reuse=results["reuse"],
            pass_results=results,
            digest=digest,
            mode=mode,
            skipped_events=skipped,
        )


@dataclass
class FileAnalysis:
    """Merged whole-trace results of :meth:`ParallelEngine.analyze_file`."""

    meta: object
    n_events: int
    rho: float
    diagnostics: FootprintDiagnostics
    captures: int
    survivals: int
    reuse: ReuseHistogram
    #: every scheduled pass's finalized result, keyed by pass name
    pass_results: dict = field(default_factory=dict)
    #: content digest the analysis was addressed under (None when the
    #: archive has no usable health record or no store was configured)
    digest: str | None = None
    #: how the results were obtained: ``"cached"`` (served whole from
    #: the store), ``"incremental"`` (cached prefix + tail scan), or
    #: ``"full"`` (cold scan). The streaming service surfaces this in
    #: query responses so clients can see the incremental path working.
    mode: str = "full"
    #: events skipped by the verified-prefix scan in incremental mode
    skipped_events: int = 0

    @property
    def reuse_scope(self) -> str:
        """``"sample"`` or ``"chunk"`` — see :attr:`ReuseHistogram.scope`.

        ``"chunk"`` flags that the archive stored no sample ids, so the
        reuse histogram's windows are chunk-delimited and its numbers
        depend on the chunk size the analysis ran with.
        """
        return self.reuse.scope
