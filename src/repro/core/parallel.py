"""Parallel sharded analysis engine with mergeable window partials.

The paper's analysis stage (SS:IV-V) is embarrassingly parallel across
trace windows: footprint is a set cardinality, captures/survivals a
saturating per-block count, the reuse histogram an integer tally that
resets at sample boundaries, and heatmaps are matrix sums. This module
exploits that by

1. **sharding** a trace into sample-aligned chunks (:func:`plan_shards` —
   a shard never splits a sample, so intra-sample computations are
   unaffected by the cut);
2. **fanning out** per-shard partial computation across a
   ``concurrent.futures`` process pool; and
3. **merging** partials with explicit associative operators
   (:class:`DiagnosticsPartial.merge`, :class:`CapturesPartial.merge`,
   :meth:`~repro.core.reuse.ReuseHistogram.merge`, matrix addition for
   heatmaps) whose results are **bit-identical** to the serial path.

Exactness argument, per metric:

* *footprint / per-class footprint* — unique block ids are kept as
  sorted ``uint64`` arrays; ``union`` of sorted sets is associative and
  order-independent, so ``|union|`` equals the serial ``np.unique``
  count for any shard split (sample alignment not even required).
* *captures/survivals* — a block's observed count saturates at 2; the
  (once, multi) set pair forms a commutative monoid under
  :meth:`CapturesPartial.merge`.
* *reuse histogram* — distances reset at sample boundaries, so a
  sample-aligned shard computes exactly the distances the serial pass
  assigns to its events; all tallies are integers and integer addition
  is exact.
* *heatmaps* — bin geometry is fixed globally before sharding; count
  matrices are integers, and the ``dsum`` float matrix accumulates
  integer-valued distances far below 2**53, so float addition is exact.
* *derived floats* (``dF``, ``A_est``, mean D, cell means) are computed
  once, from merged integer totals, by the same expressions the serial
  code uses — identical operands, identical results.

The engine also memoizes merged partials in an LRU cache keyed by
``(window_id, block, metric)`` so repeated zoom/interval queries over
the same window are free, and records per-stage wall-clock and
throughput in a :class:`~repro._util.timers.StageTimers` (surfaced by
``memgaze report --stats``).

Observability is opt-in and zero-cost when off: pass a
:class:`~repro.obs.journal.RunJournal` and the engine journals its
shard plans, merges, and streaming progress — pool workers journal
their own ``shard-analyzed`` lines directly (the journal's ``O_APPEND``
writer is process-safe and pickles down to a path). Pass a
:class:`~repro.obs.metrics.MetricsRegistry` and the engine counts
shards, events, and merges and fills the ``parallel.shard_events``
histogram; ``memgaze report --journal/--metrics`` exports both.
"""

from __future__ import annotations

import itertools
import os
import time
from collections import OrderedDict
from concurrent.futures import Executor, Future, ProcessPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro._util.timers import StageTimers
from repro._util.validate import check_power_of_two
from repro.core.diagnostics import FootprintDiagnostics
from repro.core.heatmap import (
    HeatmapResult,
    accumulate_heatmap,
    finalize_heatmap,
    heatmap_geometry,
)
from repro.core.metrics import block_ids
from repro.core.reuse import _HIST_MAX_EXP, ReuseHistogram, reuse_histogram
from repro.trace.event import EVENT_DTYPE, LoadClass

__all__ = [
    "plan_shards",
    "DiagnosticsPartial",
    "CapturesPartial",
    "LRUCache",
    "ParallelEngine",
]

#: below this many events a single shard is used — pool overhead would
#: dominate any gain.
_MIN_PARALLEL_EVENTS = 16_384
#: shards per worker when no explicit chunk size is given (load balance).
_CHUNKS_PER_WORKER = 4


# -- shard planning -----------------------------------------------------------


def plan_shards(
    n: int,
    sample_id: np.ndarray | None = None,
    *,
    n_shards: int | None = None,
    chunk_size: int | None = None,
) -> list[tuple[int, int]]:
    """Split ``[0, n)`` into contiguous shards that never cut a sample.

    Exactly one of ``n_shards`` / ``chunk_size`` picks the target shard
    size; with ``sample_id`` given, each cut is moved forward to the next
    sample boundary so every sample lands whole in one shard.
    """
    if n_shards is None and chunk_size is None:
        raise ValueError("pass n_shards or chunk_size")
    if n_shards is not None and chunk_size is not None:
        raise ValueError("pass only one of n_shards / chunk_size")
    if n <= 0:
        return []
    if chunk_size is None:
        if n_shards <= 0:
            raise ValueError(f"n_shards must be > 0, got {n_shards}")
        chunk_size = -(-n // n_shards)  # ceil
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be > 0, got {chunk_size}")

    if sample_id is None:
        cuts = list(range(0, n, chunk_size)) + [n]
        return list(zip(cuts[:-1], cuts[1:]))

    if len(sample_id) != n:
        raise ValueError("sample_id length must match events")
    # sample start indices (always includes 0)
    starts = np.concatenate(
        [[0], np.flatnonzero(np.diff(np.asarray(sample_id))) + 1, [n]]
    ).astype(np.int64)
    shards: list[tuple[int, int]] = []
    lo = 0
    while lo < n:
        target = lo + chunk_size
        if target >= n:
            hi = n
        else:
            # first sample boundary at or after the target; a sample
            # longer than chunk_size lands whole in one oversized shard
            hi = int(starts[np.searchsorted(starts, target, side="left")])
        shards.append((lo, hi))
        lo = hi
    return shards


# -- mergeable partials -------------------------------------------------------


def _sorted_unique(a: np.ndarray) -> np.ndarray:
    return np.unique(a)


@dataclass
class DiagnosticsPartial:
    """Mergeable state behind footprint + diagnostics for one shard.

    Unique block ids are sorted ``uint64`` arrays (set semantics); the
    counters are plain integers. :meth:`merge` is associative and
    commutative, and :meth:`finalize` evaluates the exact expressions of
    :func:`repro.core.diagnostics.compute_diagnostics` on the merged
    integer totals.
    """

    blocks: np.ndarray  # sorted unique non-Constant block ids
    strided: np.ndarray  # sorted unique Strided block ids
    irregular: np.ndarray  # sorted unique Irregular block ids
    has_const: bool
    a_obs: int  # observed records
    n_suppressed: int  # suppressed Constant loads (sum of n_const)
    n_const_records: int  # records with cls == CONSTANT

    @classmethod
    def identity(cls) -> "DiagnosticsPartial":
        """The merge identity (an empty shard)."""
        z = np.empty(0, dtype=np.uint64)
        return cls(z, z, z, False, 0, 0, 0)

    @classmethod
    def from_events(cls, events: np.ndarray, block: int = 1) -> "DiagnosticsPartial":
        """Compute the partial for one shard of records."""
        if events.dtype != EVENT_DTYPE:
            raise TypeError(f"expected EVENT_DTYPE events, got {events.dtype}")
        check_power_of_two("block", block)
        ids = block_ids(events, block)
        cls_col = events["cls"]
        const_mask = cls_col == int(LoadClass.CONSTANT)
        n_suppressed = int(events["n_const"].sum())
        return cls(
            blocks=_sorted_unique(ids[~const_mask]),
            strided=_sorted_unique(ids[cls_col == int(LoadClass.STRIDED)]),
            irregular=_sorted_unique(ids[cls_col == int(LoadClass.IRREGULAR)]),
            has_const=bool(const_mask.any() or n_suppressed > 0),
            a_obs=len(events),
            n_suppressed=n_suppressed,
            n_const_records=int(const_mask.sum()),
        )

    def merge(self, other: "DiagnosticsPartial") -> "DiagnosticsPartial":
        """Associative merge: set unions plus counter sums."""
        return DiagnosticsPartial(
            blocks=np.union1d(self.blocks, other.blocks),
            strided=np.union1d(self.strided, other.strided),
            irregular=np.union1d(self.irregular, other.irregular),
            has_const=self.has_const or other.has_const,
            a_obs=self.a_obs + other.a_obs,
            n_suppressed=self.n_suppressed + other.n_suppressed,
            n_const_records=self.n_const_records + other.n_const_records,
        )

    # -- finalizers (the only place floats appear) --

    @property
    def footprint(self) -> int:
        """Observed footprint F of the merged window."""
        if self.a_obs == 0:
            return 0
        return len(self.blocks) + (1 if self.has_const else 0)

    @property
    def footprint_by_class(self) -> dict[LoadClass, int]:
        """Per-class footprint decomposition of the merged window."""
        return {
            LoadClass.CONSTANT: 1 if self.has_const else 0,
            LoadClass.STRIDED: len(self.strided),
            LoadClass.IRREGULAR: len(self.irregular),
        }

    def finalize(self, rho: float = 1.0) -> FootprintDiagnostics:
        """The diagnostic bundle, identical to the serial computation."""
        if rho < 1.0:
            raise ValueError(f"rho must be >= 1, got {rho}")
        a_implied = self.a_obs + self.n_suppressed
        f = self.footprint
        f_str = len(self.strided)
        f_irr = len(self.irregular)
        window = a_implied if a_implied else 1
        n_const_accesses = self.n_suppressed + self.n_const_records
        return FootprintDiagnostics(
            A_obs=self.a_obs,
            A_implied=a_implied,
            A_est=rho * a_implied,
            F=f,
            F_est=rho * f,
            F_str=f_str,
            F_irr=f_irr,
            dF=f / window if a_implied else 0.0,
            dF_str=f_str / window if a_implied else 0.0,
            dF_irr=f_irr / window if a_implied else 0.0,
            A_const_pct=100.0 * n_const_accesses / window if a_implied else 0.0,
        )


@dataclass
class CapturesPartial:
    """Mergeable captures/survivals state: per-block counts saturated at 2.

    ``once`` holds blocks seen exactly once so far, ``multi`` blocks seen
    two or more times (both sorted unique arrays of non-Constant block
    ids). Saturated counting forms a commutative monoid, so the merge is
    associative and shard order cannot change the result.
    """

    once: np.ndarray
    multi: np.ndarray

    @classmethod
    def identity(cls) -> "CapturesPartial":
        """The merge identity (an empty shard)."""
        z = np.empty(0, dtype=np.uint64)
        return cls(z, z)

    @classmethod
    def from_events(cls, events: np.ndarray, block: int = 1) -> "CapturesPartial":
        """Compute the partial for one shard of records."""
        if events.dtype != EVENT_DTYPE:
            raise TypeError(f"expected EVENT_DTYPE events, got {events.dtype}")
        check_power_of_two("block", block)
        nc = events[events["cls"] != int(LoadClass.CONSTANT)]
        if len(nc) == 0:
            return cls.identity()
        ids, counts = np.unique(block_ids(nc, block), return_counts=True)
        return cls(once=ids[counts == 1], multi=ids[counts >= 2])

    def merge(self, other: "CapturesPartial") -> "CapturesPartial":
        """Associative merge of saturated counts."""
        # seen >= 2 total: already multi on either side, or once on both
        multi = np.union1d(
            np.union1d(self.multi, other.multi),
            np.intersect1d(self.once, other.once),
        )
        # seen exactly once total: once on exactly one side, never multi
        once = np.setdiff1d(
            np.setxor1d(self.once, other.once), multi, assume_unique=True
        )
        return CapturesPartial(once=once, multi=multi)

    def finalize(self) -> tuple[int, int]:
        """(C, S): blocks with and without reuse in the merged window."""
        return len(self.multi), len(self.once)


# -- worker-side shard evaluation --------------------------------------------
#
# One worker call evaluates every requested task for its shard, so a
# shard's records cross the process boundary once. Task specs are plain
# tuples (picklable): ("diagnostics"|"captures", block) or
# ("reuse", block, max_exp) or
# ("heatmap", base, size, page_size, t_edges, n_pages, n_bins, access_block).


def _eval_shard(
    events: np.ndarray,
    sample_id: np.ndarray | None,
    tasks: tuple,
    journal=None,
) -> list:
    """Evaluate every task's partial for one shard (runs in a worker).

    With a journal, the evaluating process (a pool worker, when the
    engine fans out) appends its own ``shard-analyzed`` line — the
    journal writes are atomic appends, so worker lines interleave
    safely with the parent's.
    """
    t0 = time.perf_counter() if journal is not None else 0.0
    out: list = []
    for task in tasks:
        kind = task[0]
        if kind == "diagnostics":
            out.append(DiagnosticsPartial.from_events(events, task[1]))
        elif kind == "captures":
            out.append(CapturesPartial.from_events(events, task[1]))
        elif kind == "reuse":
            out.append(reuse_histogram(events, task[1], sample_id, max_exp=task[2]))
        elif kind == "heatmap":
            _, base, size, page_size, t_edges, n_pages, n_bins, access_block = task
            mask = events["cls"] != int(LoadClass.CONSTANT)
            nc = events[mask]
            sid = sample_id[mask] if sample_id is not None else None
            from repro.core.reuse import reuse_distances

            d = reuse_distances(nc, access_block, sid)
            addr = nc["addr"].astype(np.int64)
            t = nc["t"].astype(np.int64)
            in_region = (addr >= base) & (addr < base + size)
            out.append(
                accumulate_heatmap(
                    addr[in_region],
                    t[in_region],
                    d[in_region],
                    base=base,
                    page_size=page_size,
                    t_edges=t_edges,
                    n_pages=n_pages,
                    n_bins=n_bins,
                )
            )
        else:  # pragma: no cover - internal protocol
            raise ValueError(f"unknown shard task {kind!r}")
    if journal is not None:
        journal.emit(
            "shard-analyzed",
            n_events=len(events),
            n_tasks=len(tasks),
            tasks=[t[0] for t in tasks],
            seconds=time.perf_counter() - t0,
        )
    return out


def _merge_partials(a: list, b: list, tasks: tuple) -> list:
    """Merge two aligned partial lists task-by-task."""
    merged: list = []
    for pa, pb, task in zip(a, b, tasks):
        if task[0] == "heatmap":
            merged.append(tuple(x + y for x, y in zip(pa, pb)))
        else:
            merged.append(pa.merge(pb))
    return merged


def _fn_window_worker(
    events: np.ndarray, rho: float, block: int
) -> FootprintDiagnostics:
    """Per-function code-window diagnostics (runs in a worker)."""
    from repro.core.diagnostics import compute_diagnostics

    return compute_diagnostics(events, rho=rho, block=block)


# -- LRU memoization ----------------------------------------------------------


class LRUCache:
    """A small LRU map used to memoize merged partials per window.

    Keys are ``(window_id, block, metric)`` tuples; values are merged
    partials (not finalized bundles), so the same cached entry serves
    queries at different ``rho``.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        self.capacity = capacity
        self._data: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key):
        """The cached value for ``key``, or None (marks it most recent)."""
        if key in self._data:
            self._data.move_to_end(key)
            self.hits += 1
            return self._data[key]
        self.misses += 1
        return None

    def put(self, key, value) -> None:
        """Insert ``key``, evicting the least recently used entry if full."""
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)


# -- the engine ---------------------------------------------------------------


class ParallelEngine:
    """Shard-map-merge executor for the analysis layer.

    ``workers <= 1`` runs the identical shard+merge path inline (useful
    for testing the merge operators and as the no-pool fallback);
    ``workers > 1`` fans shards out over a process pool. Either way the
    output is bit-identical to the serial functions in
    :mod:`repro.core.metrics` / :mod:`repro.core.reuse` /
    :mod:`repro.core.heatmap`.
    """

    def __init__(
        self,
        workers: int | None = None,
        chunk_size: int | None = None,
        *,
        cache_size: int = 256,
        timers: StageTimers | None = None,
        journal=None,
        metrics=None,
    ) -> None:
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {self.workers}")
        self.chunk_size = chunk_size
        self.cache = LRUCache(cache_size)
        self.timers = timers if timers is not None else StageTimers()
        #: optional RunJournal — shard plans, merges and per-shard worker
        #: lines are journaled when set (None = no journaling at all)
        self.journal = journal
        #: optional MetricsRegistry — pipeline counters/histograms land
        #: here when set (None = no metric accounting at all)
        self.metrics = metrics
        self._pool: Executor | None = None
        self._tokens = itertools.count()

    def window_token(self) -> int:
        """A fresh namespace for window ids, unique within this engine.

        Callers analyzing several traces through one engine prefix their
        ``window_id`` keys with a token so cached partials of different
        traces can never collide.
        """
        return next(self._tokens)

    # -- lifecycle --

    def _executor(self) -> Executor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=max(1, self.workers))
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "ParallelEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- shard-map-merge core --

    def _plan(self, n: int, sample_id: np.ndarray | None) -> list[tuple[int, int]]:
        with self.timers.stage("plan"):
            if self.workers <= 1 and self.chunk_size is None:
                shards = [(0, n)] if n else []
            elif self.chunk_size is not None:
                shards = plan_shards(n, sample_id, chunk_size=self.chunk_size)
            else:
                size = max(
                    -(-n // (max(1, self.workers) * _CHUNKS_PER_WORKER)),
                    _MIN_PARALLEL_EVENTS,
                )
                shards = plan_shards(n, sample_id, chunk_size=size)
        self._observe_plan(n, shards)
        return shards

    def _observe_plan(self, n: int, shards: list[tuple[int, int]]) -> None:
        if self.metrics is not None:
            self.metrics.counter("parallel.plans").inc()
            self.metrics.counter("parallel.shards").inc(len(shards))
            h = self.metrics.histogram("parallel.shard_events")
            for lo, hi in shards:
                h.observe(hi - lo)
        if self.journal is not None:
            self.journal.emit(
                "stage",
                stage="shard-plan",
                n_events=n,
                n_shards=len(shards),
                workers=self.workers,
                chunk_size=self.chunk_size,
            )

    def _run(
        self,
        events: np.ndarray,
        sample_id: np.ndarray | None,
        tasks: tuple,
        *,
        whole: bool = False,
    ) -> list:
        """Evaluate ``tasks`` over sharded ``events`` and merge partials.

        ``whole`` forces a single shard (needed when a computation has
        cross-event state and no sample boundaries to cut at).
        """
        n = len(events)
        shards = [(0, n)] if (whole and n) else self._plan(n, sample_id)
        if not shards:
            return _eval_shard(events, sample_id, tasks)
        use_pool = (
            self.workers > 1 and len(shards) > 1 and n >= _MIN_PARALLEL_EVENTS
        )
        if self.metrics is not None:
            self.metrics.counter("parallel.events").inc(n)
            self.metrics.counter(
                "parallel.runs_pooled" if use_pool else "parallel.runs_inline"
            ).inc()
        partials: list[list] = []
        if use_pool:
            pool = self._executor()
            with self.timers.stage("scatter", items=n):
                futures: list[Future] = [
                    pool.submit(
                        _eval_shard,
                        events[lo:hi],
                        sample_id[lo:hi] if sample_id is not None else None,
                        tasks,
                        self.journal,
                    )
                    for lo, hi in shards
                ]
            with self.timers.stage("compute", items=n):
                partials = [f.result() for f in futures]
        else:
            with self.timers.stage("compute", items=n):
                partials = [
                    _eval_shard(
                        events[lo:hi],
                        sample_id[lo:hi] if sample_id is not None else None,
                        tasks,
                        self.journal,
                    )
                    for lo, hi in shards
                ]
        t_merge = time.perf_counter()
        with self.timers.stage("merge", items=len(shards)):
            merged = partials[0]
            for p in partials[1:]:
                merged = _merge_partials(merged, p, tasks)
        if self.metrics is not None:
            self.metrics.counter("parallel.merges").inc(len(shards) - 1)
        if self.journal is not None:
            self.journal.emit(
                "stage",
                stage="merge",
                n_partials=len(shards),
                tasks=[t[0] for t in tasks],
                seconds=time.perf_counter() - t_merge,
            )
        return merged

    def _cached_partial(
        self,
        events: np.ndarray,
        sample_id: np.ndarray | None,
        task: tuple,
        window_id,
        *,
        whole: bool = False,
    ):
        """One task's merged partial, memoized by (window_id, block, metric)."""
        key = None
        if window_id is not None:
            key = (window_id, task[1], task[0])
            hit = self.cache.get(key)
            if hit is not None:
                return hit
        partial = self._run(events, sample_id, (task,), whole=whole)[0]
        if key is not None:
            self.cache.put(key, partial)
        return partial

    # -- public metric API (mirrors the serial functions) --

    def footprint(
        self,
        events: np.ndarray,
        block: int = 1,
        sample_id: np.ndarray | None = None,
        window_id=None,
    ) -> int:
        """Observed footprint F; equals :func:`repro.core.metrics.footprint`."""
        p = self._cached_partial(
            events, sample_id, ("diagnostics", block), window_id
        )
        return p.footprint

    def footprint_by_class(
        self,
        events: np.ndarray,
        block: int = 1,
        sample_id: np.ndarray | None = None,
        window_id=None,
    ) -> dict[LoadClass, int]:
        """Per-class footprint; equals the serial decomposition."""
        p = self._cached_partial(
            events, sample_id, ("diagnostics", block), window_id
        )
        return p.footprint_by_class

    def captures_survivals(
        self,
        events: np.ndarray,
        block: int = 1,
        sample_id: np.ndarray | None = None,
        window_id=None,
    ) -> tuple[int, int]:
        """(C, S); equals :func:`repro.core.metrics.captures_survivals`."""
        p = self._cached_partial(events, sample_id, ("captures", block), window_id)
        return p.finalize()

    def diagnostics(
        self,
        events: np.ndarray,
        rho: float = 1.0,
        block: int = 1,
        sample_id: np.ndarray | None = None,
        window_id=None,
    ) -> FootprintDiagnostics:
        """The diagnostic bundle; equals
        :func:`repro.core.diagnostics.compute_diagnostics`."""
        p = self._cached_partial(
            events, sample_id, ("diagnostics", block), window_id
        )
        return p.finalize(rho)

    def reuse_histogram(
        self,
        events: np.ndarray,
        block: int = 64,
        sample_id: np.ndarray | None = None,
        window_id=None,
        max_exp: int = _HIST_MAX_EXP,
    ) -> ReuseHistogram:
        """Reuse-distance histogram; equals
        :func:`repro.core.reuse.reuse_histogram`.

        Distance tracking resets only at sample boundaries, so without
        ``sample_id`` the trace is one window and cannot be cut: the
        computation then runs as a single shard.
        """
        return self._cached_partial(
            events,
            sample_id,
            ("reuse", block, max_exp),
            window_id,
            whole=sample_id is None,
        )

    def heatmap(
        self,
        events: np.ndarray,
        base: int,
        size: int,
        *,
        n_pages: int = 64,
        n_bins: int = 64,
        access_block: int = 64,
        sample_id: np.ndarray | None = None,
    ) -> HeatmapResult:
        """Region heatmap; equals :func:`repro.core.heatmap.access_heatmap`."""
        if events.dtype != EVENT_DTYPE:
            raise TypeError(f"expected EVENT_DTYPE events, got {events.dtype}")
        if size <= 0 or n_pages <= 0 or n_bins <= 0:
            raise ValueError("size, n_pages and n_bins must be > 0")
        check_power_of_two("block", access_block)
        # geometry must be fixed globally before sharding
        nc = events[events["cls"] != int(LoadClass.CONSTANT)]
        page_size, t_edges = heatmap_geometry(nc, size, n_pages, n_bins)
        task = (
            "heatmap", base, size, page_size, t_edges, n_pages, n_bins, access_block,
        )
        counts, dsum, dcnt = self._run(
            events, sample_id, (task,), whole=sample_id is None
        )[0]
        return finalize_heatmap(
            counts, dsum, dcnt, base=base, page_size=page_size, t_edges=t_edges
        )

    def code_windows(
        self,
        events: np.ndarray,
        rho: float = 1.0,
        block: int = 1,
        fn_names: dict[int, str] | None = None,
    ) -> dict[str, FootprintDiagnostics]:
        """Per-function diagnostics; equals
        :func:`repro.core.windows.code_windows`.

        Functions are natural shards — each worker gets one function's
        accumulated accesses.
        """
        if events.dtype != EVENT_DTYPE:
            raise TypeError(f"expected EVENT_DTYPE events, got {events.dtype}")
        fn_names = fn_names or {}
        fids = np.unique(events["fn"])
        out: dict[str, FootprintDiagnostics] = {}
        if self.workers > 1 and len(fids) > 1 and len(events) >= _MIN_PARALLEL_EVENTS:
            pool = self._executor()
            with self.timers.stage("compute", items=len(events)):
                futures = {
                    int(fid): pool.submit(
                        _fn_window_worker, events[events["fn"] == fid], rho, block
                    )
                    for fid in fids
                }
                for fid, fut in futures.items():
                    out[fn_names.get(fid, f"fn{fid}")] = fut.result()
            return out
        from repro.core.windows import code_windows as serial_code_windows

        with self.timers.stage("compute", items=len(events)):
            return serial_code_windows(events, rho=rho, block=block, fn_names=fn_names)

    # -- streamed file analysis --

    def analyze_file(
        self,
        path,
        *,
        block: int = 1,
        reuse_block: int = 64,
        chunk_size: int | None = None,
    ) -> "FileAnalysis":
        """Stream a trace archive through the pool without materializing it.

        The parent reads sample-aligned chunks sequentially
        (:func:`repro.trace.tracefile.iter_trace_chunks`) and feeds them
        to workers as they arrive, merging partials in arrival order; at
        most ``2 * workers`` chunks are in flight, so peak memory is
        bounded by the chunk size, not the trace size.

        Footprint, diagnostics and captures/survivals are exactly the
        whole-trace values for any chunking. The reuse histogram resets
        at sample boundaries, so it matches the in-memory result when
        the archive stores sample ids; without them each chunk is its
        own reuse window.
        """
        from repro.trace.tracefile import iter_trace_chunks, read_trace_meta

        meta = read_trace_meta(path)
        tasks = (
            ("diagnostics", block),
            ("captures", block),
            ("reuse", reuse_block, _HIST_MAX_EXP),
        )
        size = chunk_size or self.chunk_size or (1 << 20)
        merged: list | None = None
        n_events = 0
        pool = self._executor() if self.workers > 1 else None
        in_flight: list[Future] = []

        def fold(partials: list) -> None:
            nonlocal merged
            with self.timers.stage("merge", items=1):
                merged = (
                    partials
                    if merged is None
                    else _merge_partials(merged, partials, tasks)
                )

        t_stream = time.perf_counter()
        with self.timers.stage("stream"):
            for ev, sid in iter_trace_chunks(
                path, chunk_size=size, metrics=self.metrics
            ):
                n_events += len(ev)
                if pool is None:
                    fold(_eval_shard(ev, sid, tasks, self.journal))
                    continue
                in_flight.append(
                    pool.submit(_eval_shard, ev, sid, tasks, self.journal)
                )
                if self.metrics is not None:
                    self.metrics.gauge("parallel.peak_in_flight").set(len(in_flight))
                while len(in_flight) >= 2 * self.workers:
                    fold(in_flight.pop(0).result())
            for fut in in_flight:
                fold(fut.result())
        if merged is None:
            merged = [
                DiagnosticsPartial.identity(),
                CapturesPartial.identity(),
                ReuseHistogram.identity(),
            ]
        self.timers.add("stream-events", 0.0, items=n_events)

        diag_p, cap_p, reuse_h = merged
        implied = diag_p.a_obs + diag_p.n_suppressed
        rho = (meta.n_loads_total / implied) if implied else 1.0
        rho = max(rho, 1.0)
        captures, survivals = cap_p.finalize()
        if self.journal is not None:
            self.journal.emit(
                "stage",
                stage="analyze-file",
                path=str(path),
                n_events=n_events,
                rho=rho,
                block=block,
                reuse_block=reuse_block,
                chunk_size=size,
                workers=self.workers,
                seconds=time.perf_counter() - t_stream,
            )
        return FileAnalysis(
            meta=meta,
            n_events=n_events,
            rho=rho,
            diagnostics=diag_p.finalize(rho),
            captures=captures,
            survivals=survivals,
            reuse=reuse_h,
        )


@dataclass
class FileAnalysis:
    """Merged whole-trace results of :meth:`ParallelEngine.analyze_file`."""

    meta: object
    n_events: int
    rho: float
    diagnostics: FootprintDiagnostics
    captures: int
    survivals: int
    reuse: ReuseHistogram
