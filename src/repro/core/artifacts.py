"""Persistent content-addressed store for analysis-pass results.

The pass framework made one scan compute every metric; this layer makes
the *second* run of that scan free. Results persist across processes in
a :class:`~repro._util.diskcache.DiskCache`, addressed by **what was
analyzed and how** — never by path or mtime:

``trace digest``
    SHA-256 over the archive's ``health`` record — the per-chunk CRC32s
    that :func:`repro.trace.tracefile.write_trace` embeds (event bytes,
    sample-id bytes, counts, chunk geometry). Two archives with the same
    events and sample ids share a digest wherever they live; touching a
    single event changes it. In-memory event arrays digest through the
    same CRC chunking (:meth:`ArtifactStore.digest_events`), so the
    eager and streamed analysis paths address identical entries.

``pass name + frozen params``
    The resolved request, hashed through :func:`freeze_params` — the
    same canonical form the engine's in-memory LRU keys use, so an
    ``ndarray`` parameter (heatmap ``t_edges``) keys by its bytes.

``schema version``
    :data:`SCHEMA_VERSION` is folded into every key. Bumping it when a
    partial's layout changes orphans old entries (the size-bounded LRU
    reclaims them) instead of unpickling stale shapes.

Two granularities are stored:

* **whole-trace partials** — the merged (unfinalized) partial of a pass
  over the full trace. Finalization is cheap and deterministic, so
  re-finalizing a cached partial is bit-identical to recomputation —
  the same equivalence contract the merge operators honor.
* **trace states** — a small record of a trace's health CRCs and last
  sample id. When a new archive's CRC list *extends* a stored state's
  (same prefix, new chunks appended), the engine scans only the tail
  and merges against the cached prefix partials: incremental
  re-analysis (:meth:`ArtifactStore.find_prefix_state`).

Unfinalized partials are stored (not finalized results) because they
merge: the same entry serves an exact re-run *and* the prefix of an
extended trace.
"""

from __future__ import annotations

import hashlib
import json

import numpy as np

from repro._util.diskcache import MISS, DiskCache

__all__ = ["MISS", "SCHEMA_VERSION", "freeze_params", "ArtifactStore"]

#: Bump when a partial's pickle layout or a pass's partial semantics
#: change: every key embeds it, so old entries become unreachable.
SCHEMA_VERSION = 1

#: Default size bound for CLI-managed caches (512 MiB).
DEFAULT_MAX_BYTES = 512 * 1024 * 1024


def freeze_params(value):
    """A hashable, deterministic key form of a pass parameter value.

    Shared by the engine's in-memory LRU and the on-disk key material:
    dicts sort, sequences become tuples, ndarrays key by dtype/shape/
    bytes. ``repr`` of the result is stable across processes.
    """
    if isinstance(value, np.ndarray):
        return ("ndarray", value.dtype.str, value.shape, value.tobytes())
    if isinstance(value, dict):
        return tuple(sorted((k, freeze_params(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(freeze_params(v) for v in value)
    return value


def _canonical_health(health: dict) -> dict | None:
    """The digest-relevant subset of a health record, or None if unusable."""
    try:
        out = {
            "version": int(health["version"]),
            "chunk_events": int(health["chunk_events"]),
            "n_events": int(health["n_events"]),
            "events_crc": [int(c) for c in health["events_crc"]],
            "sample_id_crc": None
            if health.get("sample_id_crc") is None
            else [int(c) for c in health["sample_id_crc"]],
        }
    except (KeyError, TypeError, ValueError):
        return None
    return out


class ArtifactStore:
    """Content-addressed persistence for merged pass partials.

    A thin key-discipline layer over :class:`DiskCache`: it owns the
    naming scheme (``partial-<digest>-<keyhash>`` / ``state-<digest>``)
    and the prefix-matching logic for incremental re-analysis. All
    durability properties (atomic writes, corruption-as-miss, LRU
    eviction) come from the cache underneath.
    """

    def __init__(
        self,
        root,
        *,
        max_bytes: int | None = DEFAULT_MAX_BYTES,
        journal=None,
        metrics=None,
    ) -> None:
        self.cache = DiskCache(
            root, max_bytes=max_bytes, journal=journal, metrics=metrics
        )
        self.journal = journal

    # -- digests --------------------------------------------------------------

    @staticmethod
    def digest_health(health: dict) -> str | None:
        """SHA-256 hex digest of a health record's canonical content."""
        canon = _canonical_health(health)
        if canon is None:
            return None
        blob = json.dumps(canon, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    @staticmethod
    def digest_events(events: np.ndarray, sample_id: np.ndarray | None) -> str:
        """Digest of an in-memory trace, consistent with the archive digest.

        Builds the same per-chunk CRC record :func:`write_trace` embeds,
        so analyzing an array eagerly and streaming its archive address
        the same cache entries.
        """
        from repro.trace.tracefile import _health_record

        if sample_id is not None:
            sample_id = np.asarray(sample_id, dtype=np.int32)
        return ArtifactStore.digest_health(_health_record(events, sample_id))

    @staticmethod
    def archive_digest(path) -> str | None:
        """Digest of an on-disk archive via its health member (cheap).

        ``None`` when the archive has no readable health record — such
        archives cannot be content-addressed and are analyzed uncached.
        """
        from repro.trace.tracefile import read_trace_health

        health = read_trace_health(path)
        return None if health is None else ArtifactStore.digest_health(health)

    # -- whole-trace partials -------------------------------------------------

    @staticmethod
    def _partial_name(digest: str, pass_name: str, params: dict) -> str:
        material = repr((SCHEMA_VERSION, pass_name, freeze_params(params)))
        key = hashlib.sha256(material.encode("utf-8")).hexdigest()
        return f"partial-{digest[:32]}-{key[:32]}"

    def get_partial(self, digest: str, pass_name: str, params: dict):
        """The merged whole-trace partial for a pass, or :data:`MISS`."""
        return self.cache.get(self._partial_name(digest, pass_name, params))

    def put_partial(self, digest: str, pass_name: str, params: dict, partial) -> None:
        """Persist a merged whole-trace partial."""
        self.cache.put(self._partial_name(digest, pass_name, params), partial)

    # -- trace states (incremental append) ------------------------------------

    def put_state(
        self, digest: str, health: dict, last_sample_id: int | None
    ) -> None:
        """Record a trace's CRC fingerprint for future prefix matching."""
        canon = _canonical_health(health)
        if canon is None:
            return
        state = dict(canon)
        state["schema"] = SCHEMA_VERSION
        state["digest"] = digest
        state["last_sample_id"] = (
            None if last_sample_id is None else int(last_sample_id)
        )
        self.cache.put(f"state-{digest[:32]}", state)

    def get_state(self, digest: str) -> dict | None:
        """The stored trace state for an exact digest, or ``None``.

        Cheaper than :meth:`find_prefix_state` when the caller already
        knows the digest it wants — the streaming service uses it to
        confirm a session's archive has warm whole-trace state after an
        ingest, without scanning every stored state.
        """
        state = self.cache.get(f"state-{digest[:32]}")
        if state is MISS or not isinstance(state, dict):
            return None
        if state.get("schema") != SCHEMA_VERSION or state.get("digest") != digest:
            return None
        return state

    def find_prefix_state(self, health: dict) -> dict | None:
        """The longest stored trace state that is a strict prefix of ``health``.

        A candidate matches when its chunk geometry agrees, both traces
        carry sample ids (reuse windows need sample boundaries to make
        an appended tail mergeable), and every *complete* CRC chunk of
        the candidate equals the new trace's. The candidate's final CRC
        may cover a partial chunk whose bytes the new record checksums
        differently (they now sit inside a larger chunk) — that last
        span is verified during the skip scan instead
        (:class:`repro.trace.tracefile.PrefixSkip`).
        """
        target = _canonical_health(health)
        if target is None or target["sample_id_crc"] is None:
            return None
        best: dict | None = None
        for name in self.cache.names("state-"):
            state = self.cache.get(name)
            if state is MISS or not isinstance(state, dict):
                continue
            if state.get("schema") != SCHEMA_VERSION:
                continue
            if not self._is_prefix(state, target):
                continue
            if best is None or state["n_events"] > best["n_events"]:
                best = state
        return best

    @staticmethod
    def _is_prefix(state: dict, target: dict) -> bool:
        try:
            if state["chunk_events"] != target["chunk_events"]:
                return False
            n, chunk = int(state["n_events"]), int(target["chunk_events"])
            if not 0 < n < target["n_events"]:
                return False
            ev_crc, sid_crc = state["events_crc"], state["sample_id_crc"]
            if sid_crc is None or state.get("last_sample_id") is None:
                return False
            # the final CRC spans a partial chunk unless n divides evenly;
            # compare only the chunks both records checksummed identically
            k = len(ev_crc) if n % chunk == 0 else len(ev_crc) - 1
            return (
                len(ev_crc) == len(sid_crc)
                and ev_crc[:k] == target["events_crc"][: k]
                and sid_crc[:k] == target["sample_id_crc"][: k]
            )
        except (KeyError, TypeError, ValueError):
            return False

    # -- maintenance passthrough ----------------------------------------------

    def stats(self) -> dict:
        """Cache totals and session counters (see :meth:`DiskCache.stats`)."""
        return self.cache.stats()

    def prune(self, max_bytes: int) -> int:
        """Evict least-recently-used entries down to ``max_bytes``."""
        return self.cache.prune(max_bytes)

    def clear(self) -> int:
        """Remove every entry; returns the number removed."""
        return self.cache.clear()
