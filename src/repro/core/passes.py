"""Unified analysis-pass framework: one fused scan, many metrics.

MemGaze's analysis layer (paper §IV–§V) is a family of metrics that all
consume the same event stream: footprint diagnostics (Eqs. 1–4),
captures/survivals, reuse-distance histograms, heatmaps, hotspots. This
module gives them one shape — the **AnalysisPass protocol** — so a
single streaming scan over trace chunks computes every requested metric
at once instead of re-reading the trace once per metric:

* :class:`AnalysisPass` — the protocol: ``requires``/``provides``
  artifact keys, ``init() → partial``, ``update(partial, chunk, params)``,
  ``merge(a, b)``, ``finalize(partial, ctx, params)``. Partials follow
  the merge algebra of :mod:`repro.core.parallel` (associative +
  identity, integers until finalize), so fused results stay
  **bit-identical** to the legacy serial functions.
* :class:`ChunkContext` — the per-chunk artifact context. Shared
  intermediates (block-id arrays per block size, class masks, the
  non-Constant view, reuse-distance arrays, sample boundaries) are
  computed **once per chunk** and memoized; every pass scheduled on the
  chunk reads the same arrays. Hit/miss counters feed the observability
  layer.
* :func:`schedule_passes` — the dependency scheduler: resolves names
  through the registry, pulls in pass-on-pass dependencies
  (``requires`` entries of the form ``"pass:<name>"``), topo-sorts so a
  pass finalizes after its dependencies, and rejects unknown names with
  a listed-alternatives error.
* :func:`fused_scan` — the serial fused executor: one pass over an
  ``(events, sample_id)`` chunk iterator (e.g.
  :func:`repro.trace.tracefile.iter_trace_chunks`) updating every
  scheduled pass per chunk. :class:`repro.core.parallel.ParallelEngine`
  runs the identical ``scan_chunk``/``merge`` protocol fanned out over
  its process pool.

Registering a new metric is ~50 lines: subclass :class:`AnalysisPass`,
give it a mergeable partial, and call :func:`register_pass` — it then
shows up in ``memgaze passes``, runs fused with everything else via
``memgaze report --passes ...``, and parallelizes for free. See
``docs/passes.md`` for a worked example.
"""

from __future__ import annotations

import difflib
import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

import numpy as np

from repro._util.sortedset import (
    intersect_sorted,
    setdiff_sorted,
    setxor_sorted,
    union_sorted,
)
from repro.core.cachesim import (
    SweepPartial,
    sweep_configs,
    sweep_finalize,
    sweep_merge,
    sweep_update,
)
from repro.core.diagnostics import FootprintDiagnostics, finalize_diagnostics
from repro.core.heatmap import accumulate_heatmap, finalize_heatmap, region_points
from repro.core.hotspot import access_counts, rank_hotspots, roi_from_ranges
from repro.core.metrics import block_ids
from repro.core.reuse import (
    _HIST_MAX_EXP,
    ReuseHistogram,
    _boundaries,
    histogram_from_distances,
    reuse_distances,
)
from repro.trace.event import LoadClass

__all__ = [
    "ARTIFACT_KEYS",
    "AnalysisPass",
    "ChunkContext",
    "ClassMasks",
    "RunContext",
    "ResolvedRequest",
    "UnknownPassError",
    "register_pass",
    "unregister_pass",
    "get_pass",
    "list_passes",
    "schedule_passes",
    "scan_chunk",
    "merge_partial_lists",
    "finalize_schedule",
    "fused_scan",
    "to_jsonable",
    "DiagnosticsPartial",
    "CapturesPartial",
]

#: Chunk-level artifacts a pass may declare in ``requires``. Everything
#: here is served by :class:`ChunkContext`, computed once per chunk and
#: shared by all scheduled passes.
ARTIFACT_KEYS = frozenset(
    [
        "block_ids",  # ctx.block_ids(block): addr >> log2(block), per block size
        "class_masks",  # ctx.class_masks: constant/strided/irregular/nonconst
        "nonconstant",  # ctx.nonconstant: the non-Constant view + sample ids
        "reuse_distances",  # ctx.reuse_distances(block, nonconst=...): D kernel
        "sample_boundaries",  # ctx.sample_boundaries: window start indices
    ]
)


# -- shared intermediates (the artifact context) ------------------------------


@dataclass(frozen=True)
class ClassMasks:
    """Boolean masks over one chunk's records, one per load class."""

    const: np.ndarray
    strided: np.ndarray
    irregular: np.ndarray
    nonconst: np.ndarray


class ChunkContext:
    """Shared per-chunk intermediates, computed once and memoized.

    Every artifact accessor first consults the chunk's cache; ``hits``
    and ``misses`` count the sharing (two passes at the same block size
    hit; the first access of any artifact misses). The parallel engine
    folds these counters into its metrics registry as
    ``passes.artifact_hits`` / ``passes.artifact_misses``.
    """

    def __init__(self, events: np.ndarray, sample_id: np.ndarray | None) -> None:
        self.events = events
        self.sample_id = sample_id
        self._cache: dict = {}
        self.hits = 0
        self.misses = 0

    def _get(self, key, build):
        if key in self._cache:
            self.hits += 1
            return self._cache[key]
        self.misses += 1
        value = self._cache[key] = build()
        return value

    def block_ids(self, block: int) -> np.ndarray:
        """Access-block ids (``addr >> log2(block)``), memoized per size."""
        return self._get(("block_ids", block), lambda: block_ids(self.events, block))

    @property
    def class_masks(self) -> ClassMasks:
        """Per-class record masks, computed once per chunk."""

        def build() -> ClassMasks:
            cls_col = self.events["cls"]
            const = cls_col == int(LoadClass.CONSTANT)
            return ClassMasks(
                const=const,
                strided=cls_col == int(LoadClass.STRIDED),
                irregular=cls_col == int(LoadClass.IRREGULAR),
                nonconst=~const,
            )

        return self._get(("class_masks",), build)

    @property
    def nonconstant(self) -> tuple[np.ndarray, np.ndarray | None]:
        """The non-Constant record view and its sample ids."""

        def build():
            mask = self.class_masks.nonconst
            nc = self.events[mask]
            sid = self.sample_id[mask] if self.sample_id is not None else None
            return nc, sid

        return self._get(("nonconstant",), build)

    @property
    def sample_boundaries(self) -> np.ndarray:
        """Start index of each sample window (always includes 0)."""
        return self._get(
            ("sample_boundaries",),
            lambda: _boundaries(len(self.events), self.sample_id),
        )

    def reuse_distances(self, block: int, *, nonconst: bool = False) -> np.ndarray:
        """Spatio-temporal reuse distances D, memoized per (block, view).

        ``nonconst=True`` computes D over the non-Constant view (what
        heatmaps and region reuse measure); the default covers every
        record (what the reuse histogram tallies).
        """

        def build() -> np.ndarray:
            if nonconst:
                nc, sid = self.nonconstant
                return reuse_distances(nc, block, sid)
            return reuse_distances(self.events, block, self.sample_id)

        return self._get(("reuse_distances", block, nonconst), build)


@dataclass
class RunContext:
    """Finalize-time context: run-level knobs plus upstream pass results."""

    rho: float = 1.0
    fn_names: dict[int, str] = field(default_factory=dict)
    results: dict[str, Any] = field(default_factory=dict)

    def result(self, name: str) -> Any:
        """A dependency's finalized result (scheduler guarantees order)."""
        if name not in self.results:
            raise KeyError(
                f"pass result {name!r} not available — declare 'pass:{name}' "
                f"in requires so the scheduler orders it first"
            )
        return self.results[name]


def to_jsonable(value: Any) -> Any:
    """Recursively convert a pass result into JSON-serializable types.

    Dataclasses become ``{field: value}`` dicts, numpy arrays become
    (nested) lists, numpy scalars become Python ints/floats/bools, and
    tuples become lists. Dict keys are stringified when they are not
    already strings (JSON requires string keys; ``sort_keys`` then gives
    a canonical ordering). The conversion is structural and
    deterministic — no timestamps, ids, or hashes are introduced — so
    two identical results serialize byte-identically.
    """
    import dataclasses

    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: to_jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, np.ndarray):
        return [to_jsonable(v) for v in value.tolist()]
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, dict):
        return {
            (k if isinstance(k, str) else str(k)): to_jsonable(v)
            for k, v in value.items()
        }
    if isinstance(value, (list, tuple)):
        return [to_jsonable(v) for v in value]
    return value


# -- the pass protocol and registry -------------------------------------------


class AnalysisPass:
    """One metric as a mergeable streaming pass.

    Subclasses set ``name`` (registry key), ``requires`` (artifact keys
    from :data:`ARTIFACT_KEYS` and/or ``"pass:<name>"`` result
    dependencies), ``defaults`` (parameter defaults), and ``needs``
    (parameters that have no default and must be supplied), then
    implement the four hooks. The merge contract is the engine's:
    ``merge`` must be associative with ``init()`` as identity, and the
    partial must hold exact (integer/set) state so ``finalize`` computes
    derived floats once, from merged totals.
    """

    name: str = ""
    #: artifact keys and "pass:<name>" dependencies this pass reads.
    requires: tuple[str, ...] = ()
    #: result key (defaults to ``name``); dependents say "pass:<provides>".
    provides: str = ""
    #: parameter defaults merged under request params.
    defaults: dict = {}
    #: parameters without defaults that a request must supply.
    needs: tuple[str, ...] = ()
    #: True when the pass has cross-chunk state that only sample
    #: boundaries may cut — without sample ids the trace must stay whole.
    whole_without_samples: bool = False

    def init(self, params: dict) -> Any:
        """The merge identity (an empty partial)."""
        raise NotImplementedError

    def update(self, partial: Any, chunk: ChunkContext, params: dict) -> Any:
        """Fold one chunk into ``partial`` (may return a new partial)."""
        raise NotImplementedError

    def merge(self, a: Any, b: Any) -> Any:
        """Associative merge of two partials (must not mutate either)."""
        raise NotImplementedError

    def finalize(self, partial: Any, ctx: RunContext, params: dict) -> Any:
        """Derived result from the merged partial (floats appear here)."""
        raise NotImplementedError

    def validate(self, params: dict) -> None:
        """Reject invalid resolved parameters (raise ``ValueError``).

        Runs at schedule time, in the scheduling process — so a bad
        request fails before any chunk is read or worker forks, not
        per-call inside the fused scan. The default accepts everything.
        """

    def render(self, result: Any) -> str:
        """Human-readable result block for ``memgaze report --passes``."""
        return str(result)

    def jsonable(self, result: Any) -> Any:
        """Machine-readable result for ``report --json`` and live queries.

        The default converts generically (:func:`to_jsonable`:
        dataclasses to dicts, numpy to Python scalars/lists); override
        when a pass's result benefits from named fields the structure
        alone does not convey (see :class:`CapturesPass`). The output
        must be deterministic — two runs over the same trace must
        serialize byte-identically, because the streaming service's
        live-query/offline-report equivalence is asserted on the JSON.
        """
        return to_jsonable(result)

    @property
    def description(self) -> str:
        """First docstring line (shown by ``memgaze passes``)."""
        doc = type(self).__doc__ or ""
        return doc.strip().splitlines()[0] if doc.strip() else ""


class UnknownPassError(ValueError):
    """A requested pass name is not in the registry.

    Carries the offending ``name`` and the ``available`` registry names;
    the message lists them (plus a close-match suggestion) so CLI users
    see their alternatives instead of a traceback.
    """

    def __init__(self, name: str, available: list[str]) -> None:
        self.name = name
        self.available = list(available)
        hint = ""
        close = difflib.get_close_matches(name, available, n=1)
        if close:
            hint = f" (did you mean {close[0]!r}?)"
        super().__init__(
            f"unknown analysis pass {name!r}{hint}; "
            f"available: {', '.join(available) or '(none registered)'}"
        )


_REGISTRY: dict[str, AnalysisPass] = {}


def register_pass(p: AnalysisPass | type) -> AnalysisPass | type:
    """Add a pass to the registry (validates the declaration); returns it.

    Accepts an instance or a class (usable as a class decorator); a class
    is instantiated with no arguments.
    """
    decorated = p
    if isinstance(p, type):
        p = p()
    if not p.name:
        raise ValueError(f"pass {type(p).__name__} must set a non-empty name")
    for req in p.requires:
        if not req.startswith("pass:") and req not in ARTIFACT_KEYS:
            raise ValueError(
                f"pass {p.name!r} requires unknown artifact {req!r}; "
                f"known artifacts: {', '.join(sorted(ARTIFACT_KEYS))}"
            )
    _REGISTRY[p.name] = p
    return decorated


def unregister_pass(name: str) -> None:
    """Remove a pass from the registry (for tests and plugins)."""
    _REGISTRY.pop(name, None)


def get_pass(name: str) -> AnalysisPass:
    """The registered pass called ``name``; :class:`UnknownPassError` if absent."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownPassError(name, sorted(_REGISTRY)) from None


def list_passes() -> list[AnalysisPass]:
    """Registered passes, sorted by name."""
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


# -- the dependency scheduler -------------------------------------------------


@dataclass(frozen=True)
class ResolvedRequest:
    """One scheduled pass: its name and fully-resolved parameters."""

    name: str
    params: dict

    @property
    def spec(self) -> tuple[str, dict]:
        """The picklable form workers receive."""
        return (self.name, self.params)


def _resolve_params(p: AnalysisPass, params: dict | None) -> dict:
    resolved = {**p.defaults, **(params or {})}
    missing = [k for k in p.needs if k not in resolved]
    if missing:
        raise ValueError(
            f"pass {p.name!r} is missing required parameter(s) "
            f"{', '.join(missing)} (supply them in the request)"
        )
    validate = getattr(p, "validate", None)  # optional on duck-typed passes
    if validate is not None:
        validate(resolved)
    return resolved


def schedule_passes(
    requests: Iterable[str | tuple[str, dict] | ResolvedRequest],
) -> list[ResolvedRequest]:
    """Resolve, close over dependencies, and topo-sort pass requests.

    Each request is a pass name, a ``(name, params)`` pair, or an
    already-resolved request. Dependencies (``requires`` entries of the
    form ``"pass:<name>"``) are pulled in automatically with default
    parameters when not requested explicitly, and every pass is ordered
    after its dependencies, so ``finalize`` can read
    :meth:`RunContext.result`. Raises :class:`UnknownPassError` for
    unknown names, ``ValueError`` for duplicate names, missing required
    parameters, or dependency cycles.
    """
    wanted: dict[str, dict] = {}
    order: list[str] = []
    for req in requests:
        if isinstance(req, ResolvedRequest):
            name, params = req.name, dict(req.params)
        elif isinstance(req, str):
            name, params = req, {}
        else:
            name, params = req[0], dict(req[1] or {})
        if name in wanted:
            raise ValueError(f"pass {name!r} requested twice in one schedule")
        wanted[name] = params
        order.append(name)

    scheduled: list[ResolvedRequest] = []
    done: set[str] = set()
    in_progress: set[str] = set()

    def visit(name: str, chain: tuple[str, ...]) -> None:
        if name in done:
            return
        if name in in_progress:
            cycle = " -> ".join(chain + (name,))
            raise ValueError(f"pass dependency cycle: {cycle}")
        in_progress.add(name)
        p = get_pass(name)
        for req in p.requires:
            if req.startswith("pass:"):
                visit(req[len("pass:") :], chain + (name,))
        in_progress.discard(name)
        done.add(name)
        scheduled.append(
            ResolvedRequest(name=name, params=_resolve_params(p, wanted.get(name)))
        )

    for name in order:
        visit(name, ())
    return scheduled


# -- the fused executor -------------------------------------------------------


def scan_chunk(
    events: np.ndarray,
    sample_id: np.ndarray | None,
    specs: Iterable[tuple[str, dict]],
    journal=None,
) -> tuple[list, dict]:
    """Update every scheduled pass over one chunk (runs in pool workers).

    One :class:`ChunkContext` serves all passes, so shared intermediates
    are computed once per chunk regardless of how many passes read them.
    Returns ``(partials, stats)`` where ``stats`` carries the chunk's
    artifact-cache counters and per-pass wall clock for the caller's
    timers/metrics. With a journal, the evaluating process appends its
    own ``shard-analyzed`` line (the journal's ``O_APPEND`` writes are
    atomic, so pool workers interleave safely).
    """
    t0 = time.perf_counter()
    ctx = ChunkContext(events, sample_id)
    partials: list = []
    pass_seconds: dict[str, float] = {}
    for name, params in specs:
        p = get_pass(name)
        t1 = time.perf_counter()
        partials.append(p.update(p.init(params), ctx, params))
        pass_seconds[name] = pass_seconds.get(name, 0.0) + time.perf_counter() - t1
    stats = {
        "n_events": len(events),
        "artifact_hits": ctx.hits,
        "artifact_misses": ctx.misses,
        "pass_seconds": pass_seconds,
    }
    if journal is not None:
        journal.emit(
            "shard-analyzed",
            n_events=len(events),
            n_passes=len(partials),
            passes=[name for name, _ in specs],
            artifact_hits=ctx.hits,
            artifact_misses=ctx.misses,
            seconds=time.perf_counter() - t0,
        )
    return partials, stats


def merge_partial_lists(
    a: list, b: list, specs: Iterable[tuple[str, dict]]
) -> list:
    """Merge two aligned partial lists pass-by-pass."""
    return [get_pass(name).merge(pa, pb) for (name, _), pa, pb in zip(specs, a, b)]


def finalize_schedule(
    scheduled: list[ResolvedRequest], merged: list, ctx: RunContext
) -> dict[str, Any]:
    """Finalize merged partials in dependency order; returns name → result."""
    out: dict[str, Any] = {}
    for req, partial in zip(scheduled, merged):
        p = get_pass(req.name)
        result = p.finalize(partial, ctx, req.params)
        key = p.provides or p.name
        out[req.name] = result
        ctx.results[key] = result
    return out


def fused_scan(
    chunks: Iterator[tuple[np.ndarray, np.ndarray | None]],
    requests: Iterable[str | tuple[str, dict] | ResolvedRequest],
    *,
    rho: float = 1.0,
    fn_names: dict[int, str] | None = None,
    journal=None,
    metrics=None,
    timers=None,
) -> dict[str, Any]:
    """Run every requested pass in **one** serial scan over ``chunks``.

    The streaming analogue of calling each legacy metric function in
    turn — except the trace is read once, shared intermediates are
    computed once per chunk, and the result of every pass is
    bit-identical to its serial function. The
    :class:`~repro.core.parallel.ParallelEngine` offers the same
    semantics fanned out over a process pool.
    """
    scheduled = schedule_passes(requests)
    specs = [r.spec for r in scheduled]
    merged: list | None = None
    for ev, sid in chunks:
        partials, stats = scan_chunk(ev, sid, specs, journal)
        account_scan_stats(stats, metrics=metrics, timers=timers)
        merged = (
            partials if merged is None else merge_partial_lists(merged, partials, specs)
        )
    if merged is None:
        merged = [get_pass(name).init(params) for name, params in specs]
    return finalize_schedule(
        scheduled, merged, RunContext(rho=rho, fn_names=fn_names or {})
    )


def account_scan_stats(stats: dict, *, metrics=None, timers=None) -> None:
    """Fold one chunk's scan stats into obs sinks (shared with the engine)."""
    if metrics is not None:
        metrics.counter("passes.chunks_scanned").inc()
        metrics.counter("passes.artifact_hits").inc(stats["artifact_hits"])
        metrics.counter("passes.artifact_misses").inc(stats["artifact_misses"])
    if timers is not None:
        for name, seconds in stats["pass_seconds"].items():
            timers.add(f"pass:{name}", seconds, items=stats["n_events"])


# -- mergeable partials -------------------------------------------------------


def _sorted_unique(a: np.ndarray) -> np.ndarray:
    return np.unique(a)


@dataclass
class DiagnosticsPartial:
    """Mergeable state behind footprint + diagnostics for one chunk.

    Unique block ids are sorted ``uint64`` arrays (set semantics); the
    counters are plain integers. :meth:`merge` is associative and
    commutative, and :meth:`finalize` evaluates the exact expressions of
    :func:`repro.core.diagnostics.compute_diagnostics` (via the shared
    :func:`~repro.core.diagnostics.finalize_diagnostics`) on the merged
    integer totals.
    """

    blocks: np.ndarray  # sorted unique non-Constant block ids
    strided: np.ndarray  # sorted unique Strided block ids
    irregular: np.ndarray  # sorted unique Irregular block ids
    has_const: bool
    a_obs: int  # observed records
    n_suppressed: int  # suppressed Constant loads (sum of n_const)
    n_const_records: int  # records with cls == CONSTANT

    @classmethod
    def identity(cls) -> "DiagnosticsPartial":
        """The merge identity (an empty chunk)."""
        z = np.empty(0, dtype=np.uint64)
        return cls(z, z, z, False, 0, 0, 0)

    @classmethod
    def from_chunk(cls, chunk: ChunkContext, block: int = 1) -> "DiagnosticsPartial":
        """Compute the partial for one chunk via the artifact context."""
        ids = chunk.block_ids(block)
        masks = chunk.class_masks
        n_suppressed = int(chunk.events["n_const"].sum())
        return cls(
            blocks=_sorted_unique(ids[masks.nonconst]),
            strided=_sorted_unique(ids[masks.strided]),
            irregular=_sorted_unique(ids[masks.irregular]),
            has_const=bool(masks.const.any() or n_suppressed > 0),
            a_obs=len(chunk.events),
            n_suppressed=n_suppressed,
            n_const_records=int(masks.const.sum()),
        )

    @classmethod
    def from_events(cls, events: np.ndarray, block: int = 1) -> "DiagnosticsPartial":
        """Compute the partial for one standalone shard of records."""
        return cls.from_chunk(ChunkContext(events, None), block)

    def merge(self, other: "DiagnosticsPartial") -> "DiagnosticsPartial":
        """Associative merge: set unions plus counter sums."""
        return DiagnosticsPartial(
            blocks=union_sorted(self.blocks, other.blocks),
            strided=union_sorted(self.strided, other.strided),
            irregular=union_sorted(self.irregular, other.irregular),
            has_const=self.has_const or other.has_const,
            a_obs=self.a_obs + other.a_obs,
            n_suppressed=self.n_suppressed + other.n_suppressed,
            n_const_records=self.n_const_records + other.n_const_records,
        )

    # -- finalizers (the only place floats appear) --

    @property
    def footprint(self) -> int:
        """Observed footprint F of the merged window."""
        if self.a_obs == 0:
            return 0
        return len(self.blocks) + (1 if self.has_const else 0)

    @property
    def footprint_by_class(self) -> dict[LoadClass, int]:
        """Per-class footprint decomposition of the merged window."""
        return {
            LoadClass.CONSTANT: 1 if self.has_const else 0,
            LoadClass.STRIDED: len(self.strided),
            LoadClass.IRREGULAR: len(self.irregular),
        }

    def finalize(self, rho: float = 1.0) -> FootprintDiagnostics:
        """The diagnostic bundle, identical to the serial computation."""
        return finalize_diagnostics(
            a_obs=self.a_obs,
            a_implied=self.a_obs + self.n_suppressed,
            f=self.footprint,
            f_str=len(self.strided),
            f_irr=len(self.irregular),
            n_const_accesses=self.n_suppressed + self.n_const_records,
            rho=rho,
        )


@dataclass
class CapturesPartial:
    """Mergeable captures/survivals state: per-block counts saturated at 2.

    ``once`` holds blocks seen exactly once so far, ``multi`` blocks seen
    two or more times (both sorted unique arrays of non-Constant block
    ids). Saturated counting forms a commutative monoid, so the merge is
    associative and chunk order cannot change the result.
    """

    once: np.ndarray
    multi: np.ndarray

    @classmethod
    def identity(cls) -> "CapturesPartial":
        """The merge identity (an empty chunk)."""
        z = np.empty(0, dtype=np.uint64)
        return cls(z, z)

    @classmethod
    def from_chunk(cls, chunk: ChunkContext, block: int = 1) -> "CapturesPartial":
        """Compute the partial for one chunk via the artifact context."""
        ids = chunk.block_ids(block)[chunk.class_masks.nonconst]
        if len(ids) == 0:
            return cls.identity()
        uniq, counts = np.unique(ids, return_counts=True)
        return cls(once=uniq[counts == 1], multi=uniq[counts >= 2])

    @classmethod
    def from_events(cls, events: np.ndarray, block: int = 1) -> "CapturesPartial":
        """Compute the partial for one standalone shard of records."""
        return cls.from_chunk(ChunkContext(events, None), block)

    def merge(self, other: "CapturesPartial") -> "CapturesPartial":
        """Associative merge of saturated counts."""
        # seen >= 2 total: already multi on either side, or once on both
        multi = union_sorted(
            union_sorted(self.multi, other.multi),
            intersect_sorted(self.once, other.once),
        )
        # seen exactly once total: once on exactly one side, never multi
        once = setdiff_sorted(setxor_sorted(self.once, other.once), multi)
        return CapturesPartial(once=once, multi=multi)

    def finalize(self) -> tuple[int, int]:
        """(C, S): blocks with and without reuse in the merged window."""
        return len(self.multi), len(self.once)


# -- the built-in passes ------------------------------------------------------


@register_pass
class DiagnosticsPass(AnalysisPass):
    """Footprint access diagnostics: F, F-hat, dF, per-class split (Eqs. 1-4)."""

    name = "diagnostics"
    requires = ("block_ids", "class_masks")
    defaults = {"block": 1}

    def init(self, params):
        return DiagnosticsPartial.identity()

    def update(self, partial, chunk, params):
        return partial.merge(DiagnosticsPartial.from_chunk(chunk, params["block"]))

    def merge(self, a, b):
        return a.merge(b)

    def finalize(self, partial, ctx, params):
        return partial.finalize(ctx.rho)

    def render(self, result):
        from repro.core.report import format_quantity

        d = result
        return (
            f"A (est):   {format_quantity(d.A_est)}    "
            f"F (est): {format_quantity(d.F_est)}\n"
            f"dF:        {d.dF:.3f}   F_str%: {d.F_str_pct:.1f}   "
            f"A_const%: {d.A_const_pct:.1f}"
        )


@register_pass
class CapturesPass(AnalysisPass):
    """Captures/survivals (C, S): blocks with and without reuse in the window."""

    name = "captures"
    requires = ("block_ids", "class_masks")
    defaults = {"block": 1}

    def init(self, params):
        return CapturesPartial.identity()

    def update(self, partial, chunk, params):
        return partial.merge(CapturesPartial.from_chunk(chunk, params["block"]))

    def merge(self, a, b):
        return a.merge(b)

    def finalize(self, partial, ctx, params):
        return partial.finalize()

    def render(self, result):
        c, s = result
        return f"captures C: {c:,}   survivals S: {s:,}"

    def jsonable(self, result):
        c, s = result
        return {"captures": to_jsonable(c), "survivals": to_jsonable(s)}


@register_pass
class WindowsPass(AnalysisPass):
    """Per-function code windows: the diagnostics bundle per function (SS:VI-A)."""

    name = "windows"
    requires = ("block_ids", "class_masks")
    defaults = {"block": 1}

    def init(self, params):
        return {}

    def update(self, partial, chunk, params):
        ev = chunk.events
        if len(ev) == 0:
            return partial
        out = dict(partial)
        for fid in np.unique(ev["fn"]):
            sub = DiagnosticsPartial.from_events(
                ev[ev["fn"] == fid], params["block"]
            )
            prev = out.get(int(fid))
            out[int(fid)] = sub if prev is None else prev.merge(sub)
        return out

    def merge(self, a, b):
        out = dict(a)
        for fid, p in b.items():
            prev = out.get(fid)
            out[fid] = p if prev is None else prev.merge(p)
        return out

    def finalize(self, partial, ctx, params):
        # ascending function id, so a name collision resolves the same
        # way the serial code_windows loop does (highest id wins)
        return {
            ctx.fn_names.get(fid, f"fn{fid}"): p.finalize(ctx.rho)
            for fid, p in sorted(partial.items())
        }

    def render(self, result):
        from repro.core.report import render_function_table

        return render_function_table(result)


@register_pass
class ReusePass(AnalysisPass):
    """Intra-sample reuse-distance histogram over power-of-two bins."""

    name = "reuse"
    requires = ("reuse_distances",)
    defaults = {"block": 64, "max_exp": _HIST_MAX_EXP}
    whole_without_samples = True

    def init(self, params):
        return ReuseHistogram.identity(params["max_exp"])

    def update(self, partial, chunk, params):
        d = chunk.reuse_distances(params["block"])
        return partial.merge(histogram_from_distances(d, params["max_exp"]))

    def merge(self, a, b):
        return a.merge(b)

    def finalize(self, partial, ctx, params):
        return partial

    def render(self, result):
        h = result
        return (
            f"reusing accesses: {h.n_reuse:,}   cold: {h.n_cold:,}\n"
            f"mean D: {h.mean:.1f}   max D: {h.d_max:,}"
        )


@register_pass
class HotspotPass(AnalysisPass):
    """Hot-function ranking by sampled load share (ROI candidates)."""

    name = "hotspot"
    requires = ()
    defaults = {"coverage": 0.90, "max_functions": 8}

    def init(self, params):
        return np.zeros(0, dtype=np.int64)

    def update(self, partial, chunk, params):
        return self.merge(partial, access_counts(chunk.events))

    def merge(self, a, b):
        if len(a) < len(b):
            a, b = b, a
        out = a.copy()
        out[: len(b)] += b
        return out

    def finalize(self, partial, ctx, params):
        return rank_hotspots(
            partial,
            ctx.fn_names,
            coverage=params["coverage"],
            max_functions=params["max_functions"],
        )

    def render(self, result):
        from repro.core.report import format_quantity

        lines = [
            f"  {h.function:<20} {100 * h.share:5.1f}%  "
            f"({format_quantity(h.n_accesses)} sampled loads)"
            for h in result
        ]
        return "\n".join(lines) or "  (no sampled loads)"


@register_pass
class RoiPass(AnalysisPass):
    """Guard ranges covering the hotspot functions' observed code ranges."""

    name = "roi"
    requires = ("pass:hotspot",)
    defaults = {"top": None}

    def init(self, params):
        return {}

    def update(self, partial, chunk, params):
        ev = chunk.events
        if len(ev) == 0:
            return partial
        # grouped min/max without a per-function loop: sort by function id,
        # then reduce each contiguous run in one ufunc call
        order = np.argsort(ev["fn"], kind="stable")
        fn = ev["fn"][order]
        ip = ev["ip"][order]
        starts = np.flatnonzero(np.concatenate([[True], fn[1:] != fn[:-1]]))
        los = np.minimum.reduceat(ip, starts)
        his = np.maximum.reduceat(ip, starts)
        out = dict(partial)
        for fid, lo, hi in zip(fn[starts], los, his):
            lo, hi = int(lo), int(hi)
            prev = out.get(int(fid))
            out[int(fid)] = (
                (lo, hi) if prev is None else (min(prev[0], lo), max(prev[1], hi))
            )
        return out

    def merge(self, a, b):
        out = dict(a)
        for fid, (lo, hi) in b.items():
            prev = out.get(fid)
            out[fid] = (lo, hi) if prev is None else (min(prev[0], lo), max(prev[1], hi))
        return out

    def finalize(self, partial, ctx, params):
        # +4 matches function_ranges: one past the last observed ip
        ranges = {fid: (lo, hi + 4) for fid, (lo, hi) in partial.items()}
        return roi_from_ranges(ctx.result("hotspot"), ranges, top=params["top"])

    def render(self, result):
        lines = [f"  [{lo:#x}, {hi:#x})" for lo, hi in result.ranges]
        return "\n".join(lines) or "  (no guard ranges)"


@register_pass
class HeatmapPass(AnalysisPass):
    """(region page x time) access and reuse-distance heatmaps (Fig. 8)."""

    name = "heatmap"
    requires = ("nonconstant", "reuse_distances")
    defaults = {"access_block": 64}
    #: bin geometry must be fixed from the whole trace before scanning;
    #: :meth:`repro.core.parallel.ParallelEngine.heatmap` does that.
    needs = ("base", "size", "page_size", "t_edges", "n_pages", "n_bins")
    whole_without_samples = True

    def init(self, params):
        n_pages, n_bins = params["n_pages"], params["n_bins"]
        return (
            np.zeros((n_pages, n_bins), dtype=np.int64),
            np.zeros((n_pages, n_bins), dtype=np.float64),
            np.zeros((n_pages, n_bins), dtype=np.int64),
        )

    def update(self, partial, chunk, params):
        nc, _ = chunk.nonconstant
        d = chunk.reuse_distances(params["access_block"], nonconst=True)
        addr, t, d = region_points(nc, d, params["base"], params["size"])
        acc = accumulate_heatmap(
            addr,
            t,
            d,
            base=params["base"],
            page_size=params["page_size"],
            t_edges=params["t_edges"],
            n_pages=params["n_pages"],
            n_bins=params["n_bins"],
        )
        return self.merge(partial, acc)

    def merge(self, a, b):
        return tuple(x + y for x, y in zip(a, b))

    def finalize(self, partial, ctx, params):
        counts, dsum, dcnt = partial
        return finalize_heatmap(
            counts,
            dsum,
            dcnt,
            base=params["base"],
            page_size=params["page_size"],
            t_edges=params["t_edges"],
        )

    def render(self, result):
        from repro.core.heatmap import render_heatmap_ascii

        return render_heatmap_ascii(result.counts)


@register_pass
class CacheSweepPass(AnalysisPass):
    """What-if cache sweep: simulated hit rate vs. reuse-distance prediction per geometry.

    One fused scan evaluates the whole block-size x capacity x
    associativity grid. Configurations sharing (line size, set count)
    share the set-local stack-distance kernel run — associativity is
    just a threshold on the shared distances — and the paper's
    reuse-distance prediction (hit iff D < capacity in lines) is the
    fully-associative member of the same family. Every row's simulated
    counts are exactly :func:`repro.core.cachesim.simulate_cache` of
    that configuration; the partial's cross-chunk merge is exact under
    any chunking (see ``core/cachesim.py``), so the pass shards like
    every other and needs no sample boundaries.
    """

    name = "cache_sweep"
    requires = ("block_ids",)
    defaults = {
        "lines": (64,),
        "sets": (64, 512),
        "ways": (1, 2, 4, 8),
        "configs": None,
        "prefetch": False,
    }

    @staticmethod
    def _grid(params):
        return sweep_configs(
            lines=tuple(params["lines"]),
            sets=tuple(params["sets"]),
            ways=tuple(params["ways"]),
            configs=params["configs"],
            prefetch=bool(params["prefetch"]),
        )

    def validate(self, params):
        self._grid(params)  # bad geometry/policy fails before any scan

    def init(self, params):
        return SweepPartial(self._grid(params))

    def update(self, partial, chunk, params):
        return sweep_update(partial, chunk.events, chunk.block_ids)

    def merge(self, a, b):
        return sweep_merge(a, b)

    def finalize(self, partial, ctx, params):
        return sweep_finalize(partial, self._grid(params))

    def render(self, result):
        from repro.core.report import format_quantity

        if not result:
            return "  (empty sweep)"
        lines = [
            f"  {'size':>8} {'line':>5} {'ways':>4} {'sets':>5}"
            f" {'hit ratio':>9} {'predicted':>9}"
        ]
        for r in result:
            lines.append(
                f"  {format_quantity(r.size_bytes) + 'B':>8} {r.line_bytes:>5}"
                f" {r.ways:>4} {r.n_sets:>5}"
                f" {100 * r.hit_ratio:>8.1f}% {100 * r.predicted_hit_ratio:>8.1f}%"
            )
        lines.append(f"  ({result[0].n_accesses:,} accesses per configuration)")
        return "\n".join(lines)
