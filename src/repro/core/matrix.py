"""Fleet-scale matrix runner: every corpus cell through one engine.

Runs a :class:`~repro.core.corpus.CorpusSpec` grid through
:class:`~repro.core.parallel.ParallelEngine` / the content-addressed
:class:`~repro.core.artifacts.ArtifactStore`: a cold run scans each
archive once, a warm run serves whole cells from the cache without
touching event bytes (``mode="cached"``), and an appended archive
rescans only its tail (``mode="incremental"``). Cell payloads are pure
content, so warm and cold corpus payloads are byte-identical — the
cache can never change a verdict.

Observability: every cell emits a ``matrix-cell`` journal line (label,
mode, events, seconds) and the run ends with a ``matrix-run`` summary;
the ``matrix.*`` counters mirror them (see docs/observability.md).
"""

from __future__ import annotations

import time

from repro.core.corpus import CellResult, CorpusResult, CorpusSpec, cell_payload
from repro.core.parallel import ParallelEngine

__all__ = ["run_matrix"]


def run_matrix(
    spec: CorpusSpec,
    *,
    engine: ParallelEngine | None = None,
    cache_dir=None,
    cache_max_bytes: int | None = None,
    workers: int = 1,
    chunk_size: int | None = None,
    journal=None,
    metrics=None,
) -> CorpusResult:
    """Analyze every cell of ``spec`` and aggregate the results.

    Pass ``engine`` to reuse a configured engine (its store/journal/
    metrics win); otherwise one engine is built from the keyword knobs,
    with a persistent :class:`ArtifactStore` when ``cache_dir`` is
    given. Cells run in spec order; each streams through
    :meth:`ParallelEngine.analyze_file` with the four headline passes
    plus the per-function windows fused into one scan.
    """
    if engine is None:
        store = None
        if cache_dir is not None:
            from repro.core.artifacts import DEFAULT_MAX_BYTES, ArtifactStore

            store = ArtifactStore(
                cache_dir,
                max_bytes=(
                    cache_max_bytes if cache_max_bytes is not None else DEFAULT_MAX_BYTES
                ),
                journal=journal,
                metrics=metrics,
            )
        engine = ParallelEngine(
            workers=workers,
            chunk_size=chunk_size,
            store=store,
            journal=journal,
            metrics=metrics,
        )
    else:
        journal = journal if journal is not None else engine.journal
        metrics = metrics if metrics is not None else engine.metrics

    result = CorpusResult(spec=spec)
    t_run = time.perf_counter()
    for cell in spec.cells:
        t0 = time.perf_counter()
        extra = [("hotspot", {}), ("windows", {"block": cell.block})]
        if cell.cache_sweep:
            extra.append(("cache_sweep", {}))
        analysis = engine.analyze_file(
            cell.trace,
            block=cell.block,
            reuse_block=cell.reuse_block,
            chunk_size=chunk_size,
            passes=extra,
        )
        seconds = time.perf_counter() - t0
        result.cells[cell.label] = CellResult(
            spec=cell,
            payload=cell_payload(analysis),
            mode=analysis.mode,
            n_events=analysis.n_events,
            skipped_events=analysis.skipped_events,
            seconds=seconds,
            digest=analysis.digest,
        )
        if metrics is not None:
            metrics.counter("matrix.cells").inc()
            metrics.counter(f"matrix.cells_{analysis.mode}").inc()
            metrics.counter("matrix.events").inc(analysis.n_events)
        if journal is not None:
            journal.emit(
                "matrix-cell",
                corpus=spec.name,
                label=cell.label,
                trace=str(cell.trace),
                mode=analysis.mode,
                n_events=analysis.n_events,
                skipped_events=analysis.skipped_events,
                seconds=seconds,
            )
    if journal is not None:
        modes = [r.mode for r in result.cells.values()]
        journal.emit(
            "matrix-run",
            corpus=spec.name,
            baseline=spec.baseline,
            n_cells=len(result.cells),
            n_cached=modes.count("cached"),
            n_incremental=modes.count("incremental"),
            n_full=modes.count("full"),
            seconds=time.perf_counter() - t_run,
        )
    return result
