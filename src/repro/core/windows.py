"""Trace windows and code windows (paper SS:IV-B, SS:VI-A).

Two aggregation dimensions reduce sampling error:

* **trace windows** — each sample is chopped into consecutive chunks of a
  fixed access count; a metric is evaluated per chunk and its
  distribution over chunks is the histogram point for that window size.
  Fully vectorised (unique-per-group via one sort).
* **code windows** — all sampled accesses of a *function* are aggregated
  across samples, accumulating many more observations per unit than any
  single trace window; population counts are then estimated with rho.
  This is the aggregation the paper shows cuts error from <25% to <5%.
"""

from __future__ import annotations

import numpy as np

from repro.core.diagnostics import FootprintDiagnostics, compute_diagnostics
from repro.core.metrics import block_ids
from repro.trace.event import EVENT_DTYPE, LoadClass

__all__ = ["trace_window_metrics", "code_windows", "unique_per_group"]


def unique_per_group(groups: np.ndarray, values: np.ndarray, n_groups: int) -> np.ndarray:
    """Count distinct ``values`` per group id, vectorised.

    ``groups`` must be int group ids in ``[0, n_groups)``.
    """
    if len(groups) != len(values):
        raise ValueError("groups and values must align")
    out = np.zeros(n_groups, dtype=np.int64)
    if len(groups) == 0:
        return out
    order = np.lexsort((values, groups))
    g = groups[order]
    v = values[order]
    new_pair = np.ones(len(g), dtype=bool)
    new_pair[1:] = (g[1:] != g[:-1]) | (v[1:] != v[:-1])
    np.add.at(out, g[new_pair], 1)
    return out


def _chunk_ids(sample_id: np.ndarray | None, n: int, window: int) -> np.ndarray:
    """Assign each event to a chunk of ``window`` accesses within its sample."""
    if sample_id is None:
        return np.arange(n, dtype=np.int64) // window
    # position within sample
    pos = np.arange(n, dtype=np.int64)
    starts = np.concatenate([[0], np.flatnonzero(np.diff(sample_id)) + 1])
    offsets = np.zeros(n, dtype=np.int64)
    offsets[starts] = starts
    offsets = np.maximum.accumulate(offsets)
    within = pos - offsets
    # globally unique chunk id: (sample index, within-chunk)
    sample_index = np.cumsum(np.isin(pos, starts)) - 1
    return sample_index * (1 << 32) + within // window


def trace_window_metrics(
    events: np.ndarray,
    window: int,
    sample_id: np.ndarray | None = None,
    metric: str = "F",
    block: int = 1,
    min_fill: float = 0.5,
) -> np.ndarray:
    """Per-chunk metric values for trace windows of ``window`` accesses.

    ``metric`` is one of ``"F"``, ``"F_str"``, ``"F_irr"``, ``"dF"``.
    Chunks filled below ``min_fill * window`` (sample tails) are dropped
    so short leftovers do not bias the distribution.
    """
    if events.dtype != EVENT_DTYPE:
        raise TypeError(f"expected EVENT_DTYPE events, got {events.dtype}")
    if window <= 0:
        raise ValueError(f"window must be > 0, got {window}")
    if metric not in ("F", "F_str", "F_irr", "dF"):
        raise ValueError(f"unknown metric {metric!r}")
    n = len(events)
    if n == 0:
        return np.empty(0, dtype=np.float64)

    raw_chunks = _chunk_ids(sample_id, n, window)
    # compress chunk ids to 0..k-1
    uniq, chunks = np.unique(raw_chunks, return_inverse=True)
    n_chunks = len(uniq)
    sizes = np.bincount(chunks, minlength=n_chunks)
    implied = sizes + np.bincount(
        chunks, weights=events["n_const"].astype(np.float64), minlength=n_chunks
    ).astype(np.int64)

    ids = block_ids(events, block)
    cls = events["cls"]
    const_mask = cls == int(LoadClass.CONSTANT)

    if metric in ("F", "dF"):
        sel = ~const_mask
        counts = unique_per_group(chunks[sel], ids[sel], n_chunks)
        has_const = np.zeros(n_chunks, dtype=bool)
        np.logical_or.at(has_const, chunks, const_mask | (events["n_const"] > 0))
        values = counts + has_const
        if metric == "dF":
            values = values / np.maximum(implied, 1)
    else:
        want = LoadClass.STRIDED if metric == "F_str" else LoadClass.IRREGULAR
        sel = cls == int(want)
        values = unique_per_group(chunks[sel], ids[sel], n_chunks).astype(np.float64)

    keep = sizes >= max(1, int(min_fill * window))
    return values[keep].astype(np.float64)


def code_windows(
    events: np.ndarray,
    rho: float = 1.0,
    block: int = 1,
    fn_names: dict[int, str] | None = None,
) -> dict[str, FootprintDiagnostics]:
    """Aggregate samples per function and compute diagnostics for each.

    Returns ``{function: diagnostics}``; functions are named through
    ``fn_names`` (falling back to ``fn<id>``). Within a code window all
    of a function's sampled accesses across all samples accumulate, and
    population counts use the inter-window estimators (``rho``).
    """
    if events.dtype != EVENT_DTYPE:
        raise TypeError(f"expected EVENT_DTYPE events, got {events.dtype}")
    fn_names = fn_names or {}
    out: dict[str, FootprintDiagnostics] = {}
    for fid in np.unique(events["fn"]):
        window = events[events["fn"] == fid]
        name = fn_names.get(int(fid), f"fn{int(fid)}")
        out[name] = compute_diagnostics(window, rho=rho, block=block)
    return out
