"""Undersampling detection via sample-density confidence intervals.

Paper SS:VI-A: "It should be possible to automatically detect most
undersampling by analyzing sample density and forming confidence
intervals. One could flag regions with insufficient samples."

For a code window (function) the estimator of its population access
count is ``A_est = rho * sum_i a_i`` where ``a_i`` is the function's
record count in sample ``i``. Treating samples as independent draws, the
relative standard error of the total follows from the across-sample
variance of ``a_i``; a function seen in only a handful of samples gets a
wide interval and an ``undersampled`` flag.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.trace.collector import CollectionResult
from repro.trace.compress import sample_ratio_from

__all__ = ["WindowConfidence", "code_window_confidence", "flag_undersampled"]

_Z95 = 1.959963984540054


@dataclass(frozen=True)
class WindowConfidence:
    """Sampling confidence for one code window."""

    function: str
    n_samples_present: int  # samples containing at least one record
    n_samples_total: int
    A_est: float
    stderr: float  # standard error of A_est
    undersampled: bool

    @property
    def ci95(self) -> tuple[float, float]:
        """Normal-approximation 95% interval for the population accesses."""
        half = _Z95 * self.stderr
        return (max(0.0, self.A_est - half), self.A_est + half)

    @property
    def relative_error(self) -> float:
        """stderr / estimate (inf when the estimate is 0)."""
        return self.stderr / self.A_est if self.A_est > 0 else math.inf


def code_window_confidence(
    collection: CollectionResult,
    fn_names: dict[int, str] | None = None,
    *,
    min_samples: int = 5,
    max_relative_error: float = 0.25,
) -> dict[str, WindowConfidence]:
    """Confidence assessment per code window.

    A window is flagged ``undersampled`` when it appears in fewer than
    ``min_samples`` samples or its relative standard error exceeds
    ``max_relative_error``.
    """
    fn_names = fn_names or {}
    events = collection.events
    if len(events) == 0:
        return {}
    rho = sample_ratio_from(collection)
    sample_id = collection.sample_id
    n_samples = collection.n_samples
    if n_samples <= 0:
        return {}

    out: dict[str, WindowConfidence] = {}
    # implied (uncompressed) records per (sample, fn)
    weights = 1.0 + events["n_const"].astype(np.float64)
    for fid in np.unique(events["fn"]):
        mask = events["fn"] == fid
        per_sample = np.zeros(n_samples, dtype=np.float64)
        np.add.at(per_sample, sample_id[mask], weights[mask])
        present = int((per_sample > 0).sum())
        # variance of the per-sample counts across ALL samples (zeros
        # included — absence is information); SE of the n-sample total
        var = per_sample.var(ddof=1) if n_samples > 1 else 0.0
        stderr = rho * math.sqrt(var * n_samples)
        a_est = float(rho * per_sample.sum())
        conf = WindowConfidence(
            function=fn_names.get(int(fid), f"fn{int(fid)}"),
            n_samples_present=present,
            n_samples_total=n_samples,
            A_est=a_est,
            stderr=float(stderr),
            undersampled=(
                present < min_samples
                or (a_est > 0 and stderr / a_est > max_relative_error)
            ),
        )
        out[conf.function] = conf
    return out


def flag_undersampled(
    collection: CollectionResult,
    fn_names: dict[int, str] | None = None,
    **kwargs,
) -> list[str]:
    """Names of code windows whose estimates should not be trusted."""
    conf = code_window_confidence(collection, fn_names, **kwargs)
    return sorted(c.function for c in conf.values() if c.undersampled)
