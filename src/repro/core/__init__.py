"""MemGaze's analysis layer: sampled-trace memory analysis (paper SS:IV-V).

The modules here implement the paper's multi-resolution analyses over
sampled, compressed traces:

* :mod:`repro.core.metrics` — footprint F, captures C, survivals S, and
  the estimated footprint F-hat (Eq. 3);
* :mod:`repro.core.growth` — footprint growth Delta-F (Eq. 4);
* :mod:`repro.core.reuse` — reuse intervals and spatio-temporal reuse
  distance D w.r.t. a configurable access-block size;
* :mod:`repro.core.diagnostics` — footprint access diagnostics
  decomposing footprint by Strided/Irregular pattern (SS:V-E);
* :mod:`repro.core.windows` — trace windows vs code windows (SS:IV-B);
* :mod:`repro.core.histograms` — power-of-2 window histograms and MAPE;
* :mod:`repro.core.interval_tree` — the execution interval tree / time
  zooming (Fig. 4) and fixed-count access intervals (Table VIII);
* :mod:`repro.core.zoom` — the location zoom tree over hot contiguous
  page regions (Fig. 5);
* :mod:`repro.core.heatmap` — (region page x time) access and reuse
  heatmaps (Fig. 8);
* :mod:`repro.core.report` — paper-style table rendering;
* :mod:`repro.core.passes` — the unified analysis-pass framework:
  dependency-scheduled passes sharing per-chunk intermediates, one
  fused scan for any set of metrics;
* :mod:`repro.core.parallel` — the sharded parallel analysis engine
  (registered passes as mergeable partials, bit-identical to the
  serial path);
* :mod:`repro.core.pipeline` — the end-to-end MemGaze driver.
"""

from repro.core.metrics import (
    block_ids,
    captures_survivals,
    estimated_footprint,
    footprint,
    footprint_by_class,
    nonconstant,
)
from repro.core.growth import footprint_growth
from repro.core.reuse import (
    ReuseHistogram,
    inter_sample_distance,
    max_reuse_distance,
    mean_reuse_distance,
    region_reuse,
    reuse_distances,
    reuse_histogram,
    reuse_intervals,
)
from repro.core.parallel import (
    CapturesPartial,
    DiagnosticsPartial,
    LRUCache,
    ParallelEngine,
    plan_shards,
)
from repro.core.passes import (
    AnalysisPass,
    ChunkContext,
    RunContext,
    UnknownPassError,
    fused_scan,
    get_pass,
    list_passes,
    register_pass,
    schedule_passes,
)
from repro.core.diagnostics import FootprintDiagnostics, compute_diagnostics
from repro.core.windows import code_windows, trace_window_metrics
from repro.core.histograms import mape, window_histogram
from repro.core.interval_tree import (
    ExecutionIntervalTree,
    IntervalNode,
    access_interval_metrics,
)
from repro.core.zoom import ZoomConfig, ZoomRegion, location_zoom
from repro.core.heatmap import HeatmapResult, access_heatmap
from repro.core.report import (
    format_quantity,
    render_function_table,
    render_interval_table,
    render_region_table,
)
from repro.core.pipeline import AnalysisConfig, MemGaze, MemGazeResult
from repro.core.hotspot import Hotspot, find_hotspots, roi_from_hotspots
from repro.core.confidence import (
    WindowConfidence,
    code_window_confidence,
    flag_undersampled,
)
from repro.core.workingset import WorkingSetPoint, working_set_curve
from repro.core.phases import Phase, detect_phases
from repro.core.cachesim import (
    CacheConfig,
    CacheStats,
    HierarchyConfig,
    HierarchyStats,
    simulate_cache,
    simulate_hierarchy,
)
from repro.core.diff import FunctionDelta, TraceDiff, diff_traces

__all__ = [
    "block_ids",
    "captures_survivals",
    "estimated_footprint",
    "footprint",
    "footprint_by_class",
    "nonconstant",
    "footprint_growth",
    "inter_sample_distance",
    "max_reuse_distance",
    "mean_reuse_distance",
    "region_reuse",
    "reuse_distances",
    "reuse_histogram",
    "reuse_intervals",
    "ReuseHistogram",
    "CapturesPartial",
    "DiagnosticsPartial",
    "LRUCache",
    "ParallelEngine",
    "plan_shards",
    "AnalysisPass",
    "ChunkContext",
    "RunContext",
    "UnknownPassError",
    "fused_scan",
    "get_pass",
    "list_passes",
    "register_pass",
    "schedule_passes",
    "FootprintDiagnostics",
    "compute_diagnostics",
    "code_windows",
    "trace_window_metrics",
    "mape",
    "window_histogram",
    "ExecutionIntervalTree",
    "IntervalNode",
    "access_interval_metrics",
    "ZoomConfig",
    "ZoomRegion",
    "location_zoom",
    "HeatmapResult",
    "access_heatmap",
    "format_quantity",
    "render_function_table",
    "render_interval_table",
    "render_region_table",
    "AnalysisConfig",
    "MemGaze",
    "MemGazeResult",
    "Hotspot",
    "find_hotspots",
    "roi_from_hotspots",
    "WindowConfidence",
    "code_window_confidence",
    "flag_undersampled",
    "WorkingSetPoint",
    "working_set_curve",
    "Phase",
    "detect_phases",
    "CacheConfig",
    "CacheStats",
    "HierarchyConfig",
    "HierarchyStats",
    "simulate_cache",
    "simulate_hierarchy",
    "FunctionDelta",
    "TraceDiff",
    "diff_traces",
]
