"""Windowed metric histograms and the MAPE used to validate them (Fig. 6).

The paper validates sampled analysis by comparing *metric histograms* —
the mean of a footprint metric per power-of-2 trace-window size — between
a sampled trace and a reference ('full') trace, reporting mean absolute
percentage error per metric.
"""

from __future__ import annotations

import numpy as np

from repro.core.windows import trace_window_metrics
from repro.trace.event import EVENT_DTYPE

__all__ = ["default_window_sizes", "window_histogram", "mape"]


def default_window_sizes(max_window: int, min_window: int = 8) -> list[int]:
    """Powers of two from ``min_window`` up to ``max_window`` inclusive."""
    if min_window <= 0 or max_window < min_window:
        raise ValueError(f"bad window range [{min_window}, {max_window}]")
    sizes = []
    w = 1 << (min_window - 1).bit_length()  # round min up to a power of 2
    while w <= max_window:
        sizes.append(w)
        w *= 2
    return sizes


def window_histogram(
    events: np.ndarray,
    metric: str = "F",
    sizes: list[int] | None = None,
    sample_id: np.ndarray | None = None,
    block: int = 1,
) -> tuple[np.ndarray, np.ndarray]:
    """(window sizes, mean metric per size) over a trace.

    ``sizes`` defaults to powers of two up to the mean sample size (or
    the trace length when unsampled). Window sizes with no surviving
    chunks yield NaN.
    """
    if events.dtype != EVENT_DTYPE:
        raise TypeError(f"expected EVENT_DTYPE events, got {events.dtype}")
    if sizes is None:
        if sample_id is not None and len(sample_id):
            _, counts = np.unique(sample_id, return_counts=True)
            limit = int(counts.mean())
        else:
            limit = len(events)
        sizes = default_window_sizes(max(8, limit))
    means = np.full(len(sizes), np.nan)
    for i, w in enumerate(sizes):
        vals = trace_window_metrics(
            events, w, sample_id=sample_id, metric=metric, block=block
        )
        if len(vals):
            means[i] = vals.mean()
    return np.asarray(sizes, dtype=np.int64), means


def mape(measured: np.ndarray, reference: np.ndarray) -> float:
    """Mean absolute percentage error of ``measured`` against ``reference``.

    NaN pairs (window sizes absent from either histogram) are skipped;
    reference zeros are skipped to avoid division blow-ups. Returns NaN
    when nothing is comparable.
    """
    measured = np.asarray(measured, dtype=np.float64)
    reference = np.asarray(reference, dtype=np.float64)
    if measured.shape != reference.shape:
        raise ValueError(
            f"shape mismatch {measured.shape} vs {reference.shape}"
        )
    ok = ~np.isnan(measured) & ~np.isnan(reference) & (reference != 0)
    if not ok.any():
        return float("nan")
    return float(
        100.0 * np.mean(np.abs(measured[ok] - reference[ok]) / np.abs(reference[ok]))
    )
