"""Trace differencing: pairwise and N-way corpus comparisons.

The paper's case studies are all *comparisons* — v1 vs v2 vs v3, pr vs
pr-spmv, AlexNet vs ResNet — done by reading tables side by side. This
module turns that workflow into a first-class operation at two scales:

* :func:`diff_traces` / ``memgaze diff a.npz b.npz`` — the original
  pairwise per-function diff, ranked by how much each function moved;
* :func:`corpus_diff` / ``memgaze matrix --gate`` — the N-way form: a
  baseline cell against every candidate in a corpus payload, with
  per-metric absolute/relative regression thresholds and a
  machine-readable ``pass``/``regressed`` verdict for CI gating.

The pairwise path is a thin two-cell special case of the N-way one:
both build :class:`FunctionDelta` rows through the same helper and
render through the same table, so ``memgaze diff`` output is
byte-identical to what it was before the corpus layer existed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Mapping

import numpy as np

from repro._util.tables import format_table
from repro.core.diagnostics import FootprintDiagnostics
from repro.core.report import format_quantity
from repro.core.windows import code_windows
from repro.trace.collector import CollectionResult
from repro.trace.compress import sample_ratio_from

__all__ = [
    "FunctionDelta",
    "TraceDiff",
    "diff_traces",
    "VERDICT_SCHEMA",
    "CORPUS_METRICS",
    "MetricThreshold",
    "Thresholds",
    "ThresholdError",
    "MetricEvidence",
    "CellDiff",
    "CorpusDiff",
    "corpus_diff",
]


@dataclass(frozen=True)
class FunctionDelta:
    """Per-function change between two traces."""

    function: str
    before: FootprintDiagnostics | None  # None = function only in 'after'
    after: FootprintDiagnostics | None  # None = function only in 'before'

    @property
    def accesses_ratio(self) -> float:
        """after/before estimated accesses (inf for new, 0 for removed)."""
        if self.before is None or self.before.A_est == 0:
            return float("inf") if self.after is not None else 1.0
        if self.after is None:
            return 0.0
        return self.after.A_est / self.before.A_est

    @property
    def dF_delta(self) -> float:
        """Change in footprint growth (positive = less reuse)."""
        b = self.before.dF if self.before else 0.0
        a = self.after.dF if self.after else 0.0
        return a - b

    @property
    def strided_delta(self) -> float:
        """Change in strided footprint share, percentage points."""
        b = self.before.F_str_pct if self.before else 0.0
        a = self.after.F_str_pct if self.after else 0.0
        return a - b

    @property
    def magnitude(self) -> float:
        """How much this function moved (for ranking)."""
        r = self.accesses_ratio
        ratio_term = abs(np.log2(r)) if 0 < r < float("inf") else 3.0
        return ratio_term + abs(self.dF_delta) * 4 + abs(self.strided_delta) / 25


def _function_deltas(
    cw_before: Mapping[str, FootprintDiagnostics],
    cw_after: Mapping[str, FootprintDiagnostics],
    min_accesses: int,
) -> list[FunctionDelta]:
    """Ranked per-function deltas between two code-window mappings.

    Functions match by name; those below ``min_accesses`` observed
    records on both sides are dropped as noise. This is the one delta
    constructor behind both the pairwise and the N-way diff.
    """
    deltas = []
    for fn in sorted(set(cw_before) | set(cw_after)):
        b, a = cw_before.get(fn), cw_after.get(fn)
        if (b is None or b.A_obs < min_accesses) and (a is None or a.A_obs < min_accesses):
            continue
        deltas.append(FunctionDelta(function=fn, before=b, after=a))
    deltas.sort(key=lambda d: -d.magnitude)
    return deltas


def _render_delta_table(
    label_before: str,
    label_after: str,
    deltas: list[FunctionDelta],
    total_ratio: float,
    top: int,
) -> str:
    """The paper-style diff table, biggest movers first (shared renderer).

    A truncated listing says how many rows it dropped — a silent top-N
    cap would read as "nothing else moved".
    """
    rows = []
    for d in deltas[:top]:
        b, a = d.before, d.after
        rows.append(
            [
                d.function,
                format_quantity(b.A_est) if b else "-",
                format_quantity(a.A_est) if a else "-",
                f"{d.accesses_ratio:.2f}x" if np.isfinite(d.accesses_ratio) else "new",
                f"{b.dF:.3f}" if b else "-",
                f"{a.dF:.3f}" if a else "-",
                f"{d.strided_delta:+.1f}",
            ]
        )
    title = (
        f"trace diff: {label_before} -> {label_after} "
        f"(total accesses {total_ratio:.2f}x)"
    )
    table = format_table(
        ["Function", "A before", "A after", "ratio", "dF before", "dF after", "dF_str% delta"],
        rows,
        title=title,
    )
    if len(deltas) > top:
        table += (
            f"\n({len(deltas) - top} of {len(deltas)} function rows omitted; "
            f"raise --top to see all)"
        )
    return table


@dataclass
class TraceDiff:
    """Result of comparing two traces."""

    label_before: str
    label_after: str
    deltas: list[FunctionDelta]
    total_before: float  # estimated accesses
    total_after: float

    @property
    def total_ratio(self) -> float:
        """after/before total estimated accesses."""
        return self.total_after / self.total_before if self.total_before else 1.0

    def render(self, *, top: int = 12) -> str:
        """Paper-style diff table, biggest movers first."""
        return _render_delta_table(
            self.label_before, self.label_after, self.deltas, self.total_ratio, top
        )


def diff_traces(
    before: CollectionResult,
    after: CollectionResult,
    fn_names_before: dict[int, str] | None = None,
    fn_names_after: dict[int, str] | None = None,
    *,
    label_before: str = "before",
    label_after: str = "after",
    min_accesses: int = 100,
) -> TraceDiff:
    """Compare two sampled traces function by function.

    Functions are matched by name; those below ``min_accesses`` observed
    records in both traces are dropped as noise.
    """
    cw_b = code_windows(
        before.events, rho=sample_ratio_from(before), fn_names=fn_names_before or {}
    )
    cw_a = code_windows(
        after.events, rho=sample_ratio_from(after), fn_names=fn_names_after or {}
    )
    return TraceDiff(
        label_before=label_before,
        label_after=label_after,
        deltas=_function_deltas(cw_b, cw_a, min_accesses),
        total_before=sum(d.A_est for d in cw_b.values()),
        total_after=sum(d.A_est for d in cw_a.values()),
    )


# -- N-way corpus diff and regression gating ----------------------------------

#: Bump when the verdict payload layout changes.
VERDICT_SCHEMA = 1


def _reuse_quantile(reuse: Mapping, q: float) -> float:
    """The q-quantile of the reuse-distance histogram, as a bin lower edge.

    ``counts[0]`` holds D == 0 and ``counts[k]`` holds ``[2**(k-1),
    2**k)``, so the quantile resolves to the smallest distance in the
    first bin whose cumulative count reaches ``q`` of the reusing
    accesses. Cold accesses are outside the distribution. Exact integer
    arithmetic — no float comparison can move a threshold verdict.
    """
    counts = reuse["counts"]
    total = int(reuse["n_reuse"])
    if total == 0:
        return 0.0
    target = q * total
    cum = 0
    for k, c in enumerate(counts):
        cum += int(c)
        if cum >= target:
            return 0.0 if k == 0 else float(2 ** (k - 1))
    return float(2 ** (len(counts) - 1))


def _diag_metric(name: str) -> Callable[[Mapping], float]:
    def get(payload: Mapping) -> float:
        return float(payload["passes"]["diagnostics"][name])

    return get


def _capture_rate(payload: Mapping) -> float:
    cap = payload["passes"]["captures"]
    c, s = int(cap["captures"]), int(cap["survivals"])
    return c / (c + s) if (c + s) else 0.0


def _reuse_mean(payload: Mapping) -> float:
    r = payload["passes"]["reuse"]
    return int(r["d_sum"]) / int(r["n_reuse"]) if int(r["n_reuse"]) else 0.0


def _sweep_metric(reduce: Callable[[list[dict]], float]) -> Callable[[Mapping], float]:
    def get(payload: Mapping) -> float:
        rows = payload["passes"]["cache_sweep"]
        return float(reduce(rows)) if rows else 0.0

    return get


def _pred_gap_max(rows: list[dict]) -> float:
    return max(abs(r["hit_ratio"] - r["predicted_hit_ratio"]) for r in rows)


@dataclass(frozen=True)
class _Metric:
    extract: Callable[[Mapping], float]
    worse: str  # "higher" | "lower": the direction that counts as regression
    requires: str | None = None  # pass that must be in the cell payload


#: The gateable per-cell metric catalog: how each value is read out of a
#: cell payload and which direction is a regression. Threshold files may
#: only name metrics listed here. Metrics with a ``requires`` pass are
#: evaluated only for cells that ran it (``memgaze matrix
#: --cache-sweep``); gating on one when the pass was not run is an error
#: rather than a silently-passing bound.
CORPUS_METRICS: dict[str, _Metric] = {
    "dF": _Metric(_diag_metric("dF"), "higher"),
    "dF_irr": _Metric(_diag_metric("dF_irr"), "higher"),
    "F": _Metric(_diag_metric("F"), "higher"),
    "F_est": _Metric(_diag_metric("F_est"), "higher"),
    "A_est": _Metric(_diag_metric("A_est"), "higher"),
    "reuse_mean": _Metric(_reuse_mean, "higher"),
    "reuse_p50": _Metric(lambda p: _reuse_quantile(p["passes"]["reuse"], 0.50), "higher"),
    "reuse_p90": _Metric(lambda p: _reuse_quantile(p["passes"]["reuse"], 0.90), "higher"),
    "reuse_p99": _Metric(lambda p: _reuse_quantile(p["passes"]["reuse"], 0.99), "higher"),
    "capture_rate": _Metric(_capture_rate, "lower"),
    # what-if sweep metrics: hit ratios over the swept geometry grid.
    # A drop in the worst/mean simulated hit rate is the regression
    # (less cache-friendly), as is the prediction drifting away from
    # the simulation (reuse-distance model losing fidelity).
    "cache.hit_ratio_min": _Metric(
        _sweep_metric(lambda rows: min(r["hit_ratio"] for r in rows)),
        "lower",
        requires="cache_sweep",
    ),
    "cache.hit_ratio_mean": _Metric(
        _sweep_metric(lambda rows: sum(r["hit_ratio"] for r in rows) / len(rows)),
        "lower",
        requires="cache_sweep",
    ),
    "cache.pred_gap_max": _Metric(
        _sweep_metric(_pred_gap_max), "higher", requires="cache_sweep"
    ),
}


class ThresholdError(ValueError):
    """A thresholds file that cannot gate (unknown metric, bad bound)."""


@dataclass(frozen=True)
class MetricThreshold:
    """Regression bounds for one metric; ``None`` means unbounded."""

    max_abs: float | None = None
    max_rel: float | None = None


@dataclass(frozen=True)
class Thresholds:
    """Per-metric regression bounds, usually loaded from a TOML file."""

    metrics: Mapping[str, MetricThreshold] = field(default_factory=dict)

    @classmethod
    def from_mapping(cls, raw: Mapping, *, source: str = "thresholds") -> "Thresholds":
        out: dict[str, MetricThreshold] = {}
        for name, entry in raw.items():
            if name not in CORPUS_METRICS:
                raise ThresholdError(
                    f"{source}: unknown metric {name!r} "
                    f"(known: {', '.join(sorted(CORPUS_METRICS))})"
                )
            if not isinstance(entry, Mapping):
                raise ThresholdError(f"{source}: metric {name!r} must be a table")
            bad = sorted(set(entry) - {"max_abs", "max_rel"})
            if bad:
                raise ThresholdError(
                    f"{source}: metric {name!r}: unknown keys: {', '.join(bad)} "
                    "(known: max_abs, max_rel)"
                )
            bounds = {}
            for key in ("max_abs", "max_rel"):
                if key in entry:
                    v = float(entry[key])
                    if not np.isfinite(v) or v < 0:
                        raise ThresholdError(
                            f"{source}: metric {name!r}: {key} must be finite "
                            f"and >= 0, got {entry[key]!r}"
                        )
                    bounds[key] = v
            if not bounds:
                raise ThresholdError(
                    f"{source}: metric {name!r} sets neither max_abs nor max_rel"
                )
            out[name] = MetricThreshold(**bounds)
        return cls(metrics=out)

    @classmethod
    def from_file(cls, path) -> "Thresholds":
        """Parse a ``.toml`` (or ``.json``) thresholds file.

        One table per metric::

            [dF_irr]
            max_abs = 0.05      # candidate may exceed baseline by 0.05
            max_rel = 0.10      # ... or by 10% of the baseline value
        """
        p = Path(path)
        try:
            text = p.read_text(encoding="utf-8")
        except OSError as exc:
            raise ThresholdError(f"cannot read thresholds: {exc}") from exc
        if p.suffix == ".json":
            import json

            try:
                raw = json.loads(text)
            except json.JSONDecodeError as exc:
                raise ThresholdError(f"{p}: invalid JSON: {exc}") from exc
        else:
            import tomllib

            try:
                raw = tomllib.loads(text)
            except tomllib.TOMLDecodeError as exc:
                raise ThresholdError(f"{p}: invalid TOML: {exc}") from exc
        if not isinstance(raw, Mapping):
            raise ThresholdError(f"{p}: thresholds must be a table/object")
        return cls.from_mapping(raw, source=str(p))

    def get(self, metric: str) -> MetricThreshold | None:
        return self.metrics.get(metric)


@dataclass(frozen=True)
class MetricEvidence:
    """One (cell, metric) comparison against the baseline.

    ``delta_abs`` is measured in the metric's *worse* direction (a
    positive value always means "moved toward regression", whichever
    way the raw numbers went); ``delta_rel`` is ``delta_abs`` relative
    to the baseline magnitude, ``None`` when the baseline is zero (a
    relative bound cannot apply there — only ``max_abs`` gates).
    Exactly-at-threshold is a pass: regression requires strictly
    exceeding a bound.
    """

    metric: str
    baseline: float
    candidate: float
    delta_abs: float
    delta_rel: float | None
    max_abs: float | None
    max_rel: float | None
    regressed: bool

    def jsonable(self) -> dict:
        return {
            "baseline": self.baseline,
            "candidate": self.candidate,
            "delta_abs": self.delta_abs,
            "delta_rel": self.delta_rel,
            "max_abs": self.max_abs,
            "max_rel": self.max_rel,
            "regressed": self.regressed,
        }


def _evidence(
    metric: str, base_payload: Mapping, cand_payload: Mapping, thresholds: Thresholds
) -> MetricEvidence:
    m = CORPUS_METRICS[metric]
    base = m.extract(base_payload)
    cand = m.extract(cand_payload)
    delta = cand - base if m.worse == "higher" else base - cand
    rel = delta / abs(base) if base else None
    th = thresholds.get(metric)
    regressed = th is not None and (
        (th.max_abs is not None and delta > th.max_abs)
        or (th.max_rel is not None and rel is not None and rel > th.max_rel)
    )
    return MetricEvidence(
        metric=metric,
        baseline=base,
        candidate=cand,
        delta_abs=delta,
        delta_rel=rel,
        max_abs=th.max_abs if th else None,
        max_rel=th.max_rel if th else None,
        regressed=regressed,
    )


@dataclass
class CellDiff:
    """One candidate cell against the baseline: functions + metrics."""

    label: str
    deltas: list[FunctionDelta]
    evidence: list[MetricEvidence]
    total_before: float
    total_after: float

    @property
    def regressed(self) -> bool:
        return any(e.regressed for e in self.evidence)

    @property
    def total_ratio(self) -> float:
        return self.total_after / self.total_before if self.total_before else 1.0


@dataclass
class CorpusDiff:
    """N-way diff: a baseline against every candidate cell of a corpus."""

    corpus: str
    baseline: str
    cells: list[CellDiff]
    thresholds: Thresholds

    @property
    def verdict(self) -> str:
        """``"regressed"`` when any cell trips any threshold, else ``"pass"``."""
        return "regressed" if any(c.regressed for c in self.cells) else "pass"

    def verdict_payload(self) -> dict:
        """The machine-readable verdict: per-cell, per-metric evidence."""
        return {
            "schema": VERDICT_SCHEMA,
            "corpus": self.corpus,
            "baseline": self.baseline,
            "verdict": self.verdict,
            "thresholds": {
                name: {"max_abs": t.max_abs, "max_rel": t.max_rel}
                for name, t in sorted(self.thresholds.metrics.items())
            },
            "cells": {
                c.label: {
                    "verdict": "regressed" if c.regressed else "pass",
                    "metrics": {e.metric: e.jsonable() for e in c.evidence},
                }
                for c in self.cells
            },
        }

    def render(self, *, top: int = 12) -> str:
        """Human-readable verdict: one section per candidate cell."""
        lines = [
            f"corpus diff: {self.corpus} (baseline {self.baseline}, "
            f"{len(self.cells)} candidate{'s' if len(self.cells) != 1 else ''}) "
            f"-> {self.verdict.upper()}"
        ]
        if not self.cells:
            lines.append("(baseline only — nothing to compare)")
        for c in self.cells:
            lines.append("")
            lines.append(
                f"== {c.label}: {'REGRESSED' if c.regressed else 'pass'} =="
            )
            for e in c.evidence:
                if not e.regressed:
                    continue
                rel = f", {100 * e.delta_rel:+.1f}%" if e.delta_rel is not None else ""
                bound = (
                    f"max_abs {e.max_abs:g}"
                    if e.max_abs is not None and e.delta_abs > e.max_abs
                    else f"max_rel {e.max_rel:g}"
                )
                lines.append(
                    f"  {e.metric}: {e.baseline:g} -> {e.candidate:g} "
                    f"({e.delta_abs:+g}{rel}) exceeds {bound}"
                )
            lines.append(
                _render_delta_table(self.baseline, c.label, c.deltas, c.total_ratio, top)
            )
        return "\n".join(lines)


def _functions_from_payload(payload: Mapping) -> dict[str, FootprintDiagnostics]:
    """Rehydrate a cell payload's ``functions`` mapping into diagnostics.

    ``to_jsonable`` serializes exactly the dataclass fields, so the
    round trip is lossless and the shared delta machinery sees the same
    objects the pairwise path computes directly.
    """
    return {name: FootprintDiagnostics(**d) for name, d in payload["functions"].items()}


def corpus_diff(
    corpus_payload: Mapping,
    thresholds: Thresholds | None = None,
    *,
    baseline: str | None = None,
    min_accesses: int = 100,
) -> CorpusDiff:
    """Diff every candidate cell of a corpus payload against its baseline.

    ``corpus_payload`` is the aggregated payload from
    :meth:`~repro.core.corpus.CorpusResult.corpus_payload` (or the same
    JSON reloaded from disk — the diff is a pure function of the
    payload). ``baseline`` overrides the payload's recorded baseline.
    With no ``thresholds`` every metric is reported as evidence but
    nothing can regress, so the verdict is always ``pass``.
    """
    thresholds = thresholds if thresholds is not None else Thresholds()
    cells: Mapping[str, Mapping] = corpus_payload["cells"]
    base_label = baseline or corpus_payload["baseline"]
    if base_label not in cells:
        raise ThresholdError(
            f"baseline {base_label!r} names no corpus cell "
            f"(cells: {', '.join(sorted(cells))})"
        )
    base_payload = cells[base_label]
    cw_base = _functions_from_payload(base_payload)
    total_base = sum(d.A_est for d in cw_base.values())
    out = []
    for label, payload in sorted(cells.items()):
        if label == base_label:
            continue
        evidence = []
        for m in sorted(CORPUS_METRICS):
            req = CORPUS_METRICS[m].requires
            if req is not None and (
                req not in base_payload["passes"] or req not in payload["passes"]
            ):
                if thresholds.get(m) is not None:
                    raise ThresholdError(
                        f"metric {m!r} is gated but pass {req!r} was not run "
                        f"for cell {base_label!r} or {label!r} "
                        f"(re-run the matrix with the pass enabled)"
                    )
                continue
            evidence.append(_evidence(m, base_payload, payload, thresholds))
        cw_cand = _functions_from_payload(payload)
        out.append(
            CellDiff(
                label=label,
                deltas=_function_deltas(cw_base, cw_cand, min_accesses),
                evidence=evidence,
                total_before=total_base,
                total_after=sum(d.A_est for d in cw_cand.values()),
            )
        )
    return CorpusDiff(
        corpus=str(corpus_payload.get("corpus", "corpus")),
        baseline=base_label,
        cells=out,
        thresholds=thresholds,
    )
