"""Trace differencing: compare two runs' memory behaviour.

The paper's case studies are all *comparisons* — v1 vs v2 vs v3, pr vs
pr-spmv, AlexNet vs ResNet — done by reading tables side by side. This
module turns that workflow into a first-class operation: given two
sampled traces (typically before/after an optimization), produce a
per-function diff of the diagnostic metrics, ranked by how much each
function's behaviour moved.

Use through :func:`diff_traces` or ``memgaze diff a.npz b.npz``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util.tables import format_table
from repro.core.diagnostics import FootprintDiagnostics
from repro.core.report import format_quantity
from repro.core.windows import code_windows
from repro.trace.collector import CollectionResult
from repro.trace.compress import sample_ratio_from

__all__ = ["FunctionDelta", "TraceDiff", "diff_traces"]


@dataclass(frozen=True)
class FunctionDelta:
    """Per-function change between two traces."""

    function: str
    before: FootprintDiagnostics | None  # None = function only in 'after'
    after: FootprintDiagnostics | None  # None = function only in 'before'

    @property
    def accesses_ratio(self) -> float:
        """after/before estimated accesses (inf for new, 0 for removed)."""
        if self.before is None or self.before.A_est == 0:
            return float("inf") if self.after is not None else 1.0
        if self.after is None:
            return 0.0
        return self.after.A_est / self.before.A_est

    @property
    def dF_delta(self) -> float:
        """Change in footprint growth (positive = less reuse)."""
        b = self.before.dF if self.before else 0.0
        a = self.after.dF if self.after else 0.0
        return a - b

    @property
    def strided_delta(self) -> float:
        """Change in strided footprint share, percentage points."""
        b = self.before.F_str_pct if self.before else 0.0
        a = self.after.F_str_pct if self.after else 0.0
        return a - b

    @property
    def magnitude(self) -> float:
        """How much this function moved (for ranking)."""
        r = self.accesses_ratio
        ratio_term = abs(np.log2(r)) if 0 < r < float("inf") else 3.0
        return ratio_term + abs(self.dF_delta) * 4 + abs(self.strided_delta) / 25


@dataclass
class TraceDiff:
    """Result of comparing two traces."""

    label_before: str
    label_after: str
    deltas: list[FunctionDelta]
    total_before: float  # estimated accesses
    total_after: float

    @property
    def total_ratio(self) -> float:
        """after/before total estimated accesses."""
        return self.total_after / self.total_before if self.total_before else 1.0

    def render(self, *, top: int = 12) -> str:
        """Paper-style diff table, biggest movers first."""
        rows = []
        for d in self.deltas[:top]:
            b, a = d.before, d.after
            rows.append(
                [
                    d.function,
                    format_quantity(b.A_est) if b else "-",
                    format_quantity(a.A_est) if a else "-",
                    f"{d.accesses_ratio:.2f}x" if np.isfinite(d.accesses_ratio) else "new",
                    f"{b.dF:.3f}" if b else "-",
                    f"{a.dF:.3f}" if a else "-",
                    f"{d.strided_delta:+.1f}",
                ]
            )
        title = (
            f"trace diff: {self.label_before} -> {self.label_after} "
            f"(total accesses {self.total_ratio:.2f}x)"
        )
        return format_table(
            ["Function", "A before", "A after", "ratio", "dF before", "dF after", "dF_str% delta"],
            rows,
            title=title,
        )


def diff_traces(
    before: CollectionResult,
    after: CollectionResult,
    fn_names_before: dict[int, str] | None = None,
    fn_names_after: dict[int, str] | None = None,
    *,
    label_before: str = "before",
    label_after: str = "after",
    min_accesses: int = 100,
) -> TraceDiff:
    """Compare two sampled traces function by function.

    Functions are matched by name; those below ``min_accesses`` observed
    records in both traces are dropped as noise.
    """
    cw_b = code_windows(
        before.events, rho=sample_ratio_from(before), fn_names=fn_names_before or {}
    )
    cw_a = code_windows(
        after.events, rho=sample_ratio_from(after), fn_names=fn_names_after or {}
    )
    deltas = []
    for fn in sorted(set(cw_b) | set(cw_a)):
        b, a = cw_b.get(fn), cw_a.get(fn)
        if (b is None or b.A_obs < min_accesses) and (a is None or a.A_obs < min_accesses):
            continue
        deltas.append(FunctionDelta(function=fn, before=b, after=a))
    deltas.sort(key=lambda d: -d.magnitude)
    return TraceDiff(
        label_before=label_before,
        label_after=label_after,
        deltas=deltas,
        total_before=sum(d.A_est for d in cw_b.values()),
        total_after=sum(d.A_est for d in cw_a.values()),
    )
