"""Footprint and reuse-population metrics (paper SS:V-C, Eq. 3).

*Footprint* is the amount of unique data touched by a sequence of
accesses, measured in access blocks (default: byte addresses; pass
``block=64`` for cache lines, ``block=4096`` for OS pages). Constant-class
loads are special: the paper views all of them as touching one unit of
space, so a window's footprint is::

    F = |unique non-Constant blocks| + (1 if any Constant access)

where the Constant contribution also covers the suppressed loads carried
by proxy records (``n_const``).

*Captures* ``C`` are non-Constant blocks with reuse inside the window
(seen 2+ times); *survivals* ``S`` are non-Constant blocks seen exactly
once, so ``C + S`` is the unique non-Constant block count and
``F = C + S`` plus the one Constant unit when any Constant access is
present. The estimated population footprint scales by the sample ratio
rho for inter-window analysis (Eq. 3)::

    F-hat = F          (intra-window: exact)
    F-hat = rho * F    (inter-window: estimate)
"""

from __future__ import annotations

import numpy as np

from repro._util.validate import check_power_of_two
from repro.trace.event import EVENT_DTYPE, LoadClass

__all__ = [
    "block_ids",
    "nonconstant",
    "footprint",
    "footprint_by_class",
    "captures_survivals",
    "estimated_footprint",
]


def _check(events: np.ndarray) -> None:
    if events.dtype != EVENT_DTYPE:
        raise TypeError(f"expected EVENT_DTYPE events, got {events.dtype}")


def _check_block(block: int) -> None:
    check_power_of_two("block", block)


def block_ids(events: np.ndarray, block: int = 1) -> np.ndarray:
    """Access-block id of each event (``addr // block``)."""
    _check(events)
    _check_block(block)
    if block == 1:
        return events["addr"].copy()
    shift = block.bit_length() - 1
    return events["addr"] >> np.uint64(shift)


def nonconstant(events: np.ndarray) -> np.ndarray:
    """The non-Constant records of a trace (the data that must move)."""
    _check(events)
    return events[events["cls"] != int(LoadClass.CONSTANT)]


def _has_constant(events: np.ndarray) -> bool:
    return bool(
        np.any(events["cls"] == int(LoadClass.CONSTANT))
        or np.any(events["n_const"] > 0)
    )


def footprint(events: np.ndarray, block: int = 1) -> int:
    """Observed footprint ``F`` of a window, in blocks.

    Unique non-Constant blocks, plus one unit when any Constant access
    (recorded or suppressed) occurred.
    """
    _check(events)
    if len(events) == 0:
        return 0
    nc = nonconstant(events)
    uniq = len(np.unique(block_ids(nc, block)))
    return uniq + (1 if _has_constant(events) else 0)


def footprint_by_class(events: np.ndarray, block: int = 1) -> dict[LoadClass, int]:
    """Footprint decomposed by load class: ``{CONSTANT, STRIDED, IRREGULAR}``.

    A block touched by both Strided and Irregular accesses counts toward
    each class (the decomposition highlights pattern mix, not a
    partition); the headline ``F`` remains :func:`footprint`.
    """
    _check(events)
    out: dict[LoadClass, int] = {
        LoadClass.CONSTANT: 1 if _has_constant(events) else 0
    }
    ids = block_ids(events, block)
    for cls in (LoadClass.STRIDED, LoadClass.IRREGULAR):
        mask = events["cls"] == int(cls)
        out[cls] = int(len(np.unique(ids[mask]))) if mask.any() else 0
    return out


def captures_survivals(events: np.ndarray, block: int = 1) -> tuple[int, int]:
    """(C, S): non-Constant blocks with and without reuse in the window."""
    _check(events)
    nc = nonconstant(events)
    if len(nc) == 0:
        return 0, 0
    _, counts = np.unique(block_ids(nc, block), return_counts=True)
    captures = int((counts >= 2).sum())
    survivals = int((counts == 1).sum())
    return captures, survivals


def estimated_footprint(
    events: np.ndarray, rho: float = 1.0, *, intra: bool = True, block: int = 1
) -> float:
    """F-hat per Eq. 3: exact intra-window, scaled by rho inter-window."""
    if rho < 1.0:
        raise ValueError(f"rho must be >= 1, got {rho}")
    f = footprint(events, block)
    return float(f) if intra else rho * f
