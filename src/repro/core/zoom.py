"""Location zoom tree: finding hot memory regions (paper SS:IV-C2, Fig. 5).

The zoom proceeds top-down from one region covering all accessed memory.
At each level the region is divided into fixed-size pages; a *hot
subregion* is a maximal run of **contiguous** pages, each with at least
one access, whose total is at least ``hot_threshold`` of the region's
accesses. Hot subregions recurse with a smaller page size until they
reach the minimum-size stopping threshold.

Contiguity is load-bearing (the paper calls it out): cold gaps inside a
hot run are kept so a leaf captures a whole object, and its
spatio-temporal reuse distance D reflects the locality of the *entire*
object — filtering to hot blocks only would make locality look
artificially good. The hot-blocks-only alternative is measured in
``benchmarks/test_ablation_zoom_contiguity.py``.

Per final region the analysis reports hotness (% of total accesses),
mean/max D for the region's accesses (64 B blocks by default), size in
blocks, accesses per block, and the code (functions) performing the
accesses — the columns of Tables V / VII / IX.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro._util.validate import check_power_of_two
from repro.core.reuse import reuse_distances
from repro.trace.event import EVENT_DTYPE, LoadClass

__all__ = ["ZoomConfig", "ZoomRegion", "location_zoom", "zoom_leaves"]


@dataclass(frozen=True)
class ZoomConfig:
    """Zoom-tree parameters."""

    page_size: int = 4096  # initial page size b_p
    access_block: int = 64  # block size b_a for reuse distance D
    hot_threshold: float = 0.10  # t: min fraction of region accesses
    min_region_bytes: int = 4096  # stopping threshold
    shrink: int = 4  # page-size divisor per level
    max_depth: int = 8

    def __post_init__(self) -> None:
        for name in ("page_size", "access_block", "min_region_bytes"):
            check_power_of_two(name, getattr(self, name))
        if not 0.0 < self.hot_threshold <= 1.0:
            raise ValueError(f"hot_threshold must be in (0,1], got {self.hot_threshold}")
        if self.shrink < 2:
            raise ValueError(f"shrink must be >= 2, got {self.shrink}")
        if self.max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {self.max_depth}")


@dataclass
class ZoomRegion:
    """A node of the zoom tree; leaves carry the reuse statistics."""

    base: int
    size: int
    depth: int
    n_accesses: int
    pct_of_total: float
    children: list["ZoomRegion"] = field(default_factory=list)
    D_mean: float = 0.0
    D_max: int = 0
    n_blocks: int = 0
    accesses_per_block: float = 0.0
    functions: Counter = field(default_factory=Counter)

    @property
    def end(self) -> int:
        """One past the region's last byte."""
        return self.base + self.size

    @property
    def is_leaf(self) -> bool:
        """Whether the zoom stopped here."""
        return not self.children


def _hot_runs(
    page_counts: np.ndarray, total: int, threshold: float
) -> list[tuple[int, int]]:
    """Maximal contiguous nonzero-page runs with enough accesses.

    Returns (start_page, end_page_exclusive) pairs.
    """
    nonzero = page_counts > 0
    if not nonzero.any():
        return []
    edges = np.diff(nonzero.astype(np.int8))
    starts = list(np.flatnonzero(edges == 1) + 1)
    ends = list(np.flatnonzero(edges == -1) + 1)
    if nonzero[0]:
        starts.insert(0, 0)
    if nonzero[-1]:
        ends.append(len(page_counts))
    runs = []
    for lo, hi in zip(starts, ends):
        if page_counts[lo:hi].sum() >= threshold * total:
            runs.append((int(lo), int(hi)))
    return runs


def location_zoom(
    events: np.ndarray,
    config: ZoomConfig | None = None,
    sample_id: np.ndarray | None = None,
    fn_names: dict[int, str] | None = None,
) -> ZoomRegion:
    """Build the zoom tree over the non-Constant accesses of ``events``.

    Reuse distances are computed once over the full (non-Constant) stream
    — intra-sample when ``sample_id`` is given — and leaves restrict to
    their address range, so interleaving with other regions is reflected
    in D exactly as the paper's spatio-temporal definition requires.
    """
    if events.dtype != EVENT_DTYPE:
        raise TypeError(f"expected EVENT_DTYPE events, got {events.dtype}")
    config = config or ZoomConfig()
    fn_names = fn_names or {}

    mask = events["cls"] != int(LoadClass.CONSTANT)
    nc = events[mask]
    sid = sample_id[mask] if sample_id is not None else None
    if len(nc) == 0:
        return ZoomRegion(base=0, size=config.min_region_bytes, depth=0, n_accesses=0, pct_of_total=0.0)

    addrs = nc["addr"].astype(np.int64)
    d = reuse_distances(nc, config.access_block, sid)
    fns = nc["fn"]
    total = len(nc)

    p0 = config.page_size
    lo = (int(addrs.min()) // p0) * p0
    hi = ((int(addrs.max()) // p0) + 1) * p0

    def build(base: int, size: int, page: int, depth: int, idx: np.ndarray) -> ZoomRegion:
        region = ZoomRegion(
            base=base,
            size=size,
            depth=depth,
            n_accesses=len(idx),
            pct_of_total=100.0 * len(idx) / total,
        )
        stop = (
            depth >= config.max_depth
            or size <= config.min_region_bytes
            or page < config.access_block
            or len(idx) == 0
        )
        if not stop:
            rel = (addrs[idx] - base) // page
            n_pages = size // page
            counts = np.bincount(rel, minlength=n_pages)
            runs = _hot_runs(counts, len(idx), config.hot_threshold)
            # a single run covering the whole populated span cannot shrink
            # the region; descend by page size instead of recursing in place
            for plo, phi in runs:
                sub_base = base + plo * page
                sub_size = (phi - plo) * page
                sel = idx[(addrs[idx] >= sub_base) & (addrs[idx] < sub_base + sub_size)]
                next_page = max(config.access_block, page // config.shrink)
                if sub_size == size and next_page == page:
                    continue  # no progress possible
                region.children.append(
                    build(sub_base, sub_size, next_page, depth + 1, sel)
                )
        if region.is_leaf:
            _finalize_leaf(region, idx)
        return region

    def _finalize_leaf(region: ZoomRegion, idx: np.ndarray) -> None:
        region.n_blocks = max(1, region.size // config.access_block)
        region.accesses_per_block = region.n_accesses / region.n_blocks
        if len(idx):
            dr = d[idx]
            hits = dr[dr >= 0]
            region.D_mean = float(hits.mean()) if len(hits) else 0.0
            region.D_max = int(dr.max()) if dr.max() >= 0 else 0
            for fid, c in zip(*np.unique(fns[idx], return_counts=True)):
                region.functions[fn_names.get(int(fid), f"fn{int(fid)}")] += int(c)

    all_idx = np.arange(len(nc), dtype=np.int64)
    return build(lo, hi - lo, p0, 0, all_idx)


def zoom_leaves(root: ZoomRegion, min_pct: float = 0.0) -> list[ZoomRegion]:
    """Final (leaf) regions, hottest first, filtered by hotness percent."""
    out: list[ZoomRegion] = []
    stack = [root]
    while stack:
        node = stack.pop()
        if node.is_leaf:
            if node.pct_of_total >= min_pct:
                out.append(node)
        else:
            stack.extend(node.children)
    out.sort(key=lambda r: -r.n_accesses)
    return out
