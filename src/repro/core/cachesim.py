"""Set-associative LRU cache model over event streams.

The paper's future work: "Using models of different memory systems, we
can obtain insight into memory system performance ... with respect to
data location, data movement, and workload accesses." This module is that
first model — a classic set-associative LRU cache driven by a trace,
reporting hit ratios overall, per load class, and per address region.

It doubles as an internal validator: reuse distance D predicts cache
behaviour (an access hits a fully-associative LRU cache of capacity C
iff D < C blocks), which ``tests/core/test_cachesim.py`` checks against
the analytical metrics.

That same equivalence powers the vectorised kernel: each cache set is
an independent fully-associative LRU over its own access substream, so
a stable reorder of the trace by set index turns the simulation into
one batched stack-distance sweep (:func:`repro.core.reuse.stack_distances`
with windows = sets) and ``hit iff 0 <= D < ways`` — no per-event
Python loop. The equivalence breaks when the next-line prefetcher is
on (prefetches install *below* the MRU slot, which plain stack
distance cannot express), so prefetching configurations automatically
fall back to the per-event reference loop; ``kernel="python"`` (or
``MEMGAZE_CACHE_KERNEL=python``) forces that loop everywhere. Both
paths produce identical :class:`CacheStats` — down to dict insertion
order — for any non-prefetching configuration (see
``docs/performance.md``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from repro._util.validate import check_power_of_two
from repro.core.reuse import stack_distances
from repro.trace.event import EVENT_DTYPE, LoadClass

__all__ = [
    "CacheConfig",
    "CacheStats",
    "simulate_cache",
    "default_cache_kernel",
    "CacheSweepRow",
    "SweepPartial",
    "sweep_configs",
    "sweep_update",
    "sweep_merge",
    "sweep_finalize",
    "HierarchyConfig",
    "HierarchyStats",
    "simulate_hierarchy",
]

#: environment override for the simulation kernel ("auto"/"vector"/"python")
_KERNEL_ENV = "MEMGAZE_CACHE_KERNEL"
_KERNELS = ("auto", "vector", "python")


def default_cache_kernel() -> str:
    """The kernel used when a call does not pick one explicitly."""
    kernel = os.environ.get(_KERNEL_ENV, "auto")
    if kernel not in _KERNELS:
        raise ValueError(
            f"{_KERNEL_ENV}={kernel!r} is not a cache kernel; pick one of {_KERNELS}"
        )
    return kernel


def _resolve_kernel(kernel: str | None, prefetching: bool) -> str:
    """Map (requested kernel, prefetch policy) to "vector" or "python"."""
    kernel = kernel or default_cache_kernel()
    if kernel not in _KERNELS:
        raise ValueError(f"unknown cache kernel {kernel!r}; pick one of {_KERNELS}")
    if kernel == "vector" and prefetching:
        raise ValueError(
            "kernel='vector' cannot model prefetch_next_line (prefetches "
            "install below the MRU slot); use kernel='auto' or 'python'"
        )
    if kernel == "auto":
        return "python" if prefetching else "vector"
    return kernel


@dataclass(frozen=True)
class CacheConfig:
    """Cache geometry and prefetch policy.

    ``prefetch_next_line`` models the hardware stream prefetcher in its
    simplest form: every demand miss also installs the next line. This is
    the mechanism behind the paper's premise that Strided accesses are
    "prefetchable" while Irregular ones are not.

    ``kernel`` optionally pins the simulation kernel at construction
    time. Kernel/policy compatibility is validated *here*, so an
    impossible request (``kernel="vector"`` with prefetching, which
    stack distance cannot express) fails when the configuration is
    built — at pass-schedule time, before any scan starts or worker
    forks — rather than per-call deep inside a fused scan.
    """

    size_bytes: int = 32 * 1024
    line_bytes: int = 64
    ways: int = 8
    prefetch_next_line: bool = False
    kernel: str | None = None

    def __post_init__(self) -> None:
        for name in ("size_bytes", "line_bytes", "ways"):
            v = getattr(self, name)
            if v <= 0:
                raise ValueError(f"{name} must be > 0, got {v}")
        if self.size_bytes % (self.line_bytes * self.ways) != 0:
            raise ValueError("size must be a multiple of line_bytes * ways")
        if self.kernel is not None and self.kernel not in _KERNELS:
            raise ValueError(
                f"unknown cache kernel {self.kernel!r}; pick one of {_KERNELS}"
            )
        if self.kernel == "vector" and self.prefetch_next_line:
            raise ValueError(
                "kernel='vector' cannot model prefetch_next_line (prefetches "
                "install below the MRU slot); use kernel='auto' or 'python'"
            )

    @property
    def n_sets(self) -> int:
        """Number of cache sets."""
        return self.size_bytes // (self.line_bytes * self.ways)


@dataclass
class CacheStats:
    """Outcome of one simulation."""

    config: CacheConfig
    n_accesses: int = 0
    n_hits: int = 0
    hits_by_class: dict[LoadClass, int] = field(default_factory=dict)
    accesses_by_class: dict[LoadClass, int] = field(default_factory=dict)

    @property
    def hit_ratio(self) -> float:
        """Overall hit ratio."""
        return self.n_hits / self.n_accesses if self.n_accesses else 0.0

    def class_hit_ratio(self, cls: LoadClass) -> float:
        """Hit ratio for one load class."""
        a = self.accesses_by_class.get(cls, 0)
        return self.hits_by_class.get(cls, 0) / a if a else 0.0


def _fold_class_counts(
    cls_vals: np.ndarray, positions: np.ndarray, extras: np.ndarray
) -> dict[LoadClass, int]:
    """Per-class totals, keyed in the insertion order the reference
    per-event loop produces (first occurrence in the stream; suppressed-
    constant extras count as a Constant occurrence *after* their
    carrier record's own class), so the vector path's dicts are
    indistinguishable from the loop's even under repr comparison."""
    entries: dict[LoadClass, list] = {}
    if len(cls_vals):
        uniq, first, counts = np.unique(cls_vals, return_index=True, return_counts=True)
        for u, f, c in zip(uniq, first, counts):
            entries[LoadClass(int(u))] = [(int(positions[f]), 0), int(c)]
    extra_total = int(extras.sum()) if len(extras) else 0
    if extra_total:
        key = (int(np.flatnonzero(extras)[0]), 1)
        cur = entries.get(LoadClass.CONSTANT)
        if cur is None:
            entries[LoadClass.CONSTANT] = [key, extra_total]
        else:
            entries[LoadClass.CONSTANT] = [min(cur[0], key), cur[1] + extra_total]
    ordered = sorted(entries.items(), key=lambda kv: kv[1][0])
    return {k: v[1] for k, v in ordered}


def _set_local_hits(lines: np.ndarray, config: CacheConfig) -> np.ndarray:
    """Per-access hit mask of one LRU level, via batched stack distance.

    A stable reorder by set index makes each set's substream contiguous;
    each set is then an independent fully-associative LRU of ``ways``
    lines, where an access hits iff fewer than ``ways`` distinct lines
    were touched since its previous access to the same line.
    """
    sets = lines % np.uint64(config.n_sets)
    perm = np.argsort(sets, kind="stable")
    d = stack_distances(lines[perm], sets[perm])
    hit = np.empty(len(lines), dtype=bool)
    hit[perm] = (d >= 0) & (d < config.ways)
    return hit


def _simulate_cache_vector(events: np.ndarray, config: CacheConfig) -> CacheStats:
    """Vectorised simulation (non-prefetching configurations)."""
    n = len(events)
    stats = CacheStats(config=config)
    lines = events["addr"] // np.uint64(config.line_bytes)
    hit = _set_local_hits(lines, config)
    n_const = events["n_const"]
    classes = events["cls"]
    extra_total = int(n_const.sum()) if n else 0
    stats.n_accesses = n + extra_total
    stats.n_hits = int(hit.sum()) + extra_total
    stats.accesses_by_class = _fold_class_counts(
        classes, np.arange(n, dtype=np.int64), n_const
    )
    hit_pos = np.flatnonzero(hit)
    stats.hits_by_class = _fold_class_counts(classes[hit_pos], hit_pos, n_const)
    return stats


def simulate_cache(
    events: np.ndarray,
    config: CacheConfig | None = None,
    *,
    kernel: str | None = None,
) -> CacheStats:
    """Drive a set-associative LRU cache with ``events``.

    Constant-class records are simulated too (they hit essentially
    always, modelling the paper's 'one unit of space' view); suppressed
    constants carried on proxies are counted as guaranteed hits.

    ``kernel`` picks the implementation: ``"auto"`` (default, via
    :func:`default_cache_kernel`) uses the vectorised stack-distance
    kernel unless the configuration prefetches, ``"python"`` forces the
    per-event reference loop, ``"vector"`` forces the kernel (and
    rejects prefetching configs it cannot model). Both produce
    identical results.
    """
    if events.dtype != EVENT_DTYPE:
        raise TypeError(f"expected EVENT_DTYPE events, got {events.dtype}")
    config = config or CacheConfig()
    if _resolve_kernel(kernel or config.kernel, config.prefetch_next_line) == "vector":
        return _simulate_cache_vector(events, config)
    return _simulate_cache_python(events, config)


def _simulate_cache_python(events: np.ndarray, config: CacheConfig) -> CacheStats:
    """Reference per-event loop (kernel ``"python"``; models prefetch)."""
    stats = CacheStats(config=config)
    n_sets = config.n_sets

    lines = events["addr"] // config.line_bytes
    sets = (lines % n_sets).astype(np.int64)
    classes = events["cls"]
    n_const = events["n_const"]

    # per-set LRU as an ordered list of line tags (small ways -> list ops fine)
    cache: list[list[int]] = [[] for _ in range(n_sets)]
    ways = config.ways

    prefetch = config.prefetch_next_line
    for line, s, cls_v, extra in zip(lines, sets, classes, n_const):
        line = int(line)
        cls = LoadClass(int(cls_v))
        set_lines = cache[s]
        stats.n_accesses += 1
        stats.accesses_by_class[cls] = stats.accesses_by_class.get(cls, 0) + 1
        try:
            set_lines.remove(line)
            hit = True
        except ValueError:
            hit = False
        set_lines.append(line)
        if len(set_lines) > ways:
            set_lines.pop(0)
        if prefetch:
            # a streamer follows every access: install the next line so a
            # unit-stride walk only ever misses its first line
            nxt = line + 1
            nset = cache[nxt % n_sets]
            if nxt not in nset:
                nset.insert(max(0, len(nset) - 1), nxt)  # below MRU
                if len(nset) > ways:
                    nset.pop(0)
        if hit:
            stats.n_hits += 1
            stats.hits_by_class[cls] = stats.hits_by_class.get(cls, 0) + 1
        if extra:
            # suppressed Constant loads: frame scalars, always resident
            k = int(extra)
            stats.n_accesses += k
            stats.n_hits += k
            stats.accesses_by_class[LoadClass.CONSTANT] = (
                stats.accesses_by_class.get(LoadClass.CONSTANT, 0) + k
            )
            stats.hits_by_class[LoadClass.CONSTANT] = (
                stats.hits_by_class.get(LoadClass.CONSTANT, 0) + k
            )
    return stats


# --------------------------------------------------------------------
# What-if sweeps: many configurations, one fused scan
# --------------------------------------------------------------------
#
# A sweep evaluates a whole grid of cache geometries over one trace.
# Two facts make it cheap and shardable:
#
# 1. Configurations that share (line_bytes, n_sets) share the expensive
#    part of the vector kernel verbatim — the set-stable reorder and the
#    batched stack-distance sweep. Associativity only changes the
#    threshold (hit iff 0 <= D < ways), so a whole ways-axis costs one
#    extra comparison per access, not one extra kernel run. The
#    reuse-distance *prediction* is the n_sets == 1 member of the same
#    family (hit iff D < capacity lines), so it rides the same machinery.
#
# 2. The per-(line_bytes, n_sets) state is an exact mergeable partial.
#    Within a chunk every access whose previous same-line access is also
#    in the chunk has its true distance, so it is resolved on the spot.
#    The only unresolved accesses are each set's *first* touches of a
#    line — and for those, hit/miss only needs distances up to the
#    largest threshold ``cap``. Each set therefore carries three
#    cap-bounded summaries: the distinct lines in first-touch order
#    (``firsts``), the distinct lines in recency order (``stacks``), and
#    the pending first touches (``boundary``, each with the size of its
#    preceding distinct-line prefix). Merging an earlier partial A with
#    a later partial B resolves B's pending touches against A's recency
#    stack exactly; anything deeper than ``cap`` is a certain miss for
#    every threshold, which is why the truncation loses nothing. The
#    merge is associative with the empty state as identity, and — like
#    the engine's fold order — strictly left-to-right in stream order.


class _GroupState:
    """Mergeable sweep state for one (line_bytes, n_sets) group."""

    __slots__ = ("n_sets", "thresholds", "cap", "hits", "hits_by_class",
                 "stacks", "firsts", "boundary")

    def __init__(self, n_sets: int, thresholds: tuple[int, ...]) -> None:
        self.n_sets = n_sets
        self.thresholds = thresholds  # sorted ascending
        self.cap = thresholds[-1]
        self.hits = np.zeros(len(thresholds), dtype=np.int64)
        self.hits_by_class = np.zeros((len(thresholds), 3), dtype=np.int64)
        self.stacks: dict[int, list[int]] = {}   # set -> lines, MRU first, <= cap
        self.firsts: dict[int, list[int]] = {}   # set -> lines, first-touch order, <= cap
        # set -> [(line, cls, plen)]: pending first touches; the distinct
        # lines seen before each one are exactly firsts[set][:plen]
        self.boundary: dict[int, list[tuple[int, int, int]]] = {}


def _group_update(st: _GroupState, lines: np.ndarray, cls: np.ndarray) -> None:
    """Fold one chunk's accesses into a fresh (identity) group state."""
    n = len(lines)
    if n == 0:
        return
    if st.n_sets == 1:
        ls, ss, cs = lines, np.zeros(n, dtype=np.uint64), cls
    else:
        sets = lines % np.uint64(st.n_sets)
        perm = np.argsort(sets, kind="stable")
        ls, ss, cs = lines[perm], sets[perm], cls[perm]
    d = stack_distances(ls, ss)
    reused = d >= 0
    n_th = len(st.thresholds)
    # one searchsorted replaces a per-threshold masking pass: an access
    # at hidx hits every threshold from hidx on (thresholds are sorted)
    hidx = np.searchsorted(st.thresholds, d[reused], side="right")
    ok = hidx < n_th
    st.hits += np.cumsum(np.bincount(hidx[ok], minlength=n_th))
    st.hits_by_class += np.cumsum(
        np.bincount(
            hidx[ok] * 3 + cs[reused][ok].astype(np.int64), minlength=3 * n_th
        ).reshape(n_th, 3),
        axis=0,
    )
    cold = ~reused
    cap = st.cap
    starts = np.flatnonzero(np.r_[True, ss[1:] != ss[:-1]])
    bounds = np.r_[starts, n]
    for a, b in zip(bounds[:-1], bounds[1:]):
        s = int(ss[a])
        sub = ls[a:b]
        subcold = cold[a:b]
        fl = [int(x) for x in sub[subcold][:cap]]
        subcls = cs[a:b][subcold]
        st.firsts[s] = fl
        st.boundary[s] = [(fl[j], int(subcls[j]), j) for j in range(len(fl))]
        # MRU-first distinct lines: last occurrences, most recent first
        rev = sub[::-1]
        _, first_idx = np.unique(rev, return_index=True)
        first_idx.sort()
        st.stacks[s] = rev[first_idx[:cap]].tolist()


def _resolve_boundary(
    st: _GroupState,
    astack_len: int,
    apos: dict[int, int],
    af_len: int,
    afset: set[int],
    bf: list[int],
    bbound: list[tuple[int, int, int]],
) -> list[tuple[int, int, int]]:
    """Resolve ``b``'s pending first touches against ``a``'s recency state.

    Tallies exact hits into ``st`` for entries whose line appears in
    ``a``'s stack and returns the still-pending survivors, rebased onto
    the merged firsts prefix. Vectorized: the per-entry work is numpy
    batch ops, never a Python pass over a cap-length prefix.
    """
    if not bbound:
        return []
    if not astack_len and not af_len:
        return list(bbound)  # merging onto the identity: nothing changes
    cap = st.cap
    thresholds = st.thresholds
    n_th = len(thresholds)
    lines = [e[0] for e in bbound]
    cls_v = np.array([e[1] for e in bbound], dtype=np.int64)
    plens = np.array([e[2] for e in bbound], dtype=np.int64)
    ipos = np.array([apos.get(line, -1) for line in lines], dtype=np.int64)
    resolved = np.flatnonzero(ipos >= 0)
    # how many of bf's first j lines are new relative to a's firsts
    fresh = np.array([f not in afset for f in bf], dtype=np.int64)
    cum_fresh = np.concatenate(([0], np.cumsum(fresh)))
    pending: list[tuple[int, int, int]] = []
    if astack_len < cap:
        # a's distinct-line set is complete, so the rebase is exact
        for k in np.flatnonzero(ipos < 0):
            new_plen = af_len + int(cum_fresh[plens[k]])
            if new_plen < cap:
                pending.append((lines[k], int(cls_v[k]), new_plen))
    if resolved.size:
        # dist = |bf[:plen] u astack[:i]| = plen + i - overlap; both
        # prefixes hold distinct lines, so only the overlap is shared
        bfpos = np.array([apos.get(f, astack_len) for f in bf], dtype=np.int64)
        i_k = ipos[resolved]
        p_k = plens[resolved]
        overlap = np.zeros(resolved.size, dtype=np.int64)
        if len(bfpos):
            j = np.arange(len(bfpos), dtype=np.int64)
            block = max(1, (1 << 22) // len(bfpos))
            for lo in range(0, resolved.size, block):
                hi = min(lo + block, resolved.size)
                m = (j[None, :] < p_k[lo:hi, None]) & (
                    bfpos[None, :] < i_k[lo:hi, None]
                )
                overlap[lo:hi] = m.sum(axis=1)
        dist = p_k + i_k - overlap
        hidx = np.searchsorted(thresholds, dist, side="right")
        ok = hidx < n_th
        # an entry at hidx hits every threshold from hidx on
        st.hits += np.cumsum(np.bincount(hidx[ok], minlength=n_th))
        by_cls = np.bincount(
            hidx[ok] * 3 + cls_v[resolved][ok], minlength=3 * n_th
        ).reshape(n_th, 3)
        st.hits_by_class += np.cumsum(by_cls, axis=0)
    return pending


def _group_merge(a: _GroupState, b: _GroupState) -> _GroupState:
    """Exact merge of an earlier state ``a`` with a later state ``b``."""
    out = _GroupState(a.n_sets, a.thresholds)
    out.hits = a.hits + b.hits
    out.hits_by_class = a.hits_by_class + b.hits_by_class
    cap = a.cap
    out.stacks = {s: list(v) for s, v in a.stacks.items()}
    out.firsts = {s: list(v) for s, v in a.firsts.items()}
    out.boundary = {s: list(v) for s, v in a.boundary.items()}
    for s in b.stacks:
        af = a.firsts.get(s, [])
        astack = a.stacks.get(s, [])
        afset = set(af)
        apos = {line: i for i, line in enumerate(astack)}
        bf = b.firsts.get(s, [])
        pending = _resolve_boundary(
            out, len(astack), apos, len(af), afset, bf, b.boundary.get(s, [])
        )
        if pending:
            out.boundary.setdefault(s, []).extend(pending)
        if len(af) >= cap:
            out.firsts[s] = list(af)
        else:
            out.firsts[s] = (af + [f for f in bf if f not in afset])[:cap]
        bstack = b.stacks.get(s, [])
        if len(bstack) >= cap:
            out.stacks[s] = list(bstack)
        else:
            bset = set(bstack)
            out.stacks[s] = (bstack + [x for x in astack if x not in bset])[:cap]
    return out


def sweep_configs(
    *,
    lines: tuple[int, ...] = (64,),
    sets: tuple[int, ...] = (64, 512),
    ways: tuple[int, ...] = (1, 2, 4, 8),
    configs: list | tuple | None = None,
    prefetch: bool = False,
) -> tuple[CacheConfig, ...]:
    """The validated what-if grid of a sweep.

    The default axes are block size (``lines``), capacity via the set
    count (``sets`` — capacity is ``line * sets * ways``), and
    associativity (``ways``); ``configs`` replaces the product with
    explicit ``(size_bytes, line_bytes, ways)`` triples. Every
    configuration is built with ``kernel="vector"`` pinned, so an
    invalid geometry or an unsimulatable policy (``prefetch=True``)
    raises ``ValueError`` here — at schedule time, before workers fork.
    """
    if configs is not None:
        triples = [(int(sz), int(ln), int(w)) for sz, ln, w in configs]
        grid = tuple(
            CacheConfig(size_bytes=sz, line_bytes=ln, ways=w,
                        prefetch_next_line=bool(prefetch), kernel="vector")
            for sz, ln, w in triples
        )
    else:
        grid = tuple(
            CacheConfig(size_bytes=int(ln) * int(ns) * int(w), line_bytes=int(ln),
                        ways=int(w), prefetch_next_line=bool(prefetch),
                        kernel="vector")
            for ln in lines
            for ns in sets
            for w in ways
        )
    if not grid:
        raise ValueError("cache sweep grid is empty")
    if len(set(grid)) != len(grid):
        raise ValueError("cache sweep grid has duplicate configurations")
    for c in grid:
        check_power_of_two("line_bytes", c.line_bytes)
    return grid


class SweepPartial:
    """Mergeable whole-sweep state: shared tallies + per-group states."""

    __slots__ = ("n", "extras", "cls_counts", "groups")

    def __init__(self, grid: tuple[CacheConfig, ...]) -> None:
        self.n = 0
        self.extras = 0
        self.cls_counts = np.zeros(3, dtype=np.int64)
        # group key -> sorted thresholds; simulation groups keyed by the
        # real geometry, predictions by (line_bytes, 1 set) with the
        # fully-associative capacity (in lines) as the threshold
        thresholds: dict[tuple[int, int], set[int]] = {}
        for c in grid:
            thresholds.setdefault((c.line_bytes, c.n_sets), set()).add(c.ways)
            thresholds.setdefault((c.line_bytes, 1), set()).add(
                c.size_bytes // c.line_bytes
            )
        self.groups = {
            key: _GroupState(key[1], tuple(sorted(t)))
            for key, t in sorted(thresholds.items())
        }


def sweep_update(partial: SweepPartial, events: np.ndarray, line_ids=None) -> SweepPartial:
    """Fold one chunk of events in; returns the updated partial.

    ``line_ids`` optionally maps a line size to the chunk's precomputed
    line-id array (the engine's shared ``block_ids`` artifact); without
    it the ids are computed here.
    """
    chunk = SweepPartial(())  # bare shell; groups rebuilt below
    chunk.groups = {k: _GroupState(st.n_sets, st.thresholds)
                    for k, st in partial.groups.items()}
    n = len(events)
    chunk.n = n
    if n:
        chunk.extras = int(events["n_const"].sum())
        cls = events["cls"]
        chunk.cls_counts = np.bincount(cls, minlength=3)[:3].astype(np.int64)
        cache: dict[int, np.ndarray] = {}
        for (line_b, _n_sets), st in chunk.groups.items():
            ids = cache.get(line_b)
            if ids is None:
                ids = (line_ids(line_b) if line_ids is not None
                       else events["addr"] >> np.uint64(line_b.bit_length() - 1))
                cache[line_b] = ids
            _group_update(st, ids, cls)
    return sweep_merge(partial, chunk)


def sweep_merge(a: SweepPartial, b: SweepPartial) -> SweepPartial:
    """Order-aware exact merge (``a`` earlier in the stream than ``b``)."""
    out = SweepPartial(())
    out.n = a.n + b.n
    out.extras = a.extras + b.extras
    out.cls_counts = a.cls_counts + b.cls_counts
    out.groups = {k: _group_merge(st, b.groups[k]) for k, st in a.groups.items()}
    return out


@dataclass(frozen=True)
class CacheSweepRow:
    """One configuration's simulated and predicted outcome."""

    size_bytes: int
    line_bytes: int
    ways: int
    n_sets: int
    n_accesses: int
    n_hits: int
    hit_ratio: float
    predicted_hits: int
    predicted_hit_ratio: float
    accesses_by_class: dict[str, int]
    hits_by_class: dict[str, int]


def sweep_finalize(
    partial: SweepPartial, grid: tuple[CacheConfig, ...]
) -> list[CacheSweepRow]:
    """Rows for every grid configuration, in grid order.

    Pending boundary touches are stream-cold at this point — misses, like
    the per-configuration simulation counts them. Suppressed-constant
    loads are guaranteed hits of class Constant in both columns, exactly
    as :func:`simulate_cache` accounts for them.
    """
    n_accesses = partial.n + partial.extras
    acc = partial.cls_counts.copy()
    acc[int(LoadClass.CONSTANT)] += partial.extras
    accesses_by_class = {
        LoadClass(i).name: int(acc[i]) for i in range(3) if acc[i]
    }
    rows = []
    for c in grid:
        sim = partial.groups[(c.line_bytes, c.n_sets)]
        ti = sim.thresholds.index(c.ways)
        hbc = sim.hits_by_class[ti].copy()
        hbc[int(LoadClass.CONSTANT)] += partial.extras
        n_hits = int(sim.hits[ti]) + partial.extras
        pred = partial.groups[(c.line_bytes, 1)]
        pi = pred.thresholds.index(c.size_bytes // c.line_bytes)
        predicted = int(pred.hits[pi]) + partial.extras
        rows.append(
            CacheSweepRow(
                size_bytes=c.size_bytes,
                line_bytes=c.line_bytes,
                ways=c.ways,
                n_sets=c.n_sets,
                n_accesses=n_accesses,
                n_hits=n_hits,
                hit_ratio=n_hits / n_accesses if n_accesses else 0.0,
                predicted_hits=predicted,
                predicted_hit_ratio=predicted / n_accesses if n_accesses else 0.0,
                accesses_by_class=accesses_by_class,
                hits_by_class={
                    LoadClass(i).name: int(hbc[i]) for i in range(3) if hbc[i]
                },
            )
        )
    return rows


@dataclass(frozen=True)
class HierarchyConfig:
    """A two-level hierarchy with per-level hit latencies (cycles)."""

    l1: CacheConfig = CacheConfig(size_bytes=4 * 1024, ways=8, prefetch_next_line=True)
    l2: CacheConfig = CacheConfig(size_bytes=64 * 1024, ways=16, prefetch_next_line=True)
    lat_l1: float = 4.0
    lat_l2: float = 14.0
    lat_mem: float = 120.0

    def __post_init__(self) -> None:
        if self.l1.line_bytes != self.l2.line_bytes:
            raise ValueError("levels must share a line size")
        if not self.lat_l1 < self.lat_l2 < self.lat_mem:
            raise ValueError("latencies must increase down the hierarchy")


@dataclass
class HierarchyStats:
    """Per-level hits plus the resulting average memory access time."""

    config: HierarchyConfig
    n_accesses: int
    l1_hits: int
    l2_hits: int

    @property
    def misses(self) -> int:
        """Accesses served by memory."""
        return self.n_accesses - self.l1_hits - self.l2_hits

    @property
    def amat(self) -> float:
        """Average memory access time in cycles."""
        if self.n_accesses == 0:
            return 0.0
        c = self.config
        total = (
            self.l1_hits * c.lat_l1
            + self.l2_hits * c.lat_l2
            + self.misses * c.lat_mem
        )
        return total / self.n_accesses


def _simulate_hierarchy_vector(
    events: np.ndarray, config: HierarchyConfig
) -> HierarchyStats:
    """Vectorised two-level simulation (non-prefetching configurations).

    L2's contents depend only on the substream of L1 misses, so the L1
    hit mask selects L2's accesses and the same batched stack-distance
    kernel runs per level.
    """
    n = len(events)
    lines = events["addr"] // np.uint64(config.l1.line_bytes)
    l1_hit = _set_local_hits(lines, config.l1)
    l2_hit = _set_local_hits(lines[~l1_hit], config.l2)
    extra = int(events["n_const"].sum()) if n else 0
    return HierarchyStats(
        config=config,
        n_accesses=n + extra,
        l1_hits=int(l1_hit.sum()) + extra,
        l2_hits=int(l2_hit.sum()),
    )


def simulate_hierarchy(
    events: np.ndarray,
    config: HierarchyConfig | None = None,
    *,
    kernel: str | None = None,
) -> HierarchyStats:
    """Drive an inclusive two-level hierarchy with ``events``.

    L2 is probed (and filled) only on L1 misses; both levels install the
    missing line, so the hierarchy is inclusive by construction. The
    resulting AMAT is the physically-grounded counterpart of
    :class:`repro.workloads.cost.MemoryCostModel`'s per-class constants.

    ``kernel`` selects the implementation exactly as in
    :func:`simulate_cache`; the default configuration prefetches on
    both levels, so it runs the reference loop unless prefetching is
    disabled.
    """
    if events.dtype != EVENT_DTYPE:
        raise TypeError(f"expected EVENT_DTYPE events, got {events.dtype}")
    config = config or HierarchyConfig()
    prefetching = config.l1.prefetch_next_line or config.l2.prefetch_next_line
    kernel = kernel or config.l1.kernel or config.l2.kernel
    if _resolve_kernel(kernel, prefetching) == "vector":
        return _simulate_hierarchy_vector(events, config)
    return _simulate_hierarchy_python(events, config)


def _simulate_hierarchy_python(
    events: np.ndarray, config: HierarchyConfig
) -> HierarchyStats:
    """Reference per-event loop (kernel ``"python"``; models prefetch)."""

    def _mk(c: CacheConfig):
        return [[] for _ in range(c.n_sets)]

    l1, l2 = _mk(config.l1), _mk(config.l2)
    line_b = config.l1.line_bytes
    lines = events["addr"] // line_b
    n_const = events["n_const"]

    n_acc = l1_hits = l2_hits = 0

    def _probe(cache, c: CacheConfig, line: int, *, fill: bool = True) -> bool:
        s = cache[line % c.n_sets]
        try:
            s.remove(line)
            hit = True
        except ValueError:
            hit = False
        if hit or fill:
            s.append(line)
            if len(s) > c.ways:
                s.pop(0)
        if c.prefetch_next_line and not hit and fill:
            nxt = line + 1
            ns = cache[nxt % c.n_sets]
            if nxt not in ns:
                ns.insert(max(0, len(ns) - 1), nxt)
                if len(ns) > c.ways:
                    ns.pop(0)
        return hit

    for line, extra in zip(lines, n_const):
        line = int(line)
        n_acc += 1
        if _probe(l1, config.l1, line):
            l1_hits += 1
        elif _probe(l2, config.l2, line):
            l2_hits += 1
        if extra:  # suppressed frame scalars: L1-resident
            n_acc += int(extra)
            l1_hits += int(extra)
    return HierarchyStats(
        config=config, n_accesses=n_acc, l1_hits=l1_hits, l2_hits=l2_hits
    )
