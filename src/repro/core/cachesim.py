"""Set-associative LRU cache model over event streams.

The paper's future work: "Using models of different memory systems, we
can obtain insight into memory system performance ... with respect to
data location, data movement, and workload accesses." This module is that
first model — a classic set-associative LRU cache driven by a trace,
reporting hit ratios overall, per load class, and per address region.

It doubles as an internal validator: reuse distance D predicts cache
behaviour (an access hits a fully-associative LRU cache of capacity C
iff D < C blocks), which ``tests/core/test_cachesim.py`` checks against
the analytical metrics.

That same equivalence powers the vectorised kernel: each cache set is
an independent fully-associative LRU over its own access substream, so
a stable reorder of the trace by set index turns the simulation into
one batched stack-distance sweep (:func:`repro.core.reuse.stack_distances`
with windows = sets) and ``hit iff 0 <= D < ways`` — no per-event
Python loop. The equivalence breaks when the next-line prefetcher is
on (prefetches install *below* the MRU slot, which plain stack
distance cannot express), so prefetching configurations automatically
fall back to the per-event reference loop; ``kernel="python"`` (or
``MEMGAZE_CACHE_KERNEL=python``) forces that loop everywhere. Both
paths produce identical :class:`CacheStats` — down to dict insertion
order — for any non-prefetching configuration (see
``docs/performance.md``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from repro.core.reuse import stack_distances
from repro.trace.event import EVENT_DTYPE, LoadClass

__all__ = [
    "CacheConfig",
    "CacheStats",
    "simulate_cache",
    "default_cache_kernel",
    "HierarchyConfig",
    "HierarchyStats",
    "simulate_hierarchy",
]

#: environment override for the simulation kernel ("auto"/"vector"/"python")
_KERNEL_ENV = "MEMGAZE_CACHE_KERNEL"
_KERNELS = ("auto", "vector", "python")


def default_cache_kernel() -> str:
    """The kernel used when a call does not pick one explicitly."""
    kernel = os.environ.get(_KERNEL_ENV, "auto")
    if kernel not in _KERNELS:
        raise ValueError(
            f"{_KERNEL_ENV}={kernel!r} is not a cache kernel; pick one of {_KERNELS}"
        )
    return kernel


def _resolve_kernel(kernel: str | None, prefetching: bool) -> str:
    """Map (requested kernel, prefetch policy) to "vector" or "python"."""
    kernel = kernel or default_cache_kernel()
    if kernel not in _KERNELS:
        raise ValueError(f"unknown cache kernel {kernel!r}; pick one of {_KERNELS}")
    if kernel == "vector" and prefetching:
        raise ValueError(
            "kernel='vector' cannot model prefetch_next_line (prefetches "
            "install below the MRU slot); use kernel='auto' or 'python'"
        )
    if kernel == "auto":
        return "python" if prefetching else "vector"
    return kernel


@dataclass(frozen=True)
class CacheConfig:
    """Cache geometry and prefetch policy.

    ``prefetch_next_line`` models the hardware stream prefetcher in its
    simplest form: every demand miss also installs the next line. This is
    the mechanism behind the paper's premise that Strided accesses are
    "prefetchable" while Irregular ones are not.
    """

    size_bytes: int = 32 * 1024
    line_bytes: int = 64
    ways: int = 8
    prefetch_next_line: bool = False

    def __post_init__(self) -> None:
        for name in ("size_bytes", "line_bytes", "ways"):
            v = getattr(self, name)
            if v <= 0:
                raise ValueError(f"{name} must be > 0, got {v}")
        if self.size_bytes % (self.line_bytes * self.ways) != 0:
            raise ValueError("size must be a multiple of line_bytes * ways")

    @property
    def n_sets(self) -> int:
        """Number of cache sets."""
        return self.size_bytes // (self.line_bytes * self.ways)


@dataclass
class CacheStats:
    """Outcome of one simulation."""

    config: CacheConfig
    n_accesses: int = 0
    n_hits: int = 0
    hits_by_class: dict[LoadClass, int] = field(default_factory=dict)
    accesses_by_class: dict[LoadClass, int] = field(default_factory=dict)

    @property
    def hit_ratio(self) -> float:
        """Overall hit ratio."""
        return self.n_hits / self.n_accesses if self.n_accesses else 0.0

    def class_hit_ratio(self, cls: LoadClass) -> float:
        """Hit ratio for one load class."""
        a = self.accesses_by_class.get(cls, 0)
        return self.hits_by_class.get(cls, 0) / a if a else 0.0


def _fold_class_counts(
    cls_vals: np.ndarray, positions: np.ndarray, extras: np.ndarray
) -> dict[LoadClass, int]:
    """Per-class totals, keyed in the insertion order the reference
    per-event loop produces (first occurrence in the stream; suppressed-
    constant extras count as a Constant occurrence *after* their
    carrier record's own class), so the vector path's dicts are
    indistinguishable from the loop's even under repr comparison."""
    entries: dict[LoadClass, list] = {}
    if len(cls_vals):
        uniq, first, counts = np.unique(cls_vals, return_index=True, return_counts=True)
        for u, f, c in zip(uniq, first, counts):
            entries[LoadClass(int(u))] = [(int(positions[f]), 0), int(c)]
    extra_total = int(extras.sum()) if len(extras) else 0
    if extra_total:
        key = (int(np.flatnonzero(extras)[0]), 1)
        cur = entries.get(LoadClass.CONSTANT)
        if cur is None:
            entries[LoadClass.CONSTANT] = [key, extra_total]
        else:
            entries[LoadClass.CONSTANT] = [min(cur[0], key), cur[1] + extra_total]
    ordered = sorted(entries.items(), key=lambda kv: kv[1][0])
    return {k: v[1] for k, v in ordered}


def _set_local_hits(lines: np.ndarray, config: CacheConfig) -> np.ndarray:
    """Per-access hit mask of one LRU level, via batched stack distance.

    A stable reorder by set index makes each set's substream contiguous;
    each set is then an independent fully-associative LRU of ``ways``
    lines, where an access hits iff fewer than ``ways`` distinct lines
    were touched since its previous access to the same line.
    """
    sets = lines % np.uint64(config.n_sets)
    perm = np.argsort(sets, kind="stable")
    d = stack_distances(lines[perm], sets[perm])
    hit = np.empty(len(lines), dtype=bool)
    hit[perm] = (d >= 0) & (d < config.ways)
    return hit


def _simulate_cache_vector(events: np.ndarray, config: CacheConfig) -> CacheStats:
    """Vectorised simulation (non-prefetching configurations)."""
    n = len(events)
    stats = CacheStats(config=config)
    lines = events["addr"] // np.uint64(config.line_bytes)
    hit = _set_local_hits(lines, config)
    n_const = events["n_const"]
    classes = events["cls"]
    extra_total = int(n_const.sum()) if n else 0
    stats.n_accesses = n + extra_total
    stats.n_hits = int(hit.sum()) + extra_total
    stats.accesses_by_class = _fold_class_counts(
        classes, np.arange(n, dtype=np.int64), n_const
    )
    hit_pos = np.flatnonzero(hit)
    stats.hits_by_class = _fold_class_counts(classes[hit_pos], hit_pos, n_const)
    return stats


def simulate_cache(
    events: np.ndarray,
    config: CacheConfig | None = None,
    *,
    kernel: str | None = None,
) -> CacheStats:
    """Drive a set-associative LRU cache with ``events``.

    Constant-class records are simulated too (they hit essentially
    always, modelling the paper's 'one unit of space' view); suppressed
    constants carried on proxies are counted as guaranteed hits.

    ``kernel`` picks the implementation: ``"auto"`` (default, via
    :func:`default_cache_kernel`) uses the vectorised stack-distance
    kernel unless the configuration prefetches, ``"python"`` forces the
    per-event reference loop, ``"vector"`` forces the kernel (and
    rejects prefetching configs it cannot model). Both produce
    identical results.
    """
    if events.dtype != EVENT_DTYPE:
        raise TypeError(f"expected EVENT_DTYPE events, got {events.dtype}")
    config = config or CacheConfig()
    if _resolve_kernel(kernel, config.prefetch_next_line) == "vector":
        return _simulate_cache_vector(events, config)
    return _simulate_cache_python(events, config)


def _simulate_cache_python(events: np.ndarray, config: CacheConfig) -> CacheStats:
    """Reference per-event loop (kernel ``"python"``; models prefetch)."""
    stats = CacheStats(config=config)
    n_sets = config.n_sets

    lines = events["addr"] // config.line_bytes
    sets = (lines % n_sets).astype(np.int64)
    classes = events["cls"]
    n_const = events["n_const"]

    # per-set LRU as an ordered list of line tags (small ways -> list ops fine)
    cache: list[list[int]] = [[] for _ in range(n_sets)]
    ways = config.ways

    prefetch = config.prefetch_next_line
    for line, s, cls_v, extra in zip(lines, sets, classes, n_const):
        line = int(line)
        cls = LoadClass(int(cls_v))
        set_lines = cache[s]
        stats.n_accesses += 1
        stats.accesses_by_class[cls] = stats.accesses_by_class.get(cls, 0) + 1
        try:
            set_lines.remove(line)
            hit = True
        except ValueError:
            hit = False
        set_lines.append(line)
        if len(set_lines) > ways:
            set_lines.pop(0)
        if prefetch:
            # a streamer follows every access: install the next line so a
            # unit-stride walk only ever misses its first line
            nxt = line + 1
            nset = cache[nxt % n_sets]
            if nxt not in nset:
                nset.insert(max(0, len(nset) - 1), nxt)  # below MRU
                if len(nset) > ways:
                    nset.pop(0)
        if hit:
            stats.n_hits += 1
            stats.hits_by_class[cls] = stats.hits_by_class.get(cls, 0) + 1
        if extra:
            # suppressed Constant loads: frame scalars, always resident
            k = int(extra)
            stats.n_accesses += k
            stats.n_hits += k
            stats.accesses_by_class[LoadClass.CONSTANT] = (
                stats.accesses_by_class.get(LoadClass.CONSTANT, 0) + k
            )
            stats.hits_by_class[LoadClass.CONSTANT] = (
                stats.hits_by_class.get(LoadClass.CONSTANT, 0) + k
            )
    return stats


@dataclass(frozen=True)
class HierarchyConfig:
    """A two-level hierarchy with per-level hit latencies (cycles)."""

    l1: CacheConfig = CacheConfig(size_bytes=4 * 1024, ways=8, prefetch_next_line=True)
    l2: CacheConfig = CacheConfig(size_bytes=64 * 1024, ways=16, prefetch_next_line=True)
    lat_l1: float = 4.0
    lat_l2: float = 14.0
    lat_mem: float = 120.0

    def __post_init__(self) -> None:
        if self.l1.line_bytes != self.l2.line_bytes:
            raise ValueError("levels must share a line size")
        if not self.lat_l1 < self.lat_l2 < self.lat_mem:
            raise ValueError("latencies must increase down the hierarchy")


@dataclass
class HierarchyStats:
    """Per-level hits plus the resulting average memory access time."""

    config: HierarchyConfig
    n_accesses: int
    l1_hits: int
    l2_hits: int

    @property
    def misses(self) -> int:
        """Accesses served by memory."""
        return self.n_accesses - self.l1_hits - self.l2_hits

    @property
    def amat(self) -> float:
        """Average memory access time in cycles."""
        if self.n_accesses == 0:
            return 0.0
        c = self.config
        total = (
            self.l1_hits * c.lat_l1
            + self.l2_hits * c.lat_l2
            + self.misses * c.lat_mem
        )
        return total / self.n_accesses


def _simulate_hierarchy_vector(
    events: np.ndarray, config: HierarchyConfig
) -> HierarchyStats:
    """Vectorised two-level simulation (non-prefetching configurations).

    L2's contents depend only on the substream of L1 misses, so the L1
    hit mask selects L2's accesses and the same batched stack-distance
    kernel runs per level.
    """
    n = len(events)
    lines = events["addr"] // np.uint64(config.l1.line_bytes)
    l1_hit = _set_local_hits(lines, config.l1)
    l2_hit = _set_local_hits(lines[~l1_hit], config.l2)
    extra = int(events["n_const"].sum()) if n else 0
    return HierarchyStats(
        config=config,
        n_accesses=n + extra,
        l1_hits=int(l1_hit.sum()) + extra,
        l2_hits=int(l2_hit.sum()),
    )


def simulate_hierarchy(
    events: np.ndarray,
    config: HierarchyConfig | None = None,
    *,
    kernel: str | None = None,
) -> HierarchyStats:
    """Drive an inclusive two-level hierarchy with ``events``.

    L2 is probed (and filled) only on L1 misses; both levels install the
    missing line, so the hierarchy is inclusive by construction. The
    resulting AMAT is the physically-grounded counterpart of
    :class:`repro.workloads.cost.MemoryCostModel`'s per-class constants.

    ``kernel`` selects the implementation exactly as in
    :func:`simulate_cache`; the default configuration prefetches on
    both levels, so it runs the reference loop unless prefetching is
    disabled.
    """
    if events.dtype != EVENT_DTYPE:
        raise TypeError(f"expected EVENT_DTYPE events, got {events.dtype}")
    config = config or HierarchyConfig()
    prefetching = config.l1.prefetch_next_line or config.l2.prefetch_next_line
    if _resolve_kernel(kernel, prefetching) == "vector":
        return _simulate_hierarchy_vector(events, config)
    return _simulate_hierarchy_python(events, config)


def _simulate_hierarchy_python(
    events: np.ndarray, config: HierarchyConfig
) -> HierarchyStats:
    """Reference per-event loop (kernel ``"python"``; models prefetch)."""

    def _mk(c: CacheConfig):
        return [[] for _ in range(c.n_sets)]

    l1, l2 = _mk(config.l1), _mk(config.l2)
    line_b = config.l1.line_bytes
    lines = events["addr"] // line_b
    n_const = events["n_const"]

    n_acc = l1_hits = l2_hits = 0

    def _probe(cache, c: CacheConfig, line: int, *, fill: bool = True) -> bool:
        s = cache[line % c.n_sets]
        try:
            s.remove(line)
            hit = True
        except ValueError:
            hit = False
        if hit or fill:
            s.append(line)
            if len(s) > c.ways:
                s.pop(0)
        if c.prefetch_next_line and not hit and fill:
            nxt = line + 1
            ns = cache[nxt % c.n_sets]
            if nxt not in ns:
                ns.insert(max(0, len(ns) - 1), nxt)
                if len(ns) > c.ways:
                    ns.pop(0)
        return hit

    for line, extra in zip(lines, n_const):
        line = int(line)
        n_acc += 1
        if _probe(l1, config.l1, line):
            l1_hits += 1
        elif _probe(l2, config.l2, line):
            l2_hits += 1
        if extra:  # suppressed frame scalars: L1-resident
            n_acc += int(extra)
            l1_hits += int(extra)
    return HierarchyStats(
        config=config, n_accesses=n_acc, l1_hits=l1_hits, l2_hits=l2_hits
    )
