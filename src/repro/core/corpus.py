"""Corpus model: a grid of traces analyzed as one unit.

The paper's workflow — and the original CLI — analyzed one archive at a
time; judging a code change against a *fleet* of workloads needs the
corpus as a first-class object. A :class:`CorpusSpec` names every cell
of a workload x config x trace grid (loaded from a TOML/JSON spec file
or expanded from a directory of archives), and a :class:`CorpusResult`
holds each cell's canonical payload plus one aggregated corpus payload
that extends the ``full_report_payload`` conventions: pure trace
content, no paths or timestamps, so a warm (cache-served) run
serializes byte-identically to the cold run that populated the cache.

``memgaze matrix`` is the CLI entry; :mod:`repro.core.matrix` runs the
grid and :mod:`repro.core.diff` turns a result into an N-way verdict.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

__all__ = [
    "CORPUS_SCHEMA",
    "CorpusSpecError",
    "CellSpec",
    "CorpusSpec",
    "CellResult",
    "CorpusResult",
    "cell_payload",
]

#: Bump when the corpus payload layout changes; verdicts carry it too.
CORPUS_SCHEMA = 1

#: per-cell keys a spec file may set (everything else is a typo)
_CELL_KEYS = frozenset(["label", "trace", "block", "reuse_block", "cache_sweep"])
_TOP_KEYS = frozenset(["name", "baseline", "cell"])


class CorpusSpecError(ValueError):
    """A corpus spec that cannot be run (missing cells, bad labels...)."""


@dataclass(frozen=True)
class CellSpec:
    """One grid cell: a trace archive plus its analysis parameters."""

    label: str
    trace: Path
    block: int = 1
    reuse_block: int = 64
    #: opt-in: run the cache-geometry what-if sweep for this cell (adds
    #: the ``cache_sweep`` pass to its payload and enables the
    #: ``cache.*`` gate metrics). Off by default so existing corpus
    #: payloads stay byte-identical.
    cache_sweep: bool = False


@dataclass(frozen=True)
class CorpusSpec:
    """A validated grid of cells with a designated baseline side."""

    cells: tuple[CellSpec, ...]
    baseline: str
    name: str = "corpus"

    def __post_init__(self) -> None:
        if not self.cells:
            raise CorpusSpecError("corpus spec has no cells")
        labels = [c.label for c in self.cells]
        dupes = sorted({x for x in labels if labels.count(x) > 1})
        if dupes:
            raise CorpusSpecError(f"duplicate cell labels: {', '.join(dupes)}")
        if self.baseline not in labels:
            raise CorpusSpecError(
                f"baseline {self.baseline!r} names no cell "
                f"(cells: {', '.join(labels)})"
            )
        for c in self.cells:
            if not Path(c.trace).exists():
                raise CorpusSpecError(
                    f"cell {c.label!r}: trace archive not found: {c.trace}"
                )

    @property
    def candidates(self) -> tuple[CellSpec, ...]:
        """Every cell except the baseline, in spec order."""
        return tuple(c for c in self.cells if c.label != self.baseline)

    def cell(self, label: str) -> CellSpec:
        for c in self.cells:
            if c.label == label:
                return c
        raise KeyError(label)

    @classmethod
    def from_directory(
        cls, path, *, baseline: str | None = None, name: str | None = None
    ) -> "CorpusSpec":
        """One cell per ``*.npz`` archive, labelled by file stem.

        Cells sort by label; the baseline defaults to the first label.
        """
        root = Path(path)
        archives = sorted(root.glob("*.npz"), key=lambda p: p.stem)
        if not archives:
            raise CorpusSpecError(f"no *.npz archives in {root}")
        cells = tuple(CellSpec(label=p.stem, trace=p) for p in archives)
        return cls(
            cells=cells,
            baseline=baseline or cells[0].label,
            name=name or (root.name or "corpus"),
        )

    @classmethod
    def from_file(cls, path, *, baseline: str | None = None) -> "CorpusSpec":
        """Parse a ``.toml`` or ``.json`` spec file.

        The layout is the same in both syntaxes::

            name = "nightly"          # optional, defaults to the file stem
            baseline = "v1"           # optional, defaults to the first cell

            [[cell]]
            label = "v1"              # optional, defaults to the trace stem
            trace = "traces/v1.npz"   # required; relative to the spec file
            block = 1                 # optional analysis params
            reuse_block = 64

        ``baseline=`` (the keyword argument) overrides the file's choice.
        """
        spec_path = Path(path)
        try:
            text = spec_path.read_text(encoding="utf-8")
        except OSError as exc:
            raise CorpusSpecError(f"cannot read corpus spec: {exc}") from exc
        if spec_path.suffix == ".json":
            try:
                raw = json.loads(text)
            except json.JSONDecodeError as exc:
                raise CorpusSpecError(f"{spec_path}: invalid JSON: {exc}") from exc
        else:
            import tomllib

            try:
                raw = tomllib.loads(text)
            except tomllib.TOMLDecodeError as exc:
                raise CorpusSpecError(f"{spec_path}: invalid TOML: {exc}") from exc
        if not isinstance(raw, dict):
            raise CorpusSpecError(f"{spec_path}: spec must be a table/object")
        unknown = sorted(set(raw) - _TOP_KEYS)
        if unknown:
            raise CorpusSpecError(
                f"{spec_path}: unknown keys: {', '.join(unknown)} "
                f"(known: {', '.join(sorted(_TOP_KEYS))})"
            )
        entries = raw.get("cell", [])
        if not isinstance(entries, list):
            raise CorpusSpecError(f"{spec_path}: 'cell' must be an array of tables")
        cells = []
        for i, entry in enumerate(entries):
            if not isinstance(entry, dict):
                raise CorpusSpecError(f"{spec_path}: cell #{i} must be a table")
            bad = sorted(set(entry) - _CELL_KEYS)
            if bad:
                raise CorpusSpecError(
                    f"{spec_path}: cell #{i}: unknown keys: {', '.join(bad)} "
                    f"(known: {', '.join(sorted(_CELL_KEYS))})"
                )
            if "trace" not in entry:
                raise CorpusSpecError(f"{spec_path}: cell #{i} has no 'trace'")
            trace = spec_path.parent / str(entry["trace"])
            cells.append(
                CellSpec(
                    label=str(entry.get("label", trace.stem)),
                    trace=trace,
                    block=int(entry.get("block", 1)),
                    reuse_block=int(entry.get("reuse_block", 64)),
                    cache_sweep=bool(entry.get("cache_sweep", False)),
                )
            )
        if not cells:
            raise CorpusSpecError(f"{spec_path}: spec declares no [[cell]] entries")
        return cls(
            cells=tuple(cells),
            baseline=baseline or str(raw.get("baseline", cells[0].label)),
            name=str(raw.get("name", spec_path.stem)),
        )

    @classmethod
    def load(cls, path, *, baseline: str | None = None) -> "CorpusSpec":
        """Directory -> :meth:`from_directory`, file -> :meth:`from_file`."""
        p = Path(path)
        if p.is_dir():
            return cls.from_directory(p, baseline=baseline)
        if p.exists():
            return cls.from_file(p, baseline=baseline)
        raise CorpusSpecError(f"corpus spec not found: {p}")


def cell_payload(analysis) -> dict:
    """One cell's canonical payload from a :class:`FileAnalysis`.

    Mirrors :func:`repro.core.report.full_report_payload` field for
    field (schema/module/counts/rho, the four headline passes, the
    per-function ``functions`` mapping) — but built from the streamed
    :meth:`~repro.core.parallel.ParallelEngine.analyze_file` results, so
    a cache-served cell produces the same bytes without touching events.
    Nothing environmental (paths, modes, timings) may appear here.
    """
    from repro.core.passes import get_pass, to_jsonable
    from repro.core.report import PAYLOAD_SCHEMA

    names = ["diagnostics", "hotspot", "captures", "reuse"]
    if "cache_sweep" in analysis.pass_results:
        # opt-in what-if sweep (CellSpec.cache_sweep / matrix
        # --cache-sweep); absent by default so payload bytes are
        # unchanged for existing corpora
        names.append("cache_sweep")
    meta = analysis.meta
    return {
        "schema": PAYLOAD_SCHEMA,
        "module": meta.module,
        "n_events": int(analysis.n_events),
        "n_samples": int(meta.n_samples),
        "n_loads_total": int(meta.n_loads_total),
        "rho": float(analysis.rho),
        "passes": {
            name: get_pass(name).jsonable(analysis.pass_results[name])
            for name in names
        },
        "functions": {
            name: to_jsonable(d)
            for name, d in sorted(analysis.pass_results["windows"].items())
        },
    }


@dataclass
class CellResult:
    """One analyzed cell: its payload plus run evidence.

    The payload is pure content; everything run-dependent (mode,
    timing, cache evidence) lives here so journals and verdicts can
    cite it without ever leaking into the canonical bytes.
    """

    spec: CellSpec
    payload: dict
    mode: str  # "cached" | "incremental" | "full"
    n_events: int
    skipped_events: int
    seconds: float
    digest: str | None

    @property
    def label(self) -> str:
        return self.spec.label


@dataclass
class CorpusResult:
    """Every cell's result plus the aggregated corpus payload."""

    spec: CorpusSpec
    cells: dict[str, CellResult] = field(default_factory=dict)

    def corpus_payload(self) -> dict:
        """The aggregated canonical payload (content only, stable bytes)."""
        return {
            "schema": CORPUS_SCHEMA,
            "corpus": self.spec.name,
            "baseline": self.spec.baseline,
            "n_cells": len(self.cells),
            "cells": {label: r.payload for label, r in sorted(self.cells.items())},
        }

    @property
    def modes(self) -> Mapping[str, str]:
        """``{label: mode}`` — the per-cell cache evidence."""
        return {label: r.mode for label, r in sorted(self.cells.items())}
