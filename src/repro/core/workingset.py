"""Working-set analysis: inter-sample reuse at OS-page granularity.

Paper SS:V-B: "For cache-friendly data structures, we focus on
intra-sample reuse where blocks are cache lines. For working-set
analysis, we use inter-sample reuse and blocks of OS page size."

:func:`working_set_curve` slices a sampled trace into time intervals and
estimates, per interval, the resident working set: the rho-scaled count
of unique pages touched (Eq. 3's inter-window estimator at page blocks),
alongside the capture/survival split that says how much of it is reused
vs streamed through.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util.validate import check_positive, check_power_of_two
from repro.core.metrics import captures_survivals, footprint
from repro.trace.collector import CollectionResult
from repro.trace.compress import sample_ratio_from

__all__ = ["WorkingSetPoint", "working_set_curve"]


@dataclass(frozen=True)
class WorkingSetPoint:
    """Working-set estimate for one time interval."""

    interval: int
    t_start: int
    t_end: int
    pages_observed: int
    pages_est: float  # rho-scaled unique pages
    bytes_est: float
    captured_fraction: float  # share of pages with reuse inside the interval

    @property
    def mb_est(self) -> float:
        """Estimated working set in MiB."""
        return self.bytes_est / (1 << 20)


def working_set_curve(
    collection: CollectionResult,
    *,
    n_intervals: int = 8,
    page_size: int = 4096,
) -> list[WorkingSetPoint]:
    """Estimated working set per equal-record time interval."""
    check_positive("n_intervals", n_intervals)
    check_power_of_two("page_size", page_size)
    events = collection.events
    rho = sample_ratio_from(collection)
    out: list[WorkingSetPoint] = []
    n = len(events)
    if n == 0:
        return out
    edges = np.linspace(0, n, n_intervals + 1).astype(np.int64)
    for k in range(n_intervals):
        lo, hi = int(edges[k]), int(edges[k + 1])
        part = events[lo:hi]
        if len(part) == 0:
            continue
        pages = footprint(part, block=page_size)
        c, s = captures_survivals(part, block=page_size)
        out.append(
            WorkingSetPoint(
                interval=k,
                t_start=int(part["t"][0]),
                t_end=int(part["t"][-1]) + 1,
                pages_observed=pages,
                pages_est=rho * pages,
                bytes_est=rho * pages * page_size,
                captured_fraction=c / (c + s) if (c + s) else 0.0,
            )
        )
    return out
