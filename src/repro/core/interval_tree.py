"""Execution interval tree: multi-resolution time analysis (paper Fig. 4).

The tree is built bottom-up from samples. Leaves are individual samples
(exact, intra-window metrics); each level above merges pairs of adjacent
nodes into larger time intervals whose metrics are population *estimates*
scaled by rho (inter-window, Eq. 3). Below samples, intra-sample splits
give finer resolution, and leaf *function nodes* group a sample's
accesses by procedure.

Zooming descends from the root choosing the child that maximises a
criterion (accesses, footprint growth, ...) — the red path in Fig. 4.

:func:`access_interval_metrics` flattens one tree level into the paper's
"hot access interval" rows (Table VIII, Fig. 9): equal-count access
intervals over time with F / Delta-F / D / A-hat per interval.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.diagnostics import FootprintDiagnostics, compute_diagnostics
from repro.core.reuse import mean_reuse_distance
from repro.trace.collector import CollectionResult
from repro.trace.event import EVENT_DTYPE

__all__ = ["IntervalNode", "ExecutionIntervalTree", "access_interval_metrics"]


@dataclass
class IntervalNode:
    """One time interval: its event slice, metrics, and children."""

    level: int  # 0 = sample leaves; positive above, negative below
    t_start: int
    t_end: int
    diagnostics: FootprintDiagnostics
    exact: bool  # intra-sample metrics are exact; merged ones are estimates
    children: list["IntervalNode"] = field(default_factory=list)
    function: str | None = None  # set on leaf function nodes

    @property
    def span(self) -> int:
        """Interval length in retired loads."""
        return self.t_end - self.t_start


class ExecutionIntervalTree:
    """Bottom-up interval tree over a sampled collection."""

    def __init__(self, root: IntervalNode, samples: list[IntervalNode]) -> None:
        self.root = root
        self.samples = samples

    @classmethod
    def build(
        cls,
        collection: CollectionResult,
        *,
        rho: float,
        block: int = 1,
        intra_splits: int = 0,
        fn_names: dict[int, str] | None = None,
    ) -> "ExecutionIntervalTree":
        """Build the tree from a sampled trace.

        ``intra_splits`` levels are added *below* each sample by halving
        its access sequence; function leaf nodes hang off every sample.
        """
        fn_names = fn_names or {}
        leaves: list[IntervalNode] = []
        for sample in collection.samples():
            if len(sample) == 0:
                continue
            node = IntervalNode(
                level=0,
                t_start=int(sample["t"][0]),
                t_end=int(sample["t"][-1]) + 1,
                diagnostics=compute_diagnostics(sample, rho=1.0, block=block),
                exact=True,
            )
            node.children = cls._build_below(sample, intra_splits, block, fn_names)
            leaves.append(node)
        if not leaves:
            raise ValueError("collection has no non-empty samples")

        # merge pairwise upward; merged metrics are rho-scaled estimates
        level_nodes = leaves
        level = 0
        events_of: dict[int, np.ndarray] = {
            id(n): s for n, s in zip(leaves, collection.samples())
        }
        while len(level_nodes) > 1:
            level += 1
            merged: list[IntervalNode] = []
            for i in range(0, len(level_nodes), 2):
                group = level_nodes[i : i + 2]
                ev = np.concatenate([events_of[id(n)] for n in group])
                node = IntervalNode(
                    level=level,
                    t_start=group[0].t_start,
                    t_end=group[-1].t_end,
                    diagnostics=compute_diagnostics(ev, rho=rho, block=block),
                    exact=False,
                    children=list(group),
                )
                events_of[id(node)] = ev
                merged.append(node)
            level_nodes = merged
        return cls(level_nodes[0], leaves)

    @staticmethod
    def _build_below(
        sample: np.ndarray,
        splits: int,
        block: int,
        fn_names: dict[int, str],
    ) -> list[IntervalNode]:
        children: list[IntervalNode] = []
        if splits > 0 and len(sample) >= 2:
            half = len(sample) // 2
            for part in (sample[:half], sample[half:]):
                node = IntervalNode(
                    level=-1,
                    t_start=int(part["t"][0]),
                    t_end=int(part["t"][-1]) + 1,
                    diagnostics=compute_diagnostics(part, rho=1.0, block=block),
                    exact=True,
                )
                node.children = ExecutionIntervalTree._build_below(
                    part, splits - 1, block, fn_names
                )
                children.append(node)
            return children
        # function leaf nodes
        for fid in np.unique(sample["fn"]):
            part = sample[sample["fn"] == fid]
            children.append(
                IntervalNode(
                    level=-1,
                    t_start=int(part["t"][0]),
                    t_end=int(part["t"][-1]) + 1,
                    diagnostics=compute_diagnostics(part, rho=1.0, block=block),
                    exact=True,
                    function=fn_names.get(int(fid), f"fn{int(fid)}"),
                )
            )
        return children

    def zoom(
        self,
        criterion: Callable[[IntervalNode], float] | None = None,
        max_depth: int | None = None,
    ) -> list[IntervalNode]:
        """Descend from the root along the max-criterion child path.

        The default criterion is footprint growth weighted by accesses —
        "a hot interval (many accesses) with poor reuse (large footprint
        growth)" per the paper's walkthrough of Fig. 4.
        """
        if criterion is None:
            criterion = lambda n: n.diagnostics.dF * n.diagnostics.A_implied
        path = [self.root]
        node = self.root
        depth = 0
        while node.children and (max_depth is None or depth < max_depth):
            node = max(node.children, key=criterion)
            path.append(node)
            depth += 1
        return path


def access_interval_metrics(
    events: np.ndarray,
    n_intervals: int,
    *,
    rho: float = 1.0,
    block: int = 1,
    reuse_block: int = 64,
    sample_id: np.ndarray | None = None,
    engine=None,
    cache_token=None,
) -> list[dict]:
    """Equal-count access intervals over time (Table VIII / Fig. 9 rows).

    Splits the record stream into ``n_intervals`` consecutive intervals of
    equal record count and reports per interval: estimated footprint ``F``,
    growth ``dF``, intra-sample mean reuse distance ``D``, and estimated
    accesses ``A``.

    With a :class:`~repro.core.parallel.ParallelEngine` passed as
    ``engine``, interval windows are computed through it — sharded when
    large, and memoized under ``(window_id, block, metric)`` so repeated
    zoom queries at the same interval geometry are free (``cache_token``
    namespaces the windows; pass the owning result's token).
    """
    if events.dtype != EVENT_DTYPE:
        raise TypeError(f"expected EVENT_DTYPE events, got {events.dtype}")
    if n_intervals <= 0:
        raise ValueError(f"n_intervals must be > 0, got {n_intervals}")
    n = len(events)
    rows: list[dict] = []
    edges = np.linspace(0, n, n_intervals + 1).astype(np.int64)
    for k in range(n_intervals):
        lo, hi = int(edges[k]), int(edges[k + 1])
        part = events[lo:hi]
        if len(part) == 0:
            rows.append(
                {"interval": k, "F": 0.0, "dF": 0.0, "D": 0.0, "A": 0.0, "A_obs": 0}
            )
            continue
        sid = sample_id[lo:hi] if sample_id is not None else None
        if engine is not None:
            window_id = (cache_token, lo, hi) if cache_token is not None else None
            diag = engine.diagnostics(
                part, rho=rho, block=block, sample_id=sid, window_id=window_id
            )
            d = engine.reuse_histogram(
                part, block=reuse_block, sample_id=sid, window_id=window_id
            ).mean
        else:
            diag = compute_diagnostics(part, rho=rho, block=block)
            d = mean_reuse_distance(part, block=reuse_block, sample_id=sid)
        rows.append(
            {
                "interval": k,
                "F": diag.F_est,
                "dF": diag.dF,
                "D": d,
                "A": diag.A_est,
                "A_obs": diag.A_obs,
            }
        )
    return rows
