"""Phase detection over sampled traces (paper SS:V-E).

"Many applications tend to frequently alternate between regular execution
phases with structured memory access patterns and irregular phases with
unpredictable memory behaviors." With sampled traces, each sample gives a
cheap per-window feature — the strided share of its accesses and its
footprint growth — and phase boundaries appear where those features jump.

:func:`detect_phases` segments the sample sequence with a simple online
change-point rule: a new phase starts when a sample's strided share moves
more than ``threshold`` away from the running phase mean. Each detected
phase carries its time span, classification, and aggregate diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.diagnostics import FootprintDiagnostics, compute_diagnostics
from repro.trace.collector import CollectionResult
from repro.trace.event import LoadClass

__all__ = ["Phase", "detect_phases", "sample_features"]


@dataclass(frozen=True)
class Phase:
    """One detected execution phase."""

    index: int
    first_sample: int
    last_sample: int  # inclusive
    t_start: int
    t_end: int
    strided_share: float  # mean over the phase's samples
    diagnostics: FootprintDiagnostics
    label: str  # "regular" | "irregular" | "mixed"

    @property
    def n_samples(self) -> int:
        """Samples aggregated into this phase."""
        return self.last_sample - self.first_sample + 1


def _label(strided_share: float) -> str:
    if strided_share >= 0.7:
        return "regular"
    if strided_share <= 0.3:
        return "irregular"
    return "mixed"


def sample_features(collection: CollectionResult) -> np.ndarray:
    """Per-sample strided share of non-Constant accesses (NaN if none)."""
    out = []
    for sample in collection.samples():
        nc = sample[sample["cls"] != int(LoadClass.CONSTANT)]
        if len(nc) == 0:
            out.append(np.nan)
        else:
            out.append(float((nc["cls"] == int(LoadClass.STRIDED)).mean()))
    return np.asarray(out, dtype=np.float64)


def detect_phases(
    collection: CollectionResult,
    *,
    threshold: float = 0.25,
    min_phase_samples: int = 2,
    block: int = 1,
) -> list[Phase]:
    """Segment the sampled trace into phases by access-pattern mix.

    ``threshold`` is the strided-share jump that opens a new phase;
    candidate phases shorter than ``min_phase_samples`` are merged into
    their successor (they are usually transition windows).
    """
    if not 0 < threshold < 1:
        raise ValueError(f"threshold must be in (0,1), got {threshold}")
    if min_phase_samples < 1:
        raise ValueError(f"min_phase_samples must be >= 1, got {min_phase_samples}")
    samples = [s for s in collection.samples()]
    if not samples:
        return []
    features = sample_features(collection)

    # change-point pass
    boundaries = [0]
    mean = features[0]
    count = 1
    for i in range(1, len(samples)):
        f = features[i]
        if np.isnan(f):
            continue
        if np.isnan(mean):
            mean, count = f, 1
            continue
        if abs(f - mean) > threshold:
            boundaries.append(i)
            mean, count = f, 1
        else:
            mean = (mean * count + f) / (count + 1)
            count += 1
    boundaries.append(len(samples))

    # merge too-short phases forward
    merged: list[tuple[int, int]] = []
    for lo, hi in zip(boundaries, boundaries[1:]):
        if merged and (hi - lo) < min_phase_samples:
            merged[-1] = (merged[-1][0], hi)
        elif merged and (merged[-1][1] - merged[-1][0]) < min_phase_samples:
            merged[-1] = (merged[-1][0], hi)
        else:
            merged.append((lo, hi))

    phases: list[Phase] = []
    for idx, (lo, hi) in enumerate(merged):
        events = np.concatenate(samples[lo:hi])
        share = np.nanmean(features[lo:hi]) if hi > lo else float("nan")
        share = 0.0 if np.isnan(share) else float(share)
        phases.append(
            Phase(
                index=idx,
                first_sample=lo,
                last_sample=hi - 1,
                t_start=int(samples[lo]["t"][0]),
                t_end=int(samples[hi - 1]["t"][-1]) + 1,
                strided_share=share,
                diagnostics=compute_diagnostics(events, block=block),
                label=_label(share),
            )
        )
    return phases
