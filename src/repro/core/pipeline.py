"""End-to-end MemGaze driver (paper Fig. 1).

Ties the three toolchain stages together:

1. **instrument** — classify loads and rewrite the module
   (:mod:`repro.instrument`), ISA path only;
2. **trace** — execute and collect a sampled trace
   (:mod:`repro.trace.collector`); for library-path workloads the
   recorder's event stream plays the role of the instrumented execution;
3. **analyze** — rebuild load-level events ('Analysis/1'), then compute
   the diagnostic suite ('Analysis/2'): whole-trace diagnostics, code
   windows, and lazy access to zoom / interval-tree analyses through the
   result object.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.diagnostics import FootprintDiagnostics, compute_diagnostics
from repro.core.interval_tree import access_interval_metrics
from repro.core.parallel import ParallelEngine
from repro.core.windows import code_windows
from repro.core.zoom import ZoomConfig, ZoomRegion, location_zoom
from repro.instrument.instrumenter import InstrumentResult, instrument_module
from repro.instrument.rebuild import rebuild_trace
from repro.isa.interp import Interpreter
from repro.isa.program import Module
from repro.simmem.address_space import AddressSpace
from repro.simmem.recorder import AccessRecorder
from repro.trace.collector import CollectionResult, collect_sampled_trace
from repro.trace.compress import compression_ratio, sample_ratio_from
from repro.trace.event import EVENT_DTYPE
from repro.trace.overhead import ExecCounts
from repro.trace.sampler import SamplingConfig

__all__ = ["AnalysisConfig", "MemGazeResult", "MemGaze"]


@dataclass(frozen=True)
class AnalysisConfig:
    """Knobs shared by all analyses of one run."""

    sampling: SamplingConfig
    block: int = 1  # footprint granularity (bytes)
    reuse_block: int = 64  # D granularity (cache line)
    mode: str = "continuous"  # PT enablement: "continuous" | "sampled_only"
    workers: int = 1  # analysis worker processes (1 = in-process)
    chunk_size: int | None = None  # events per shard (None = auto)
    #: extra analysis passes to fuse into the whole-trace scan: names or
    #: (name, params) pairs (see repro.core.passes). Resolved eagerly so
    #: an unknown name fails at configuration time, not mid-analysis.
    passes: tuple = ()
    #: directory of the persistent content-addressed analysis cache
    #: (repro.core.artifacts.ArtifactStore); None = no persistence.
    #: Sampled events are digested by the same per-chunk CRCs the trace
    #: archives embed, so results cached here are shared with
    #: `memgaze report --cache` runs over the written archive.
    cache_dir: "str | None" = None
    #: size bound for the cache directory (mtime-LRU eviction); None
    #: keeps the ArtifactStore default.
    cache_max_bytes: int | None = None

    def __post_init__(self) -> None:
        from repro.core.passes import get_pass

        for req in self.passes:
            get_pass(req if isinstance(req, str) else req[0])


@dataclass
class MemGazeResult:
    """Everything the analysis stage produces for one run."""

    collection: CollectionResult
    rho: float
    kappa: float
    diagnostics: FootprintDiagnostics
    per_function: dict[str, FootprintDiagnostics]
    fn_names: dict[int, str] = field(default_factory=dict)
    counts: ExecCounts | None = None
    instrumentation: InstrumentResult | None = None
    config: AnalysisConfig | None = None
    engine: "ParallelEngine | None" = None
    cache_token: int | None = None
    #: content digest of (events, sample_id) — the persistent-cache
    #: address of this trace when the analysis ran with a cache_dir
    trace_digest: str | None = None
    #: finalized results of the extra passes fused into the analysis
    #: scan (AnalysisConfig.passes), keyed by pass name
    pass_results: dict = field(default_factory=dict)

    @property
    def events(self) -> np.ndarray:
        """The sampled event records."""
        return self.collection.events

    @property
    def sample_id(self) -> np.ndarray:
        """Per-event sample membership."""
        return self.collection.sample_id

    def zoom(self, zoom_config: ZoomConfig | None = None) -> ZoomRegion:
        """Location zoom tree over the sampled records (Fig. 5)."""
        return location_zoom(
            self.events, zoom_config, sample_id=self.sample_id, fn_names=self.fn_names
        )

    def time_intervals(self, n_intervals: int = 8, reuse_block: int | None = None) -> list[dict]:
        """Equal-count access-interval metrics over time (Table VIII).

        When the result carries a parallel engine, repeated calls at the
        same interval count hit its (window_id, block, metric) cache.
        """
        rb = reuse_block or (self.config.reuse_block if self.config else 64)
        return access_interval_metrics(
            self.events,
            n_intervals,
            rho=self.rho,
            block=self.config.block if self.config else 1,
            reuse_block=rb,
            sample_id=self.sample_id,
            engine=self.engine,
            cache_token=self.cache_token,
        )

    def hotspots(self, coverage: float = 0.90):
        """Functions dominating the sampled loads (ROI candidates)."""
        from repro.core.hotspot import find_hotspots

        return find_hotspots(self.events, self.fn_names, coverage=coverage)

    def run_passes(self, requests) -> dict:
        """Run registered analysis passes over this result's events.

        One fused scan for whatever ``requests`` names (see
        :func:`repro.core.passes.schedule_passes` for the accepted
        forms); uses the result's parallel engine — and its partial
        cache — when the analysis ran with one, a serial
        :func:`repro.core.passes.fused_scan` otherwise.
        """
        if self.engine is not None:
            window_id = (
                (self.cache_token, "whole") if self.cache_token is not None else None
            )
            return self.engine.run_passes(
                self.events,
                requests,
                sample_id=self.sample_id,
                rho=self.rho,
                fn_names=self.fn_names,
                window_id=window_id,
                store_key=self.trace_digest,
            )
        from repro.core.passes import fused_scan

        return fused_scan(
            iter([(self.events, self.sample_id)]),
            requests,
            rho=self.rho,
            fn_names=self.fn_names,
        )

    def confidence(self, **kwargs):
        """Per-code-window sampling confidence (undersampling detection)."""
        from repro.core.confidence import code_window_confidence

        return code_window_confidence(self.collection, self.fn_names, **kwargs)

    def working_set(self, n_intervals: int = 8, page_size: int = 4096):
        """Working-set curve at OS-page granularity (inter-sample reuse)."""
        from repro.core.workingset import working_set_curve

        return working_set_curve(
            self.collection, n_intervals=n_intervals, page_size=page_size
        )


class MemGaze:
    """The tool facade: run and analyze either execution path.

    ``journal`` (a :class:`~repro.obs.journal.RunJournal`) and
    ``metrics`` (a :class:`~repro.obs.metrics.MetricsRegistry`) are
    optional observability sinks: when given, every pipeline stage —
    collection, analysis, and the parallel engine's shard
    plan/analyze/merge — reports through them; when ``None`` (the
    default) no instrumentation work happens at all.
    """

    def __init__(self, config: AnalysisConfig, *, journal=None, metrics=None) -> None:
        self.config = config
        self.journal = journal
        self.metrics = metrics
        self._engine: ParallelEngine | None = None

    @property
    def engine(self) -> ParallelEngine:
        """The (lazily created) shard-map-merge analysis engine."""
        if self._engine is None:
            store = None
            if self.config.cache_dir is not None:
                from repro.core.artifacts import ArtifactStore

                kwargs = {"journal": self.journal, "metrics": self.metrics}
                if self.config.cache_max_bytes is not None:
                    kwargs["max_bytes"] = self.config.cache_max_bytes
                store = ArtifactStore(self.config.cache_dir, **kwargs)
            self._engine = ParallelEngine(
                workers=self.config.workers,
                chunk_size=self.config.chunk_size,
                store=store,
                journal=self.journal,
                metrics=self.metrics,
            )
        return self._engine

    def close(self) -> None:
        """Shut down the analysis worker pool, if one was started."""
        if self._engine is not None:
            self._engine.close()
            self._engine = None

    def __enter__(self) -> "MemGaze":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- library path ----------------------------------------------------------

    def analyze_events(
        self,
        events: np.ndarray,
        n_loads_total: int | None = None,
        fn_names: dict[int, str] | None = None,
        counts: ExecCounts | None = None,
        instrumentation: InstrumentResult | None = None,
    ) -> MemGazeResult:
        """Sample and analyze an observed record stream."""
        if events.dtype != EVENT_DTYPE:
            raise TypeError(f"expected EVENT_DTYPE events, got {events.dtype}")
        t0 = time.perf_counter()
        collection = collect_sampled_trace(
            events,
            n_loads_total,
            self.config.sampling,
            mode=self.config.mode,
        )
        rho = sample_ratio_from(collection)
        kappa = compression_ratio(collection.events)
        if self.journal is not None:
            self.journal.emit(
                "stage",
                stage="trace",
                n_observed=len(events),
                n_sampled=len(collection.events),
                n_samples=collection.n_samples,
                period=self.config.sampling.period,
                buffer_capacity=self.config.sampling.buffer_capacity,
                rho=rho,
                kappa=kappa,
                seconds=time.perf_counter() - t0,
            )
        if self.metrics is not None:
            self.metrics.counter("pipeline.analyses").inc()
            self.metrics.counter("pipeline.events_sampled").inc(len(collection.events))
            self.metrics.gauge("pipeline.rho").set(rho)
            self.metrics.gauge("pipeline.kappa").set(kappa)
        fn_names = fn_names or {}
        t0 = time.perf_counter()
        token = None
        pass_results: dict = {}
        extra = [
            r
            for r in self.config.passes
            if (r if isinstance(r, str) else r[0]) != "diagnostics"
        ]
        digest = None
        if self.config.workers != 1 or extra or self.config.cache_dir is not None:
            # one fused scan computes the whole-trace diagnostics and
            # every configured extra pass together
            engine = self.engine
            token = engine.window_token()
            if engine.store is not None:
                from repro.core.artifacts import ArtifactStore

                digest = ArtifactStore.digest_events(
                    collection.events, collection.sample_id
                )
            extra_names = {r if isinstance(r, str) else r[0] for r in extra}
            requests = [("diagnostics", {"block": self.config.block})] + extra
            if "windows" not in extra_names:
                requests.append(("windows", {"block": self.config.block}))
            results = engine.run_passes(
                collection.events,
                requests,
                sample_id=collection.sample_id,
                rho=rho,
                fn_names=fn_names,
                window_id=(token, "whole"),
                store_key=digest,
            )
            diagnostics = results.pop("diagnostics")
            # the per-function code windows ride the same fused scan; a
            # caller-requested windows pass stays visible in pass_results
            per_function = (
                results["windows"]
                if "windows" in extra_names
                else results.pop("windows")
            )
            pass_results = results
        else:
            engine = None
            diagnostics = compute_diagnostics(
                collection.events, rho=rho, block=self.config.block
            )
            per_function = code_windows(
                collection.events, rho=rho, block=self.config.block, fn_names=fn_names
            )
        if self.journal is not None:
            self.journal.emit(
                "stage",
                stage="analyze",
                n_events=len(collection.events),
                n_functions=len(per_function),
                block=self.config.block,
                workers=self.config.workers,
                seconds=time.perf_counter() - t0,
            )
        return MemGazeResult(
            collection=collection,
            rho=rho,
            kappa=kappa,
            diagnostics=diagnostics,
            per_function=per_function,
            fn_names=fn_names,
            counts=counts,
            instrumentation=instrumentation,
            config=self.config,
            engine=engine,
            cache_token=token,
            trace_digest=digest,
            pass_results=pass_results,
        )

    def analyze_recorder(
        self, recorder: AccessRecorder, counts: ExecCounts | None = None
    ) -> MemGazeResult:
        """Finalize a library-path recorder and analyze its stream."""
        events = recorder.finalize()
        fn_names = recorder.function_names
        if counts is None:
            n = len(events)
            counts = ExecCounts(
                n_instrs=4 * n, n_loads=n, n_stores=n // 4, n_ptwrites=n
            )
        return self.analyze_events(
            events, n_loads_total=len(events), fn_names=fn_names, counts=counts
        )

    # -- ISA path ---------------------------------------------------------------

    def run_module(
        self,
        module: Module,
        entry: str,
        *args: int,
        space: AddressSpace | None = None,
        max_instrs: int = 200_000_000,
    ) -> MemGazeResult:
        """Instrument, execute, rebuild, sample, and analyze an ISA module."""
        inst = instrument_module(module)
        interp = Interpreter(inst.module, space, max_instrs=max_instrs)
        res = interp.run(entry, *args, mode="instrumented")
        events = rebuild_trace(res.packets, inst.annotations)
        proc_ids = inst.module.proc_ids()
        fn_names = {fid: name for name, fid in proc_ids.items()}
        counts = ExecCounts(
            n_instrs=res.n_instrs,
            n_loads=res.n_loads,
            n_stores=res.n_stores,
            n_ptwrites=res.n_ptwrites,
        )
        return self.analyze_events(
            events,
            n_loads_total=res.n_loads,
            fn_names=fn_names,
            counts=counts,
            instrumentation=inst,
        )
