"""Paper-style table rendering and canonical JSON payloads.

The benchmark harness prints the same rows the paper's tables report;
these renderers take the analysis layer's structures and format them with
humanised quantities (2.3G, 291K) so output is directly comparable to the
published tables.

The JSON side (:func:`passes_payload`, :func:`full_report_payload`,
:func:`payload_json`) is the **single** serialization used by both
``memgaze report --json`` and the streaming service's live queries.
Payloads deliberately carry no path, timestamp, or host field — only
trace content and analysis results — so a live query against a session
archive and an offline report over the same bytes serialize
byte-identically. That equivalence is asserted by the serve test suite;
any field added here must stay deterministic.
"""

from __future__ import annotations

import json
from typing import Mapping, Sequence

from repro._util.tables import format_table
from repro.core.diagnostics import FootprintDiagnostics
from repro.core.zoom import ZoomRegion

__all__ = [
    "format_quantity",
    "render_function_table",
    "render_region_table",
    "render_interval_table",
    "passes_payload",
    "full_report_payload",
    "viz_report_payload",
    "payload_json",
]

_UNITS = [(1e9, "G"), (1e6, "M"), (1e3, "K")]


def format_quantity(x: float) -> str:
    """Humanise a count: 2.3e9 -> '2.3G', 291_000 -> '291K'."""
    ax = abs(x)
    for scale, suffix in _UNITS:
        if ax >= scale:
            v = x / scale
            return f"{v:.2g}{suffix}" if v < 10 else f"{v:.3g}{suffix}"
    if x == int(x):
        return str(int(x))
    return f"{x:.3g}"


def render_function_table(
    diags: Mapping[str, FootprintDiagnostics],
    title: str = "Data locality of hot function accesses",
    order: Sequence[str] | None = None,
    min_accesses: int = 0,
) -> str:
    """Table IV / VI style: Function | F | dF | F_str% | A."""
    names = list(order) if order else sorted(
        diags, key=lambda f: -diags[f].A_est
    )
    rows = []
    for name in names:
        d = diags.get(name)
        if d is None or d.A_obs < min_accesses:
            continue
        rows.append(
            [
                name,
                format_quantity(d.F_est),
                f"{d.dF:.3f}",
                f"{d.F_str_pct:.1f}",
                format_quantity(d.A_est),
            ]
        )
    return format_table(["Function", "F", "dF", "F_str%", "A"], rows, title=title)


def render_region_table(
    regions: Sequence[tuple[str, ZoomRegion]],
    title: str = "Spatio-temporal reuse of hot memory",
    show_max_d: bool = False,
) -> str:
    """Table V / VII / IX style: Object | D | [maxD] | #blocks | A | A/block."""
    headers = ["Object", "Reuse (D)"]
    if show_max_d:
        headers.append("Max D")
    headers += ["# blocks", "A", "A/block"]
    rows = []
    for name, r in regions:
        row = [name, f"{r.D_mean:.2f}"]
        if show_max_d:
            row.append(str(r.D_max))
        row += [
            format_quantity(r.n_blocks),
            format_quantity(r.n_accesses),
            f"{r.accesses_per_block:.2f}",
        ]
        rows.append(row)
    return format_table(headers, rows, title=title)


# -- canonical JSON payloads ---------------------------------------------------

#: Bump when the payload layout changes; golden fixtures pin it.
PAYLOAD_SCHEMA = 1


def passes_payload(module, collection, rho, requested, results) -> dict:
    """The canonical machine-readable payload for finalized pass results.

    ``requested`` preserves the caller's pass order only in spirit — the
    ``passes`` mapping is serialized with sorted keys, so order never
    affects the bytes. Every field is derived from trace content and the
    analysis results; nothing environmental (paths, times, hosts) may
    appear here, or live-vs-offline equivalence breaks.
    """
    from repro.core.passes import get_pass

    return {
        "schema": PAYLOAD_SCHEMA,
        "module": module,
        "n_events": int(len(collection.events)),
        "n_samples": int(collection.n_samples),
        "n_loads_total": int(collection.n_loads_total),
        "rho": float(rho),
        "passes": {
            name: get_pass(name).jsonable(results[name]) for name in requested
        },
    }


def full_report_payload(
    module,
    collection,
    rho,
    fn_names,
    engine,
    *,
    window_token=None,
    store_key=None,
) -> dict:
    """The whole-trace ``report --json`` payload (default pass set).

    Runs the four headline passes plus the per-function code windows in
    one fused scan, through the same engine path the human-readable
    report uses. The ``windows`` results surface as the payload's
    ``functions`` mapping (not under ``passes``), so the layout — and
    the bytes — match the original split computation.
    """
    from repro.core.passes import to_jsonable

    names = ["diagnostics", "hotspot", "captures", "reuse"]
    token = window_token if window_token is not None else engine.window_token()
    results = engine.run_passes(
        collection.events,
        names + ["windows"],
        sample_id=collection.sample_id,
        rho=rho,
        fn_names=fn_names,
        window_id=(token, "whole"),
        store_key=store_key,
    )
    payload = passes_payload(module, collection, rho, names, results)
    payload["functions"] = {
        name: to_jsonable(d) for name, d in sorted(results["windows"].items())
    }
    return payload


#: Bump when the ``viz`` payload section layout changes.
VIZ_SCHEMA = 1

#: Fixed geometry of the ``viz`` section. Deliberately small — the
#: section feeds a report page, not further analysis — and fixed, so the
#: bytes depend on trace content alone.
_VIZ_PARAMS = {
    "n_intervals": 8,
    "max_tree_depth": 7,
    "max_regions": 6,
    "min_region_pct": 2.0,
    "max_heatmaps": 2,
    "heatmap_pages": 24,
    "heatmap_bins": 32,
}


def _viz_num(x):
    """A finite float, or None — NaN/inf never enter a payload."""
    v = float(x)
    if v != v or v in (float("inf"), float("-inf")):
        return None
    return v


def _viz_tree_node(node, depth_left: int) -> dict:
    """Serialize one interval-tree node with a bounded depth budget."""
    d = node.diagnostics
    out = {
        "level": int(node.level),
        "t_start": int(node.t_start),
        "t_end": int(node.t_end),
        "exact": bool(node.exact),
        "function": node.function,
        "a_obs": int(d.A_obs),
        "f_est": _viz_num(d.F_est),
        "df": _viz_num(d.dF),
        "children": [
            _viz_tree_node(c, depth_left - 1) for c in node.children
        ]
        if depth_left > 0
        else [],
    }
    return out


def _viz_section(collection, rho, fn_names, engine, token) -> dict:
    """The visual-report data: intervals, phases, tree, regions, heatmaps.

    Everything here is derived from trace content through deterministic
    code paths (the engine's sharded kernels are bit-identical to the
    serial ones), so the section — like the rest of the payload — is
    byte-stable across workers, caches, and live-vs-offline renders.
    """
    from repro.core.interval_tree import (
        ExecutionIntervalTree,
        access_interval_metrics,
    )
    from repro.core.phases import detect_phases
    from repro.core.zoom import ZoomConfig, location_zoom, zoom_leaves

    p = _VIZ_PARAMS
    events = collection.events
    sample_id = collection.sample_id

    intervals = [
        {
            "interval": int(r["interval"]),
            "F": _viz_num(r["F"]),
            "dF": _viz_num(r["dF"]),
            "D": _viz_num(r["D"]),
            "A": _viz_num(r["A"]),
            "A_obs": int(r.get("A_obs", 0)),
        }
        for r in access_interval_metrics(
            events,
            p["n_intervals"],
            rho=rho,
            reuse_block=64,
            sample_id=sample_id,
            engine=engine,
            cache_token=token,
        )
    ] if len(events) else []

    phases = [
        {
            "index": ph.index,
            "first_sample": ph.first_sample,
            "last_sample": ph.last_sample,
            "t_start": ph.t_start,
            "t_end": ph.t_end,
            "n_samples": ph.n_samples,
            "label": ph.label,
            "strided_share": _viz_num(ph.strided_share),
            "df": _viz_num(ph.diagnostics.dF),
            "a_obs": int(ph.diagnostics.A_obs),
        }
        for ph in detect_phases(collection)
    ]

    try:
        tree = ExecutionIntervalTree.build(collection, rho=rho, fn_names=fn_names)
        tree_node = _viz_tree_node(tree.root, p["max_tree_depth"])
    except ValueError:  # no non-empty samples
        tree_node = None

    regions = []
    heatmaps = []
    if len(events):
        root = location_zoom(
            events, ZoomConfig(), sample_id=sample_id, fn_names=fn_names
        )
        leaves = zoom_leaves(root, min_pct=p["min_region_pct"])[: p["max_regions"]]
        for leaf in leaves:
            top_fn = leaf.functions.most_common(1)
            name = (
                f"{leaf.base:#x} ({top_fn[0][0]})" if top_fn else f"{leaf.base:#x}"
            )
            regions.append(
                {
                    "name": name,
                    "base": int(leaf.base),
                    "size": int(leaf.size),
                    "n_accesses": int(leaf.n_accesses),
                    "pct_of_total": _viz_num(leaf.pct_of_total),
                    "d_mean": _viz_num(leaf.D_mean),
                    "d_max": int(leaf.D_max),
                    "n_blocks": int(leaf.n_blocks),
                    "accesses_per_block": _viz_num(leaf.accesses_per_block),
                    "top_fn": top_fn[0][0] if top_fn else None,
                }
            )
        for leaf, region in zip(leaves[: p["max_heatmaps"]], regions):
            hm = engine.heatmap(
                events,
                leaf.base,
                leaf.size,
                n_pages=p["heatmap_pages"],
                n_bins=p["heatmap_bins"],
                sample_id=sample_id,
            )
            heatmaps.append(
                {
                    "name": region["name"],
                    "base": int(hm.base),
                    "size": int(leaf.size),
                    "page_size": int(hm.page_size),
                    "t_edges": [_viz_num(t) for t in hm.t_edges],
                    "counts": [[int(c) for c in row] for row in hm.counts],
                    "reuse": [[_viz_num(v) for v in row] for row in hm.reuse],
                }
            )

    return {
        "schema": VIZ_SCHEMA,
        "params": dict(p),
        "intervals": intervals,
        "phases": phases,
        "tree": tree_node,
        "regions": regions,
        "heatmaps": heatmaps,
    }


def viz_report_payload(
    module,
    collection,
    rho,
    fn_names,
    engine,
    *,
    window_token=None,
    store_key=None,
    degraded=None,
    extra_passes=None,
) -> dict:
    """The full-report payload plus the ``viz`` section the HTML needs.

    Exactly :func:`full_report_payload` extended with ``payload["viz"]``
    — interval rows, detected phases, the (depth-capped) execution
    interval tree, zoomed hot regions, and per-region heatmaps — so one
    payload drives both the offline ``memgaze report --html`` renderer
    and the serve daemon's live dashboard; identical archive bytes give
    identical payload bytes on both paths.

    ``extra_passes`` (e.g. ``["cache_sweep"]``) are run through the same
    fused engine scan and merged under ``payload["passes"]``. A
    ``degraded`` dict (from a recovered archive read) is attached only
    when given, so payloads for clean archives carry no extra key.
    """
    token = window_token if window_token is not None else engine.window_token()
    payload = full_report_payload(
        module,
        collection,
        rho,
        fn_names,
        engine,
        window_token=token,
        store_key=store_key,
    )
    if extra_passes:
        from repro.core.passes import get_pass

        requested = [p for p in extra_passes if p not in payload["passes"]]
        if requested:
            results = engine.run_passes(
                collection.events,
                requested,
                sample_id=collection.sample_id,
                rho=rho,
                fn_names=fn_names,
                window_id=(token, "whole"),
                store_key=store_key,
            )
            for name in requested:
                payload["passes"][name] = get_pass(name).jsonable(results[name])
    payload["viz"] = _viz_section(collection, rho, fn_names, engine, token)
    if degraded is not None:
        payload["degraded"] = degraded
    return payload


def payload_json(payload: dict) -> str:
    """Serialize a payload canonically (sorted keys, 2-space indent).

    One serializer for every producer — the CLI prints exactly this
    string and the streaming daemon sends exactly this string, so a
    byte comparison between the two is meaningful.
    """
    return json.dumps(payload, indent=2, sort_keys=True)


def render_interval_table(
    rows: Sequence[dict],
    title: str = "Data locality over time of hot access intervals",
) -> str:
    """Table VIII style: Interval | F | dF | D | A."""
    table = [
        [
            r["interval"],
            format_quantity(r["F"]),
            f"{r['dF']:.3f}",
            f"{r['D']:.2f}",
            format_quantity(r["A"]),
        ]
        for r in rows
    ]
    return format_table(["Interval", "F", "dF", "D", "A"], table, title=title)
