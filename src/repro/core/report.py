"""Paper-style table rendering and canonical JSON payloads.

The benchmark harness prints the same rows the paper's tables report;
these renderers take the analysis layer's structures and format them with
humanised quantities (2.3G, 291K) so output is directly comparable to the
published tables.

The JSON side (:func:`passes_payload`, :func:`full_report_payload`,
:func:`payload_json`) is the **single** serialization used by both
``memgaze report --json`` and the streaming service's live queries.
Payloads deliberately carry no path, timestamp, or host field — only
trace content and analysis results — so a live query against a session
archive and an offline report over the same bytes serialize
byte-identically. That equivalence is asserted by the serve test suite;
any field added here must stay deterministic.
"""

from __future__ import annotations

import json
from typing import Mapping, Sequence

from repro._util.tables import format_table
from repro.core.diagnostics import FootprintDiagnostics
from repro.core.zoom import ZoomRegion

__all__ = [
    "format_quantity",
    "render_function_table",
    "render_region_table",
    "render_interval_table",
    "passes_payload",
    "full_report_payload",
    "payload_json",
]

_UNITS = [(1e9, "G"), (1e6, "M"), (1e3, "K")]


def format_quantity(x: float) -> str:
    """Humanise a count: 2.3e9 -> '2.3G', 291_000 -> '291K'."""
    ax = abs(x)
    for scale, suffix in _UNITS:
        if ax >= scale:
            v = x / scale
            return f"{v:.2g}{suffix}" if v < 10 else f"{v:.3g}{suffix}"
    if x == int(x):
        return str(int(x))
    return f"{x:.3g}"


def render_function_table(
    diags: Mapping[str, FootprintDiagnostics],
    title: str = "Data locality of hot function accesses",
    order: Sequence[str] | None = None,
    min_accesses: int = 0,
) -> str:
    """Table IV / VI style: Function | F | dF | F_str% | A."""
    names = list(order) if order else sorted(
        diags, key=lambda f: -diags[f].A_est
    )
    rows = []
    for name in names:
        d = diags.get(name)
        if d is None or d.A_obs < min_accesses:
            continue
        rows.append(
            [
                name,
                format_quantity(d.F_est),
                f"{d.dF:.3f}",
                f"{d.F_str_pct:.1f}",
                format_quantity(d.A_est),
            ]
        )
    return format_table(["Function", "F", "dF", "F_str%", "A"], rows, title=title)


def render_region_table(
    regions: Sequence[tuple[str, ZoomRegion]],
    title: str = "Spatio-temporal reuse of hot memory",
    show_max_d: bool = False,
) -> str:
    """Table V / VII / IX style: Object | D | [maxD] | #blocks | A | A/block."""
    headers = ["Object", "Reuse (D)"]
    if show_max_d:
        headers.append("Max D")
    headers += ["# blocks", "A", "A/block"]
    rows = []
    for name, r in regions:
        row = [name, f"{r.D_mean:.2f}"]
        if show_max_d:
            row.append(str(r.D_max))
        row += [
            format_quantity(r.n_blocks),
            format_quantity(r.n_accesses),
            f"{r.accesses_per_block:.2f}",
        ]
        rows.append(row)
    return format_table(headers, rows, title=title)


# -- canonical JSON payloads ---------------------------------------------------

#: Bump when the payload layout changes; golden fixtures pin it.
PAYLOAD_SCHEMA = 1


def passes_payload(module, collection, rho, requested, results) -> dict:
    """The canonical machine-readable payload for finalized pass results.

    ``requested`` preserves the caller's pass order only in spirit — the
    ``passes`` mapping is serialized with sorted keys, so order never
    affects the bytes. Every field is derived from trace content and the
    analysis results; nothing environmental (paths, times, hosts) may
    appear here, or live-vs-offline equivalence breaks.
    """
    from repro.core.passes import get_pass

    return {
        "schema": PAYLOAD_SCHEMA,
        "module": module,
        "n_events": int(len(collection.events)),
        "n_samples": int(collection.n_samples),
        "n_loads_total": int(collection.n_loads_total),
        "rho": float(rho),
        "passes": {
            name: get_pass(name).jsonable(results[name]) for name in requested
        },
    }


def full_report_payload(
    module,
    collection,
    rho,
    fn_names,
    engine,
    *,
    window_token=None,
    store_key=None,
) -> dict:
    """The whole-trace ``report --json`` payload (default pass set).

    Runs the four headline passes plus the per-function code windows in
    one fused scan, through the same engine path the human-readable
    report uses. The ``windows`` results surface as the payload's
    ``functions`` mapping (not under ``passes``), so the layout — and
    the bytes — match the original split computation.
    """
    from repro.core.passes import to_jsonable

    names = ["diagnostics", "hotspot", "captures", "reuse"]
    token = window_token if window_token is not None else engine.window_token()
    results = engine.run_passes(
        collection.events,
        names + ["windows"],
        sample_id=collection.sample_id,
        rho=rho,
        fn_names=fn_names,
        window_id=(token, "whole"),
        store_key=store_key,
    )
    payload = passes_payload(module, collection, rho, names, results)
    payload["functions"] = {
        name: to_jsonable(d) for name, d in sorted(results["windows"].items())
    }
    return payload


def payload_json(payload: dict) -> str:
    """Serialize a payload canonically (sorted keys, 2-space indent).

    One serializer for every producer — the CLI prints exactly this
    string and the streaming daemon sends exactly this string, so a
    byte comparison between the two is meaningful.
    """
    return json.dumps(payload, indent=2, sort_keys=True)


def render_interval_table(
    rows: Sequence[dict],
    title: str = "Data locality over time of hot access intervals",
) -> str:
    """Table VIII style: Interval | F | dF | D | A."""
    table = [
        [
            r["interval"],
            format_quantity(r["F"]),
            f"{r['dF']:.3f}",
            f"{r['D']:.2f}",
            format_quantity(r["A"]),
        ]
        for r in rows
    ]
    return format_table(["Interval", "F", "dF", "D", "A"], table, title=title)
