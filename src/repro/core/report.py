"""Paper-style table rendering for analysis results.

The benchmark harness prints the same rows the paper's tables report;
these renderers take the analysis layer's structures and format them with
humanised quantities (2.3G, 291K) so output is directly comparable to the
published tables.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro._util.tables import format_table
from repro.core.diagnostics import FootprintDiagnostics
from repro.core.zoom import ZoomRegion

__all__ = [
    "format_quantity",
    "render_function_table",
    "render_region_table",
    "render_interval_table",
]

_UNITS = [(1e9, "G"), (1e6, "M"), (1e3, "K")]


def format_quantity(x: float) -> str:
    """Humanise a count: 2.3e9 -> '2.3G', 291_000 -> '291K'."""
    ax = abs(x)
    for scale, suffix in _UNITS:
        if ax >= scale:
            v = x / scale
            return f"{v:.2g}{suffix}" if v < 10 else f"{v:.3g}{suffix}"
    if x == int(x):
        return str(int(x))
    return f"{x:.3g}"


def render_function_table(
    diags: Mapping[str, FootprintDiagnostics],
    title: str = "Data locality of hot function accesses",
    order: Sequence[str] | None = None,
    min_accesses: int = 0,
) -> str:
    """Table IV / VI style: Function | F | dF | F_str% | A."""
    names = list(order) if order else sorted(
        diags, key=lambda f: -diags[f].A_est
    )
    rows = []
    for name in names:
        d = diags.get(name)
        if d is None or d.A_obs < min_accesses:
            continue
        rows.append(
            [
                name,
                format_quantity(d.F_est),
                f"{d.dF:.3f}",
                f"{d.F_str_pct:.1f}",
                format_quantity(d.A_est),
            ]
        )
    return format_table(["Function", "F", "dF", "F_str%", "A"], rows, title=title)


def render_region_table(
    regions: Sequence[tuple[str, ZoomRegion]],
    title: str = "Spatio-temporal reuse of hot memory",
    show_max_d: bool = False,
) -> str:
    """Table V / VII / IX style: Object | D | [maxD] | #blocks | A | A/block."""
    headers = ["Object", "Reuse (D)"]
    if show_max_d:
        headers.append("Max D")
    headers += ["# blocks", "A", "A/block"]
    rows = []
    for name, r in regions:
        row = [name, f"{r.D_mean:.2f}"]
        if show_max_d:
            row.append(str(r.D_max))
        row += [
            format_quantity(r.n_blocks),
            format_quantity(r.n_accesses),
            f"{r.accesses_per_block:.2f}",
        ]
        rows.append(row)
    return format_table(headers, rows, title=title)


def render_interval_table(
    rows: Sequence[dict],
    title: str = "Data locality over time of hot access intervals",
) -> str:
    """Table VIII style: Interval | F | dF | D | A."""
    table = [
        [
            r["interval"],
            format_quantity(r["F"]),
            f"{r['dF']:.3f}",
            f"{r['D']:.2f}",
            format_quantity(r["A"]),
        ]
        for r in rows
    ]
    return format_table(["Interval", "F", "dF", "D", "A"], table, title=title)
