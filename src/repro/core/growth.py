"""Footprint growth Delta-F (paper SS:V-D, Eq. 4).

Footprint growth is footprint's rate of change — equivalently the average
*new* data per access, a normalized footprint::

    Delta-F-hat(sigma) = F-hat(sigma) / W(sigma) = F(sigma) / (kappa * A(sigma))

The final form divides the observed footprint by the uncompressed access
count of the window (``kappa * A = A + A_const``), so it holds for both
intra- and inter-window interpretations — the rho scaling of numerator
and denominator cancels (the paper notes the final form "does not depend
on window classes").

A Delta-F near 1 means almost every access touches new data (streaming,
no reuse); near 0 means heavy reuse of a small working set.
"""

from __future__ import annotations

import numpy as np

from repro.core.metrics import footprint
from repro.trace.compress import decompress_counts
from repro.trace.event import EVENT_DTYPE

__all__ = ["footprint_growth"]


def footprint_growth(events: np.ndarray, block: int = 1) -> float:
    """Delta-F-hat = F / (kappa * A), in blocks per uncompressed access."""
    if events.dtype != EVENT_DTYPE:
        raise TypeError(f"expected EVENT_DTYPE events, got {events.dtype}")
    window = decompress_counts(events)
    if window == 0:
        return 0.0
    return footprint(events, block) / window
