"""Reuse intervals and spatio-temporal reuse distance (paper SS:IV-A, SS:V-B).

Definitions (cf. the paper's distinction):

* the **reuse interval** of an access is the number of accesses since the
  previous access to the same block — cheap to compute, but only an
  estimate of unique blocks;
* the **reuse distance** (stack distance) is the number of *unique*
  blocks accessed in that interval — the quantity that predicts cache
  behaviour.

Two exact kernels compute the distance (selectable per call or through
``MEMGAZE_REUSE_KERNEL``, see ``docs/performance.md``):

* ``"vector"`` (default) — pure numpy. With ``prev[i]`` the index of
  the previous same-block access inside the window, the distance
  collapses to ``D[i] = rank(i) - prev[i] - 1`` where
  ``rank(i) = #{j < i in window : prev[j] <= prev[i]}``: every
  ``j <= prev[i]`` trivially satisfies ``prev[j] < j <= prev[i]``, and
  a ``j`` strictly between ``prev[i]`` and ``i`` satisfies it exactly
  when ``j`` is the first access to its block since position
  ``prev[i]`` — i.e. when ``j`` contributes one unique block. The rank
  sweep is :func:`repro._util.rank.count_le_left`.
* ``"fenwick"`` — the classic per-event Fenwick-tree walk
  (O(n log n) interpreted steps), kept as the independent reference
  implementation that the property suite compares the kernel against.

Both kernels are exact integer computations and return bit-identical
arrays. Both respect sample boundaries when ``sample_id`` is given:
tracking state resets at each boundary, so distances are *intra-sample*
(the paper's preference for cache-scale analysis — inter-sample reuse is
estimated through footprint growth instead).

Cold accesses (first touch of a block in a window) get ``-1``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro._util.fenwick import FenwickTree
from repro._util.rank import count_le_left
from repro._util.validate import check_power_of_two
from repro.core.metrics import block_ids, nonconstant
from repro.trace.event import EVENT_DTYPE

__all__ = [
    "reuse_intervals",
    "reuse_distances",
    "stack_distances",
    "default_reuse_kernel",
    "mean_reuse_distance",
    "max_reuse_distance",
    "inter_sample_distance",
    "region_reuse",
    "ReuseHistogram",
    "reuse_histogram",
    "histogram_from_distances",
]

#: environment override for the reuse-distance kernel ("vector"/"fenwick");
#: the CLI's ``--reuse-kernel`` flag sets it so forked pool workers inherit it
_KERNEL_ENV = "MEMGAZE_REUSE_KERNEL"
_KERNELS = ("vector", "fenwick")


def default_reuse_kernel() -> str:
    """The kernel used when a call does not pick one explicitly."""
    kernel = os.environ.get(_KERNEL_ENV, "vector")
    if kernel not in _KERNELS:
        raise ValueError(
            f"{_KERNEL_ENV}={kernel!r} is not a reuse kernel; pick one of {_KERNELS}"
        )
    return kernel


def _check(events: np.ndarray) -> None:
    if events.dtype != EVENT_DTYPE:
        raise TypeError(f"expected EVENT_DTYPE events, got {events.dtype}")


def _boundaries(n: int, sample_id: np.ndarray | None) -> np.ndarray:
    """Start index of each window (always includes 0)."""
    if sample_id is None or n == 0:
        return np.array([0], dtype=np.int64)
    if len(sample_id) != n:
        raise ValueError("sample_id length must match events")
    return np.concatenate(
        [[0], np.flatnonzero(np.diff(sample_id)) + 1]
    ).astype(np.int64)


def reuse_intervals(
    events: np.ndarray, block: int = 1, sample_id: np.ndarray | None = None
) -> np.ndarray:
    """Per-access reuse interval in accesses; -1 for first touches.

    Fully vectorised: a stable sort groups each (window, block) pair's
    positions together, so the interval is a first difference.
    """
    _check(events)
    check_power_of_two("block", block)
    n = len(events)
    out = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return out
    ids = block_ids(events, block).astype(np.int64)
    if sample_id is None:
        windows = np.zeros(n, dtype=np.int64)
    else:
        if len(sample_id) != n:
            raise ValueError("sample_id length must match events")
        windows = np.asarray(sample_id, dtype=np.int64)
    pos = np.arange(n, dtype=np.int64)
    order = np.lexsort((pos, ids, windows))
    same = (ids[order][1:] == ids[order][:-1]) & (
        windows[order][1:] == windows[order][:-1]
    )
    gaps = pos[order][1:] - pos[order][:-1]
    out[order[1:][same]] = gaps[same]
    return out


def stack_distances(ids: np.ndarray, win: np.ndarray) -> np.ndarray:
    """LRU stack distance of each access; -1 for first touches.

    The fully vectorised distance kernel, shared by
    :func:`reuse_distances` (windows = samples) and the cache model
    (windows = cache sets after a stable reorder): ``ids`` are the
    per-access block/line identifiers (any integer dtype), ``win`` the
    per-access window ids, which must be *contiguous* (equal values
    adjacent — e.g. a non-decreasing window index). Tracking state never
    crosses a window boundary.

    Exact integer arithmetic throughout: the output is bit-identical to
    the reference Fenwick walk for any input.
    """
    ids = np.asarray(ids)
    win = np.asarray(win)
    n = ids.size
    out = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return out
    if win.size != n:
        raise ValueError("win length must match ids")
    pos = np.arange(n, dtype=np.int64)
    # contiguous window index + per-element window start
    brk = np.empty(n, dtype=bool)
    brk[0] = False
    brk[1:] = win[1:] != win[:-1]
    widx = np.cumsum(brk)
    wstart = np.concatenate([[0], np.flatnonzero(brk)])[widx]
    # prev[i]: index of the previous same-id access in the same window
    # (grouping each (window, id) pair's positions makes it a shift)
    order = np.lexsort((pos, ids, widx))
    so_ids, so_widx = ids[order], widx[order]
    same = (so_ids[1:] == so_ids[:-1]) & (so_widx[1:] == so_widx[:-1])
    prev = np.full(n, -1, dtype=np.int64)
    prev[order[1:][same]] = order[:-1][same]
    # D = rank - prev - 1 with rank the within-window left-count of
    # prev values <= prev[i] (see the module docstring for why)
    prev_local = np.where(prev >= 0, prev - wstart, np.int64(-1))
    rank = count_le_left(prev_local, widx)
    reused = prev >= 0
    out[reused] = rank[reused] - prev_local[reused] - 1
    return out


def _reuse_distances_fenwick(
    ids: np.ndarray, starts: np.ndarray, n: int
) -> np.ndarray:
    """Reference per-event Fenwick walk (kernel ``"fenwick"``).

    One marker bit per position holds "this position is the most recent
    access to its block"; the distance of an access is the marker count
    strictly between the previous access to its block and now. Kept as
    the independently-derived implementation the property suite checks
    the vector kernel against.
    """
    out = np.full(n, -1, dtype=np.int64)
    ends = np.append(starts[1:], n)
    for lo, hi in zip(starts, ends):
        window = ids[lo:hi]
        m = len(window)
        tree = FenwickTree(m)
        last: dict[int, int] = {}
        for i, b in enumerate(window):
            b = int(b)
            prev = last.get(b)
            if prev is not None:
                # unique blocks since prev = markers in (prev, i)
                out[lo + i] = tree.range_sum(prev + 1, i - 1)
                tree.add(prev, -1)
            tree.add(i, 1)
            last[b] = i
    return out


def reuse_distances(
    events: np.ndarray,
    block: int = 1,
    sample_id: np.ndarray | None = None,
    *,
    kernel: str | None = None,
) -> np.ndarray:
    """Per-access spatio-temporal reuse distance D; -1 for first touches.

    D counts unique blocks *strictly between* consecutive accesses to the
    same block, so an immediate re-access has D = 0. ``kernel`` picks the
    implementation (``"vector"`` / ``"fenwick"``, see the module
    docstring); both are exact and bit-identical, defaulting to
    :func:`default_reuse_kernel`.
    """
    _check(events)
    check_power_of_two("block", block)
    kernel = kernel or default_reuse_kernel()
    if kernel not in _KERNELS:
        raise ValueError(f"unknown reuse kernel {kernel!r}; pick one of {_KERNELS}")
    n = len(events)
    if n == 0:
        return np.full(n, -1, dtype=np.int64)
    ids = block_ids(events, block)
    starts = _boundaries(n, sample_id)
    if kernel == "fenwick":
        return _reuse_distances_fenwick(ids, starts, n)
    widx = np.zeros(n, dtype=np.int64)
    widx[starts[1:]] = 1
    np.cumsum(widx, out=widx)
    return stack_distances(ids, widx)


def mean_reuse_distance(
    events: np.ndarray, block: int = 64, sample_id: np.ndarray | None = None
) -> float:
    """Average D over accesses with reuse; 0.0 when no access reuses.

    Note the paper's convention in its tables: accesses without reuse are
    not averaged in, so streaming traffic shows up as *few* reusing
    accesses rather than as a huge D.
    """
    d = reuse_distances(events, block, sample_id)
    hits = d[d >= 0]
    return float(hits.mean()) if len(hits) else 0.0


def max_reuse_distance(
    events: np.ndarray, block: int = 64, sample_id: np.ndarray | None = None
) -> int:
    """Maximum D over accesses with reuse; 0 when none."""
    d = reuse_distances(events, block, sample_id)
    return int(d.max()) if len(d) and d.max() >= 0 else 0


def inter_sample_distance(
    collection,
    block: int = 4096,
    *,
    max_pairs: int = 200_000,
) -> tuple[float, int]:
    """Estimated inter-sample reuse distance (paper SS:V-B).

    Intra-sample windows cannot see reuse whose interval exceeds ``w``;
    for working-set-scale analysis the paper instead "calculates the
    average unique blocks accessed between samples based on footprint
    growth": when a block reappears in a later sample after a gap of
    ``g`` loads, the unique blocks touched in between are estimated as
    ``dF-hat * g``, capped by the estimated total footprint.

    Returns ``(mean estimated D, number of cross-sample reuse pairs)``.
    ``collection`` is a :class:`~repro.trace.collector.CollectionResult`.
    """
    from repro.core.growth import footprint_growth
    from repro.core.metrics import block_ids, footprint, nonconstant
    from repro.trace.compress import sample_ratio_from

    events = collection.events
    if len(events) == 0:
        return 0.0, 0
    rho = sample_ratio_from(collection)
    growth = footprint_growth(events, block)
    total_f = rho * footprint(events, block)

    nc = nonconstant(events)
    sid = collection.sample_id[events["cls"] != 0]
    ids = block_ids(nc, block)
    t = nc["t"].astype(np.int64)

    # last (t, sample) per block, streamed in order
    last_t: dict[int, int] = {}
    last_s: dict[int, int] = {}
    total = 0.0
    n_pairs = 0
    for b, ti, si in zip(ids, t, sid):
        b = int(b)
        prev_t = last_t.get(b)
        if prev_t is not None and last_s[b] != int(si):
            gap = ti - prev_t
            total += min(total_f, growth * gap)
            n_pairs += 1
            if n_pairs >= max_pairs:
                break
        last_t[b] = int(ti)
        last_s[b] = int(si)
    return (total / n_pairs if n_pairs else 0.0), n_pairs


#: Default histogram geometry: power-of-two bin edges up to 2**_HIST_MAX_EXP.
_HIST_MAX_EXP = 48


def _hist_edges(max_exp: int = _HIST_MAX_EXP) -> np.ndarray:
    """Power-of-two distance bin edges ``[1, 2, 4, ..., 2**max_exp]``."""
    return np.power(2, np.arange(max_exp + 1), dtype=np.int64)


@dataclass
class ReuseHistogram:
    """Mergeable distribution of spatio-temporal reuse distances.

    ``counts[0]`` holds D == 0 (immediate re-access); ``counts[k]`` for
    k >= 1 holds distances in ``[2**(k-1), 2**k)``. Cold accesses (no
    prior touch) are tallied separately in ``n_cold``. All fields are
    integer totals, so merging two histograms is exact addition — the
    merge is associative and commutative, which is what lets the
    parallel engine shard a trace and still produce bit-identical output
    (see :mod:`repro.core.parallel`).
    """

    counts: np.ndarray  # int64, len = max_exp + 1
    n_cold: int
    n_reuse: int
    d_sum: int
    d_max: int
    #: Window semantics marker: ``"sample"`` when distance windows are
    #: sample-delimited (or the whole trace is one window) — the result
    #: is a property of the trace alone; ``"chunk"`` when an archive
    #: without sample ids was streamed, making each chunk its own window
    #: so the numbers depend on the chunk size used. Downstream readers
    #: must not compare a "chunk"-scoped histogram across chunk sizes.
    scope: str = "sample"

    @property
    def mean(self) -> float:
        """Mean D over reusing accesses (the paper's table convention)."""
        return self.d_sum / self.n_reuse if self.n_reuse else 0.0

    def merge(self, other: "ReuseHistogram") -> "ReuseHistogram":
        """Exact merge of two window partials (associative)."""
        if len(self.counts) != len(other.counts):
            raise ValueError(
                f"histogram geometry mismatch: {len(self.counts)} vs {len(other.counts)} bins"
            )
        return ReuseHistogram(
            counts=self.counts + other.counts,
            n_cold=self.n_cold + other.n_cold,
            n_reuse=self.n_reuse + other.n_reuse,
            d_sum=self.d_sum + other.d_sum,
            d_max=max(self.d_max, other.d_max),
            scope="chunk" if "chunk" in (self.scope, other.scope) else "sample",
        )

    @classmethod
    def identity(cls, max_exp: int = _HIST_MAX_EXP) -> "ReuseHistogram":
        """The merge identity (an empty histogram)."""
        return cls(
            counts=np.zeros(max_exp + 1, dtype=np.int64),
            n_cold=0,
            n_reuse=0,
            d_sum=0,
            d_max=0,
        )


def histogram_from_distances(
    d: np.ndarray, max_exp: int = _HIST_MAX_EXP
) -> ReuseHistogram:
    """Bin an already-computed distance array into a :class:`ReuseHistogram`.

    This is the shared tail of :func:`reuse_histogram`: the analysis-pass
    framework calls it on distances pulled from the per-chunk artifact
    context, so several passes can share one Fenwick sweep.
    """
    hits = d[d >= 0]
    out = ReuseHistogram.identity(max_exp)
    out.n_cold = int((d < 0).sum())
    out.n_reuse = int(len(hits))
    if len(hits):
        out.d_sum = int(hits.sum())
        out.d_max = int(hits.max())
        bins = np.searchsorted(_hist_edges(max_exp), hits, side="right")
        np.add.at(out.counts, np.minimum(bins, max_exp), 1)
    return out


def reuse_histogram(
    events: np.ndarray,
    block: int = 64,
    sample_id: np.ndarray | None = None,
    max_exp: int = _HIST_MAX_EXP,
) -> ReuseHistogram:
    """Histogram of intra-sample reuse distances over power-of-two bins.

    Because distance tracking resets at sample boundaries, computing this
    per sample-aligned shard and merging gives exactly the whole-trace
    result; every count is an integer so the merge is bit-exact.
    """
    _check(events)
    check_power_of_two("block", block)
    return histogram_from_distances(reuse_distances(events, block, sample_id), max_exp)


def region_reuse(
    events: np.ndarray,
    base: int,
    size: int,
    block: int = 64,
    sample_id: np.ndarray | None = None,
) -> tuple[float, int, int]:
    """(mean D, max D, accesses) for accesses falling in ``[base, base+size)``.

    D is computed over the *whole* access stream (a reuse of a region
    block may span accesses to other regions — that interleaving is
    exactly what spatio-temporal distance measures), then restricted to
    the region's accesses. Constant-class records are excluded up front,
    matching the paper's focus on data that must move.
    """
    _check(events)
    nc = nonconstant(events)
    if sample_id is not None:
        sample_id = sample_id[events["cls"] != 0]
    d = reuse_distances(nc, block, sample_id)
    addr = nc["addr"]
    in_region = (addr >= base) & (addr < base + size)
    d_region = d[in_region]
    hits = d_region[d_region >= 0]
    mean_d = float(hits.mean()) if len(hits) else 0.0
    max_d = int(d_region.max()) if len(d_region) and d_region.max() >= 0 else 0
    return mean_d, max_d, int(in_region.sum())
