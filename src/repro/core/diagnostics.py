"""Footprint access diagnostics (paper SS:V-E, Table I's metric family).

Decomposes a window's footprint into its *strided* (prefetchable) and
*irregular* (non-prefetchable) components using the static load classes —
constant time per record, no sequence analysis needed. The diagnostics
bundle the metrics the paper's tables report:

====================  =====================================================
``F``                 observed footprint (blocks)
``F_est``             estimated population footprint ``rho * F`` (Eq. 3)
``F_str``/``F_irr``   footprint touched via strided / irregular accesses
``F_str_pct``         strided share of the non-constant footprint (%)
``dF``                footprint growth ``F / (kappa A)`` (Eq. 4)
``dF_str``/``dF_irr`` per-class growth (class footprint per access)
``dF_str_pct``        strided share of footprint growth (%)
``A_const_pct``       share of accesses hitting constant-sized data (%)
``A_obs``             observed (compressed) records
``A_implied``         uncompressed accesses implied, ``kappa * A_obs``
``A_est``             estimated population accesses, ``rho * A_implied``
====================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.metrics import footprint, footprint_by_class
from repro.trace.compress import decompress_counts, suppressed_count
from repro.trace.event import EVENT_DTYPE, LoadClass

__all__ = ["FootprintDiagnostics", "compute_diagnostics", "finalize_diagnostics"]


@dataclass(frozen=True)
class FootprintDiagnostics:
    """The footprint-access diagnostic bundle for one window."""

    A_obs: int
    A_implied: int
    A_est: float
    F: int
    F_est: float
    F_str: int
    F_irr: int
    dF: float
    dF_str: float
    dF_irr: float
    A_const_pct: float

    @property
    def F_str_pct(self) -> float:
        """Strided share of the non-constant footprint, in percent."""
        denom = self.F_str + self.F_irr
        return 100.0 * self.F_str / denom if denom else 0.0

    @property
    def F_irr_pct(self) -> float:
        """Irregular share of the non-constant footprint, in percent."""
        denom = self.F_str + self.F_irr
        return 100.0 * self.F_irr / denom if denom else 0.0

    @property
    def dF_str_pct(self) -> float:
        """Strided share of footprint growth, in percent."""
        denom = self.dF_str + self.dF_irr
        return 100.0 * self.dF_str / denom if denom else 0.0

    @property
    def dF_irr_pct(self) -> float:
        """Irregular share of footprint growth, in percent."""
        denom = self.dF_str + self.dF_irr
        return 100.0 * self.dF_irr / denom if denom else 0.0


def finalize_diagnostics(
    *,
    a_obs: int,
    a_implied: int,
    f: int,
    f_str: int,
    f_irr: int,
    n_const_accesses: int,
    rho: float = 1.0,
) -> FootprintDiagnostics:
    """The diagnostic bundle from exact integer totals.

    This is the single site where the derived floats (F-hat, dF, the
    percentages) are evaluated: both the serial
    :func:`compute_diagnostics` and the mergeable
    :class:`~repro.core.passes.DiagnosticsPartial` call it on identical
    operands, which is what makes the sharded/fused results bit-identical
    to the serial ones.
    """
    if rho < 1.0:
        raise ValueError(f"rho must be >= 1, got {rho}")
    window = a_implied if a_implied else 1
    return FootprintDiagnostics(
        A_obs=a_obs,
        A_implied=a_implied,
        A_est=rho * a_implied,
        F=f,
        F_est=rho * f,
        F_str=f_str,
        F_irr=f_irr,
        dF=f / window if a_implied else 0.0,
        dF_str=f_str / window if a_implied else 0.0,
        dF_irr=f_irr / window if a_implied else 0.0,
        A_const_pct=100.0 * n_const_accesses / window if a_implied else 0.0,
    )


def compute_diagnostics(
    events: np.ndarray, rho: float = 1.0, block: int = 1
) -> FootprintDiagnostics:
    """Compute the diagnostic bundle for ``events`` (one window).

    ``rho`` is the sample ratio used to scale observed quantities to the
    population (pass 1.0 for exact intra-window analysis).
    """
    if events.dtype != EVENT_DTYPE:
        raise TypeError(f"expected EVENT_DTYPE events, got {events.dtype}")
    by_class = footprint_by_class(events, block)
    n_const_accesses = suppressed_count(events) + int(
        (events["cls"] == int(LoadClass.CONSTANT)).sum()
    )
    return finalize_diagnostics(
        a_obs=len(events),
        a_implied=decompress_counts(events),
        f=footprint(events, block),
        f_str=by_class[LoadClass.STRIDED],
        f_irr=by_class[LoadClass.IRREGULAR],
        n_const_accesses=n_const_accesses,
        rho=rho,
    )
