"""Simulated address space and instrumented data structures.

The paper traces native binaries whose data lives in a real virtual
address space. Library-path workloads here (miniVite, GAP, Darknet) run
against this package instead: an :class:`AddressSpace` hands out labelled
regions from a bump allocator, and the containers in
``repro.simmem.datastructs`` emit one :mod:`repro.trace.event` record per
logical element access through an :class:`AccessRecorder`.

The resulting streams carry exactly the (ip, addr, t, class) tuples the
analysis layer consumes, so every downstream code path is exercised as it
would be on a hardware-collected trace.
"""

from repro.simmem.address_space import AddressSpace, Region
from repro.simmem.recorder import AccessRecorder, AccessSite

__all__ = ["AddressSpace", "Region", "AccessRecorder", "AccessSite"]
