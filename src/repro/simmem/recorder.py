"""Access recorder: turns logical data-structure accesses into trace events.

Library-path workloads declare *access sites* — one per static load in the
imagined compiled code, with a function name, source position, and a load
class — and then record element accesses against those sites. The recorder
assigns synthetic instruction pointers, keeps retirement order, and
finalises to one packed event array.

Two recording granularities are provided, matching the HPC idiom of
vectorising hot loops: :meth:`AccessRecorder.record` for scalar accesses
(hash-probe chains and other data-dependent walks) and
:meth:`AccessRecorder.record_many` for an already-vectorised address
stream (array sweeps, matrix rows).
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.trace.event import EVENT_DTYPE, LoadClass, empty_events

__all__ = ["AccessSite", "AccessRecorder"]

_FN_BASE = 0x0040_0000
_FN_STRIDE = 0x1_0000


@dataclass(frozen=True)
class AccessSite:
    """A static load site in the simulated program."""

    ip: int
    fn_id: int
    fn_name: str
    cls: LoadClass
    file: str = "?"
    line: int = 0


class AccessRecorder:
    """Accumulates access events in retirement order.

    The recorder is single-use: call :meth:`finalize` once to obtain the
    event array (timestamps are assigned as consecutive retired-load
    indices at that point).
    """

    def __init__(self) -> None:
        self._fn_ids: dict[str, int] = {}
        self._fn_files: dict[int, str] = {}
        self._sites: list[AccessSite] = []
        self._site_counts: dict[str, int] = {}  # per-function site index
        # ordered chunks; scalar records buffer in parallel lists until flushed
        self._chunks: list[np.ndarray] = []
        self._buf_ip: list[int] = []
        self._buf_addr: list[int] = []
        self._buf_cls: list[int] = []
        self._buf_nconst: list[int] = []
        self._buf_fn: list[int] = []
        self._finalized = False
        self._fn_stack: list[str] = ["main"]
        self._scoped_sites: dict[tuple[str, int, str], AccessSite] = {}
        self._const_addr: dict[str, int] = {}

    # -- site registration ---------------------------------------------------

    def function(self, name: str, file: str = "?") -> int:
        """Register (or look up) a function and return its id."""
        fid = self._fn_ids.get(name)
        if fid is None:
            fid = len(self._fn_ids)
            self._fn_ids[name] = fid
            self._fn_files[fid] = file
        return fid

    def site(
        self,
        fn_name: str,
        cls: LoadClass,
        *,
        file: str = "?",
        line: int = 0,
    ) -> AccessSite:
        """Declare a static load site inside ``fn_name``."""
        fid = self.function(fn_name, file)
        idx = self._site_counts.get(fn_name, 0)
        self._site_counts[fn_name] = idx + 1
        ip = _FN_BASE + fid * _FN_STRIDE + idx * 4
        s = AccessSite(ip=ip, fn_id=fid, fn_name=fn_name, cls=LoadClass(cls), file=file, line=line)
        self._sites.append(s)
        return s

    # -- function scoping (library-path call context) --------------------------

    @property
    def current_fn(self) -> str:
        """The function currently on top of the simulated call stack."""
        return self._fn_stack[-1]

    @contextlib.contextmanager
    def scope(self, fn_name: str, file: str = "?") -> Iterator[None]:
        """Attribute accesses recorded inside the block to ``fn_name``."""
        self.function(fn_name, file)
        self._fn_stack.append(fn_name)
        try:
            yield
        finally:
            self._fn_stack.pop()

    def scoped_site(self, cls: LoadClass, tag: str = "") -> AccessSite:
        """A per-(current function, class, tag) site, created on first use.

        Containers use this so one data structure accessed from several
        functions attributes each access to its true caller.
        """
        key = (self.current_fn, int(cls), tag)
        site = self._scoped_sites.get(key)
        if site is None:
            site = self.site(self.current_fn, cls)
            self._scoped_sites[key] = site
        return site

    def touch_const(self, count: int = 1) -> None:
        """Record ``count`` Constant-class loads (stack/global scalars).

        Modelled as the paper's compressed representation: one proxy
        record at the current function's frame address carrying the
        remaining ``count - 1`` as ``n_const``.
        """
        if count <= 0:
            return
        fn = self.current_fn
        addr = self._const_addr.get(fn)
        if addr is None:
            # synthetic per-function frame-scalar address high in the space
            addr = 0x7FFF_0000_0000 + self.function(fn) * 0x1000
            self._const_addr[fn] = addr
        site = self.scoped_site(LoadClass.CONSTANT, "frame")
        self.record(site, addr, n_const=count - 1)

    @property
    def sites(self) -> tuple[AccessSite, ...]:
        """All declared sites."""
        return tuple(self._sites)

    @property
    def function_names(self) -> dict[int, str]:
        """fn id -> function name."""
        return {fid: name for name, fid in self._fn_ids.items()}

    def source_map(self) -> dict[int, tuple[str, str, int]]:
        """ip -> (function, file, line) for attribution."""
        return {s.ip: (s.fn_name, s.file, s.line) for s in self._sites}

    # -- recording -----------------------------------------------------------

    def record(self, site: AccessSite, addr: int, n_const: int = 0) -> None:
        """Record one load of ``addr`` at ``site``."""
        self._buf_ip.append(site.ip)
        self._buf_addr.append(addr)
        self._buf_cls.append(int(site.cls))
        self._buf_nconst.append(n_const)
        self._buf_fn.append(site.fn_id)

    def record_many(self, site: AccessSite, addrs, n_const: int = 0) -> None:
        """Record a consecutive run of loads of ``addrs`` at ``site``."""
        addrs = np.asarray(addrs, dtype=np.uint64)
        if addrs.size == 0:
            return
        self._flush_scalar()
        ev = empty_events(addrs.size)
        ev["ip"] = site.ip
        ev["addr"] = addrs
        ev["cls"] = int(site.cls)
        ev["n_const"] = n_const
        ev["fn"] = site.fn_id
        self._chunks.append(ev)

    def _flush_scalar(self) -> None:
        if not self._buf_ip:
            return
        ev = empty_events(len(self._buf_ip))
        ev["ip"] = self._buf_ip
        ev["addr"] = self._buf_addr
        ev["cls"] = self._buf_cls
        ev["n_const"] = self._buf_nconst
        ev["fn"] = self._buf_fn
        self._chunks.append(ev)
        self._buf_ip.clear()
        self._buf_addr.clear()
        self._buf_cls.clear()
        self._buf_nconst.clear()
        self._buf_fn.clear()

    @property
    def n_recorded(self) -> int:
        """Events recorded so far."""
        return sum(len(c) for c in self._chunks) + len(self._buf_ip)

    def finalize(self) -> np.ndarray:
        """Return all events in retirement order with ``t`` assigned."""
        if self._finalized:
            raise RuntimeError("recorder already finalized")
        self._finalized = True
        self._flush_scalar()
        if not self._chunks:
            return empty_events()
        out = np.concatenate(self._chunks) if len(self._chunks) > 1 else self._chunks[0]
        if out.dtype != EVENT_DTYPE:  # pragma: no cover - defensive
            raise TypeError(f"internal chunk dtype {out.dtype}")
        out["t"] = np.arange(len(out), dtype=np.uint64)
        self._chunks.clear()
        return out
