"""Instrumented hopscotch hash table — the miniVite v2/v3 map.

Models TSL hopscotch [34,35]: a closed ('flat') table where every element
lives within a fixed neighborhood of ``H`` slots after its home bucket —
an invariant this implementation maintains strictly, so a lookup never
scans more than ``H`` contiguous slots. A lookup loads the home slot
(Irregular — its index is data-dependent on the hash) and then scans the
neighborhood **contiguously** — a Strided run, which is exactly how the
paper's v2/v3 replace v1's pointer chases with prefetchable traffic.

Insertion linear-probes for a free slot; if the free slot lies beyond the
neighborhood, hopscotch displacement bubbles it closer (window scans =
more strided loads). When displacement fails, or the load-factor limit is
hit, the table doubles and every element reinserts — the copy burst that
inflates v2's access count. A *right-sized* table (v3) is constructed
with enough capacity up front and never resizes in steady state.
"""

from __future__ import annotations

import numpy as np

from repro.simmem.address_space import AddressSpace, Region
from repro.simmem.recorder import AccessRecorder
from repro.trace.event import LoadClass

__all__ = ["HopscotchMap"]

_SLOT_SIZE = 16  # key + value
_GOLDEN = 0x9E3779B97F4A7C15
_MASK64 = (1 << 64) - 1
_H = 16  # neighborhood size


class HopscotchMap:
    """Closed hopscotch hash map with Strided probe behaviour."""

    H = _H

    def __init__(
        self,
        space: AddressSpace,
        recorder: AccessRecorder,
        *,
        capacity: int = 64,
        right_size_for: int | None = None,
        max_load_factor: float = 0.75,
        name: str = "hmap",
    ) -> None:
        if right_size_for is not None:
            capacity = self.capacity_for(right_size_for, max_load_factor)
        if capacity < _H:
            capacity = _H
        if not 0 < max_load_factor < 1:
            raise ValueError(f"max_load_factor must be in (0,1), got {max_load_factor}")
        self.space = space
        self.recorder = recorder
        self.name = name
        self.max_load_factor = max_load_factor
        self.right_sized = right_size_for is not None
        self._alloc(capacity)
        self._n = 0
        self.n_resizes = 0

    @staticmethod
    def capacity_for(n_elems: int, max_load_factor: float = 0.75) -> int:
        """Right-sized capacity: just enough slots, rounded to the
        neighborhood size — unlike growth by doubling, which lands on the
        next power of two and over-allocates (the v2 vs v3 difference)."""
        need = max(_H, int(n_elems / max_load_factor) + 1)
        return ((need + _H - 1) // _H) * _H

    def _alloc(self, capacity: int) -> None:
        self.capacity = capacity
        self.region: Region = self.space.malloc(capacity * _SLOT_SIZE, self.name)
        self._keys = np.full(capacity, -1, dtype=np.int64)
        self._values = np.zeros(capacity, dtype=np.float64)

    def __len__(self) -> int:
        return self._n

    @property
    def load_factor(self) -> float:
        """Occupied fraction of the slot array."""
        return self._n / self.capacity

    def regions(self) -> list[Region]:
        """The map object's live region (one flat slot array)."""
        return [self.region]

    def _slot_addr(self, s: int) -> int:
        return self.region.base + s * _SLOT_SIZE

    def _home(self, key: int) -> int:
        return (((key * _GOLDEN) & _MASK64) >> 33) % self.capacity

    # -- operations ---------------------------------------------------------------

    def find(self, key: int) -> float | None:
        """Lookup: one Irregular home-slot load + a Strided neighborhood scan.

        The hopscotch invariant bounds the scan at ``H`` slots.
        """
        rec = self.recorder
        home = self._home(key)
        rec.record(rec.scoped_site(LoadClass.IRREGULAR, self.name), self._slot_addr(home))
        if self._keys[home] == key:
            return float(self._values[home])
        site_str = rec.scoped_site(LoadClass.STRIDED, self.name)
        for d in range(1, _H):
            s = (home + d) % self.capacity
            rec.record(site_str, self._slot_addr(s))
            if self._keys[s] == key:
                return float(self._values[s])
        return None

    def insert(self, key: int, value: float, *, accumulate: bool = False) -> None:
        """Insert or update, displacing or resizing as hopscotch requires."""
        while True:
            outcome = self._place(key, value, accumulate, record=True)
            if outcome != "resize":
                return
            self._resize()

    def _place(
        self, key: int, value: float, accumulate: bool, *, record: bool
    ) -> str:
        """One placement attempt; 'updated', 'inserted', or 'resize'."""
        rec = self.recorder
        cap = self.capacity
        home = self._home(key)
        if record:
            rec.record(
                rec.scoped_site(LoadClass.IRREGULAR, self.name), self._slot_addr(home)
            )
            site_str = rec.scoped_site(LoadClass.STRIDED, self.name)
        # 1) update in place when the key already lives in its neighborhood
        for d in range(_H):
            s = (home + d) % cap
            if record and d > 0:
                rec.record(site_str, self._slot_addr(s))
            if self._keys[s] == key:
                self._values[s] = self._values[s] + value if accumulate else value
                return "updated"
        if self._n + 1 > cap * self.max_load_factor:
            return "resize"
        # 2) linear-probe for the nearest free slot
        free = -1
        for d in range(cap):
            s = (home + d) % cap
            if record:
                rec.record(site_str, self._slot_addr(s))
            if self._keys[s] == -1:
                free, dist = s, d
                break
        if free == -1:
            return "resize"
        # 3) bubble the free slot back into the neighborhood
        while dist >= _H:
            moved = False
            for back in range(_H - 1, 0, -1):
                cand = (free - back) % cap
                if record:
                    rec.record(site_str, self._slot_addr(cand))
                ckey = int(self._keys[cand])
                if ckey == -1:
                    continue
                if (free - self._home(ckey)) % cap < _H:
                    self._keys[free] = ckey
                    self._values[free] = self._values[cand]
                    self._keys[cand] = -1
                    free = cand
                    dist -= back
                    moved = True
                    break
            if not moved:
                return "resize"
        self._keys[free] = key
        self._values[free] = value
        self._n += 1
        return "inserted"

    def _resize(self) -> None:
        """Double capacity and reinsert everything (the v2 copy burst)."""
        rec = self.recorder
        old_keys, old_values = self._keys, self._values
        old_region, old_cap = self.region, self.capacity
        # sweeping the old table is one contiguous strided read
        site_str = rec.scoped_site(LoadClass.STRIDED, self.name)
        rec.record_many(site_str, old_region.base + np.arange(old_cap) * _SLOT_SIZE)
        occupied = np.flatnonzero(old_keys != -1)
        new_cap = old_cap * 2
        while True:
            self.n_resizes += 1
            self._alloc(new_cap)
            self._n = 0
            ok = all(
                self._place(int(old_keys[s]), float(old_values[s]), False, record=True)
                != "resize"
                for s in occupied
            )
            if ok:
                self.space.free(old_region)
                return
            # rare: even the doubled table could not host an item — double again
            self.space.free(self.region)
            new_cap *= 2

    def items(self) -> list[tuple[int, float]]:
        """Iterate pairs by sweeping the slot array (one Strided run)."""
        rec = self.recorder
        site = rec.scoped_site(LoadClass.STRIDED, self.name)
        rec.record_many(site, self.region.base + np.arange(self.capacity) * _SLOT_SIZE)
        occ = np.flatnonzero(self._keys != -1)
        return [(int(self._keys[s]), float(self._values[s])) for s in occ]
