"""Instrumented CSR (compressed sparse row) graph storage.

The GAP-style workloads read graphs through this container: an offsets
array (n+1 entries) and a targets array (m entries), each its own
simulated-heap region. Under a sequential vertex sweep the offset loads
are Strided and each adjacency list is a contiguous Strided run; the
*values* read through adjacency (neighbor ids used to index per-vertex
state) drive the Irregular gathers that dominate graph analytics — those
happen in the caller's property arrays (:class:`FlatArray.gather`).
"""

from __future__ import annotations

import numpy as np

from repro.simmem.address_space import AddressSpace
from repro.simmem.recorder import AccessRecorder
from repro.simmem.datastructs.array import FlatArray

__all__ = ["CSRGraph"]


class CSRGraph:
    """CSR adjacency with instrumented offset/target loads."""

    def __init__(
        self,
        space: AddressSpace,
        recorder: AccessRecorder,
        offsets: np.ndarray,
        targets: np.ndarray,
        *,
        name: str = "graph",
    ) -> None:
        offsets = np.asarray(offsets, dtype=np.int64)
        targets = np.asarray(targets, dtype=np.int64)
        if offsets.ndim != 1 or len(offsets) < 2:
            raise ValueError("offsets must be 1-D with length >= 2")
        if offsets[0] != 0 or offsets[-1] != len(targets):
            raise ValueError("offsets must start at 0 and end at len(targets)")
        if np.any(np.diff(offsets) < 0):
            raise ValueError("offsets must be non-decreasing")
        self.space = space
        self.recorder = recorder
        self.n = len(offsets) - 1
        self.m = len(targets)
        self.offsets = FlatArray(
            space, recorder, len(offsets), elem_size=8, name=f"{name}-offsets"
        )
        self.offsets.fill(offsets)
        self.targets = FlatArray(
            space, recorder, max(1, len(targets)), elem_size=8, name=f"{name}-targets"
        )
        if len(targets):
            self.targets.data[: len(targets)] = targets

    @classmethod
    def from_edges(
        cls,
        space: AddressSpace,
        recorder: AccessRecorder,
        n: int,
        edges: np.ndarray,
        *,
        symmetrize: bool = False,
        name: str = "graph",
    ) -> "CSRGraph":
        """Build CSR from an (m, 2) edge array, deduplicating."""
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        if symmetrize:
            edges = np.concatenate([edges, edges[:, ::-1]])
        # drop self-loops and duplicates
        edges = edges[edges[:, 0] != edges[:, 1]]
        if len(edges):
            order = np.lexsort((edges[:, 1], edges[:, 0]))
            edges = edges[order]
            keep = np.ones(len(edges), dtype=bool)
            keep[1:] = np.any(edges[1:] != edges[:-1], axis=1)
            edges = edges[keep]
        counts = np.bincount(edges[:, 0], minlength=n) if len(edges) else np.zeros(n, dtype=np.int64)
        offsets = np.concatenate([[0], np.cumsum(counts)])
        return cls(space, recorder, offsets, edges[:, 1] if len(edges) else np.empty(0, dtype=np.int64), name=name)

    def degree(self, v: int, *, record: bool = True) -> int:
        """Out-degree of ``v`` (two strided offset loads when recorded)."""
        if record:
            self.offsets.load(v)
            self.offsets.load(v + 1)
        return int(self.offsets.data[v + 1] - self.offsets.data[v])

    def neighbors(self, v: int, *, record: bool = True) -> np.ndarray:
        """Adjacency list of ``v``; offset loads + one contiguous targets run."""
        if not 0 <= v < self.n:
            raise IndexError(f"vertex {v} out of range [0, {self.n})")
        lo = int(self.offsets.data[v])
        hi = int(self.offsets.data[v + 1])
        if record:
            self.offsets.load(v)
            self.offsets.load(v + 1)
            if hi > lo:
                self.targets.load_range(lo, hi)
        return self.targets.data[lo:hi]

    def degrees(self) -> np.ndarray:
        """All out-degrees (no recording; derived metadata)."""
        return np.diff(self.offsets.data[: self.n + 1])
