"""Instrumented containers over the simulated address space.

Each container stores its payload in numpy arrays and emits one trace
event per logical element load through an
:class:`~repro.simmem.AccessRecorder`, with the load class the paper's
static classifier would assign to the corresponding compiled code:

* :class:`~repro.simmem.datastructs.array.FlatArray` — dense array;
  sequential sweeps are Strided, data-dependent gathers Irregular;
* :class:`~repro.simmem.datastructs.open_hash.OpenHashMap` — a chained
  ('open') hash table like ``std::unordered_map``: bucket-head loads and
  node chases are Irregular (miniVite v1);
* :class:`~repro.simmem.datastructs.hopscotch.HopscotchMap` — a closed
  hopscotch table: the home-slot probe is Irregular but the neighborhood
  scan is a contiguous Strided run (miniVite v2/v3);
* :class:`~repro.simmem.datastructs.csr.CSRGraph` — compressed sparse
  row graph storage: offset lookups strided under a vertex sweep,
  adjacency runs strided, gathers through adjacency Irregular.
"""

from repro.simmem.datastructs.array import FlatArray
from repro.simmem.datastructs.open_hash import OpenHashMap
from repro.simmem.datastructs.hopscotch import HopscotchMap
from repro.simmem.datastructs.csr import CSRGraph

__all__ = ["FlatArray", "OpenHashMap", "HopscotchMap", "CSRGraph"]
