"""Instrumented chained ('open') hash table — the miniVite v1 map.

Models ``std::unordered_map``: an array of bucket heads, each pointing at
a singly-linked list of separately-allocated nodes. Every logical load is
Irregular — the bucket-head index is data-dependent on the key's hash,
and the chain walk chases pointers — which is exactly the access
behaviour the paper's v1 case study attributes its poor cache performance
to. Node storage grows in chunks, so successive insertions land at
allocation-order addresses uncorrelated with later access order.

Rehashing (when the load factor crosses the limit, as libstdc++ does)
walks every node and relinks it into a fresh bucket array: a burst of
irregular loads that shows up in insert-heavy phases.
"""

from __future__ import annotations

from repro.simmem.address_space import AddressSpace, Region
from repro.simmem.recorder import AccessRecorder
from repro.trace.event import LoadClass

__all__ = ["OpenHashMap"]

_NODE_SIZE = 32  # key, value, next pointer, allocator padding
_CHUNK = 256  # nodes per allocation chunk
_GOLDEN = 0x9E3779B97F4A7C15
_MASK64 = (1 << 64) - 1


class OpenHashMap:
    """Chained hash map with Irregular access behaviour."""

    def __init__(
        self,
        space: AddressSpace,
        recorder: AccessRecorder,
        *,
        n_buckets: int = 16,
        max_load_factor: float = 1.0,
        name: str = "umap",
    ) -> None:
        if n_buckets <= 0:
            raise ValueError(f"n_buckets must be > 0, got {n_buckets}")
        if max_load_factor <= 0:
            raise ValueError(f"max_load_factor must be > 0, got {max_load_factor}")
        self.space = space
        self.recorder = recorder
        self.name = name
        self.max_load_factor = max_load_factor
        self._buckets_region: Region = space.malloc(n_buckets * 8, name)
        self._buckets: list[int] = [-1] * n_buckets  # node index or -1
        self._keys: list[int] = []
        self._values: list[float] = []
        self._next: list[int] = []
        self._chunks: list[Region] = []
        self.n_rehashes = 0

    # -- geometry ---------------------------------------------------------------

    @property
    def n_buckets(self) -> int:
        """Current bucket-array length."""
        return len(self._buckets)

    def __len__(self) -> int:
        return len(self._keys)

    @property
    def load_factor(self) -> float:
        """Elements per bucket."""
        return len(self._keys) / len(self._buckets)

    def regions(self) -> list[Region]:
        """All live regions of the map object (buckets + node chunks)."""
        return [self._buckets_region, *self._chunks]

    def _node_addr(self, node: int) -> int:
        chunk = node // _CHUNK
        return self._chunks[chunk].base + (node % _CHUNK) * _NODE_SIZE

    def _bucket_addr(self, b: int) -> int:
        return self._buckets_region.base + b * 8

    def _hash(self, key: int) -> int:
        return ((key * _GOLDEN) & _MASK64) >> 33

    # -- operations ---------------------------------------------------------------

    def find(self, key: int) -> float | None:
        """Lookup; records the bucket-head load and one load per chain node."""
        rec = self.recorder
        site = rec.scoped_site(LoadClass.IRREGULAR, self.name)
        b = self._hash(key) % len(self._buckets)
        rec.record(site, self._bucket_addr(b))
        node = self._buckets[b]
        while node != -1:
            rec.record(site, self._node_addr(node))
            if self._keys[node] == key:
                return self._values[node]
            node = self._next[node]
        return None

    def insert(self, key: int, value: float, *, accumulate: bool = False) -> None:
        """Insert or update; ``accumulate`` adds to an existing value.

        Follows libstdc++: probe the chain first, link a new node at the
        bucket head on a miss, rehash when the load factor limit is hit.
        """
        rec = self.recorder
        site = rec.scoped_site(LoadClass.IRREGULAR, self.name)
        b = self._hash(key) % len(self._buckets)
        rec.record(site, self._bucket_addr(b))
        node = self._buckets[b]
        while node != -1:
            rec.record(site, self._node_addr(node))
            if self._keys[node] == key:
                self._values[node] = self._values[node] + value if accumulate else value
                return
            node = self._next[node]
        new = len(self._keys)
        if new % _CHUNK == 0:
            self._chunks.append(
                self.space.malloc(_CHUNK * _NODE_SIZE, f"{self.name}-nodes")
            )
        self._keys.append(key)
        self._values.append(value)
        self._next.append(self._buckets[b])
        self._buckets[b] = new
        if self.load_factor > self.max_load_factor:
            self._rehash()

    def _rehash(self) -> None:
        """Double the bucket array and relink every node (irregular burst)."""
        self.n_rehashes += 1
        rec = self.recorder
        site = rec.scoped_site(LoadClass.IRREGULAR, self.name)
        old_region = self._buckets_region
        n_new = len(self._buckets) * 2
        self._buckets_region = self.space.malloc(n_new * 8, self.name)
        self._buckets = [-1] * n_new
        for node in range(len(self._keys)):
            rec.record(site, self._node_addr(node))  # reload each node's key
            b = self._hash(self._keys[node]) % n_new
            self._next[node] = self._buckets[b]
            self._buckets[b] = node
        self.space.free(old_region)

    def items(self) -> list[tuple[int, float]]:
        """Iterate all (key, value) pairs, recording the node loads."""
        rec = self.recorder
        site = rec.scoped_site(LoadClass.IRREGULAR, self.name)
        out = []
        for b in range(len(self._buckets)):
            node = self._buckets[b]
            while node != -1:
                rec.record(site, self._node_addr(node))
                out.append((self._keys[node], self._values[node]))
                node = self._next[node]
        return out
