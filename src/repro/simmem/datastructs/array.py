"""Instrumented dense array.

The workhorse container: payload in one numpy array, one simulated-heap
region, and recording helpers for the two access shapes compiled array
code exhibits — induction-variable sweeps (Strided) and data-dependent
gathers (Irregular).
"""

from __future__ import annotations

import numpy as np

from repro.simmem.address_space import AddressSpace, Region
from repro.simmem.recorder import AccessRecorder
from repro.trace.event import LoadClass

__all__ = ["FlatArray"]


class FlatArray:
    """A fixed-length array of ``elem_size``-byte elements."""

    def __init__(
        self,
        space: AddressSpace,
        recorder: AccessRecorder,
        n: int,
        *,
        elem_size: int = 8,
        name: str = "array",
        dtype=np.int64,
    ) -> None:
        if n <= 0:
            raise ValueError(f"n must be > 0, got {n}")
        if elem_size <= 0:
            raise ValueError(f"elem_size must be > 0, got {elem_size}")
        self.space = space
        self.recorder = recorder
        self.n = n
        self.elem_size = elem_size
        self.region: Region = space.malloc(n * elem_size, name)
        self.data = np.zeros(n, dtype=dtype)
        self.n_stores = 0

    # -- address helpers -------------------------------------------------------

    def addr_of(self, i) -> np.ndarray | int:
        """Simulated address(es) of element(s) ``i``."""
        return self.region.base + np.asarray(i) * self.elem_size

    def _check_index(self, i: int) -> None:
        if not 0 <= i < self.n:
            raise IndexError(f"index {i} out of range [0, {self.n})")

    # -- recorded loads ----------------------------------------------------------

    def load(self, i: int, *, pattern: LoadClass = LoadClass.STRIDED):
        """Load element ``i``, recording one access of class ``pattern``."""
        self._check_index(i)
        site = self.recorder.scoped_site(pattern, self.region.name)
        self.recorder.record(site, self.region.base + i * self.elem_size)
        return self.data[i]

    def gather(self, idx, *, pattern: LoadClass = LoadClass.IRREGULAR) -> np.ndarray:
        """Load elements at ``idx`` (data-dependent order), vectorised."""
        idx = np.asarray(idx, dtype=np.int64)
        if idx.size and (idx.min() < 0 or idx.max() >= self.n):
            raise IndexError("gather index out of range")
        site = self.recorder.scoped_site(pattern, self.region.name)
        self.recorder.record_many(site, self.region.base + idx * self.elem_size)
        return self.data[idx]

    def load_range(self, lo: int, hi: int, step: int = 1) -> np.ndarray:
        """Load elements ``lo:hi:step`` as one Strided run."""
        if not (0 <= lo <= hi <= self.n):
            raise IndexError(f"range [{lo}, {hi}) out of bounds")
        idx = np.arange(lo, hi, step, dtype=np.int64)
        site = self.recorder.scoped_site(LoadClass.STRIDED, self.region.name)
        self.recorder.record_many(site, self.region.base + idx * self.elem_size)
        return self.data[lo:hi:step]

    def sweep(self) -> np.ndarray:
        """Load the whole array sequentially."""
        return self.load_range(0, self.n)

    # -- unrecorded stores (load-based analysis ignores stores) -----------------

    def store(self, i: int, value) -> None:
        """Store ``value`` at ``i`` (stores are not traced)."""
        self._check_index(i)
        self.data[i] = value
        self.n_stores += 1

    def store_many(self, idx, values) -> None:
        """Vectorised store (not traced)."""
        idx = np.asarray(idx, dtype=np.int64)
        self.data[idx] = values
        self.n_stores += idx.size

    def fill(self, values) -> None:
        """Initialise payload without recording (setup, not workload)."""
        self.data[:] = values
