"""A simulated process address space with a labelled bump allocator.

Layout mirrors a conventional process image so that location-based
analysis (zoom trees, heatmaps) sees realistic region structure:

* globals at ``GLOBAL_BASE``,
* stack frames growing down from ``STACK_BASE``,
* heap allocations growing up from ``HEAP_BASE``, each padded to an
  alignment boundary and separated by a guard gap (so distinct objects
  never share an analysis block by accident unless requested).

Values are optionally stored in a sparse dict backing store — the ISA
interpreter uses that; library-path data structures keep their payloads
in Python/numpy and only consume addresses.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

__all__ = ["Region", "AddressSpace", "GLOBAL_BASE", "HEAP_BASE", "STACK_BASE"]

GLOBAL_BASE = 0x0000_6000_0000
HEAP_BASE = 0x0000_7000_0000
STACK_BASE = 0x0000_7FFF_F000_0000


@dataclass(frozen=True)
class Region:
    """A contiguous allocated range ``[base, base + size)``."""

    name: str
    base: int
    size: int
    kind: str = "heap"  # "heap" | "stack" | "global"

    @property
    def end(self) -> int:
        """One past the last byte."""
        return self.base + self.size

    def contains(self, addr: int) -> bool:
        """Whether ``addr`` falls inside this region."""
        return self.base <= addr < self.end

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Region({self.name!r}, 0x{self.base:x}+{self.size})"


class AddressSpace:
    """Bump allocator over the simulated address space.

    Not thread-safe; one per simulated process.
    """

    def __init__(self, *, alignment: int = 64, guard: int = 4096) -> None:
        if alignment <= 0 or (alignment & (alignment - 1)) != 0:
            raise ValueError(f"alignment must be a power of two, got {alignment}")
        if guard < 0:
            raise ValueError(f"guard must be >= 0, got {guard}")
        self._alignment = alignment
        self._guard = guard
        self._heap_next = HEAP_BASE
        self._global_next = GLOBAL_BASE
        self._stack_next = STACK_BASE
        self._regions: list[Region] = []
        self._bases: list[int] = []  # sorted mirror of region bases
        self._values: dict[int, int] = {}
        self._free_lists: dict[int, list[int]] = {}  # aligned size -> bases
        #: every heap/global/stack allocation ever made: (name, base, size)
        self.alloc_log: list[tuple[str, int, int]] = []

    # -- allocation ---------------------------------------------------------

    def _align(self, n: int) -> int:
        a = self._alignment
        return (n + a - 1) & ~(a - 1)

    def _insert(self, region: Region) -> Region:
        idx = bisect.bisect_left(self._bases, region.base)
        self._bases.insert(idx, region.base)
        self._regions.insert(idx, region)
        return region

    def malloc(self, size: int, name: str = "heap") -> Region:
        """Allocate ``size`` bytes on the heap under label ``name``.

        Like a real allocator, freed blocks of the same size class are
        recycled first (size-bucketed free list), so repeated
        allocate/free cycles — e.g. a per-vertex hash map — revisit the
        same addresses instead of marching through the address space.
        """
        if size <= 0:
            raise ValueError(f"size must be > 0, got {size}")
        bucket = self._free_lists.get(self._align(size))
        if bucket:
            base = bucket.pop()
        else:
            base = self._heap_next
            self._heap_next = base + self._align(size) + self._guard
        self.alloc_log.append((name, base, size))
        return self._insert(Region(name, base, size, "heap"))

    def alloc_global(self, size: int, name: str = "globals") -> Region:
        """Allocate ``size`` bytes in the global data section."""
        if size <= 0:
            raise ValueError(f"size must be > 0, got {size}")
        base = self._global_next
        self._global_next = base + self._align(size) + self._guard
        self.alloc_log.append((name, base, size))
        return self._insert(Region(name, base, size, "global"))

    def push_frame(self, size: int, name: str = "frame") -> Region:
        """Allocate a stack frame (stack grows down)."""
        if size <= 0:
            raise ValueError(f"size must be > 0, got {size}")
        base = self._stack_next - self._align(size)
        self._stack_next = base - self._guard
        return self._insert(Region(name, base, size, "stack"))

    def free(self, region: Region) -> None:
        """Release a region; heap blocks go to the size-class free list."""
        idx = bisect.bisect_left(self._bases, region.base)
        if idx >= len(self._regions) or self._regions[idx] is not region:
            raise KeyError(f"region {region} not allocated here")
        del self._bases[idx]
        del self._regions[idx]
        if region.kind == "heap":
            self._free_lists.setdefault(self._align(region.size), []).append(
                region.base
            )

    # -- lookup -------------------------------------------------------------

    @property
    def regions(self) -> tuple[Region, ...]:
        """Live regions in ascending base order."""
        return tuple(self._regions)

    def region_of(self, addr: int) -> Region | None:
        """The live region containing ``addr``, or ``None``."""
        idx = bisect.bisect_right(self._bases, addr) - 1
        if idx < 0:
            return None
        region = self._regions[idx]
        return region if region.contains(addr) else None

    def extent_of(self, name: str) -> tuple[int, int]:
        """(lowest base, highest end) over all allocations ever labelled ``name``.

        Uses the allocation log, so it covers freed-and-recycled objects —
        the footprint a location analysis would attribute to the label.
        """
        entries = [(b, b + s) for n, b, s in self.alloc_log if n == name]
        if not entries:
            raise KeyError(f"no allocation named {name!r}")
        return min(b for b, _ in entries), max(e for _, e in entries)

    def find(self, name: str) -> Region:
        """The first live region with label ``name`` (KeyError if absent)."""
        for region in self._regions:
            if region.name == name:
                return region
        raise KeyError(f"no region named {name!r}")

    # -- value backing store (used by the ISA interpreter) -------------------

    def load_value(self, addr: int) -> int:
        """Read the 64-bit word at ``addr`` (uninitialised memory reads 0)."""
        return self._values.get(addr, 0)

    def store_value(self, addr: int, value: int) -> None:
        """Write the 64-bit word at ``addr``."""
        self._values[addr] = value
