"""Auxiliary annotation file emitted by the instrumenter (paper SS:III-A/B).

The paper's instrumentor stores *static* facts out of band so that the
runtime cost of instrumentation stays a single side-effect-free
instruction per address register: addressing-mode literals (scale,
offset), the load class, and — for per-block proxies — the number of
suppressed Constant loads the proxy stands for. This module is that file:
a JSON-serialisable container joining raw ptwrite packets back to
load-level records.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

from repro.trace.event import LoadClass

__all__ = ["PtwAnnotation", "LoadAnnotation", "AnnotationFile"]


@dataclass(frozen=True)
class PtwAnnotation:
    """Facts about one inserted ``ptwrite`` instruction.

    ``starts_record`` marks the first packet of a load's packet group;
    ``multiplier`` is what the payload is scaled by when reconstructing
    the effective address (1 for a base register, the addressing-mode
    scale for an index register).
    """

    ptw_ip: int
    load_ip: int
    starts_record: bool
    multiplier: int
    offset: int  # addressing-mode literal added once per record


@dataclass(frozen=True)
class LoadAnnotation:
    """Facts about one instrumented load."""

    load_ip: int
    cls: LoadClass
    stride: int | None
    n_const: int  # suppressed Constant loads this record is a proxy for
    fn: int  # function id (layout order)
    proc: str
    line: int


@dataclass
class AnnotationFile:
    """The instrumenter's auxiliary output."""

    module: str
    loads: dict[int, LoadAnnotation] = field(default_factory=dict)
    ptwrites: dict[int, PtwAnnotation] = field(default_factory=dict)
    source_map: dict[int, tuple[str, str, int]] = field(default_factory=dict)
    n_static_loads: int = 0
    n_static_instrumented: int = 0
    n_static_suppressed: int = 0

    @property
    def instrumented_fraction(self) -> float:
        """Fraction of static loads that carry their own ptwrite(s)."""
        if self.n_static_loads == 0:
            return 0.0
        return self.n_static_instrumented / self.n_static_loads

    # -- persistence ----------------------------------------------------------

    def to_json(self) -> str:
        """Serialise to a JSON string."""
        return json.dumps(
            {
                "module": self.module,
                "loads": {str(k): _load_dict(v) for k, v in self.loads.items()},
                "ptwrites": {str(k): asdict(v) for k, v in self.ptwrites.items()},
                "source_map": {str(k): list(v) for k, v in self.source_map.items()},
                "n_static_loads": self.n_static_loads,
                "n_static_instrumented": self.n_static_instrumented,
                "n_static_suppressed": self.n_static_suppressed,
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "AnnotationFile":
        """Parse a JSON string produced by :meth:`to_json`."""
        raw = json.loads(text)
        loads = {
            int(k): LoadAnnotation(
                load_ip=v["load_ip"],
                cls=LoadClass(v["cls"]),
                stride=v["stride"],
                n_const=v["n_const"],
                fn=v["fn"],
                proc=v["proc"],
                line=v["line"],
            )
            for k, v in raw["loads"].items()
        }
        ptws = {int(k): PtwAnnotation(**v) for k, v in raw["ptwrites"].items()}
        source = {int(k): (v[0], v[1], int(v[2])) for k, v in raw["source_map"].items()}
        return cls(
            module=raw["module"],
            loads=loads,
            ptwrites=ptws,
            source_map=source,
            n_static_loads=raw["n_static_loads"],
            n_static_instrumented=raw["n_static_instrumented"],
            n_static_suppressed=raw["n_static_suppressed"],
        )

    def save(self, path) -> None:
        """Write the annotation file to ``path``."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())

    @classmethod
    def load(cls, path) -> "AnnotationFile":
        """Read an annotation file from ``path``."""
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())


def _load_dict(ann: LoadAnnotation) -> dict:
    d = asdict(ann)
    d["cls"] = int(ann.cls)
    return d
