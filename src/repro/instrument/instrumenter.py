"""Binary instrumentation: ptwrite insertion and proxy selection (SS:III, Fig. 2).

Given a laid-out module and a load classification, produce a *new* module
in which:

* every Strided/Irregular load is preceded by one ``ptwrite`` per dynamic
  address register (base first, then index), so its effective address can
  be reconstructed from packet payloads plus the annotation literals;
* Constant loads are *suppressed* — not individually instrumented.
  Per basic block a proxy is elected: the first Strided/Irregular load if
  one exists, otherwise the first Constant load (which is then itself
  instrumented); the proxy's annotation carries the count of suppressed
  Constant loads in the block, which is enough to recover ``A_const``
  because a basic block's instructions execute all-or-nothing.

The instrumented module is re-laid-out, so instruction addresses change —
the annotation file records the new-code source map (SS:III-D).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.instrument.annotations import (
    AnnotationFile,
    LoadAnnotation,
    PtwAnnotation,
)
from repro.instrument.classify import LoadInfo, classify_module
from repro.isa.program import (
    BasicBlock,
    Instruction,
    Module,
    Opcode,
    Procedure,
)
from repro.trace.event import LoadClass

__all__ = ["InstrumentResult", "instrument_module"]


@dataclass
class InstrumentResult:
    """An instrumented module plus its auxiliary annotation file."""

    module: Module
    annotations: AnnotationFile
    classes: dict[int, LoadInfo]  # keyed by ORIGINAL instruction address


def _copy_instruction(instr: Instruction) -> Instruction:
    return Instruction(
        op=instr.op,
        dest=instr.dest,
        srcs=instr.srcs,
        mem=instr.mem,
        cond=instr.cond,
        targets=instr.targets,
        callee=instr.callee,
        line=instr.line,
        addr=-1,
    )


def instrument_module(
    module: Module,
    classes: dict[int, LoadInfo] | None = None,
    only_procs: set[str] | None = None,
) -> InstrumentResult:
    """Instrument ``module``; returns the new module and annotations.

    ``classes`` defaults to running the classifier
    (:func:`repro.instrument.classify.classify_module`).

    ``only_procs`` is the paper's *selective instrumentation* (SS:II,
    Step 1): only the named procedures receive ptwrites — the alternative
    to hardware guards for limiting tracing to a region of interest.
    Procedures outside the set are copied verbatim (their loads still
    execute and advance the load counter; they just emit nothing).
    """
    if classes is None:
        classes = classify_module(module)
    if only_procs is not None:
        unknown = only_procs - set(module.procedures)
        if unknown:
            raise KeyError(f"unknown procedures in only_procs: {sorted(unknown)}")

    new_module = Module(module.name + "+memgaze")
    # deferred annotation records, resolved after the new layout is assigned:
    #   (ptw_instr, load_instr, starts_record, multiplier, offset)
    ptw_pending: list[tuple[Instruction, Instruction, bool, int, int]] = []
    #   (load_instr, LoadInfo, n_const, proc_name)
    load_pending: list[tuple[Instruction, LoadInfo, int, str]] = []

    n_loads = n_instrumented = n_suppressed = 0

    for proc in module.procedures.values():
        new_proc = Procedure(
            name=proc.name,
            entry=proc.entry,
            params=proc.params,
            frame_size=proc.frame_size,
            source_file=proc.source_file,
        )
        selected = only_procs is None or proc.name in only_procs
        if not selected:
            for label, block in proc.blocks.items():
                new_block = BasicBlock(label)
                for instr in block.instrs:
                    if instr.op is Opcode.LOAD:
                        n_loads += 1
                        n_suppressed += 1
                    new_block.instrs.append(_copy_instruction(instr))
                new_proc.blocks[label] = new_block
            new_module.add(new_proc)
            continue
        for label, block in proc.blocks.items():
            new_block = BasicBlock(label)
            loads = block.loads()
            const_loads = [
                l for l in loads if classes[l.addr].cls is LoadClass.CONSTANT
            ]
            nonconst = [
                l for l in loads if classes[l.addr].cls is not LoadClass.CONSTANT
            ]
            if nonconst:
                proxy = nonconst[0]
                proxy_n_const = len(const_loads)
            elif const_loads:
                proxy = const_loads[0]
                proxy_n_const = len(const_loads) - 1
            else:
                proxy = None
                proxy_n_const = 0

            for instr in block.instrs:
                if instr.op is not Opcode.LOAD:
                    new_block.instrs.append(_copy_instruction(instr))
                    continue
                n_loads += 1
                info = classes[instr.addr]
                is_proxy = instr is proxy
                instrumented = info.cls is not LoadClass.CONSTANT or is_proxy
                new_load = _copy_instruction(instr)
                if instrumented:
                    n_instrumented += 1
                    mem = instr.mem
                    first = True
                    for reg, mult in ((mem.base, 1), (mem.index, mem.scale)):
                        if reg is None:
                            continue
                        ptw = Instruction(Opcode.PTWRITE, srcs=(reg,), line=instr.line)
                        new_block.instrs.append(ptw)
                        ptw_pending.append((ptw, new_load, first, mult, mem.offset))
                        first = False
                    load_pending.append(
                        (new_load, info, proxy_n_const if is_proxy else 0, proc.name)
                    )
                else:
                    n_suppressed += 1
                new_block.instrs.append(new_load)
            new_proc.blocks[label] = new_block
        new_module.add(new_proc)

    new_module.layout()
    proc_ids = new_module.proc_ids()

    ann = AnnotationFile(
        module=new_module.name,
        source_map=new_module.source_lines(),
        n_static_loads=n_loads,
        n_static_instrumented=n_instrumented,
        n_static_suppressed=n_suppressed,
    )
    for load_instr, info, n_const, proc_name in load_pending:
        ann.loads[load_instr.addr] = LoadAnnotation(
            load_ip=load_instr.addr,
            cls=info.cls,
            stride=info.stride,
            n_const=n_const,
            fn=proc_ids[proc_name],
            proc=proc_name,
            line=load_instr.line,
        )
    for ptw, load_instr, starts, mult, offset in ptw_pending:
        ann.ptwrites[ptw.addr] = PtwAnnotation(
            ptw_ip=ptw.addr,
            load_ip=load_instr.addr,
            starts_record=starts,
            multiplier=mult,
            offset=offset,
        )
    return InstrumentResult(module=new_module, annotations=ann, classes=classes)
