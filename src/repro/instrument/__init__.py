"""Static analysis and binary instrumentation (paper SS:III).

Mirrors MemGaze's DynInst-based instrumentor:

* :mod:`repro.instrument.classify` — classify every load as Constant,
  Strided, or Irregular from addressing modes and loop dataflow (SS:III-B);
* :mod:`repro.instrument.instrumenter` — rewrite a module, inserting one
  ``ptwrite`` per dynamic address register of each selected load and
  electing a per-block *proxy* that carries the count of suppressed
  Constant loads (Fig. 2);
* :mod:`repro.instrument.annotations` — the auxiliary annotation file
  (literals, classes, proxy counts, source map) with JSON round-trip;
* :mod:`repro.instrument.attribution` — instrumented-code to source-line
  mapping (SS:III-D);
* :mod:`repro.instrument.rebuild` — 'Analysis/1': join raw ptwrite packets
  with annotations to reconstruct the load-level event trace.
"""

from repro.instrument.classify import LoadInfo, classify_loads, classify_module
from repro.instrument.annotations import (
    AnnotationFile,
    LoadAnnotation,
    PtwAnnotation,
)
from repro.instrument.instrumenter import InstrumentResult, instrument_module
from repro.instrument.attribution import SourceMap
from repro.instrument.rebuild import rebuild_trace

__all__ = [
    "LoadInfo",
    "classify_loads",
    "classify_module",
    "AnnotationFile",
    "LoadAnnotation",
    "PtwAnnotation",
    "InstrumentResult",
    "instrument_module",
    "SourceMap",
    "rebuild_trace",
]
