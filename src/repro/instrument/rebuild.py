"""Trace building ('Analysis/1'): raw ptwrite packets -> load-level events.

The PT decoder sees a stream of (ptwrite-ip, payload, load-count) packets.
Joining each packet with its :class:`~repro.instrument.annotations.PtwAnnotation`
recovers, per instrumented load, the effective address::

    addr = sum(payload_i * multiplier_i) + offset

where a base register has multiplier 1 and an index register the
addressing-mode scale. Packets of one load are adjacent (the instrumenter
emits its ptwrites back to back), and the first packet of each group is
flagged ``starts_record`` — the reconstruction below is fully vectorised
on those flags.
"""

from __future__ import annotations

import numpy as np

from repro.instrument.annotations import AnnotationFile
from repro.trace.event import empty_events

__all__ = ["rebuild_trace"]


def rebuild_trace(
    packets: np.ndarray, ann: AnnotationFile, *, resync: bool = False
) -> np.ndarray:
    """Reconstruct an EVENT_DTYPE trace from raw PTW_DTYPE ``packets``.

    With ``resync=True`` the rebuild behaves like a real PT decoder after
    packet loss: records whose packet group is incomplete — an orphan
    continuation packet at the start of the stream, or a group truncated
    by a drop burst — are discarded instead of raising. Exactly the
    records whose every packet survived are reconstructed.
    """
    if len(packets) == 0:
        return empty_events()

    # annotation lookup tables indexed by sorted ptwrite ip
    ptw_ips = np.array(sorted(ann.ptwrites), dtype=np.uint64)
    starts = np.zeros(len(ptw_ips), dtype=bool)
    mults = np.zeros(len(ptw_ips), dtype=np.int64)
    offsets = np.zeros(len(ptw_ips), dtype=np.int64)
    load_ips = np.zeros(len(ptw_ips), dtype=np.uint64)
    for i, ip in enumerate(ptw_ips):
        a = ann.ptwrites[int(ip)]
        starts[i] = a.starts_record
        mults[i] = a.multiplier
        offsets[i] = a.offset
        load_ips[i] = a.load_ip

    idx = np.searchsorted(ptw_ips, packets["ip"])
    if np.any(idx >= len(ptw_ips)) or np.any(ptw_ips[np.minimum(idx, len(ptw_ips) - 1)] != packets["ip"]):
        raise ValueError("packet stream contains ptwrite ips absent from annotations")

    pk_starts = starts[idx]
    pk_mults = mults[idx]
    pk_offsets = offsets[idx]
    pk_load_ips = load_ips[idx]
    if not pk_starts[0]:
        if not resync:
            raise ValueError("packet stream begins mid-record")
        first = int(np.argmax(pk_starts)) if pk_starts.any() else len(packets)
        packets = packets[first:]
        pk_starts = pk_starts[first:]
        pk_mults = pk_mults[first:]
        pk_offsets = pk_offsets[first:]
        pk_load_ips = pk_load_ips[first:]
        if len(packets) == 0:
            return empty_events()

    if resync:
        group = np.cumsum(pk_starts) - 1
        heads_ip = pk_load_ips[pk_starts]
        head_load = heads_ip[group]
        # a drop splitting a group leaves two signatures: a continuation
        # whose load differs from its head's, or a group whose packet
        # count differs from what its load's instrumentation emits
        bad_groups = np.unique(group[pk_load_ips != head_load])
        expected_count: dict[int, int] = {}
        for a in ann.ptwrites.values():
            expected_count[a.load_ip] = expected_count.get(a.load_ip, 0) + 1
        sizes = np.bincount(group)
        expect = np.array([expected_count.get(int(ip), 1) for ip in heads_ip])
        wrong_size = np.flatnonzero(sizes != expect)
        bad = np.union1d(bad_groups, wrong_size)
        if len(bad):
            keep = ~np.isin(group, bad)
            packets = packets[keep]
            pk_starts = pk_starts[keep]
            pk_mults = pk_mults[keep]
            pk_offsets = pk_offsets[keep]
            pk_load_ips = pk_load_ips[keep]
            if len(packets) == 0:
                return empty_events()

    # group id per packet; contributions accumulate into the group's address
    group = np.cumsum(pk_starts) - 1
    n_records = int(group[-1]) + 1
    addr = np.zeros(n_records, dtype=np.int64)
    np.add.at(addr, group, packets["payload"].astype(np.int64) * pk_mults)
    addr += pk_offsets[pk_starts]  # the offset literal applies once per record

    rec_load_ips = pk_load_ips[pk_starts]
    rec_t = packets["t"][pk_starts]

    # per-load annotation fields
    load_tbl_ips = np.array(sorted(ann.loads), dtype=np.uint64)
    cls_tbl = np.array([int(ann.loads[int(ip)].cls) for ip in load_tbl_ips], dtype=np.uint8)
    nconst_tbl = np.array([ann.loads[int(ip)].n_const for ip in load_tbl_ips], dtype=np.uint16)
    fn_tbl = np.array([ann.loads[int(ip)].fn for ip in load_tbl_ips], dtype=np.uint32)
    lidx = np.searchsorted(load_tbl_ips, rec_load_ips)
    if np.any(load_tbl_ips[np.minimum(lidx, len(load_tbl_ips) - 1)] != rec_load_ips):
        raise ValueError("packet references a load absent from annotations")

    events = empty_events(n_records)
    events["ip"] = rec_load_ips
    events["addr"] = addr.astype(np.uint64)
    events["t"] = rec_t
    events["cls"] = cls_tbl[lidx]
    events["n_const"] = nconst_tbl[lidx]
    events["fn"] = fn_tbl[lidx]
    return events
