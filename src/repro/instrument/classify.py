"""Load classification: Constant / Strided / Irregular (paper SS:III-B).

The classifier reproduces the paper's rules:

* **Constant** — scalar loads relative to the frame pointer or a global
  section (offset-only addressing, no index register). These access
  constant pools and stack scalars; all are viewed as touching one unit
  of space.
* **Strided** — loads whose dynamic address registers are, with respect
  to some enclosing natural loop, each either a (basic or derived)
  induction variable with constant stride or loop-invariant, with at
  least one IV present. The check walks loops innermost to outermost so
  an outer-loop IV still yields Strided for loads hoisted past inner
  loops.
* **Irregular** — everything else; in particular any load whose address
  register is defined by another load (pointer chasing, data-dependent
  indexing), following the paper's default rule "all other loads are
  classified as irregular".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.cfg import Loop, build_cfg, natural_loops
from repro.isa.dataflow import InductionInfo, analyze_induction
from repro.isa.program import Instruction, Module, Procedure
from repro.trace.event import LoadClass

__all__ = ["LoadInfo", "classify_loads", "classify_module"]


@dataclass(frozen=True)
class LoadInfo:
    """Classification result for one static load."""

    cls: LoadClass
    stride: int | None = None  # bytes per iteration for Strided; None if unknown/NA
    proc: str = ""
    block: str = ""


def _loops_containing(label: str, loops: list[Loop]) -> list[Loop]:
    """Loops containing ``label``, innermost first."""
    return sorted((l for l in loops if l.contains(label)), key=lambda l: -l.depth)


def _effective_stride(
    instr: Instruction, info: InductionInfo
) -> int | None:
    """Byte stride of the load address per loop iteration, if statically known."""
    mem = instr.mem
    assert mem is not None
    total: int | None = 0
    for reg, mult in ((mem.base, 1), (mem.index, mem.scale)):
        if reg is None or info.is_invariant(reg):
            continue
        stride = info.ivs.get(reg)
        if stride is None:
            return None  # IV with statically-unknown (but constant) stride
        if total is not None:
            total += stride * mult
    return total


def classify_loads(proc: Procedure) -> dict[int, LoadInfo]:
    """Classify every load of ``proc``; keys are instruction addresses.

    Requires the owning module to be laid out.
    """
    cfg = build_cfg(proc)
    loops = natural_loops(proc, cfg)
    infos = analyze_induction(proc)
    out: dict[int, LoadInfo] = {}
    reachable = cfg.reachable()
    for label, block in proc.blocks.items():
        if label not in reachable:
            continue
        enclosing = _loops_containing(label, loops)
        for instr in block.loads():
            if instr.addr < 0:
                raise RuntimeError("module.layout() has not been called")
            out[instr.addr] = _classify_one(instr, enclosing, infos, proc.name, label)
    return out


def _classify_one(
    instr: Instruction,
    enclosing: list[Loop],
    infos: dict[str, InductionInfo],
    proc_name: str,
    label: str,
) -> LoadInfo:
    mem = instr.mem
    assert mem is not None
    # Constant: fp/gp-relative scalar (no index register)
    if mem.base in ("fp", "gp") and mem.index is None:
        return LoadInfo(LoadClass.CONSTANT, stride=0, proc=proc_name, block=label)
    regs = mem.registers()
    for loop in enclosing:  # innermost -> outermost
        info = infos[loop.header]
        if any(r in info.load_defined for r in regs):
            return LoadInfo(LoadClass.IRREGULAR, proc=proc_name, block=label)
        if all(info.is_iv(r) or info.is_invariant(r) for r in regs):
            if any(info.is_iv(r) for r in regs):
                return LoadInfo(
                    LoadClass.STRIDED,
                    stride=_effective_stride(instr, info),
                    proc=proc_name,
                    block=label,
                )
            continue  # invariant at this depth; an outer loop's IV may drive it
        return LoadInfo(LoadClass.IRREGULAR, proc=proc_name, block=label)
    return LoadInfo(LoadClass.IRREGULAR, proc=proc_name, block=label)


def classify_module(module: Module) -> dict[int, LoadInfo]:
    """Classify every load in every procedure of ``module``."""
    out: dict[int, LoadInfo] = {}
    for proc in module.procedures.values():
        out.update(classify_loads(proc))
    return out
