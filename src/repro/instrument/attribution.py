"""Source-code attribution for instrumented code (paper SS:III-D).

Instrumentation re-lays-out the instruction stream, so the original
binary's line table no longer applies; the paper extends DynInst to
record the new object-code -> source mapping. Here the instrumenter's
annotation file carries that mapping; :class:`SourceMap` wraps it with
lookup and aggregation helpers so analysis results can be reported as
(function, file, line) rows.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.instrument.annotations import AnnotationFile
from repro.isa.program import Module

__all__ = ["SourceMap"]


class SourceMap:
    """Instruction-pointer to source-position mapping."""

    def __init__(self, mapping: dict[int, tuple[str, str, int]]) -> None:
        self._map = dict(mapping)

    @classmethod
    def from_module(cls, module: Module) -> "SourceMap":
        """Build from a laid-out module's line table."""
        return cls(module.source_lines())

    @classmethod
    def from_annotations(cls, ann: AnnotationFile) -> "SourceMap":
        """Build from an instrumenter annotation file."""
        return cls(ann.source_map)

    @classmethod
    def from_recorder_sites(cls, mapping: dict[int, tuple[str, str, int]]) -> "SourceMap":
        """Build from :meth:`repro.simmem.AccessRecorder.source_map`."""
        return cls(mapping)

    def lookup(self, ip: int) -> tuple[str, str, int] | None:
        """(function, file, line) for ``ip``, or ``None``."""
        return self._map.get(int(ip))

    def function_of(self, ip: int) -> str:
        """Function name for ``ip`` ('?' when unknown)."""
        hit = self._map.get(int(ip))
        return hit[0] if hit else "?"

    def attribute_events(self, events: np.ndarray) -> Counter:
        """Access counts per (function, file, line) over an event array."""
        counts: Counter = Counter()
        ips, n = np.unique(events["ip"], return_counts=True)
        for ip, c in zip(ips, n):
            key = self._map.get(int(ip), ("?", "?", 0))
            counts[key] += int(c)
        return counts

    def attribute_functions(self, events: np.ndarray) -> Counter:
        """Access counts per function name over an event array."""
        counts: Counter = Counter()
        ips, n = np.unique(events["ip"], return_counts=True)
        for ip, c in zip(ips, n):
            counts[self.function_of(int(ip))] += int(c)
        return counts

    def __len__(self) -> int:
        return len(self._map)
