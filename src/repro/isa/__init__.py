"""Synthetic binary substrate (stands in for x64 binaries + DynInst).

The paper's instrumenter consumes facts a binary analyser extracts from
x64 object code: addressing modes, frame/global relativity, control flow,
and data dependences on loop induction variables. This package provides a
small ISA with exactly those properties:

* :mod:`repro.isa.program` — modules, procedures, basic blocks, and
  instructions with x64-like ``base + index*scale + offset`` addressing;
* :mod:`repro.isa.builder` — a structured-programming DSL that lowers
  loops and conditionals to labelled blocks;
* :mod:`repro.isa.cfg` — control-flow graphs, dominators, natural loops;
* :mod:`repro.isa.dataflow` — loop-invariance and induction-variable
  detection (basic and derived IVs);
* :mod:`repro.isa.interp` — an interpreter that executes a module against
  a simulated address space and emits the load stream (oracle mode) or
  the raw ``ptwrite`` packet stream (instrumented mode).
"""

from repro.isa.program import (
    BasicBlock,
    Instruction,
    MemRef,
    Module,
    Opcode,
    Procedure,
)
from repro.isa.builder import ProgramBuilder
from repro.isa.cfg import CFG, Loop, build_cfg, natural_loops
from repro.isa.dataflow import InductionInfo, analyze_induction
from repro.isa.interp import ExecResult, Interpreter, PTW_DTYPE

__all__ = [
    "BasicBlock",
    "Instruction",
    "MemRef",
    "Module",
    "Opcode",
    "Procedure",
    "ProgramBuilder",
    "CFG",
    "Loop",
    "build_cfg",
    "natural_loops",
    "InductionInfo",
    "analyze_induction",
    "ExecResult",
    "Interpreter",
    "PTW_DTYPE",
]
