"""Interpreter for the synthetic ISA.

Executes a laid-out :class:`~repro.isa.program.Module` against a simulated
:class:`~repro.simmem.AddressSpace` and produces the measurement layer's
inputs:

* **oracle mode** — one :data:`~repro.trace.event.EVENT_DTYPE` record per
  retired load (the ground-truth full trace, 'All+' in paper Table III);
* **instrumented mode** — one raw packet per executed ``ptwrite``
  (:data:`PTW_DTYPE`), exactly what the PT decoder sees; the trace builder
  in :mod:`repro.instrument.rebuild` joins packets with the annotation
  file to reconstruct load-level events.

Execution also counts retired instructions, loads, and ptwrites, which
feed the time-overhead model (paper Fig. 7).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.isa.program import CODE_BASE, Module, Opcode, PROC_STRIDE, Procedure
from repro.simmem.address_space import AddressSpace
from repro.trace.event import LoadClass, empty_events

__all__ = ["PTW_DTYPE", "ExecResult", "Interpreter"]

#: Raw Processor-Trace write packet: the ptwrite instruction's address, the
#: 64-bit register payload, and the retired-load count at emission time.
PTW_DTYPE = np.dtype([("ip", np.uint64), ("payload", np.uint64), ("t", np.uint64)])

_COND_FNS = {
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "ge": lambda a, b: a >= b,
    "gt": lambda a, b: a > b,
}


@dataclass
class ExecResult:
    """Outcome of one execution."""

    events: np.ndarray | None  # oracle mode: EVENT_DTYPE per load
    packets: np.ndarray | None  # instrumented mode: PTW_DTYPE per ptwrite
    n_loads: int
    n_stores: int
    n_instrs: int
    n_ptwrites: int
    rv: int


class Interpreter:
    """Executes modules. One interpreter may run many times over one space.

    Parameters
    ----------
    module:
        A module whose :meth:`~repro.isa.program.Module.layout` has run.
    space:
        Simulated address space holding the program's data (defaults to a
        fresh one). The interpreter allocates a small global section for
        ``gp`` and pushes one stack frame per activation for ``fp``.
    classes:
        Optional map from load instruction address to
        :class:`~repro.trace.event.LoadClass`, used to tag oracle events.
        Unmapped loads are tagged ``IRREGULAR``.
    max_instrs:
        Safety cap on retired instructions.
    """

    def __init__(
        self,
        module: Module,
        space: AddressSpace | None = None,
        classes: dict[int, LoadClass] | None = None,
        max_instrs: int = 200_000_000,
    ) -> None:
        self.module = module
        self.space = space if space is not None else AddressSpace()
        self.classes = classes or {}
        self.max_instrs = max_instrs
        self._globals = self.space.alloc_global(4096, "interp-globals")
        self._proc_ids = module.proc_ids()

    def set_classes(self, classes: dict[int, LoadClass]) -> None:
        """Replace the load-class map used for oracle event tagging."""
        self.classes = classes

    def run(self, entry: str, *args: int, mode: str = "oracle") -> ExecResult:
        """Execute ``entry(*args)`` and return the collected stream.

        ``mode`` is ``"oracle"`` (emit every load) or ``"instrumented"``
        (emit only ptwrite packets).
        """
        if mode not in ("oracle", "instrumented"):
            raise ValueError(f"mode must be 'oracle' or 'instrumented', got {mode!r}")
        oracle = mode == "oracle"
        module, space = self.module, self.space
        classes = self.classes
        gp_base = self._globals.base

        # oracle event buffers
        ev_ip: list[int] = []
        ev_addr: list[int] = []
        ev_cls: list[int] = []
        # ptwrite packet buffers
        pk_ip: list[int] = []
        pk_payload: list[int] = []
        pk_t: list[int] = []

        n_loads = 0
        n_stores = 0
        n_instrs = 0
        n_ptwrites = 0

        def activate(proc: Procedure, call_args: tuple) -> dict:
            frame = space.push_frame(proc.frame_size, f"{proc.name}-frame")
            regs = {"fp": frame.base, "gp": gp_base}
            for pname, aval in zip(proc.params, call_args):
                regs[pname] = aval
            if len(call_args) > len(proc.params):
                raise TypeError(
                    f"{proc.name} takes {len(proc.params)} args, got {len(call_args)}"
                )
            return regs

        proc = module.procedures[entry]
        regs = activate(proc, args)
        block = proc.blocks[proc.entry]
        idx = 0
        # call stack entries: (proc, block, idx, regs, dest_reg)
        stack: list[tuple] = []
        rv = 0
        max_instrs = self.max_instrs

        def val(x):
            return regs[x] if isinstance(x, str) else x

        while True:
            if idx >= len(block.instrs):  # pragma: no cover - validate() prevents
                raise RuntimeError(f"fell off block {block.label}")
            instr = block.instrs[idx]
            idx += 1
            n_instrs += 1
            if n_instrs > max_instrs:
                raise RuntimeError(f"instruction cap {max_instrs} exceeded")
            op = instr.op

            if op is Opcode.LOAD:
                mem = instr.mem
                addr = mem.offset
                if mem.base is not None:
                    addr += regs[mem.base]
                if mem.index is not None:
                    addr += regs[mem.index] * mem.scale
                regs[instr.dest] = space.load_value(addr)
                if oracle:
                    ev_ip.append(instr.addr)
                    ev_addr.append(addr)
                    ev_cls.append(int(classes.get(instr.addr, LoadClass.IRREGULAR)))
                n_loads += 1
            elif op is Opcode.STORE:
                mem = instr.mem
                addr = mem.offset
                if mem.base is not None:
                    addr += regs[mem.base]
                if mem.index is not None:
                    addr += regs[mem.index] * mem.scale
                space.store_value(addr, val(instr.srcs[0]))
                n_stores += 1
            elif op is Opcode.MOV:
                regs[instr.dest] = val(instr.srcs[0])
            elif op is Opcode.ADD:
                regs[instr.dest] = val(instr.srcs[0]) + val(instr.srcs[1])
            elif op is Opcode.SUB:
                regs[instr.dest] = val(instr.srcs[0]) - val(instr.srcs[1])
            elif op is Opcode.MUL:
                regs[instr.dest] = val(instr.srcs[0]) * val(instr.srcs[1])
            elif op is Opcode.AND:
                regs[instr.dest] = val(instr.srcs[0]) & val(instr.srcs[1])
            elif op is Opcode.SHR:
                regs[instr.dest] = val(instr.srcs[0]) >> val(instr.srcs[1])
            elif op is Opcode.PTWRITE:
                n_ptwrites += 1
                if not oracle:
                    pk_ip.append(instr.addr)
                    pk_payload.append(val(instr.srcs[0]))
                    pk_t.append(n_loads)
            elif op is Opcode.BR:
                taken = _COND_FNS[instr.cond](val(instr.srcs[0]), val(instr.srcs[1]))
                block = proc.blocks[instr.targets[0] if taken else instr.targets[1]]
                idx = 0
            elif op is Opcode.JMP:
                block = proc.blocks[instr.targets[0]]
                idx = 0
            elif op is Opcode.CALL:
                callee = module.procedures[instr.callee]
                call_args = tuple(val(s) for s in instr.srcs)
                stack.append((proc, block, idx, regs, instr.dest))
                proc = callee
                regs = activate(callee, call_args)
                block = proc.blocks[proc.entry]
                idx = 0
            elif op is Opcode.RET:
                rv = val(instr.srcs[0]) if instr.srcs else 0
                if not stack:
                    break
                proc, block, idx, regs, dest = stack.pop()
                if dest is not None:
                    regs[dest] = rv
            elif op is Opcode.NOP:
                pass
            else:  # pragma: no cover
                raise RuntimeError(f"unhandled opcode {op}")

        events = None
        packets = None
        if oracle:
            events = empty_events(len(ev_ip))
            events["ip"] = ev_ip
            events["addr"] = ev_addr
            events["t"] = np.arange(len(ev_ip), dtype=np.uint64)
            events["cls"] = ev_cls
            ips = np.asarray(ev_ip, dtype=np.int64)
            events["fn"] = ((ips - CODE_BASE) // PROC_STRIDE).astype(np.uint32)
        else:
            packets = np.zeros(len(pk_ip), dtype=PTW_DTYPE)
            packets["ip"] = pk_ip
            packets["payload"] = pk_payload
            packets["t"] = pk_t
        return ExecResult(
            events=events,
            packets=packets,
            n_loads=n_loads,
            n_stores=n_stores,
            n_instrs=n_instrs,
            n_ptwrites=n_ptwrites,
            rv=rv,
        )
