"""Structured-programming DSL that lowers to basic blocks.

The microbenchmarks and ISA-path kernels are written against this builder;
it produces the labelled-block form the CFG/dataflow analyses and the
instrumenter consume. Loops lower to the canonical
preheader / header / body / latch / exit shape so the induction-variable
detector sees the same structure a compiler would emit.

Example::

    b = ProgramBuilder("ubench")
    with b.proc("kernel", params=("a0", "a1")) as p:
        with p.loop("i", 0, "a1") as i:
            p.load("v", base="a0", index=i, scale=8)   # strided
            p.load("w", base="v")                      # irregular (chase)
            p.load_local("c", offset=16)               # constant
        p.ret(0)
    module = b.build()
"""

from __future__ import annotations

import contextlib
from typing import Iterator

from repro.isa.program import (
    BasicBlock,
    Instruction,
    MemRef,
    Module,
    Opcode,
    Procedure,
)

__all__ = ["ProgramBuilder", "ProcBuilder"]


class ProcBuilder:
    """Builds one procedure; obtained from :meth:`ProgramBuilder.proc`."""

    def __init__(self, name: str, params: tuple[str, ...], frame_size: int, source_file: str) -> None:
        self.proc = Procedure(
            name=name, entry="entry", params=params, frame_size=frame_size, source_file=source_file
        )
        self._current = BasicBlock("entry")
        self.proc.blocks["entry"] = self._current
        self._label_counter = 0
        self._line = 0

    # -- low-level emission ---------------------------------------------------

    def _next_label(self, stem: str) -> str:
        self._label_counter += 1
        return f"{stem}{self._label_counter}"

    def _emit(self, instr: Instruction) -> Instruction:
        if self._current is None:
            raise RuntimeError("no open block (code after terminator?)")
        self._line += 1
        instr.line = self._line
        self._current.instrs.append(instr)
        if instr.is_terminator:
            self._current = None
        return instr

    def _start_block(self, label: str) -> BasicBlock:
        if label in self.proc.blocks:
            raise ValueError(f"duplicate label {label!r}")
        block = BasicBlock(label)
        self.proc.blocks[label] = block
        self._current = block
        return block

    def _close_into(self, label: str) -> None:
        """Terminate the open block (if any) with a jump to ``label``."""
        if self._current is not None:
            self._emit(Instruction(Opcode.JMP, targets=(label,)))

    # -- straight-line instructions --------------------------------------------

    def mov(self, dest: str, src) -> None:
        """``dest = src``."""
        self._emit(Instruction(Opcode.MOV, dest=dest, srcs=(src,)))

    def add(self, dest: str, a, b) -> None:
        """``dest = a + b``."""
        self._emit(Instruction(Opcode.ADD, dest=dest, srcs=(a, b)))

    def sub(self, dest: str, a, b) -> None:
        """``dest = a - b``."""
        self._emit(Instruction(Opcode.SUB, dest=dest, srcs=(a, b)))

    def mul(self, dest: str, a, b) -> None:
        """``dest = a * b``."""
        self._emit(Instruction(Opcode.MUL, dest=dest, srcs=(a, b)))

    def and_(self, dest: str, a, b) -> None:
        """``dest = a & b``."""
        self._emit(Instruction(Opcode.AND, dest=dest, srcs=(a, b)))

    def shr(self, dest: str, a, b) -> None:
        """``dest = a >> b``."""
        self._emit(Instruction(Opcode.SHR, dest=dest, srcs=(a, b)))

    def load(
        self,
        dest: str,
        base: str | None = None,
        index: str | None = None,
        scale: int = 1,
        offset: int = 0,
    ) -> str:
        """``dest = [base + index*scale + offset]``; returns ``dest``."""
        self._emit(
            Instruction(Opcode.LOAD, dest=dest, mem=MemRef(base, index, scale, offset))
        )
        return dest

    def load_local(self, dest: str, offset: int = 0) -> str:
        """Load a scalar local: ``dest = [fp + offset]`` (a Constant load)."""
        return self.load(dest, base="fp", offset=offset)

    def load_global(self, dest: str, offset: int = 0) -> str:
        """Load scalar global data: ``dest = [gp + offset]`` (Constant)."""
        return self.load(dest, base="gp", offset=offset)

    def store(
        self,
        src,
        base: str | None = None,
        index: str | None = None,
        scale: int = 1,
        offset: int = 0,
    ) -> None:
        """``[base + index*scale + offset] = src``."""
        self._emit(
            Instruction(Opcode.STORE, srcs=(src,), mem=MemRef(base, index, scale, offset))
        )

    def store_local(self, src, offset: int = 0) -> None:
        """Store to a scalar local: ``[fp + offset] = src``."""
        self.store(src, base="fp", offset=offset)

    def call(self, dest: str | None, callee: str, *args) -> None:
        """``dest = callee(*args)``."""
        self._emit(Instruction(Opcode.CALL, dest=dest, srcs=tuple(args), callee=callee))

    def ret(self, value=0) -> None:
        """Return ``value`` from the procedure."""
        self._emit(Instruction(Opcode.RET, srcs=(value,)))

    # -- structured control flow ------------------------------------------------

    @contextlib.contextmanager
    def loop(self, var: str, start, stop, step: int = 1) -> Iterator[str]:
        """Counted loop ``for var in range(start, stop, step)``.

        Lowers to preheader/header/body/latch/exit; the latch's single
        ``add var, var, step`` makes ``var`` a basic induction variable.
        """
        if step == 0:
            raise ValueError("loop step must be nonzero")
        head = self._next_label("Lhead")
        body = self._next_label("Lbody")
        latch = self._next_label("Llatch")
        exit_ = self._next_label("Lexit")
        # preheader (current block): init + jump to header
        self.mov(var, start)
        self._close_into(head)
        # header: test
        self._start_block(head)
        cond = "lt" if step > 0 else "gt"
        self._emit(
            Instruction(Opcode.BR, cond=cond, srcs=(var, stop), targets=(body, exit_))
        )
        # body
        self._start_block(body)
        try:
            yield var
        finally:
            self._close_into(latch)
            self._start_block(latch)
            self.add(var, var, step)
            self._close_into(head)
            self._start_block(exit_)

    @contextlib.contextmanager
    def if_(self, cond: str, a, b) -> Iterator[None]:
        """``if a <cond> b: <body>`` (no else)."""
        then = self._next_label("Lthen")
        done = self._next_label("Ldone")
        self._emit(Instruction(Opcode.BR, cond=cond, srcs=(a, b), targets=(then, done)))
        self._start_block(then)
        try:
            yield
        finally:
            self._close_into(done)
            self._start_block(done)

    @contextlib.contextmanager
    def if_else(self, cond: str, a, b) -> Iterator[tuple]:
        """``if a <cond> b: <then> else: <else>``.

        Yields a callable that switches emission to the else branch::

            with p.if_else("lt", "x", 10) as otherwise:
                ...then code...
                otherwise()
                ...else code...
        """
        then = self._next_label("Lthen")
        els = self._next_label("Lelse")
        done = self._next_label("Ldone")
        self._emit(Instruction(Opcode.BR, cond=cond, srcs=(a, b), targets=(then, els)))
        self._start_block(then)
        state = {"switched": False}

        def otherwise() -> None:
            if state["switched"]:
                raise RuntimeError("otherwise() called twice")
            state["switched"] = True
            self._close_into(done)
            self._start_block(els)

        try:
            yield otherwise
        finally:
            if not state["switched"]:
                raise RuntimeError("if_else body never called otherwise()")
            self._close_into(done)
            self._start_block(done)

    def finish(self) -> Procedure:
        """Validate and return the completed procedure."""
        if self._current is not None:
            # implicit return for convenience
            self.ret(0)
        self.proc.validate()
        return self.proc


class ProgramBuilder:
    """Builds a :class:`Module` from procedure builders."""

    def __init__(self, name: str = "module", source_file: str | None = None) -> None:
        self.module = Module(name)
        self._source_file = source_file or f"{name}.c"

    @contextlib.contextmanager
    def proc(
        self,
        name: str,
        params: tuple[str, ...] = (),
        frame_size: int = 64,
    ) -> Iterator[ProcBuilder]:
        """Open a procedure builder; the procedure is added on exit."""
        pb = ProcBuilder(name, tuple(params), frame_size, self._source_file)
        yield pb
        self.module.add(pb.finish())

    def build(self) -> Module:
        """Lay out addresses and return the module."""
        if not self.module.procedures:
            raise ValueError("module has no procedures")
        self.module.layout()
        return self.module
