"""Loop dataflow: invariance, induction variables, memory-dependent registers.

The load classifier (paper SS:III-B) distinguishes *Strided* loads — whose
address registers are affine in a loop induction variable with constant
stride — from *Irregular* loads, typically indirect loads whose address
registers are defined by other loads. This module computes, per natural
loop:

* **basic induction variables**: registers whose only in-loop definition
  is ``r = r +/- c`` with a constant ``c``;
* **derived induction variables** (to a fixpoint): single-def registers
  computed by mov/add/sub/mul from one IV and otherwise loop-invariant
  operands; a multiply by a loop-invariant register keeps the stride
  *constant at run time* even though its value is unknown statically, so
  such IVs carry ``stride=None``;
* **loop-invariant registers**: no definition inside the loop body;
* **memory-defined registers**: any in-loop definition is a load — the
  signature of pointer chasing and data-dependent indexing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.cfg import Loop, build_cfg, natural_loops
from repro.isa.program import Instruction, Opcode, Procedure

__all__ = ["InductionInfo", "analyze_induction"]


@dataclass
class InductionInfo:
    """Per-loop register facts. ``ivs`` maps register -> stride (None = constant but statically unknown)."""

    loop: Loop
    ivs: dict[str, int | None] = field(default_factory=dict)
    invariants: frozenset[str] = frozenset()
    load_defined: frozenset[str] = frozenset()

    def is_iv(self, reg: str) -> bool:
        """Whether ``reg`` is a (basic or derived) induction variable."""
        return reg in self.ivs

    def is_invariant(self, reg: str) -> bool:
        """Whether ``reg`` is loop-invariant."""
        return reg in self.invariants


def _loop_defs(proc: Procedure, loop: Loop) -> dict[str, list[Instruction]]:
    defs: dict[str, list[Instruction]] = {}
    for label in loop.body:
        for instr in proc.blocks[label].instrs:
            reg = instr.defined_register()
            if reg is not None:
                defs.setdefault(reg, []).append(instr)
    return defs


def _used_registers(proc: Procedure, loop: Loop) -> set[str]:
    used: set[str] = set()
    for label in loop.body:
        for instr in proc.blocks[label].instrs:
            for src in instr.srcs:
                if isinstance(src, str):
                    used.add(src)
            if instr.mem is not None:
                used.update(instr.mem.registers())
            reg = instr.defined_register()
            if reg is not None:
                used.add(reg)
    return used


def _analyze_one(proc: Procedure, loop: Loop) -> InductionInfo:
    defs = _loop_defs(proc, loop)
    used = _used_registers(proc, loop)
    invariants = frozenset(r for r in used if r not in defs) | {"fp", "gp"}
    load_defined = frozenset(
        reg
        for reg, instrs in defs.items()
        if any(i.op in (Opcode.LOAD, Opcode.CALL) for i in instrs)
    )

    ivs: dict[str, int | None] = {}
    # basic IVs: single def `r = r +/- imm`
    for reg, instrs in defs.items():
        if len(instrs) != 1:
            continue
        instr = instrs[0]
        if instr.op not in (Opcode.ADD, Opcode.SUB):
            continue
        a, b = instr.srcs
        if instr.op is Opcode.ADD:
            if a == reg and isinstance(b, int):
                ivs[reg] = b
            elif b == reg and isinstance(a, int):
                ivs[reg] = a
        else:  # SUB
            if a == reg and isinstance(b, int):
                ivs[reg] = -b

    invariants = set(invariants)

    def _operand_ok(x) -> bool:
        return isinstance(x, int) or (isinstance(x, str) and x in invariants)

    _PURE = (Opcode.MOV, Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.AND, Opcode.SHR)

    # joint fixpoint: derived IVs and *derived invariants* — a register
    # computed purely from loop-invariant operands is itself invariant
    # (e.g. a row base hoisted... or not hoisted: `crow = i*8n` inside an
    # inner loop where `i` belongs to an outer loop)
    changed = True
    while changed:
        changed = False
        for reg, instrs in defs.items():
            if reg in ivs or reg in invariants or len(instrs) != 1:
                continue
            instr = instrs[0]
            if instr.op in _PURE and all(_operand_ok(s) for s in instr.srcs):
                invariants.add(reg)
                changed = True
                continue
            stride: int | None = None
            found = False
            if instr.op is Opcode.MOV:
                (src,) = instr.srcs
                if isinstance(src, str) and src in ivs:
                    stride, found = ivs[src], True
            elif instr.op in (Opcode.ADD, Opcode.SUB):
                a, b = instr.srcs
                for iv, other, negate in ((a, b, False), (b, a, instr.op is Opcode.SUB)):
                    if isinstance(iv, str) and iv in ivs and _operand_ok(other) and not negate:
                        stride, found = ivs[iv], True
                        break
            elif instr.op is Opcode.MUL:
                a, b = instr.srcs
                for iv, other in ((a, b), (b, a)):
                    if isinstance(iv, str) and iv in ivs and _operand_ok(other):
                        base = ivs[iv]
                        if isinstance(other, int) and base is not None:
                            stride = base * other
                        else:
                            stride = None  # constant at run time, unknown statically
                        found = True
                        break
            if found:
                ivs[reg] = stride
                changed = True

    return InductionInfo(
        loop=loop, ivs=ivs, invariants=frozenset(invariants), load_defined=load_defined
    )


def analyze_induction(proc: Procedure) -> dict[str, InductionInfo]:
    """Induction info for every natural loop of ``proc``, keyed by header label."""
    cfg = build_cfg(proc)
    return {loop.header: _analyze_one(proc, loop) for loop in natural_loops(proc, cfg)}
