"""Control-flow graphs, dominators, and natural-loop detection.

The load classifier needs to know, for every basic block, the innermost
natural loop containing it; induction-variable analysis needs each loop's
body and latches. Both are computed here with the textbook algorithms
(iterative dominators over a reverse-postorder, back-edge natural loops).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.program import Procedure

__all__ = ["CFG", "Loop", "build_cfg", "natural_loops"]


@dataclass
class CFG:
    """Successor/predecessor maps plus a reverse postorder for a procedure."""

    entry: str
    succs: dict[str, tuple[str, ...]]
    preds: dict[str, tuple[str, ...]]
    rpo: list[str]  # reverse postorder over reachable blocks

    def reachable(self) -> set[str]:
        """Labels reachable from the entry."""
        return set(self.rpo)


@dataclass
class Loop:
    """A natural loop: header, body labels (header included), and latches."""

    header: str
    body: frozenset[str]
    latches: frozenset[str]
    depth: int = 1  # nesting depth; 1 = outermost
    parent: "Loop | None" = field(default=None, repr=False)

    def contains(self, label: str) -> bool:
        """Whether ``label`` is inside this loop."""
        return label in self.body


def build_cfg(proc: Procedure) -> CFG:
    """Build the CFG of ``proc`` (unreachable blocks are excluded from rpo)."""
    succs = {label: block.successors() for label, block in proc.blocks.items()}
    preds: dict[str, list[str]] = {label: [] for label in proc.blocks}
    for label, out in succs.items():
        for target in out:
            preds[target].append(label)
    # iterative DFS postorder from entry
    post: list[str] = []
    seen: set[str] = set()
    stack: list[tuple[str, int]] = [(proc.entry, 0)]
    seen.add(proc.entry)
    while stack:
        label, i = stack.pop()
        children = succs[label]
        if i < len(children):
            stack.append((label, i + 1))
            child = children[i]
            if child not in seen:
                seen.add(child)
                stack.append((child, 0))
        else:
            post.append(label)
    rpo = post[::-1]
    return CFG(
        entry=proc.entry,
        succs=succs,
        preds={k: tuple(v) for k, v in preds.items()},
        rpo=rpo,
    )


def dominators(cfg: CFG) -> dict[str, set[str]]:
    """Dominator sets per reachable block (iterative dataflow)."""
    reachable = cfg.reachable()
    all_blocks = set(reachable)
    dom: dict[str, set[str]] = {label: set(all_blocks) for label in reachable}
    dom[cfg.entry] = {cfg.entry}
    changed = True
    while changed:
        changed = False
        for label in cfg.rpo:
            if label == cfg.entry:
                continue
            preds = [p for p in cfg.preds[label] if p in reachable]
            if preds:
                new = set.intersection(*(dom[p] for p in preds))
            else:  # unreachable-through-preds corner; keep conservative
                new = set(all_blocks)
            new.add(label)
            if new != dom[label]:
                dom[label] = new
                changed = True
    return dom


def natural_loops(proc: Procedure, cfg: CFG | None = None) -> list[Loop]:
    """Natural loops of ``proc``, innermost-last, with nesting depth filled in.

    Loops sharing a header are merged (standard practice).
    """
    cfg = cfg or build_cfg(proc)
    dom = dominators(cfg)
    reachable = cfg.reachable()
    # collect back edges n -> h where h dominates n
    bodies: dict[str, set[str]] = {}
    latches: dict[str, set[str]] = {}
    for n in reachable:
        for h in cfg.succs[n]:
            if h in reachable and h in dom[n]:
                body = bodies.setdefault(h, {h})
                latches.setdefault(h, set()).add(n)
                # walk predecessors from the latch up to the header
                stack = [n]
                while stack:
                    m = stack.pop()
                    if m in body:
                        continue
                    body.add(m)
                    stack.extend(p for p in cfg.preds[m] if p in reachable)
    loops = [
        Loop(header=h, body=frozenset(body), latches=frozenset(latches[h]))
        for h, body in bodies.items()
    ]
    # nesting: loop A is inside loop B iff A.body < B.body
    loops.sort(key=lambda l: len(l.body), reverse=True)
    for i, inner in enumerate(loops):
        for outer in loops[:i]:
            if inner.body < outer.body:
                inner.parent = outer  # loops sorted big->small; last match = innermost parent
    for loop in loops:
        depth, p = 1, loop.parent
        while p is not None:
            depth += 1
            p = p.parent
        loop.depth = depth
    return loops


def innermost_loop_of(label: str, loops: list[Loop]) -> Loop | None:
    """The innermost loop containing ``label``, or ``None``."""
    best: Loop | None = None
    for loop in loops:
        if loop.contains(label) and (best is None or loop.depth > best.depth):
            best = loop
    return best
