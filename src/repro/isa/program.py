"""Program representation for the synthetic ISA.

A :class:`Module` owns :class:`Procedure` objects; each procedure is a set
of labelled :class:`BasicBlock` objects whose last instruction is a
terminator (branch, jump, or return). Instructions use x64-style memory
operands ``[base + index*scale + offset]`` so the instrumenter sees the
same addressing facts DynInst extracts from real object code.

Operands are plain Python values: a ``str`` names a virtual register, an
``int`` is an immediate. The registers ``fp`` (frame pointer) and ``gp``
(global pointer) are architectural: the interpreter sets them on entry and
the load classifier treats offset-only loads through them as *Constant*.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["Opcode", "MemRef", "Instruction", "BasicBlock", "Procedure", "Module"]

Operand = "str | int"

FP = "fp"
GP = "gp"

#: Base address of the first procedure's code in the synthetic layout.
CODE_BASE = 0x0040_0000
#: Address stride between consecutive procedures.
PROC_STRIDE = 0x1_0000
#: Fixed instruction encoding size.
INSTR_SIZE = 4


class Opcode(enum.Enum):
    """Instruction opcodes."""

    MOV = "mov"
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    AND = "and"
    SHR = "shr"
    LOAD = "load"
    STORE = "store"
    BR = "br"  # conditional branch: cond, a, b, then_label, else_label
    JMP = "jmp"
    CALL = "call"
    RET = "ret"
    PTWRITE = "ptwrite"  # inserted by the instrumenter
    NOP = "nop"


_TERMINATORS = {Opcode.BR, Opcode.JMP, Opcode.RET}

_CONDS = {"lt", "le", "eq", "ne", "ge", "gt"}


@dataclass(frozen=True)
class MemRef:
    """An x64-style memory operand ``[base + index*scale + offset]``."""

    base: str | None = None
    index: str | None = None
    scale: int = 1
    offset: int = 0

    def __post_init__(self) -> None:
        if self.base is None and self.index is None:
            raise ValueError("memory operand needs a base or index register")
        if self.scale not in (1, 2, 4, 8):
            raise ValueError(f"scale must be 1/2/4/8, got {self.scale}")

    def registers(self) -> tuple[str, ...]:
        """Dynamic (register) components of the address."""
        regs = []
        if self.base is not None:
            regs.append(self.base)
        if self.index is not None:
            regs.append(self.index)
        return tuple(regs)

    def __str__(self) -> str:
        parts = []
        if self.base:
            parts.append(self.base)
        if self.index:
            parts.append(f"{self.index}*{self.scale}")
        if self.offset or not parts:
            parts.append(str(self.offset))
        return "[" + " + ".join(parts) + "]"


@dataclass
class Instruction:
    """One instruction. ``addr`` is assigned by :meth:`Module.layout`."""

    op: Opcode
    dest: str | None = None
    srcs: tuple = ()
    mem: MemRef | None = None
    cond: str | None = None
    targets: tuple[str, ...] = ()
    callee: str | None = None
    line: int = 0
    addr: int = -1

    def __post_init__(self) -> None:
        if self.op is Opcode.BR:
            if self.cond not in _CONDS:
                raise ValueError(f"bad branch condition {self.cond!r}")
            if len(self.targets) != 2:
                raise ValueError("br needs (then, else) targets")
        elif self.op is Opcode.JMP and len(self.targets) != 1:
            raise ValueError("jmp needs exactly one target")
        elif self.op in (Opcode.LOAD, Opcode.STORE) and self.mem is None:
            raise ValueError(f"{self.op.value} needs a memory operand")

    @property
    def is_terminator(self) -> bool:
        """Whether this instruction ends a basic block."""
        return self.op in _TERMINATORS

    def defined_register(self) -> str | None:
        """Register written by this instruction, if any."""
        if self.op in (Opcode.MOV, Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.AND, Opcode.SHR, Opcode.LOAD, Opcode.CALL):
            return self.dest
        return None

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        bits = [self.op.value]
        if self.dest:
            bits.append(self.dest)
        if self.cond:
            bits.append(self.cond)
        bits.extend(str(s) for s in self.srcs)
        if self.mem:
            bits.append(str(self.mem))
        if self.callee:
            bits.append(self.callee)
        bits.extend(self.targets)
        return " ".join(bits)


@dataclass
class BasicBlock:
    """A labelled straight-line instruction sequence ending in a terminator."""

    label: str
    instrs: list[Instruction] = field(default_factory=list)

    @property
    def terminator(self) -> Instruction:
        """The block's terminator (raises if the block is open)."""
        if not self.instrs or not self.instrs[-1].is_terminator:
            raise ValueError(f"block {self.label!r} has no terminator")
        return self.instrs[-1]

    def successors(self) -> tuple[str, ...]:
        """Labels of successor blocks."""
        term = self.terminator
        if term.op is Opcode.RET:
            return ()
        return term.targets

    def loads(self) -> list[Instruction]:
        """Load instructions in this block, in order."""
        return [i for i in self.instrs if i.op is Opcode.LOAD]


@dataclass
class Procedure:
    """A procedure: entry block, block map, parameters, frame size."""

    name: str
    entry: str
    blocks: dict[str, BasicBlock] = field(default_factory=dict)
    params: tuple[str, ...] = ()
    frame_size: int = 64
    source_file: str = "?"

    def block_order(self) -> list[BasicBlock]:
        """Blocks in a stable layout order (entry first, then insertion)."""
        ordered = [self.blocks[self.entry]]
        ordered.extend(b for label, b in self.blocks.items() if label != self.entry)
        return ordered

    def instructions(self) -> list[Instruction]:
        """All instructions in layout order."""
        out: list[Instruction] = []
        for block in self.block_order():
            out.extend(block.instrs)
        return out

    def loads(self) -> list[Instruction]:
        """All load instructions in layout order."""
        return [i for i in self.instructions() if i.op is Opcode.LOAD]

    def validate(self) -> None:
        """Check structural invariants (terminators, branch targets)."""
        if self.entry not in self.blocks:
            raise ValueError(f"{self.name}: entry block {self.entry!r} missing")
        for block in self.blocks.values():
            term = block.terminator  # raises when open
            for instr in block.instrs[:-1]:
                if instr.is_terminator:
                    raise ValueError(
                        f"{self.name}/{block.label}: terminator {instr} mid-block"
                    )
            for target in term.targets:
                if target not in self.blocks:
                    raise ValueError(
                        f"{self.name}/{block.label}: unknown target {target!r}"
                    )


@dataclass
class Module:
    """A load module: named procedures plus a layout of synthetic addresses."""

    name: str
    procedures: dict[str, Procedure] = field(default_factory=dict)

    def add(self, proc: Procedure) -> Procedure:
        """Add a procedure (name must be unique)."""
        if proc.name in self.procedures:
            raise ValueError(f"duplicate procedure {proc.name!r}")
        self.procedures[proc.name] = proc
        return proc

    def layout(self) -> None:
        """Assign instruction addresses: proc ``i`` at CODE_BASE + i*PROC_STRIDE."""
        for pidx, proc in enumerate(self.procedures.values()):
            proc.validate()
            base = CODE_BASE + pidx * PROC_STRIDE
            pos = 0
            for block in proc.block_order():
                for instr in block.instrs:
                    instr.addr = base + pos * INSTR_SIZE
                    pos += 1

    def proc_ids(self) -> dict[str, int]:
        """Procedure name -> function id (layout order)."""
        return {name: i for i, name in enumerate(self.procedures)}

    def proc_of_addr(self, addr: int) -> str | None:
        """Procedure containing instruction address ``addr``."""
        idx = (addr - CODE_BASE) // PROC_STRIDE
        names = list(self.procedures)
        if 0 <= idx < len(names):
            return names[idx]
        return None

    def source_lines(self) -> dict[int, tuple[str, str, int]]:
        """Instruction address -> (procedure, file, line)."""
        self._require_layout()
        out: dict[int, tuple[str, str, int]] = {}
        for proc in self.procedures.values():
            for instr in proc.instructions():
                out[instr.addr] = (proc.name, proc.source_file, instr.line)
        return out

    def n_instructions(self) -> int:
        """Total instruction count across procedures."""
        return sum(len(p.instructions()) for p in self.procedures.values())

    def _require_layout(self) -> None:
        for proc in self.procedures.values():
            for instr in proc.instructions():
                if instr.addr < 0:
                    raise RuntimeError("module.layout() has not been called")
                return
