"""Packed on-disk trace format.

Traces persist as compressed ``.npz`` archives: the event array, the
optional per-event sample ids, and a JSON metadata blob
(:class:`TraceMeta`) recording how the trace was collected — enough to
re-derive rho/kappa and to attribute ips to source lines offline. Table
III's size accounting uses both the in-memory packet model
(:func:`packet_bytes`) and real on-disk sizes.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

from repro.trace.event import EVENT_DTYPE

__all__ = ["TraceMeta", "write_trace", "read_trace", "packet_bytes"]

_FORMAT_VERSION = 1


@dataclass
class TraceMeta:
    """Collection metadata stored alongside the events."""

    module: str = "?"
    kind: str = "sampled"  # "sampled" | "full" | "oracle"
    period: int = 0
    buffer_capacity: int = 0
    n_loads_total: int = 0
    n_samples: int = 0
    n_dropped: int = 0
    source_map: dict[int, tuple[str, str, int]] = field(default_factory=dict)
    extra: dict = field(default_factory=dict)

    def to_json(self) -> str:
        """Serialise to JSON."""
        d = asdict(self)
        d["source_map"] = {str(k): list(v) for k, v in self.source_map.items()}
        d["version"] = _FORMAT_VERSION
        return json.dumps(d)

    @classmethod
    def from_json(cls, text: str) -> "TraceMeta":
        """Parse metadata serialised by :meth:`to_json`."""
        raw = json.loads(text)
        version = raw.pop("version", _FORMAT_VERSION)
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported trace format version {version}")
        raw["source_map"] = {
            int(k): (v[0], v[1], int(v[2])) for k, v in raw["source_map"].items()
        }
        return cls(**raw)


def write_trace(
    path,
    events: np.ndarray,
    meta: TraceMeta,
    sample_id: np.ndarray | None = None,
) -> int:
    """Write a trace archive; returns the on-disk size in bytes."""
    if events.dtype != EVENT_DTYPE:
        raise TypeError(f"expected EVENT_DTYPE events, got {events.dtype}")
    path = Path(path)
    arrays = {"events": events, "meta": np.frombuffer(meta.to_json().encode("utf-8"), dtype=np.uint8)}
    if sample_id is not None:
        if len(sample_id) != len(events):
            raise ValueError("sample_id length must match events")
        arrays["sample_id"] = np.asarray(sample_id, dtype=np.int32)
    np.savez_compressed(path, **arrays)
    # numpy appends .npz when missing
    actual = path if path.suffix == ".npz" else path.with_name(path.name + ".npz")
    return actual.stat().st_size


def read_trace(path) -> tuple[np.ndarray, TraceMeta, np.ndarray | None]:
    """Read a trace archive written by :func:`write_trace`."""
    with np.load(path) as archive:
        events = archive["events"]
        meta = TraceMeta.from_json(bytes(archive["meta"]).decode("utf-8"))
        sample_id = archive["sample_id"] if "sample_id" in archive else None
    if events.dtype != EVENT_DTYPE:
        raise TypeError(f"archive events have dtype {events.dtype}")
    return events, meta, sample_id


def packet_bytes(events: np.ndarray, *, two_reg_fraction: float = 0.0) -> int:
    """Raw PT payload bytes a trace's records occupy (8 B per ptwrite).

    Loads with two source registers emit two packets (paper SS:VI-C);
    ``two_reg_fraction`` is the fraction of records that do.
    """
    if events.dtype != EVENT_DTYPE:
        raise TypeError(f"expected EVENT_DTYPE events, got {events.dtype}")
    if not 0.0 <= two_reg_fraction <= 1.0:
        raise ValueError(f"two_reg_fraction must be in [0,1], got {two_reg_fraction}")
    n = len(events)
    return int(round(8 * n * (1.0 + two_reg_fraction)))
