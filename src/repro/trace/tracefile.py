"""Packed on-disk trace format.

Traces persist as compressed ``.npz`` archives: the event array, the
optional per-event sample ids, and a JSON metadata blob
(:class:`TraceMeta`) recording how the trace was collected — enough to
re-derive rho/kappa and to attribute ips to source lines offline. Table
III's size accounting uses both the in-memory packet model
(:func:`packet_bytes`) and real on-disk sizes.

Two read paths exist:

* :func:`read_trace` — eager, materializes the whole event array;
* :func:`iter_trace_chunks` — streaming: decompresses the archive
  members incrementally and yields sample-aligned chunks, so analysis
  (and the parallel engine's workers) never hold more than one chunk of
  a multi-GB trace in memory at a time. :func:`read_trace_meta` reads
  only the metadata member.

Malformed archives raise :class:`TraceFormatError` (which carries the
archive path and the offending member/key) instead of the raw
``KeyError``/``zipfile`` internals. Archives also carry a ``health``
member — per-chunk CRC32 checksums over the raw event bytes, written by
:func:`write_trace` — that :mod:`repro.trace.health` uses to localize
truncation and bit-flip damage and to recover the intact prefix.
Archives without it (written before the health layer) stay readable.

Member order is deliberate: the small ``meta`` and ``health`` members
come *before* the bulk ``events``/``sample_id`` arrays, so a
tail-truncated file (the common on-disk failure) still holds everything
needed to identify the trace and salvage its event prefix.
"""

from __future__ import annotations

import json
import os
import zipfile
import zlib
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Iterator

import numpy as np

from repro._util.crc import crc32_chunks, crc32_of
from repro.trace.event import EVENT_DTYPE

__all__ = [
    "TraceFormatError",
    "TraceMeta",
    "PrefixSkip",
    "write_trace",
    "read_trace",
    "read_trace_meta",
    "read_trace_health",
    "iter_trace_chunks",
    "packet_bytes",
]

_FORMAT_VERSION = 1
#: health schema version (independent of the trace format version so old
#: readers ignore it and old archives stay valid without it).
_HEALTH_VERSION = 1
#: events per checksum chunk in the health record.
HEALTH_CHUNK_EVENTS = 1 << 16


class TraceFormatError(Exception):
    """A trace archive is malformed: missing members, bad schema/version.

    Carries the archive ``path`` and the offending ``key`` (member or
    metadata field) so callers and the run journal can report what broke
    without parsing the message.
    """

    def __init__(self, path, key: str, detail: str) -> None:
        self.path = str(path)
        self.key = key
        super().__init__(f"{self.path}: {detail} (key: {key})")


@dataclass
class TraceMeta:
    """Collection metadata stored alongside the events."""

    module: str = "?"
    kind: str = "sampled"  # "sampled" | "full" | "oracle"
    period: int = 0
    buffer_capacity: int = 0
    n_loads_total: int = 0
    n_samples: int = 0
    n_dropped: int = 0
    source_map: dict[int, tuple[str, str, int]] = field(default_factory=dict)
    extra: dict = field(default_factory=dict)

    def to_json(self) -> str:
        """Serialise to JSON."""
        d = asdict(self)
        d["source_map"] = {str(k): list(v) for k, v in self.source_map.items()}
        d["version"] = _FORMAT_VERSION
        return json.dumps(d)

    @classmethod
    def from_json(cls, text: str) -> "TraceMeta":
        """Parse metadata serialised by :meth:`to_json`."""
        raw = json.loads(text)
        version = raw.pop("version", _FORMAT_VERSION)
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported trace format version {version}")
        raw["source_map"] = {
            int(k): (v[0], v[1], int(v[2]))
            for k, v in raw.get("source_map", {}).items()
        }
        return cls(**raw)


def _health_record(events: np.ndarray, sample_id: np.ndarray | None) -> dict:
    """Per-chunk CRC32 checksums over the raw array bytes.

    An empty trace still records one checksum per member (of zero
    bytes); content digests key off this record, so the empty-case
    layout must never change.
    """
    step = HEALTH_CHUNK_EVENTS
    return {
        "version": _HEALTH_VERSION,
        "chunk_events": step,
        "n_events": len(events),
        "events_crc": crc32_chunks(events, step, at_least_one=True),
        "sample_id_crc": None
        if sample_id is None
        else crc32_chunks(sample_id, step, at_least_one=True),
    }


def write_trace(
    path,
    events: np.ndarray,
    meta: TraceMeta,
    sample_id: np.ndarray | None = None,
    *,
    atomic: bool = False,
) -> int:
    """Write a trace archive; returns the on-disk size in bytes.

    With ``atomic=True`` the archive is written to a temporary sibling
    and published with ``os.replace``, so a concurrent reader only ever
    sees a complete archive — never a half-written zip. The streaming
    service rewrites per-session archives on every ingest through this
    path; live ``memgaze report`` / ``validate-trace`` runs against a
    growing session archive therefore always find a valid file.
    """
    if events.dtype != EVENT_DTYPE:
        raise TypeError(f"expected EVENT_DTYPE events, got {events.dtype}")
    path = Path(path)
    # small identifying members first: a tail-truncated file keeps them
    if sample_id is not None:
        if len(sample_id) != len(events):
            raise ValueError("sample_id length must match events")
        sample_id = np.asarray(sample_id, dtype=np.int32)
    health = _health_record(events, sample_id)
    arrays = {
        "meta": np.frombuffer(meta.to_json().encode("utf-8"), dtype=np.uint8),
        "health": np.frombuffer(json.dumps(health).encode("utf-8"), dtype=np.uint8),
        "events": events,
    }
    if sample_id is not None:
        arrays["sample_id"] = sample_id
    # numpy appends .npz when missing
    actual = path if path.suffix == ".npz" else path.with_name(path.name + ".npz")
    if atomic:
        tmp = actual.with_name(f".{actual.stem}.tmp.npz")
        np.savez_compressed(tmp, **arrays)
        os.replace(tmp, actual)
    else:
        np.savez_compressed(path, **arrays)
    return actual.stat().st_size


def _parse_meta(path, blob: bytes) -> TraceMeta:
    """Decode a ``meta`` member, mapping failures to TraceFormatError."""
    try:
        return TraceMeta.from_json(blob.decode("utf-8"))
    except (ValueError, KeyError, TypeError, UnicodeDecodeError) as e:
        raise TraceFormatError(path, "meta", f"unreadable trace metadata: {e}") from e


def read_trace(path) -> tuple[np.ndarray, TraceMeta, np.ndarray | None]:
    """Read a trace archive written by :func:`write_trace`.

    Raises :class:`TraceFormatError` when a required member is missing
    or the metadata does not parse.
    """
    with np.load(path) as archive:
        for member in ("events", "meta"):
            if member not in archive:
                raise TraceFormatError(
                    path, member, f"archive is missing required member {member!r}"
                )
        events = archive["events"]
        meta = _parse_meta(path, bytes(archive["meta"]))
        sample_id = archive["sample_id"] if "sample_id" in archive else None
    if events.dtype != EVENT_DTYPE:
        raise TraceFormatError(
            path, "events", f"archive events have dtype {events.dtype}"
        )
    return events, meta, sample_id


def read_trace_meta(path) -> TraceMeta:
    """Read only the metadata member of a trace archive (cheap)."""
    with np.load(path) as archive:
        if "meta" not in archive:
            raise TraceFormatError(
                path, "meta", "archive is missing required member 'meta'"
            )
        return _parse_meta(path, bytes(archive["meta"]))


def read_trace_health(path) -> dict | None:
    """Read an archive's ``health`` record (per-chunk CRCs), or None.

    Returns ``None`` — never raises — for archives written before the
    health layer, or whose health member is missing, unparsable, or
    incomplete. Callers (the analysis cache in
    :mod:`repro.core.artifacts`) treat ``None`` as "this trace cannot
    be content-addressed".
    """
    try:
        with np.load(path) as archive:
            if "health" not in archive:
                return None
            record = json.loads(bytes(archive["health"]).decode("utf-8"))
    except (OSError, ValueError, KeyError, zipfile.BadZipFile, zlib.error):
        return None
    if not isinstance(record, dict):
        return None
    required = {"version", "chunk_events", "n_events", "events_crc"}
    if not required <= set(record):
        return None
    return record


@dataclass
class PrefixSkip:
    """A request to skip — and checksum — the first ``n_events`` of a trace.

    Passed to :func:`iter_trace_chunks` for incremental re-analysis of
    an appended archive: the prefix that a previous run already analyzed
    is decompressed and *discarded*, but its bytes are CRC'd in the same
    :data:`HEALTH_CHUNK_EVENTS` steps :func:`write_trace` uses, filling
    ``events_crc`` / ``sample_id_crc`` / ``last_sample_id`` in place.
    The caller compares those against the stored trace state to prove
    the skipped bytes are exactly the trace it cached — a mismatch means
    the "extended" file was actually rewritten, and the caller falls
    back to a full scan.

    Skipping emits one ``chunk-skip`` journal line (not ``chunk-read``
    lines), so a run journal distinguishes rescanned chunks from
    verified-and-skipped ones.
    """

    n_events: int
    chunk_events: int = HEALTH_CHUNK_EVENTS
    events_crc: list = field(default_factory=list)
    sample_id_crc: list | None = None
    last_sample_id: int | None = None


class _MemberStream:
    """Incremental reader over one ``.npy`` member of an ``.npz`` archive.

    ``zipfile`` decompresses DEFLATE streams lazily, so reading N bytes
    touches only the compressed prefix that produces them — the array is
    never materialized whole.
    """

    def __init__(self, zf: zipfile.ZipFile, name: str, expect_dtype=None) -> None:
        self._fp = zf.open(name)
        version = np.lib.format.read_magic(self._fp)
        if version == (1, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_1_0(self._fp)
        elif version == (2, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_2_0(self._fp)
        else:  # pragma: no cover - numpy always writes 1.0/2.0 here
            raise ValueError(f"unsupported npy version {version} in {name}")
        if len(shape) != 1 or fortran:
            raise ValueError(f"member {name} is not a 1-D C-order array")
        if expect_dtype is not None and dtype != expect_dtype:
            raise TypeError(f"member {name} has dtype {dtype}")
        self.dtype = dtype
        self.length = shape[0]
        self._remaining = shape[0]

    def read(self, n_items: int) -> np.ndarray:
        """Read up to ``n_items`` items; shorter only at end of member."""
        n_items = min(n_items, self._remaining)
        if n_items <= 0:
            return np.empty(0, dtype=self.dtype)
        want = n_items * self.dtype.itemsize
        buf = self._fp.read(want)
        if len(buf) != want:
            raise OSError(
                f"truncated archive member: wanted {want} bytes, got {len(buf)}"
            )
        self._remaining -= n_items
        return np.frombuffer(buf, dtype=self.dtype)

    def close(self) -> None:
        self._fp.close()


def _skip_prefix(
    ev_stream: "_MemberStream",
    sid_stream: "_MemberStream | None",
    skip: PrefixSkip,
    metrics,
    journal,
) -> None:
    """Discard ``skip.n_events`` from the streams, checksumming as it goes."""
    if skip.n_events <= 0:
        return
    step = skip.chunk_events
    if step <= 0:
        raise ValueError(f"chunk_events must be > 0, got {step}")
    skip.events_crc = []
    skip.sample_id_crc = [] if sid_stream is not None else None
    remaining = skip.n_events
    while remaining > 0:
        take = min(step, remaining)
        ev = ev_stream.read(take)
        if len(ev) < take:
            raise ValueError(
                f"cannot skip {skip.n_events} events: archive holds fewer"
            )
        skip.events_crc.append(crc32_of(ev))
        if sid_stream is not None:
            sid = sid_stream.read(take)
            if len(sid) < take:
                raise ValueError("sample_id member shorter than events member")
            skip.sample_id_crc.append(crc32_of(sid))
            skip.last_sample_id = int(sid[-1])
        remaining -= take
    if metrics is not None:
        metrics.counter("trace.events_skipped").inc(skip.n_events)
    if journal is not None:
        journal.emit("chunk-skip", n_events=skip.n_events)


def iter_trace_chunks(
    path,
    chunk_size: int = 1 << 20,
    *,
    align_samples: bool = True,
    metrics=None,
    journal=None,
    skip: PrefixSkip | None = None,
) -> Iterator[tuple[np.ndarray, np.ndarray | None]]:
    """Yield ``(events, sample_id)`` chunks of a trace archive, streaming.

    Chunks hold about ``chunk_size`` events. With ``align_samples`` (and
    a stored ``sample_id``), a sample is never split across two chunks:
    the trailing run of the last sample id is carried into the next
    chunk, so per-chunk intra-sample analyses (reuse distances,
    boundaries) see exactly what a whole-trace pass would.

    A missing ``events`` member raises :class:`TraceFormatError` naming
    the archive and the member, instead of ``zipfile``'s bare
    ``KeyError``. Passing a
    :class:`~repro.obs.metrics.MetricsRegistry` as ``metrics`` counts
    chunks, events, and decompressed bytes read under
    ``trace.chunks_read`` / ``trace.events_read`` /
    ``trace.bytes_read``; a :class:`~repro.obs.journal.RunJournal` as
    ``journal`` appends one ``chunk-read`` line per chunk (with
    ``n_events`` and ``nbytes``), so the journal proves how many times
    the trace was actually read — a fused multi-pass analysis shows one
    line per chunk, not chunks x passes — and how many bytes each
    zero-copy publish will move (see ``docs/performance.md``).

    With a :class:`PrefixSkip`, the first ``skip.n_events`` events are
    decompressed, checksummed into ``skip``, and discarded before the
    first chunk is yielded (one ``chunk-skip`` journal line, counted
    under ``trace.events_skipped`` — not as chunks read). Yielding then
    continues from the skip point, so an appended archive's new tail
    streams without re-analyzing its cached prefix.
    """
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be > 0, got {chunk_size}")
    path = Path(path)
    actual = path if path.suffix == ".npz" else path.with_name(path.name + ".npz")
    with zipfile.ZipFile(actual) as zf:
        names = set(zf.namelist())
        if "events.npy" not in names:
            raise TraceFormatError(
                actual, "events", "archive is missing required member 'events'"
            )
        ev_stream = _MemberStream(zf, "events.npy", EVENT_DTYPE)
        sid_stream = (
            _MemberStream(zf, "sample_id.npy") if "sample_id.npy" in names else None
        )
        try:
            if skip is not None:
                _skip_prefix(ev_stream, sid_stream, skip, metrics, journal)
            carry_ev = np.empty(0, dtype=ev_stream.dtype)
            carry_sid = (
                np.empty(0, dtype=sid_stream.dtype) if sid_stream is not None else None
            )
            while True:
                ev = ev_stream.read(chunk_size)
                sid = sid_stream.read(chunk_size) if sid_stream is not None else None
                done = len(ev) < chunk_size
                if len(carry_ev):
                    ev = np.concatenate([carry_ev, ev])
                    if sid is not None:
                        sid = np.concatenate([carry_sid, sid])
                    carry_ev = carry_ev[:0]
                if len(ev) == 0:
                    break
                if align_samples and sid is not None and not done:
                    # hold back the trailing run of the last sample id —
                    # the next chunk may continue that sample
                    cut = int(np.searchsorted(sid, sid[-1], side="left"))
                    if cut == 0:
                        # one giant sample fills the chunk: keep growing it
                        carry_ev, carry_sid = ev, sid
                        continue
                    carry_ev, carry_sid = ev[cut:], sid[cut:]
                    ev, sid = ev[:cut], sid[:cut]
                nbytes = ev.nbytes + (sid.nbytes if sid is not None else 0)
                if metrics is not None:
                    metrics.counter("trace.chunks_read").inc()
                    metrics.counter("trace.events_read").inc(len(ev))
                    metrics.counter("trace.bytes_read").inc(nbytes)
                if journal is not None:
                    journal.emit("chunk-read", n_events=len(ev), nbytes=nbytes)
                yield ev, sid
                if done:
                    break
        finally:
            ev_stream.close()
            if sid_stream is not None:
                sid_stream.close()


def packet_bytes(events: np.ndarray, *, two_reg_fraction: float = 0.0) -> int:
    """Raw PT payload bytes a trace's records occupy (8 B per ptwrite).

    Loads with two source registers emit two packets (paper SS:VI-C);
    ``two_reg_fraction`` is the fraction of records that do.
    """
    if events.dtype != EVENT_DTYPE:
        raise TypeError(f"expected EVENT_DTYPE events, got {events.dtype}")
    if not 0.0 <= two_reg_fraction <= 1.0:
        raise ValueError(f"two_reg_fraction must be in [0,1], got {two_reg_fraction}")
    n = len(events)
    return int(round(8 * n * (1.0 + two_reg_fraction)))
