"""Trace collection: sampled traces and full traces with perf's drop model.

The collector consumes the *observed record stream* — every event an
instrumented load would emit, in retirement order, with ``t`` counting all
retired loads (so suppressed Constant loads advance time without adding
records). It then applies the measurement model:

* :func:`collect_sampled_trace` — MemGaze's sampled collection: at every
  trigger (period ``w+z`` loads) drain the PT buffer, keeping the last
  ``w_k`` records (continuous PT) or the first ``w_k`` after the sample
  starts (MemGaze-opt, PT enabled only during samples). Either way a
  sample is ``w`` recorded accesses against ``z`` unrecorded ones.
* :func:`collect_full_trace` — the straightforward-ptwrite baseline the
  paper measures for Table III: perf cannot copy the pinned buffer out
  fast enough, so 30-50% of records drop in bursts; DROP records preserve
  the loss accounting that corrects 'Rec' sizes into 'All'.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro._util.rng import derive_rng
from repro.trace.event import EVENT_DTYPE, empty_events
from repro.trace.sampler import SamplingConfig, sample_bounds

__all__ = [
    "CollectionResult",
    "FullTraceResult",
    "collect_sampled_trace",
    "collect_full_trace",
]


@dataclass
class CollectionResult:
    """A sampled trace: concatenated per-sample records plus geometry."""

    events: np.ndarray  # EVENT_DTYPE, all samples concatenated in order
    sample_id: np.ndarray  # int32 per event
    n_samples: int
    n_loads_total: int  # retired loads in the run (the population size)
    config: SamplingConfig

    def samples(self) -> Iterator[np.ndarray]:
        """Iterate per-sample event slices in order."""
        if len(self.events) == 0:
            return
        bounds = np.flatnonzero(np.diff(self.sample_id)) + 1
        for chunk in np.split(self.events, bounds):
            yield chunk

    def sample_sizes(self) -> np.ndarray:
        """Number of records in each non-empty sample."""
        if len(self.events) == 0:
            return np.empty(0, dtype=np.int64)
        _, counts = np.unique(self.sample_id, return_counts=True)
        return counts

    @property
    def mean_w(self) -> float:
        """Average recorded accesses per sample (the effective ``w``)."""
        sizes = self.sample_sizes()
        return float(sizes.mean()) if len(sizes) else 0.0


@dataclass
class FullTraceResult:
    """A 'full' trace collected with the perf drop model."""

    events: np.ndarray  # records that survived ('Rec')
    n_dropped: int  # records lost to throttling
    n_observed_total: int  # 'All': survived + dropped
    drop_records: np.ndarray  # (position_in_kept_stream, count) per DROP

    @property
    def drop_fraction(self) -> float:
        """Fraction of observed records that were dropped."""
        if self.n_observed_total == 0:
            return 0.0
        return self.n_dropped / self.n_observed_total


def _check_events(events: np.ndarray) -> None:
    if events.dtype != EVENT_DTYPE:
        raise TypeError(f"expected EVENT_DTYPE events, got {events.dtype}")
    if len(events) > 1 and np.any(np.diff(events["t"].astype(np.int64)) < 0):
        raise ValueError("events must be sorted by t (retirement order)")


def collect_sampled_trace(
    events: np.ndarray,
    n_loads_total: int | None = None,
    config: SamplingConfig | None = None,
    *,
    mode: str = "continuous",
    load_rate: np.ndarray | None = None,
) -> CollectionResult:
    """Sample the observed record stream ``events``.

    Parameters
    ----------
    events:
        The full observed record stream (EVENT_DTYPE, sorted by ``t``).
    n_loads_total:
        Total retired loads in the run. Defaults to ``max(t)+1`` — exact
        for uncompressed oracle streams, a slight undercount otherwise.
    config:
        Sampling parameters (required).
    mode:
        ``"continuous"`` — PT runs all the time; a drain yields the last
        ``w_k`` records before the trigger. ``"sampled_only"`` — the
        MemGaze-opt scheme; PT turns on at the start of each period and
        records until the buffer holds ``w_k``.
    load_rate:
        Only with ``config.trigger == "time"``: per-event wall-clock-ish
        timestamps (same length as ``events``) used instead of ``t`` so
        triggers land uniformly in time rather than in loads.
    """
    if config is None:
        raise ValueError("config is required")
    if mode not in ("continuous", "sampled_only"):
        raise ValueError(f"mode must be 'continuous' or 'sampled_only', got {mode!r}")
    _check_events(events)
    if n_loads_total is None:
        n_loads_total = int(events["t"][-1]) + 1 if len(events) else 0

    if config.trigger == "time":
        if load_rate is None:
            raise ValueError("trigger='time' requires a load_rate timestamp array")
        timeline = np.asarray(load_rate, dtype=np.int64)
        if len(timeline) != len(events):
            raise ValueError("load_rate must align with events")
        horizon = int(timeline[-1]) + 1 if len(timeline) else 0
    else:
        timeline = events["t"].astype(np.int64)
        horizon = n_loads_total

    triggers, budgets = sample_bounds(horizon, config)
    pieces: list[np.ndarray] = []
    ids: list[np.ndarray] = []
    for k, (trig, w_k) in enumerate(zip(triggers, budgets)):
        start_t = trig - config.period
        lo = np.searchsorted(timeline, start_t, side="left")  # t >= start
        hi = np.searchsorted(timeline, trig, side="left")  # t < trigger
        if hi <= lo:
            continue
        if mode == "continuous":
            sel = slice(max(lo, hi - w_k), hi)  # last w_k before the trigger
        else:
            sel = slice(lo, min(hi, lo + w_k))  # first w_k after sample start
        chunk = events[sel]
        pieces.append(chunk)
        ids.append(np.full(len(chunk), k, dtype=np.int32))

    if pieces:
        out = np.concatenate(pieces)
        out_ids = np.concatenate(ids)
    else:
        out = empty_events()
        out_ids = np.empty(0, dtype=np.int32)
    return CollectionResult(
        events=out,
        sample_id=out_ids,
        n_samples=len(triggers),
        n_loads_total=n_loads_total,
        config=config,
    )


def collect_full_trace(
    events: np.ndarray,
    *,
    drop_fraction: float | None = None,
    burst_records: int = 4096,
    seed: int = 0,
) -> FullTraceResult:
    """Collect a 'full' trace under perf's unpredictable-drop model.

    Drops happen in buffer-sized bursts: each ``burst_records`` chunk is
    lost independently with the probability that yields the target
    ``drop_fraction`` (drawn uniformly from the paper's observed 30-50%
    range when not given). DROP records mark where losses occurred.
    """
    _check_events(events)
    rng = derive_rng(seed, "full-trace-drops")
    if drop_fraction is None:
        drop_fraction = float(rng.uniform(0.30, 0.50))
    if not 0.0 <= drop_fraction < 1.0:
        raise ValueError(f"drop_fraction must be in [0, 1), got {drop_fraction}")

    n = len(events)
    if n == 0 or drop_fraction == 0.0:
        return FullTraceResult(
            events=events.copy(),
            n_dropped=0,
            n_observed_total=n,
            drop_records=np.empty((0, 2), dtype=np.int64),
        )

    n_chunks = (n + burst_records - 1) // burst_records
    dropped_chunk = rng.random(n_chunks) < drop_fraction
    keep_mask = np.ones(n, dtype=bool)
    drops: list[tuple[int, int]] = []
    kept_so_far = 0
    for c in range(n_chunks):
        lo = c * burst_records
        hi = min(n, lo + burst_records)
        if dropped_chunk[c]:
            keep_mask[lo:hi] = False
            drops.append((kept_so_far, hi - lo))
        else:
            kept_so_far += hi - lo
    kept = events[keep_mask]
    n_dropped = int((~keep_mask).sum())
    return FullTraceResult(
        events=kept,
        n_dropped=n_dropped,
        n_observed_total=n,
        drop_records=np.array(drops, dtype=np.int64).reshape(-1, 2),
    )
