"""Analytic time-overhead model for memory tracing (paper Fig. 7, SS:VI-B).

We cannot run on Gemini Lake silicon, so overhead is modelled from the
mechanisms the paper identifies:

* ``ptwrite`` is expensive to decode and triggers data copies [26]: when
  PT is enabled, every executed ptwrite costs ``c_ptwrite`` on top of the
  baseline instruction cost; when PT is disabled by hardware it retires as
  a cheap no-op (``c_ptwrite_masked``).
* Draining the pinned buffer costs ``c_flush`` per sample.
* The paper hypothesises Darknet's 5-7x overhead comes from ptwrite
  interfering with its much higher *store* rate — modelled as an
  additional per-ptwrite penalty proportional to the store/instruction
  ratio.

Two modes mirror the paper's two implementations: ``CONTINUOUS`` (current
suboptimal kernel support; PT runs all the time, every ptwrite pays full
cost) and ``SAMPLED_ONLY`` (MemGaze-opt; PT is enabled only while a sample
is being recorded, so only the ptwrites inside sample windows pay). The
headline correlation the paper reports — overhead tracks the executed
ptwrite : instruction ratio — is a direct property of the model and is
checked in the Fig. 7 bench.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.trace.sampler import SamplingConfig

__all__ = ["PTMode", "ExecCounts", "OverheadModel", "OverheadReport"]


class PTMode(enum.Enum):
    """Processor-Tracing enablement scheme."""

    OFF = "off"
    CONTINUOUS = "continuous"  # paper's 'MemGaze'
    SAMPLED_ONLY = "sampled_only"  # paper's 'MemGaze-opt'


@dataclass(frozen=True)
class ExecCounts:
    """Dynamic instruction counts of one (phase of an) execution."""

    n_instrs: int
    n_loads: int
    n_stores: int
    n_ptwrites: int

    def __post_init__(self) -> None:
        for name in ("n_instrs", "n_loads", "n_stores", "n_ptwrites"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")

    @property
    def ptwrite_ratio(self) -> float:
        """Executed ptwrites per retired instruction."""
        return self.n_ptwrites / self.n_instrs if self.n_instrs else 0.0

    @property
    def store_ratio(self) -> float:
        """Stores per retired instruction."""
        return self.n_stores / self.n_instrs if self.n_instrs else 0.0


@dataclass(frozen=True)
class OverheadReport:
    """Baseline vs traced run time for one phase."""

    phase: str
    baseline: float
    traced: float
    ptwrite_ratio: float

    @property
    def overhead_pct(self) -> float:
        """(traced - baseline) / baseline, in percent."""
        if self.baseline == 0:
            return 0.0
        return 100.0 * (self.traced - self.baseline) / self.baseline

    @property
    def slowdown(self) -> float:
        """traced / baseline."""
        return self.traced / self.baseline if self.baseline else 1.0


@dataclass(frozen=True)
class OverheadModel:
    """Cost coefficients, in arbitrary time units per retired instruction."""

    c_instr: float = 1.0
    c_ptwrite: float = 4.0  # decode + copy when PT is on
    c_ptwrite_masked: float = 1.0  # hardware-masked ptwrite ~ nop
    c_flush: float = 300.0  # per buffer drain
    store_interference: float = 450.0  # extra per-ptwrite cost x store ratio

    def baseline_time(self, counts: ExecCounts) -> float:
        """Run time of the *uninstrumented* binary (no ptwrites retire)."""
        return self.c_instr * (counts.n_instrs - counts.n_ptwrites)

    def traced_time(
        self,
        counts: ExecCounts,
        mode: PTMode,
        sampling: SamplingConfig | None = None,
        kappa: float = 1.0,
    ) -> float:
        """Run time of the instrumented binary under ``mode``.

        With ``SAMPLED_ONLY``, PT is active for the fraction of execution
        a sample window covers: ``capacity * fill_mean * kappa / period``
        uncompressed loads out of every period (``kappa`` converts the
        buffer's record capacity into loads).
        """
        base = self.c_instr * (counts.n_instrs - counts.n_ptwrites)
        per_ptw_active = self.c_ptwrite + self.store_interference * counts.store_ratio
        if mode is PTMode.OFF:
            return base + self.c_ptwrite_masked * counts.n_ptwrites
        if mode is PTMode.CONTINUOUS:
            t = base + per_ptw_active * counts.n_ptwrites
            if sampling is not None and sampling.period > 0:
                t += self.c_flush * (counts.n_loads // sampling.period)
            return t
        # SAMPLED_ONLY
        if sampling is None:
            raise ValueError("SAMPLED_ONLY mode requires a SamplingConfig")
        active_fraction = min(
            1.0, sampling.buffer_capacity * sampling.fill_mean * kappa / sampling.period
        )
        active = active_fraction * counts.n_ptwrites
        masked = counts.n_ptwrites - active
        t = base + per_ptw_active * active + self.c_ptwrite_masked * masked
        t += self.c_flush * (counts.n_loads // sampling.period)
        return t

    def report(
        self,
        phase: str,
        counts: ExecCounts,
        mode: PTMode,
        sampling: SamplingConfig | None = None,
        kappa: float = 1.0,
    ) -> OverheadReport:
        """Convenience wrapper returning an :class:`OverheadReport`."""
        return OverheadReport(
            phase=phase,
            baseline=self.baseline_time(counts),
            traced=self.traced_time(counts, mode, sampling, kappa),
            ptwrite_ratio=counts.ptwrite_ratio,
        )
