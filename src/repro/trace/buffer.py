"""Processor-Trace circular buffer model (paper SS:III-C).

PT streams ptwrite packets into a pinned, fixed-size circular buffer; a
sampling trigger drains it, yielding the most recent ``w`` records. The
paper observes that with current kernel support the buffer fill and
flushes run asynchronously with the trigger, so a drain yields fewer
addresses than capacity (16 KiB -> ~1150 rather than 2048). The
``fill_factor`` of :class:`~repro.trace.sampler.SamplingConfig` models
that; this class provides the exact wrap-around retention semantics.
"""

from __future__ import annotations

import numpy as np

__all__ = ["CircularBuffer"]


class CircularBuffer:
    """Fixed-capacity FIFO keeping the most recent records.

    Stores record *indices* (positions into an external event array); the
    collector uses it to model which records survive until a drain.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        self.capacity = capacity
        self._buf = np.empty(capacity, dtype=np.int64)
        self._head = 0  # next write slot
        self._count = 0  # valid records (<= capacity)
        self.n_pushed = 0
        self.n_overwritten = 0

    def push(self, value: int) -> None:
        """Append one record, overwriting the oldest when full."""
        if self._count == self.capacity:
            self.n_overwritten += 1
        else:
            self._count += 1
        self._buf[self._head] = value
        self._head = (self._head + 1) % self.capacity
        self.n_pushed += 1

    def push_many(self, values: np.ndarray) -> None:
        """Append many records (vectorised; keeps only the last ``capacity``)."""
        values = np.asarray(values, dtype=np.int64)
        n = len(values)
        if n == 0:
            return
        self.n_pushed += n
        if n >= self.capacity:
            self.n_overwritten += self._count + n - self.capacity
            self._buf[:] = values[-self.capacity :]
            self._head = 0
            self._count = self.capacity
            return
        overflow = max(0, self._count + n - self.capacity)
        self.n_overwritten += overflow
        end = self._head + n
        if end <= self.capacity:
            self._buf[self._head : end] = values
        else:
            split = self.capacity - self._head
            self._buf[self._head :] = values[:split]
            self._buf[: end - self.capacity] = values[split:]
        self._head = end % self.capacity
        self._count = min(self.capacity, self._count + n)

    def drain(self) -> np.ndarray:
        """Return the retained records oldest-first and clear the buffer."""
        if self._count == 0:
            return np.empty(0, dtype=np.int64)
        start = (self._head - self._count) % self.capacity
        if start + self._count <= self.capacity:
            out = self._buf[start : start + self._count].copy()
        else:
            out = np.concatenate(
                [self._buf[start:], self._buf[: self._head]]
            )
        self._head = 0
        self._count = 0
        return out

    def __len__(self) -> int:
        return self._count
