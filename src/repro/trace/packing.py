"""Strided-run packing: the paper's suggested extra compression (SS:VI-B).

"It may be possible to further reduce overhead with 32-bit packets and
additional compression that reduces ptwrites for Strided loads."
SS:III-B also sketches (and forgoes, for instrumentation-complexity
reasons) a ``<begin, stride, end>`` tuple representation of strided runs.

This module implements both as *post-collection* trace transforms, where
they cost nothing at run time:

* :func:`pack_strided_runs` — collapse maximal runs of records from the
  same Strided load site whose addresses advance by a constant delta
  into one record plus (stride, length); :func:`unpack_strided_runs`
  restores the exact original stream, so every analysis is unaffected;
* :func:`packed_bytes` — the byte cost of a packed trace, optionally
  with 32-bit payloads for addresses sharing a 4 GiB prefix with their
  run head.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trace.event import EVENT_DTYPE, LoadClass

__all__ = ["PackedTrace", "pack_strided_runs", "unpack_strided_runs", "packed_bytes"]

#: packed run record: head event index, stride (bytes), run length
RUN_DTYPE = np.dtype([("head", np.int64), ("stride", np.int64), ("length", np.int64)])


@dataclass
class PackedTrace:
    """A losslessly packed record stream."""

    heads: np.ndarray  # EVENT_DTYPE: one record per run (length >= 1)
    runs: np.ndarray  # RUN_DTYPE aligned with heads
    n_original: int

    @property
    def n_records(self) -> int:
        """Packed record count."""
        return len(self.heads)

    @property
    def packing_ratio(self) -> float:
        """Original records per packed record (>= 1)."""
        return self.n_original / max(1, self.n_records)


def pack_strided_runs(events: np.ndarray, *, min_run: int = 3) -> PackedTrace:
    """Collapse constant-stride runs of Strided records.

    A run must come from one load site (same ip), advance by one constant
    byte delta, have consecutive timestamps, and reach ``min_run`` records
    to be packed (short runs stay as singletons — matching the paper's
    note that tuple encodings only pay off on real streams).
    """
    if events.dtype != EVENT_DTYPE:
        raise TypeError(f"expected EVENT_DTYPE events, got {events.dtype}")
    if min_run < 2:
        raise ValueError(f"min_run must be >= 2, got {min_run}")
    n = len(events)
    if n == 0:
        return PackedTrace(
            heads=events.copy(), runs=np.empty(0, dtype=RUN_DTYPE), n_original=0
        )

    addr = events["addr"].astype(np.int64)
    ip = events["ip"]
    cls = events["cls"]
    t = events["t"].astype(np.int64)

    # a record may EXTEND a run when: same ip, strided, same delta as the
    # previous step in the run, consecutive t, and no proxy payload
    same_ip = np.zeros(n, dtype=bool)
    same_ip[1:] = ip[1:] == ip[:-1]
    strided = cls == int(LoadClass.STRIDED)
    no_proxy = events["n_const"] == 0
    consec_t = np.zeros(n, dtype=bool)
    consec_t[1:] = t[1:] == t[:-1] + 1
    delta = np.zeros(n, dtype=np.int64)
    delta[1:] = addr[1:] - addr[:-1]
    extendable = same_ip & strided & consec_t & no_proxy
    extendable[1:] &= strided[:-1] & (events["n_const"][:-1] == 0)

    head_idx: list[int] = []
    strides: list[int] = []
    lengths: list[int] = []
    i = 0
    while i < n:
        j = i + 1
        run_delta = None
        while j < n and extendable[j]:
            if run_delta is None:
                run_delta = delta[j]
            elif delta[j] != run_delta:
                break
            if run_delta == 0:
                break  # repeated address: not a strided run
            j += 1
        length = j - i
        if run_delta is not None and length >= min_run:
            head_idx.append(i)
            strides.append(int(run_delta))
            lengths.append(length)
            i = j
        else:
            head_idx.append(i)
            strides.append(0)
            lengths.append(1)
            i += 1

    heads = events[np.array(head_idx, dtype=np.int64)]
    runs = np.zeros(len(head_idx), dtype=RUN_DTYPE)
    runs["head"] = head_idx
    runs["stride"] = strides
    runs["length"] = lengths
    return PackedTrace(heads=heads, runs=runs, n_original=n)


def unpack_strided_runs(packed: PackedTrace) -> np.ndarray:
    """Exactly restore the original record stream."""
    total = int(packed.runs["length"].sum())
    out = np.zeros(total, dtype=EVENT_DTYPE)
    pos = 0
    for head, run in zip(packed.heads, packed.runs):
        length = int(run["length"])
        chunk = out[pos : pos + length]
        chunk[:] = head
        if length > 1:
            steps = np.arange(length, dtype=np.int64)
            chunk["addr"] = head["addr"] + (steps * run["stride"]).astype(np.uint64)
            chunk["t"] = head["t"] + steps.astype(np.uint64)
        pos += length
    return out


def packed_bytes(packed: PackedTrace, *, payload32: bool = False) -> int:
    """Byte cost of the packed stream.

    Singleton records cost one payload (8 B, or 4 B when ``payload32``);
    packed runs cost one payload plus 8 B of (stride, length) metadata.
    32-bit payloads model the paper's suggested small packets: within a
    run every address shares the head's upper 32 bits by construction,
    and singletons are charged half on the same assumption.
    """
    payload = 4 if payload32 else 8
    n_runs = int((packed.runs["length"] > 1).sum())
    n_single = packed.n_records - n_runs
    return n_single * payload + n_runs * (payload + 8)
