"""Sampling trigger configuration and window geometry (paper SS:III-C).

A sampled trace is a sequence of samples: ``w`` recorded accesses followed
by ``z`` unrecorded ones, with the period ``w+z`` measured in *retired
loads* — the trigger is a hardware counter of memory accesses, which the
paper notes is what keeps the sample uniform in accesses even when the
load rate varies over time (footnote 2; the uniform-in-time alternative is
benchmarked in ``benchmarks/test_ablation_sampling_trigger.py``).

``w`` itself is set by the PT buffer: nominally ``capacity`` records, but
suboptimal kernel support drains asynchronously, so the effective yield is
a per-sample random fraction of capacity (~55% on the paper's platform).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util.rng import derive_rng

__all__ = ["SamplingConfig", "sample_bounds"]


@dataclass(frozen=True)
class SamplingConfig:
    """Sampling parameters.

    Parameters
    ----------
    period:
        Sample period ``w+z`` in retired loads (paper: 10K for
        microbenchmarks, 5M-10M for applications).
    buffer_capacity:
        PT buffer capacity in records (paper: 16 KiB / 8 B = 2048 for
        microbenchmarks, 8 KiB -> 1024 for applications).
    fill_mean, fill_jitter:
        Mean and spread of the per-sample effective fill fraction
        (asynchronous-drain model). ``fill_jitter=0`` gives deterministic
        ``w = capacity * fill_mean``.
    trigger:
        ``"loads"`` (hardware load counter; the paper's choice) or
        ``"time"`` (wall-clock-like trigger; ablation only — the caller
        then supplies a load-rate profile to
        :func:`repro.trace.collector.collect_sampled_trace`).
    seed:
        Seed for the fill-fraction stream.
    """

    period: int
    buffer_capacity: int
    fill_mean: float = 0.55
    fill_jitter: float = 0.15
    trigger: str = "loads"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError(f"period must be > 0, got {self.period}")
        if self.buffer_capacity <= 0:
            raise ValueError(
                f"buffer_capacity must be > 0, got {self.buffer_capacity}"
            )
        if not 0.0 < self.fill_mean <= 1.0:
            raise ValueError(f"fill_mean must be in (0, 1], got {self.fill_mean}")
        if self.fill_jitter < 0:
            raise ValueError(f"fill_jitter must be >= 0, got {self.fill_jitter}")
        if self.trigger not in ("loads", "time"):
            raise ValueError(f"trigger must be 'loads' or 'time', got {self.trigger}")


def sample_bounds(
    n_loads_total: int, config: SamplingConfig
) -> tuple[np.ndarray, np.ndarray]:
    """Trigger times and per-sample record budgets.

    Returns ``(triggers, budgets)``: trigger load-counts ``k*period`` that
    fall within the run, and the effective record capacity ``w_k`` of each
    drain under the asynchronous-fill model.
    """
    n_triggers = n_loads_total // config.period
    triggers = (np.arange(1, n_triggers + 1, dtype=np.int64)) * config.period
    rng = derive_rng(config.seed, "fill")
    if config.fill_jitter == 0.0:
        fills = np.full(n_triggers, config.fill_mean)
    else:
        fills = rng.normal(config.fill_mean, config.fill_jitter, size=n_triggers)
    fills = np.clip(fills, 0.1, 1.0)
    budgets = np.maximum(1, np.round(config.buffer_capacity * fills)).astype(np.int64)
    return triggers, budgets
