"""Memory access events: the unit record of every trace.

A trace — full or sampled, ISA-path or library-path — is a numpy
structured array of :data:`EVENT_DTYPE` records, one per *observed* load,
in retirement order. Each record carries:

``ip``
    Synthetic instruction pointer of the load (used for code windows and
    source attribution).
``addr``
    Effective data address in the simulated address space.
``t``
    Timestamp measured in retired loads since process start (the sampling
    trigger counts loads, so this is the natural time base; paper SS:III-C).
``cls``
    The load's static class (:class:`LoadClass`), from the instrumenter's
    annotations (paper SS:III-B).
``n_const``
    Number of *suppressed* Constant loads this record is a proxy for
    (paper Fig. 2). 0 for non-proxy records.
``fn``
    Function id of the enclosing procedure (for code-window aggregation).
"""

from __future__ import annotations

import enum

import numpy as np

__all__ = [
    "LoadClass",
    "EVENT_DTYPE",
    "empty_events",
    "make_events",
    "concat_events",
]


class LoadClass(enum.IntEnum):
    """Static access-pattern class of a load (paper SS:III-B).

    * ``CONSTANT`` — scalar load relative to a frame pointer or a global
      section with offset-only addressing; all such loads are viewed as
      touching one unit of space.
    * ``STRIDED`` — load whose address is an affine function of a loop
      induction variable with constant stride (prefetchable).
    * ``IRREGULAR`` — everything else, typically indirect loads through
      pointers (non-prefetchable).
    """

    CONSTANT = 0
    STRIDED = 1
    IRREGULAR = 2


EVENT_DTYPE = np.dtype(
    [
        ("ip", np.uint64),
        ("addr", np.uint64),
        ("t", np.uint64),
        ("cls", np.uint8),
        ("n_const", np.uint16),
        ("fn", np.uint32),
    ]
)


def empty_events(n: int = 0) -> np.ndarray:
    """Return an empty (or zeroed length-``n``) event array."""
    return np.zeros(n, dtype=EVENT_DTYPE)


def make_events(
    ip,
    addr,
    t=None,
    cls=LoadClass.IRREGULAR,
    n_const=0,
    fn=0,
) -> np.ndarray:
    """Build an event array from per-field values (scalars broadcast).

    ``t`` defaults to ``arange(n)`` — consecutive retired loads.
    """
    ip = np.asarray(ip, dtype=np.uint64)
    addr = np.asarray(addr, dtype=np.uint64)
    if ip.ndim == 0:
        ip = np.broadcast_to(ip, addr.shape).copy()
    if addr.ndim == 0:
        addr = np.broadcast_to(addr, ip.shape).copy()
    if ip.shape != addr.shape:
        raise ValueError(f"ip shape {ip.shape} != addr shape {addr.shape}")
    n = ip.shape[0] if ip.ndim else 1
    ev = empty_events(n)
    ev["ip"] = ip
    ev["addr"] = addr
    ev["t"] = np.arange(n, dtype=np.uint64) if t is None else np.asarray(t, dtype=np.uint64)
    ev["cls"] = np.asarray(cls, dtype=np.uint8)
    ev["n_const"] = np.asarray(n_const, dtype=np.uint16)
    ev["fn"] = np.asarray(fn, dtype=np.uint32)
    return ev


def concat_events(parts: list[np.ndarray]) -> np.ndarray:
    """Concatenate event arrays, validating the dtype."""
    for p in parts:
        if p.dtype != EVENT_DTYPE:
            raise TypeError(f"expected EVENT_DTYPE, got {p.dtype}")
    if not parts:
        return empty_events()
    return np.concatenate(parts)
