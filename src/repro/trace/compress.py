"""Decompression math for selectively-instrumented traces (Eqs. 1-2).

With class-based compression, a trace's observed records ``A`` understate
the accesses they imply: every proxy record carries ``n_const`` suppressed
Constant loads. Two ratios recover population quantities:

* the **compression ratio** kappa (Eq. 2)::

      kappa(sigma) = 1 + A_const(sigma) / A(sigma)

  so ``kappa * A`` is the uncompressed access count the records imply;

* the **sample ratio** rho (Eq. 1) — executed accesses per sampled
  (uncompressed-equivalent) access::

      rho = |sigma| * (w + z) / (kappa(sigma) * A(sigma))

  the estimator that scales sample statistics (footprint, accesses) to
  the population (Eq. 3's inter-window case).
"""

from __future__ import annotations

import numpy as np

from repro.trace.collector import CollectionResult
from repro.trace.event import EVENT_DTYPE

__all__ = [
    "suppressed_count",
    "compression_ratio",
    "decompress_counts",
    "sample_ratio",
    "sample_ratio_from",
]


def _check(events: np.ndarray) -> None:
    if events.dtype != EVENT_DTYPE:
        raise TypeError(f"expected EVENT_DTYPE events, got {events.dtype}")


def suppressed_count(events: np.ndarray) -> int:
    """``A_const``: Constant loads implied but not individually recorded."""
    _check(events)
    return int(events["n_const"].sum())


def compression_ratio(events: np.ndarray) -> float:
    """kappa = 1 + A_const / A  (Eq. 2). 1.0 for an empty trace."""
    _check(events)
    n = len(events)
    if n == 0:
        return 1.0
    return 1.0 + suppressed_count(events) / n


def decompress_counts(events: np.ndarray) -> int:
    """Uncompressed access count implied by the records: ``A + A_const``."""
    _check(events)
    return len(events) + suppressed_count(events)


def sample_ratio(n_samples: int, period: int, events: np.ndarray) -> float:
    """rho = |sigma|*(w+z) / (kappa*A)  (Eq. 1).

    ``events`` are the sampled records; returns 1.0 when nothing was
    sampled (no scaling possible).
    """
    implied = decompress_counts(events)
    if implied == 0:
        return 1.0
    return (n_samples * period) / implied


def sample_ratio_from(result: CollectionResult) -> float:
    """rho for a :class:`~repro.trace.collector.CollectionResult`.

    Uses the run's true load total rather than ``|sigma|*(w+z)`` so the
    last partial period does not bias the estimate.
    """
    implied = decompress_counts(result.events)
    if implied == 0:
        return 1.0
    return result.n_loads_total / implied
