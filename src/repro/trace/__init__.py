"""Measurement substrate: the Processor-Trace/perf model (paper SS:II-III).

This package models the paper's measurement stack — `ptwrite` packets, the
pinned circular buffer, the sampling trigger, perf's drop behaviour for
full traces, the class-based trace compression with its decompression math
(rho and kappa, Eqs. 1-2), a packed on-disk trace format, and the analytic
time-overhead model behind Fig. 7.
"""

from repro.trace.event import (
    EVENT_DTYPE,
    LoadClass,
    concat_events,
    empty_events,
    make_events,
)
from repro.trace.buffer import CircularBuffer
from repro.trace.sampler import SamplingConfig, sample_bounds
from repro.trace.collector import (
    CollectionResult,
    FullTraceResult,
    collect_full_trace,
    collect_sampled_trace,
)
from repro.trace.compress import (
    compression_ratio,
    decompress_counts,
    sample_ratio,
)
from repro.trace.tracefile import TraceMeta, read_trace, write_trace
from repro.trace.overhead import OverheadModel, OverheadReport, PTMode
from repro.trace.guards import RegionOfInterest, apply_guards
from repro.trace.packing import (
    PackedTrace,
    pack_strided_runs,
    packed_bytes,
    unpack_strided_runs,
)

__all__ = [
    "EVENT_DTYPE",
    "LoadClass",
    "concat_events",
    "empty_events",
    "make_events",
    "CircularBuffer",
    "SamplingConfig",
    "sample_bounds",
    "CollectionResult",
    "FullTraceResult",
    "collect_full_trace",
    "collect_sampled_trace",
    "compression_ratio",
    "decompress_counts",
    "sample_ratio",
    "TraceMeta",
    "read_trace",
    "write_trace",
    "OverheadModel",
    "OverheadReport",
    "PTMode",
    "RegionOfInterest",
    "apply_guards",
    "PackedTrace",
    "pack_strided_runs",
    "packed_bytes",
    "unpack_strided_runs",
]
