"""PT hardware address guards: region-of-interest tracing (paper SS:II).

The paper's Step 1/2 allow limiting tracing to a region of interest —
a set of functions — either by selective instrumentation or by
Processor Tracing's *hardware guards* (IP filters). With guards, the
region of interest can change **without re-instrumentation**: the
hardware simply masks ptwrites whose instruction pointer falls outside
the configured ranges.

:class:`RegionOfInterest` models the guard configuration;
:func:`apply_guards` filters an observed record stream exactly as the
hardware would, and reports how many ptwrites still *executed* (they
retire either way — only the PT packet generation is gated), which is
what the overhead model needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.trace.event import EVENT_DTYPE

__all__ = ["RegionOfInterest", "apply_guards"]

#: Gemini Lake exposes 2 address-filter ranges; newer parts expose 4.
MAX_GUARD_RANGES = 4


@dataclass
class RegionOfInterest:
    """A set of instruction-address ranges the hardware traces.

    Built either from explicit ranges or from function names resolved
    through an ip->function map (e.g. a recorder's sites or a module's
    layout).
    """

    ranges: list[tuple[int, int]] = field(default_factory=list)  # [lo, hi)

    def __post_init__(self) -> None:
        if len(self.ranges) > MAX_GUARD_RANGES:
            raise ValueError(
                f"hardware exposes at most {MAX_GUARD_RANGES} guard ranges, "
                f"got {len(self.ranges)}"
            )
        for lo, hi in self.ranges:
            if lo >= hi:
                raise ValueError(f"empty guard range [{lo:#x}, {hi:#x})")

    @classmethod
    def from_functions(
        cls,
        functions: list[str],
        fn_ranges: dict[str, tuple[int, int]],
    ) -> "RegionOfInterest":
        """Build guards covering ``functions``.

        ``fn_ranges`` maps function name -> its [lo, hi) code range.
        Adjacent/overlapping ranges are coalesced to respect the
        hardware's range budget.
        """
        try:
            spans = sorted(fn_ranges[f] for f in functions)
        except KeyError as exc:
            raise KeyError(f"unknown function {exc.args[0]!r}") from exc
        merged: list[tuple[int, int]] = []
        for lo, hi in spans:
            if merged and lo <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(hi, merged[-1][1]))
            else:
                merged.append((lo, hi))
        return cls(ranges=merged)

    def contains(self, ips: np.ndarray) -> np.ndarray:
        """Boolean mask: which instruction pointers the guards admit."""
        ips = np.asarray(ips, dtype=np.uint64)
        mask = np.zeros(len(ips), dtype=bool)
        for lo, hi in self.ranges:
            mask |= (ips >= lo) & (ips < hi)
        return mask

    @property
    def is_unrestricted(self) -> bool:
        """No ranges configured = trace everything."""
        return not self.ranges


def apply_guards(
    events: np.ndarray, roi: RegionOfInterest
) -> tuple[np.ndarray, int]:
    """Filter a record stream through the hardware guards.

    Returns ``(admitted_events, n_suppressed)``. Timestamps are kept —
    the load counter keeps running outside the region, so sampling
    geometry downstream is unchanged (this is what makes ROI traces
    directly comparable to full ones).
    """
    if events.dtype != EVENT_DTYPE:
        raise TypeError(f"expected EVENT_DTYPE events, got {events.dtype}")
    if roi.is_unrestricted:
        return events, 0
    mask = roi.contains(events["ip"])
    return events[mask], int((~mask).sum())
