"""Trace-archive health: validation and best-effort partial recovery.

A production trace store sees damaged archives — copies cut short by a
full disk or a killed transfer (**truncation**), storage-level
corruption (**bit-flips**), and archives written by foreign or broken
tools (**schema** problems). :func:`~repro.trace.tracefile.write_trace`
embeds a ``health`` member (per-chunk CRC32 checksums over the raw
event bytes, chunk size
:data:`~repro.trace.tracefile.HEALTH_CHUNK_EVENTS`) precisely so damage
can be *localized* after the fact. This module consumes it:

* :func:`validate` — read-only audit of one archive. Returns a
  :class:`HealthReport` whose findings classify every problem as
  ``truncation`` / ``bit-flip`` / ``schema``; ``memgaze
  validate-trace`` is its CLI face.
* :func:`recover_read` — the degraded-mode loader. When the normal
  eager read fails, it re-audits the archive, drops event chunks whose
  checksums fail, and returns the intact prefix plus the findings,
  journaling one warning per problem instead of crashing the pipeline.

Truncation destroys the zip central directory, which lives at the *end*
of the file; ``zipfile``/``np.load`` then refuse the whole archive even
though the early members are intact. The audit therefore falls back to
a forward scan of zip local headers, and the archive writer puts the
small ``meta``/``health`` members *before* the bulk arrays — so a
tail-truncated file still identifies itself and salvages its event
prefix.

Recovery is *prefix* recovery by design: analyses assume events are in
retirement order, so data past the first damaged chunk is discarded
rather than spliced (a gap would silently corrupt reuse distances and
sample alignment).
"""

from __future__ import annotations

import io
import json
import struct
import zipfile
import zlib
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro._util.crc import crc32_chunks
from repro.trace.event import EVENT_DTYPE
from repro.trace.tracefile import (
    TraceFormatError,
    TraceMeta,
    _parse_meta,
)

__all__ = ["Finding", "HealthReport", "validate", "recover_read"]

#: finding kinds, in rough severity order
KIND_TRUNCATION = "truncation"
KIND_BIT_FLIP = "bit-flip"
KIND_SCHEMA = "schema"


@dataclass
class Finding:
    """One detected problem in a trace archive."""

    kind: str  # "truncation" | "bit-flip" | "schema"
    detail: str
    member: str | None = None
    chunk: int | None = None

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "detail": self.detail,
            "member": self.member,
            "chunk": self.chunk,
        }


@dataclass
class HealthReport:
    """Outcome of :func:`validate` for one archive."""

    path: str
    findings: list[Finding] = field(default_factory=list)
    has_health: bool = False  # archive carries the checksum member
    n_events_expected: int | None = None  # from the health record
    n_events_ok: int = 0  # events in the verified prefix

    @property
    def ok(self) -> bool:
        """True when no problem was found."""
        return not self.findings

    def add(self, kind: str, detail: str, **kw) -> None:
        """Record one finding."""
        self.findings.append(Finding(kind, detail, **kw))

    def as_dict(self) -> dict:
        return {
            "path": self.path,
            "ok": self.ok,
            "has_health": self.has_health,
            "n_events_expected": self.n_events_expected,
            "n_events_ok": self.n_events_ok,
            "findings": [f.as_dict() for f in self.findings],
        }

    def render(self) -> str:
        """Human-readable summary."""
        lines = [f"== trace health: {self.path} =="]
        if self.ok:
            lines.append(f"  OK — {self.n_events_ok:,} events verified")
            if not self.has_health:
                lines.append(
                    "  (no checksum member: legacy archive, structural checks only)"
                )
            return "\n".join(lines)
        for f in self.findings:
            where = f" [{f.member}]" if f.member else ""
            at = f" chunk {f.chunk}" if f.chunk is not None else ""
            lines.append(f"  {f.kind.upper():<10}{where}{at}: {f.detail}")
        if self.n_events_expected is not None:
            lines.append(
                f"  recoverable prefix: {self.n_events_ok:,} of "
                f"{self.n_events_expected:,} events"
            )
        return "\n".join(lines)


def _actual_path(path) -> Path:
    path = Path(path)
    return path if path.suffix == ".npz" else path.with_name(path.name + ".npz")


# -- low-level sequential zip scan --------------------------------------------

_LOCAL_SIG = b"PK\x03\x04"
_LOCAL_HEADER = struct.Struct("<4s5H3I2H")


def _scan_members(blob: bytes) -> dict[str, tuple[bytes, bool]]:
    """Sequentially decode zip members by their local headers.

    numpy streams members with sizes deferred to a trailing data
    descriptor (general-purpose flag bit 3), so a member's length is
    discovered by running its DEFLATE stream to the end marker rather
    than trusting the header. Returns ``{name: (payload, complete)}``;
    ``complete`` is False when the stream ended prematurely — the
    partial payload is still returned.
    """
    out: dict[str, tuple[bytes, bool]] = {}
    pos = 0
    while True:
        pos = blob.find(_LOCAL_SIG, pos)
        if pos < 0 or pos + _LOCAL_HEADER.size > len(blob):
            break
        (_, _, _, method, _, _, _, csize, _, nlen, elen) = _LOCAL_HEADER.unpack(
            blob[pos : pos + _LOCAL_HEADER.size]
        )
        name_start = pos + _LOCAL_HEADER.size
        name = blob[name_start : name_start + nlen].decode("utf-8", "replace")
        data_start = name_start + nlen + elen
        if data_start > len(blob):
            break
        payload = io.BytesIO()
        complete = False
        if method == 0:  # stored
            end = min(data_start + csize, len(blob)) if csize else len(blob)
            payload.write(blob[data_start:end])
            complete = csize > 0 and data_start + csize <= len(blob)
            pos = end
        elif method == 8:  # deflate
            d = zlib.decompressobj(-15)
            cursor = data_start
            try:
                while cursor < len(blob) and not d.eof:
                    chunk = blob[cursor : cursor + (1 << 16)]
                    payload.write(d.decompress(chunk))
                    cursor += len(chunk)
                complete = d.eof
                # rewind past any bytes the decompressor did not consume
                cursor -= len(d.unused_data)
            except zlib.error:
                complete = False
            pos = max(cursor, data_start + 1)
        else:  # unknown method: skip the signature and rescan
            pos = data_start
            continue
        out[name] = (payload.getvalue(), complete)
    return out


_NPY_MAGIC = b"\x93NUMPY"


def _parse_npy(payload: bytes) -> tuple[np.dtype, int, bytes]:
    """Split a (possibly truncated) ``.npy`` payload into header + data.

    Returns ``(dtype, declared_length, data_bytes)``.
    """
    if not payload.startswith(_NPY_MAGIC):
        raise ValueError("not an npy payload")
    fp = io.BytesIO(payload)
    version = np.lib.format.read_magic(fp)
    if version == (1, 0):
        shape, fortran, dtype = np.lib.format.read_array_header_1_0(fp)
    elif version == (2, 0):
        shape, fortran, dtype = np.lib.format.read_array_header_2_0(fp)
    else:
        raise ValueError(f"unsupported npy version {version}")
    if len(shape) != 1 or fortran:
        raise ValueError("not a 1-D C-order array")
    return dtype, shape[0], payload[fp.tell() :]


# -- the audit pass ------------------------------------------------------------


@dataclass
class _Audit:
    """Everything one pass over a (possibly damaged) archive yields."""

    report: HealthReport
    meta: TraceMeta | None = None
    events: np.ndarray | None = None  # verified prefix
    sample_id: np.ndarray | None = None


def _read_members(
    blob: bytes, report: HealthReport
) -> tuple[dict[str, tuple[bytes, bool]], set[str]]:
    """Archive members, via the central directory or the forward scan.

    Returns ``(members, corrupt)`` where ``corrupt`` names members that
    failed zip-level integrity inside an *intact* directory — data
    corruption rather than a short file.
    """
    corrupt: set[str] = set()
    try:
        with zipfile.ZipFile(io.BytesIO(blob)) as zf:
            members: dict[str, tuple[bytes, bool]] = {}
            scanned: dict[str, tuple[bytes, bool]] | None = None
            for name in zf.namelist():
                try:
                    members[name] = (zf.read(name), True)
                except (zipfile.BadZipFile, zlib.error) as e:
                    if scanned is None:
                        scanned = _scan_members(blob)
                    members[name] = (scanned.get(name, (b"", False))[0], False)
                    corrupt.add(name)
                    report.add(
                        KIND_BIT_FLIP,
                        f"member fails zip-level integrity: {e}",
                        member=name.removesuffix(".npy"),
                    )
            return members, corrupt
    except zipfile.BadZipFile:
        report.add(
            KIND_TRUNCATION,
            "zip central directory missing or unreadable (file cut short); "
            "recovered members by forward scan",
        )
        return _scan_members(blob), corrupt


def _load_health(members: dict, report: HealthReport) -> dict | None:
    if "health.npy" not in members:
        return None
    try:
        _, _, data = _parse_npy(members["health.npy"][0])
        health = json.loads(data.decode("utf-8"))
        for key in ("chunk_events", "n_events", "events_crc"):
            if key not in health:
                raise ValueError(f"missing {key!r}")
        report.has_health = True
        return health
    except (ValueError, UnicodeDecodeError) as e:
        report.add(KIND_SCHEMA, f"health member unreadable: {e}", member="health")
        return None


def _verified_prefix(
    data: bytes,
    health: dict | None,
    report: HealthReport,
    member_complete: bool,
    corrupt: bool = False,
) -> np.ndarray:
    """Whole events in ``data`` whose health chunk checksums verify.

    ``corrupt`` marks a member that failed zip integrity inside an
    intact archive, so dropped chunks classify as bit-flips even though
    the salvaged payload is short.
    """
    itemsize = EVENT_DTYPE.itemsize
    n_whole = len(data) // itemsize
    events = np.frombuffer(data[: n_whole * itemsize], dtype=EVENT_DTYPE)
    if health is None:
        if not member_complete:
            report.add(
                KIND_TRUNCATION,
                f"events member incomplete; keeping {n_whole:,} whole records "
                "(no checksums to verify against)",
                member="events",
            )
        report.n_events_ok = n_whole
        return events
    step = int(health["chunk_events"])
    n_expected = int(health["n_events"])
    report.n_events_expected = n_expected
    # one batched sweep over zero-copy chunk views; at_least_one matches
    # the writer's empty-trace record (a single checksum of zero bytes)
    n_avail = min(len(events), n_expected)
    got = crc32_chunks(events[:n_avail], step, at_least_one=True)
    keep = 0
    for i, crc in enumerate(health["events_crc"]):
        lo = i * step
        hi = min(lo + step, n_expected)
        avail = max(0, min(n_avail, hi) - lo)
        if avail < hi - lo:
            report.add(
                KIND_BIT_FLIP if corrupt else KIND_TRUNCATION,
                f"events chunk {i} is short ({avail:,} of {hi - lo:,} records)",
                member="events",
                chunk=i,
            )
            break
        if got[i] != int(crc):
            report.add(
                KIND_BIT_FLIP
                if (corrupt or member_complete)
                else KIND_TRUNCATION,
                f"events chunk {i} fails its checksum",
                member="events",
                chunk=i,
            )
            break
        keep = hi
    report.n_events_ok = keep
    return events[:keep]


def _audit_archive(path) -> _Audit:
    """One full pass: structural checks, metadata, verified event prefix."""
    actual = _actual_path(path)
    report = HealthReport(path=str(actual))
    audit = _Audit(report=report)
    try:
        blob = actual.read_bytes()
    except OSError as e:
        report.add(KIND_SCHEMA, f"unreadable file: {e}")
        return audit
    if not blob.startswith(_LOCAL_SIG):
        report.add(KIND_SCHEMA, "not a zip archive (bad signature)")
        return audit

    members, corrupt = _read_members(blob, report)

    for member in ("meta.npy", "events.npy"):
        if member not in members:
            report.add(
                KIND_SCHEMA,
                f"required member {member!r} absent",
                member=member.removesuffix(".npy"),
            )
    if "meta.npy" in members:
        try:
            _, _, data = _parse_npy(members["meta.npy"][0])
            audit.meta = _parse_meta(actual, data)
        except (ValueError, TraceFormatError) as e:
            report.add(KIND_SCHEMA, f"metadata unreadable: {e}", member="meta")

    health = _load_health(members, report)

    if "events.npy" in members:
        payload, complete = members["events.npy"]
        try:
            dtype, declared, data = _parse_npy(payload)
        except ValueError as e:
            report.add(KIND_SCHEMA, f"events member unreadable: {e}", member="events")
            return audit
        if dtype != EVENT_DTYPE:
            report.add(
                KIND_SCHEMA,
                f"events have dtype {dtype}, not EVENT_DTYPE",
                member="events",
            )
            return audit
        if complete and len(data) < declared * dtype.itemsize:
            complete = False
            report.add(
                KIND_TRUNCATION,
                f"events member holds {len(data) // dtype.itemsize:,} of "
                f"{declared:,} declared records",
                member="events",
            )
        audit.events = _verified_prefix(
            data, health, report, complete, corrupt="events.npy" in corrupt
        )

    n_kept = 0 if audit.events is None else len(audit.events)
    if "sample_id.npy" in members:
        sid_payload, sid_complete = members["sample_id.npy"]
        try:
            sid_dtype, sid_len, sid_data = _parse_npy(sid_payload)
            sid = np.frombuffer(
                sid_data[: (len(sid_data) // sid_dtype.itemsize) * sid_dtype.itemsize],
                dtype=sid_dtype,
            )
            if len(sid) >= n_kept and (sid_complete or n_kept < sid_len):
                audit.sample_id = sid[:n_kept] if n_kept else sid[:0]
            if not sid_complete or len(sid) < sid_len:
                report.add(
                    KIND_TRUNCATION,
                    f"sample_id member holds {len(sid):,} of {sid_len:,} ids",
                    member="sample_id",
                )
        except ValueError as e:
            report.add(
                KIND_SCHEMA, f"sample_id member unreadable: {e}", member="sample_id"
            )
    elif report.findings and n_kept:
        # damage elsewhere may have consumed a sample_id the writer
        # stored; the prefix then analyzes as a single window
        report.add(
            KIND_TRUNCATION,
            "no sample_id member recovered; the event prefix analyzes as "
            "one window",
            member="sample_id",
        )
    return audit


# -- public API ---------------------------------------------------------------


def validate(path) -> HealthReport:
    """Audit one trace archive; classifies every problem found.

    Detects the three damage classes fault injection exercises:
    truncation (short members, missing central directory), bit-flips
    (checksum mismatches inside a structurally intact file), and schema
    corruption (missing members, unreadable or wrong-version metadata).
    """
    return _audit_archive(path).report


def recover_read(
    path, journal=None
) -> tuple[np.ndarray, TraceMeta, np.ndarray | None, list[Finding]]:
    """Best-effort load of a damaged archive: the verified event prefix.

    Tries the normal eager read first; on any structural failure falls
    back to the audit pass, drops corrupt tail chunks, and returns
    ``(events, meta, sample_id, findings)``. Every finding is journaled
    as a warning when a :class:`~repro.obs.journal.RunJournal` is
    passed. Raises :class:`TraceFormatError` only when nothing usable
    survives (no readable metadata at all).
    """
    from repro.trace.tracefile import read_trace

    actual = _actual_path(path)
    try:
        events, meta, sample_id = read_trace(actual)
        return events, meta, sample_id, []
    except Exception:
        pass  # fall through to degraded-mode recovery

    audit = _audit_archive(actual)
    if audit.meta is None:
        raise TraceFormatError(
            actual, "meta", "unrecoverable archive: no readable metadata survives"
        )
    events = (
        audit.events if audit.events is not None else np.empty(0, dtype=EVENT_DTYPE)
    )
    findings = audit.report.findings
    if journal is not None:
        for f in findings:
            journal.warning(
                f"trace recovery: {f.detail}",
                path=str(actual),
                kind=f.kind,
                member=f.member,
                chunk=f.chunk,
            )
        journal.emit(
            "trace-recovered",
            path=str(actual),
            n_events=len(events),
            n_expected=audit.report.n_events_expected,
            n_findings=len(findings),
        )
    return events, audit.meta, audit.sample_id, findings
