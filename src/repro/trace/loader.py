"""Shared archive loader: eager read with graceful degraded modes.

Both the CLI (``memgaze report`` / ``info`` / ``diff``) and the
streaming service's query path load archives into a
:class:`~repro.trace.collector.CollectionResult` the same way — this
module is that single way, so live query results can be bit-identical
to an offline report over the same bytes.

Three outcomes, in decreasing health:

* **clean** — the normal :func:`~repro.trace.tracefile.read_trace` path
  succeeded; the events in memory are the whole archive.
* **still-growing** — the archive failed the eager read, but every
  recovery finding is tail truncation: exactly what a reader racing a
  writer that has not finished appending sees. The verified prefix is
  analyzed and a single ``still-growing`` warning is journaled — this
  is a *liveness* situation, not corruption.
* **damaged** — recovery found bit-flips or schema problems; the
  verified prefix is analyzed and every finding is journaled
  (:func:`repro.trace.health.recover_read`).

Only an archive with no readable metadata at all raises
:class:`~repro.trace.tracefile.TraceFormatError`.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from zipfile import BadZipFile

import numpy as np

from repro.trace.collector import CollectionResult
from repro.trace.health import KIND_TRUNCATION, Finding
from repro.trace.sampler import SamplingConfig
from repro.trace.tracefile import TraceFormatError, TraceMeta, read_trace

__all__ = ["LoadedTrace", "load_trace_collection"]


@dataclass
class LoadedTrace:
    """An archive loaded for analysis, plus how healthy the load was."""

    collection: CollectionResult
    meta: TraceMeta
    fn_names: dict[int, str]
    #: True when the eager read succeeded — the events are the whole
    #: archive, so its content digest addresses them (cache-safe).
    clean: bool = True
    #: True when recovery ran but every finding was tail truncation —
    #: the archive looks like a writer is still appending to it. The
    #: events are the verified prefix.
    growing: bool = False
    #: recovery findings (empty on a clean load)
    findings: list[Finding] = field(default_factory=list)


def load_trace_collection(path, journal=None) -> LoadedTrace:
    """Load a trace archive, recovering the verified prefix on damage.

    A healthy archive goes through the fast eager read. A damaged one
    falls back to :func:`repro.trace.health.recover_read`: the
    checksum-verified event prefix is returned, and the findings
    classify what was wrong. When *every* finding is truncation, the
    damage is consistent with an archive still being written (a live
    trace collector, a copy in flight): ``growing`` is set and the
    journal carries one ``still-growing`` warning instead of treating
    the partial tail as corruption.

    Raises :class:`~repro.trace.tracefile.TraceFormatError` only when
    nothing usable survives.
    """
    clean = True
    growing = False
    findings: list[Finding] = []
    try:
        events, meta, sample_id = read_trace(path)
    except (TraceFormatError, BadZipFile, OSError, ValueError, zlib.error):
        from repro.trace.health import recover_read

        clean = False
        events, meta, sample_id, findings = recover_read(path, journal=journal)
        growing = bool(findings) and all(
            f.kind == KIND_TRUNCATION for f in findings
        )
        if growing and journal is not None:
            journal.warning(
                "archive tail is incomplete but undamaged — it appears to "
                "be still growing; analyzing the verified prefix",
                path=str(path),
                reason="still-growing",
                n_events=len(events),
            )
    if sample_id is None:
        sample_id = np.zeros(len(events), dtype=np.int32)
    collection = CollectionResult(
        events=events,
        sample_id=sample_id,
        n_samples=meta.n_samples
        or (int(sample_id.max()) + 1 if len(sample_id) else 0),
        n_loads_total=meta.n_loads_total or len(events),
        config=SamplingConfig(
            period=max(1, meta.period), buffer_capacity=max(1, meta.buffer_capacity)
        ),
    )
    fn_names = {int(k): v for k, v in meta.extra.get("fn_names", {}).items()}
    return LoadedTrace(
        collection=collection,
        meta=meta,
        fn_names=fn_names,
        clean=clean,
        growing=growing,
        findings=findings,
    )
