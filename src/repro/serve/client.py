"""Blocking client for the streaming analysis service.

:class:`ServeClient` speaks the framed protocol over one TCP connection;
``memgaze submit`` and ``memgaze query`` are thin wrappers around it.
The client surfaces the daemon's backpressure honestly: a load-shed
``busy`` response raises :class:`ServeBusy` carrying the server's
suggested retry delay, and :func:`submit_archive` implements the
retry-with-backoff loop so callers that just want a whole archive
streamed never see the shedding.
"""

from __future__ import annotations

import socket
import time

import numpy as np

from repro.serve.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    encode_chunk,
    pack_frame,
    read_frame_sync,
)
from repro.trace.tracefile import TraceMeta, iter_trace_chunks, read_trace_meta

__all__ = ["ServeError", "ServeBusy", "ServeClient", "submit_archive"]


class ServeError(Exception):
    """The server answered with an ``error`` frame (or broke protocol)."""


class ServeBusy(ServeError):
    """An append was load-shed; retry after :attr:`retry_ms`.

    The daemon's backpressure is layered (see ``docs/serving.md``):
    :attr:`scope` is ``"session"`` when this session's own queue cap
    was hit and ``"global"`` when the daemon-wide bound was, and
    :attr:`queue_depth` is the number of this session's appends still
    queued at the rejection — a client streaming several sessions can
    tell *which* of them is backed up and throttle just that one.
    """

    def __init__(
        self,
        retry_ms: int,
        *,
        scope: str = "global",
        queue_depth: int | None = None,
    ) -> None:
        super().__init__(
            f"server busy ({scope} queue full; retry in {retry_ms} ms)"
        )
        self.retry_ms = int(retry_ms)
        self.scope = scope
        self.queue_depth = queue_depth


class ServeClient:
    """One connection to a :class:`~repro.serve.daemon.TraceServer`."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        timeout: float = 30.0,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._fp = self._sock.makefile("rwb")
        self._max_bytes = max_frame_bytes

    def close(self) -> None:
        try:
            self._fp.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- request/response ------------------------------------------------------

    def _round_trip(self, header: dict, payload: bytes = b"") -> tuple[dict, bytes]:
        self._fp.write(pack_frame(header, payload))
        self._fp.flush()
        resp, resp_payload = read_frame_sync(self._fp, self._max_bytes)
        kind = resp.get("type")
        if kind == "busy":
            raise ServeBusy(
                resp.get("retry_ms", 50),
                scope=resp.get("scope", "global"),
                queue_depth=resp.get("queue_depth"),
            )
        if kind == "error":
            raise ServeError(resp.get("error", "unknown server error"))
        return resp, resp_payload

    def ping(self) -> dict:
        resp, _ = self._round_trip({"type": "ping"})
        return resp

    def open(self, session: str, meta: TraceMeta | None = None) -> dict:
        """Open (or re-attach to) a named session stream."""
        payload = b"" if meta is None else meta.to_json().encode("utf-8")
        resp, _ = self._round_trip(
            {"type": "open", "session": session, "protocol": PROTOCOL_VERSION},
            payload,
        )
        return resp

    def append(
        self,
        session: str,
        events: np.ndarray,
        sample_id: np.ndarray | None = None,
    ) -> dict:
        """Send one event chunk; raises :class:`ServeBusy` when shed."""
        fields, payload = encode_chunk(events, sample_id)
        header = {"type": "append", "session": session, **fields}
        resp, _ = self._round_trip(header, payload)
        return resp

    def query(
        self,
        session: str,
        passes: list[str] | None = None,
        *,
        viz: bool = False,
    ) -> tuple[dict, str]:
        """Live analysis of the session's archive as ingested so far.

        Returns ``(info, payload_text)``: ``info`` carries serve-side
        state (``n_chunks``, ``n_events``, ``mode``, ``skipped_events``)
        and ``payload_text`` is the canonical JSON — byte-identical to
        ``memgaze report --json`` offline on the same archive.
        ``viz=True`` asks for the visual-report payload instead (the
        dashboard's input, byte-identical to the payload behind an
        offline ``memgaze report --html``).
        """
        header: dict = {"type": "query", "session": session}
        if passes is not None:
            header["passes"] = list(passes)
        if viz:
            header["viz"] = True
        resp, payload = self._round_trip(header)
        return resp, payload.decode("utf-8")

    def close_session(self, session: str) -> dict:
        """Flush and detach the session (its archive stays on disk)."""
        resp, _ = self._round_trip({"type": "close", "session": session})
        return resp

    def shutdown(self) -> dict:
        """Ask the daemon to drain and exit (when it allows shutdown)."""
        resp, _ = self._round_trip({"type": "shutdown"})
        return resp


def submit_archive(
    path,
    *,
    host: str = "127.0.0.1",
    port: int,
    session: str,
    chunk_size: int = 1 << 16,
    max_retries: int = 100,
    sleep=time.sleep,
) -> dict:
    """Stream an existing archive into a session, chunk by chunk.

    Chunks come from :func:`repro.trace.tracefile.iter_trace_chunks`, so
    they are sample-aligned — exactly the boundaries the incremental
    re-analysis path can extend. ``busy`` responses back off for the
    server-suggested delay and retry (up to ``max_retries`` per chunk);
    the return dict reports chunks sent and sheds absorbed.
    """
    meta = read_trace_meta(path)
    n_chunks = 0
    n_events = 0
    n_shed = 0
    with ServeClient(host, port) as client:
        client.open(session, meta)
        for events, sample_id in iter_trace_chunks(path, chunk_size=chunk_size):
            attempts = 0
            while True:
                try:
                    client.append(session, events, sample_id)
                    break
                except ServeBusy as busy:
                    attempts += 1
                    n_shed += 1
                    if attempts > max_retries:
                        raise ServeError(
                            f"chunk {n_chunks} shed {attempts} times; giving up"
                        ) from busy
                    sleep(busy.retry_ms / 1000.0)
            n_chunks += 1
            n_events += int(len(events))
        info = client.close_session(session)
    return {
        "session": session,
        "archive": info.get("archive"),
        "n_chunks": n_chunks,
        "n_events": n_events,
        "n_shed": n_shed,
    }
