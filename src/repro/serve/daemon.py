"""The asyncio streaming-analysis daemon (``memgaze serve``).

One :class:`TraceServer` accepts any number of client connections, each
speaking the framed protocol of :mod:`repro.serve.protocol`. The
concurrency model is **session-sharded**:

* **asyncio** handles sockets — many connections, one event loop;
* every session is pinned to one of ``serve_workers`` persistent
  worker *processes* (:mod:`repro.serve.shard`) by
  ``crc32(session) % serve_workers``, and each worker executes its
  sessions' opens, appends, queries, and closes strictly in arrival
  order — so per-session ordering (and with it the live-query ==
  offline-report byte-identity) holds exactly as it did under the old
  single serialized executor, while *independent* sessions no longer
  head-of-line-block each other;
* a dispatcher task per worker pulls from that worker's FIFO queue and
  drives the blocking pipe round trip on a dedicated one-per-worker
  thread, keeping the event loop free.

Backpressure is **layered, explicit load-shedding**, not silent
buffering: an append is rejected immediately with a ``busy`` response
when its *session* already has ``session_queue_size`` appends queued
(scope ``session``) or when ``queue_size`` appends are queued daemon-
wide (scope ``global``). Either way the response carries the session's
current queue depth and a suggested retry delay, the rejection is
journaled, and both the global ``serve.shed`` counter and the
per-session ``serve.shed.session.<name>`` counter increment. Clients
(see :func:`repro.serve.client.submit_archive`) back off and retry; the
daemon's memory stays bounded by ``queue_size`` frames regardless of
how fast clients push.

A worker process crash is a *session* failure, not a daemon failure:
the dead worker is respawned (``serve.worker.restarts``), its in-memory
sessions are dropped (their on-disk archives survive and rehydrate on
reopen), and the operation that observed the crash gets an ``error``
response telling the client to reopen.

Graceful shutdown (``stop``): stop accepting connections, drain every
worker's queue, stop each worker (which flushes and closes its
sessions and hands back its metrics for an exact merge), journal the
final metrics snapshot. Because sessions publish their archive
atomically on *every* ingest, even a SIGKILL leaves archives that
``memgaze validate-trace`` accepts — graceful shutdown just guarantees
nothing queued is dropped.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from pathlib import Path

from repro._util.timers import StageTimers
from repro.obs.metrics import MetricsRegistry
from repro.serve.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_chunk,
    pack_frame,
    read_frame,
)
from repro.serve.shard import ServeOpError, ShardWorker, WorkerCrashed, route_session
from repro.trace.tracefile import TraceMeta

__all__ = ["ServeConfig", "TraceServer"]


@dataclass
class ServeConfig:
    """Daemon knobs; defaults suit tests and single-host use."""

    root: Path | str = "serve-state"
    host: str = "127.0.0.1"
    port: int = 0  # 0: let the OS pick; the bound port is self.port
    queue_size: int = 64
    workers: int = 1
    chunk_size: int | None = None
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
    #: busy responses carry this suggested client backoff
    retry_ms: int = 50
    #: accept the ``shutdown`` message (tests and local use; a shared
    #: daemon would disable it)
    allow_shutdown: bool = True
    #: session-shard worker processes (``--serve-workers``); each
    #: session is pinned to one by ``crc32(name) % serve_workers``
    serve_workers: int = 1
    #: per-session cap on queued appends, the inner layer of the
    #: backpressure (the global ``queue_size`` is the outer one)
    session_queue_size: int = 16
    #: serve the live HTML dashboard (``--dashboard``); off by default,
    #: and when off the daemon's protocol behavior is exactly unchanged
    dashboard: bool = False
    #: dashboard TCP port (0: let the OS pick; bound port is
    #: ``TraceServer.dashboard_port``)
    dashboard_port: int = 0


class TraceServer:
    """The streaming service: sockets in front, shard workers behind.

    ``ingest_hook`` / ``query_hook`` are test seams: callables invoked
    at the start of every ingest / query, *inside the owning worker
    process* — a test that blocks in one holds exactly that shard,
    fills its bounded queues, and observes deterministic load-shedding
    (or, with the other shards, the absence of head-of-line blocking).
    """

    def __init__(
        self,
        config: ServeConfig | None = None,
        *,
        journal=None,
        metrics=None,
        ingest_hook=None,
        query_hook=None,
    ) -> None:
        self.config = config or ServeConfig()
        self.journal = journal
        self.metrics = metrics
        self.timers = StageTimers()
        self._ingest_hook = ingest_hook
        self._query_hook = query_hook
        self.port: int | None = None
        self.dashboard_port: int | None = None
        self._server: asyncio.AbstractServer | None = None
        self._dashboard = None
        self.workers: list[ShardWorker] = []
        self._pumps: list[asyncio.Task] = []
        self._queued_total = 0
        self._session_queued: dict[str, int] = {}
        self._stopping = asyncio.Event()

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        """Spawn the shard workers, then bind the socket.

        Order matters: workers fork *before* the listening socket
        exists, so no child inherits it and closing the listener at
        shutdown actually releases the port.
        """
        cfg = self.config
        if cfg.serve_workers < 1:
            raise ValueError(f"serve_workers must be >= 1, got {cfg.serve_workers}")
        if cfg.session_queue_size < 1:
            raise ValueError(
                f"session_queue_size must be >= 1, got {cfg.session_queue_size}"
            )
        root = Path(cfg.root)
        engine_kwargs = {"workers": cfg.workers, "chunk_size": cfg.chunk_size}
        self.workers = [
            ShardWorker(
                i,
                root,
                journal=self.journal,
                engine_kwargs=engine_kwargs,
                ingest_hook=self._ingest_hook,
                query_hook=self._query_hook,
            )
            for i in range(cfg.serve_workers)
        ]
        for w in self.workers:
            w.spawn()
            w.queue = asyncio.Queue()
        self._pumps = [asyncio.create_task(self._pump(w)) for w in self.workers]
        self._server = await asyncio.start_server(
            self._handle_client, cfg.host, cfg.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if cfg.dashboard:
            from repro.viz.dashboard import DashboardServer

            self._dashboard = DashboardServer(
                query=self._dashboard_query,
                sessions=self._dashboard_sessions,
                journal=self.journal,
                metrics=self.metrics,
            )
            self.dashboard_port = await self._dashboard.start(
                cfg.host, cfg.dashboard_port
            )
        if self.metrics is not None:
            self.metrics.gauge("serve.workers").set(cfg.serve_workers)
        if self.journal is not None:
            self.journal.emit(
                "serve-start",
                host=cfg.host,
                port=self.port,
                root=str(root),
                queue_size=cfg.queue_size,
                session_queue_size=cfg.session_queue_size,
                serve_workers=cfg.serve_workers,
            )

    async def serve_until_stopped(self) -> None:
        """Run until :meth:`stop` (or a ``shutdown`` frame) fires."""
        await self._stopping.wait()
        await self._shutdown()

    async def stop(self) -> None:
        """Request a graceful shutdown (idempotent)."""
        self._stopping.set()

    async def _shutdown(self) -> None:
        """Close the listener, drain every worker, stop every worker."""
        loop = asyncio.get_running_loop()
        if self._dashboard is not None:
            await self._dashboard.stop()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for w in self.workers:
            if w.queue is not None:
                await w.queue.join()
        for task in self._pumps:
            task.cancel()
        await asyncio.gather(*self._pumps, return_exceptions=True)
        flushed = 0
        for w in self.workers:
            try:
                reply = await loop.run_in_executor(w.executor, w.stop)
            except WorkerCrashed:
                if self.journal is not None:
                    self.journal.warning(
                        "serve worker died before graceful stop", worker=w.index
                    )
                continue
            finally:
                w.executor.shutdown(wait=True)
            flushed += len(reply.get("closed", []))
            if self.metrics is not None and reply.get("metrics"):
                self.metrics.merge(MetricsRegistry.from_dict(reply["metrics"]))
        if self.journal is not None:
            self.journal.emit("serve-stop", sessions_flushed=flushed)
            self.journal.record_timers(self.timers)
            if self.metrics is not None:
                self.journal.record_metrics(self.metrics)

    # -- routing and dispatch --------------------------------------------------

    def _worker_for(self, name) -> ShardWorker:
        if not isinstance(name, str) or not name:
            raise ProtocolError("message carries no session name")
        return self.workers[route_session(name, len(self.workers))]

    async def _submit(self, worker: ShardWorker, req: dict) -> dict:
        """Enqueue one op on the worker's FIFO and await its reply."""
        future = asyncio.get_running_loop().create_future()
        worker.queue.put_nowait({"req": req, "future": future})
        self._gauge_depth(worker)
        return await future

    async def _pump(self, worker: ShardWorker) -> None:
        """One dispatcher per worker: FIFO queue → pipe round trip."""
        loop = asyncio.get_running_loop()
        while True:
            item = await worker.queue.get()
            req, future = item["req"], item["future"]
            name = req.get("name")
            if req["op"] == "ingest":
                # only buffered event chunks count against the bounds —
                # queue_size is the daemon's memory bound, not an op cap
                self._queued_total -= 1
                left = self._session_queued.get(name, 1) - 1
                if left > 0:
                    self._session_queued[name] = left
                else:
                    self._session_queued.pop(name, None)
            try:
                try:
                    reply = await loop.run_in_executor(
                        worker.executor, worker.request, req
                    )
                except WorkerCrashed as crash:
                    self._on_worker_crash(worker, req, future, crash)
                    continue
                self._settle(worker, req, future, reply)
            finally:
                worker.queue.task_done()
                self._gauge_depth(worker)

    def _settle(self, worker: ShardWorker, req: dict, future, reply: dict) -> None:
        """Turn one worker reply into metrics, timers, and a result."""
        op, name = req["op"], req.get("name")
        if not reply.get("ok"):
            error = ServeOpError(reply.get("error", "worker error"))
            if future is not None and not future.cancelled():
                future.set_exception(error)
            elif op == "ingest":
                if self.journal is not None:
                    self.journal.warning(
                        f"ingest failed: {reply.get('etype')}: "
                        f"{reply.get('error')}",
                        session=name,
                    )
                if self.metrics is not None:
                    self.metrics.counter("serve.ingest_errors").inc()
            return
        if op == "ingest":
            self.timers.add(
                "serve-ingest", reply["seconds"], items=reply["n_chunk_events"]
            )
            if self.metrics is not None:
                self.metrics.counter("serve.accepted").inc()
                self.metrics.counter("serve.events_ingested").inc(
                    reply["n_chunk_events"]
                )
                self.metrics.counter(f"serve.worker.{worker.index}.ingests").inc()
        elif op == "query" and self.metrics is not None:
            self.metrics.counter("serve.queries").inc()
            self.metrics.counter(f"serve.worker.{worker.index}.queries").inc()
        if future is not None and not future.cancelled():
            future.set_result(reply)

    def _on_worker_crash(
        self, worker: ShardWorker, req: dict, future, crash: WorkerCrashed
    ) -> None:
        """A shard died mid-op: fail the op, respawn, keep serving."""
        op, name = req["op"], req.get("name")
        lost = sorted(worker.sessions)
        if self.journal is not None:
            self.journal.warning(
                "serve worker crashed; respawning (its open sessions need "
                "reopening — archives on disk are preserved)",
                worker=worker.index,
                op=op,
                session=name,
                sessions_lost=lost,
            )
        if self.metrics is not None:
            self.metrics.counter("serve.worker.restarts").inc()
            self.metrics.counter(f"serve.worker.{worker.index}.crashes").inc()
        worker.respawn()
        self._gauge_sessions()
        if future is not None and not future.cancelled():
            future.set_exception(
                ServeOpError(
                    f"serve worker {worker.index} crashed during {op} for "
                    f"session {name!r}; reopen the session and retry"
                )
            )
        elif op == "ingest":
            if self.journal is not None:
                self.journal.warning(
                    "queued append lost to a worker crash", session=name
                )
            if self.metrics is not None:
                self.metrics.counter("serve.ingest_errors").inc()

    # -- dashboard callbacks (see repro.viz.dashboard) -------------------------

    def _dashboard_sessions(self) -> tuple[list[str], set[str]]:
        """(all session names, currently-open names) for the index page.

        Names come from the shared ``sessions/`` directory plus every
        worker's open set, so sessions closed in an earlier daemon run
        are still browsable (a query re-opens them by rehydration).
        """
        root = Path(self.config.root) / "sessions"
        on_disk = {p.stem for p in root.glob("*.npz")} if root.exists() else set()
        open_names: set[str] = set()
        for w in self.workers:
            open_names |= w.sessions
        return sorted(on_disk | open_names), open_names

    async def _dashboard_query(self, name: str) -> str:
        """One live viz query for the dashboard; returns canonical JSON.

        Rides the owning worker's FIFO exactly like a protocol query, so
        it never observes a mid-ingest archive. A session that is not
        open but has an archive on disk is opened first (rehydration
        adopts the archive's own metadata). One retry absorbs a worker
        crash: the respawned worker re-opens from the surviving archive.
        """
        worker = self._worker_for(name)
        for attempt in (0, 1):
            try:
                if name not in worker.sessions:
                    archive = Path(self.config.root) / "sessions" / f"{name}.npz"
                    if not archive.exists():
                        raise KeyError(f"no session named {name!r}")
                    await self._submit(
                        worker,
                        {"op": "open", "name": name, "meta": TraceMeta(module=name)},
                    )
                    worker.sessions.add(name)
                    self._gauge_sessions()
                reply = await self._submit(
                    worker,
                    {"op": "query", "name": name, "passes": None, "viz": True},
                )
                return reply["text"]
            except ServeOpError:
                if attempt:
                    raise
        raise AssertionError("unreachable")  # pragma: no cover

    # -- gauges ----------------------------------------------------------------

    def _gauge_depth(self, worker: ShardWorker | None = None) -> None:
        if self.metrics is None:
            return
        self.metrics.gauge("serve.queue_depth").set(self._queued_total)
        if worker is not None and worker.queue is not None:
            self.metrics.gauge(f"serve.worker.{worker.index}.queue_depth").set(
                worker.queue.qsize()
            )

    def _gauge_sessions(self) -> None:
        if self.metrics is not None:
            self.metrics.gauge("serve.sessions_active").set(
                sum(len(w.sessions) for w in self.workers)
            )

    # -- backpressure ----------------------------------------------------------

    def _shed(self, name: str, n_events: int, scope: str) -> tuple[dict, bytes]:
        """Reject one append with an explicit, observable ``busy``."""
        cfg = self.config
        depth = self._session_queued.get(name, 0)
        if self.metrics is not None:
            self.metrics.counter("serve.shed").inc()
            self.metrics.counter(f"serve.shed.session.{name}").inc()
        if self.journal is not None:
            self.journal.warning(
                "ingest queue full — append load-shed",
                session=name,
                n_events=int(n_events),
                queue_size=cfg.queue_size,
                queue_depth=depth,
                reason="queue-full" if scope == "global" else "session-queue-full",
            )
        return {
            "type": "busy",
            "retry_ms": cfg.retry_ms,
            "scope": scope,
            "queue_size": cfg.queue_size,
            "session_queue_size": cfg.session_queue_size,
            "queue_depth": depth,
        }, b""

    # -- per-connection protocol loop ------------------------------------------

    async def _handle_client(self, reader, writer) -> None:
        opened: set[str] = set()
        try:
            while True:
                try:
                    header, payload = await read_frame(
                        reader, self.config.max_frame_bytes
                    )
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                try:
                    response = await self._dispatch(header, payload, opened)
                except (ProtocolError, ServeOpError) as exc:
                    response = ({"type": "error", "error": str(exc)}, b"")
                except (KeyError, ValueError) as exc:
                    response = ({"type": "error", "error": str(exc)}, b"")
                writer.write(pack_frame(*response))
                await writer.drain()
                if header.get("type") == "shutdown" and self._stopping.is_set():
                    break
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(
        self, header: dict, payload: bytes, opened: set[str]
    ) -> tuple[dict, bytes]:
        kind = header.get("type")
        if kind == "ping":
            return {"type": "ok", "port": self.port}, b""

        if kind == "open":
            if header.get("protocol") != PROTOCOL_VERSION:
                raise ProtocolError(
                    f"protocol version mismatch: client "
                    f"{header.get('protocol')!r}, server {PROTOCOL_VERSION}"
                )
            name = header.get("session")
            meta = TraceMeta.from_json(
                payload.decode("utf-8")
            ) if payload else TraceMeta(module=str(name))
            worker = self._worker_for(name)
            await self._submit(worker, {"op": "open", "name": name, "meta": meta})
            opened.add(name)
            worker.sessions.add(name)
            self._gauge_sessions()
            return {"type": "ok", "session": name}, b""

        if kind == "append":
            name = header.get("session")
            if name not in opened:
                raise ProtocolError(f"append before open for session {name!r}")
            events, sample_id = decode_chunk(header, payload)
            cfg = self.config
            if self._session_queued.get(name, 0) >= cfg.session_queue_size:
                return self._shed(name, len(events), "session")
            if self._queued_total >= cfg.queue_size:
                return self._shed(name, len(events), "global")
            worker = self._worker_for(name)
            self._queued_total += 1
            self._session_queued[name] = self._session_queued.get(name, 0) + 1
            worker.queue.put_nowait(
                {
                    "req": {
                        "op": "ingest",
                        "name": name,
                        "events": events,
                        "sample_id": sample_id,
                    },
                    "future": None,
                }
            )
            self._gauge_depth(worker)
            return {"type": "ok", "queued": True}, b""

        if kind == "query":
            name = header.get("session")
            worker = self._worker_for(name)
            reply = await self._submit(
                worker,
                {
                    "op": "query",
                    "name": name,
                    "passes": header.get("passes"),
                    "viz": bool(header.get("viz")),
                },
            )
            return {"type": "result", **reply["info"]}, reply["text"].encode("utf-8")

        if kind == "close":
            name = header.get("session")
            worker = self._worker_for(name)
            # the close rides the same FIFO as the session's appends, so
            # everything acked-as-queued lands before the detach
            reply = await self._submit(worker, {"op": "close", "name": name})
            opened.discard(name)
            worker.sessions.discard(name)
            self._gauge_sessions()
            return {"type": "ok", **reply["info"]}, b""

        if kind == "shutdown":
            if not self.config.allow_shutdown:
                raise ProtocolError("shutdown is disabled on this server")
            await self.stop()
            return {"type": "ok", "stopping": True}, b""

        raise ProtocolError(f"unknown message type {kind!r}")
