"""The asyncio streaming-analysis daemon (``memgaze serve``).

One :class:`TraceServer` accepts any number of client connections, each
speaking the framed protocol of :mod:`repro.serve.protocol`. The
concurrency model is deliberately simple and fully serialized where it
matters:

* **asyncio** handles sockets — many connections, one event loop;
* every ``append`` is enqueued on one **bounded** :class:`asyncio.Queue`
  and executed by one single-threaded executor, in arrival order;
* every ``query`` runs on the *same* single-threaded executor — so a
  query never observes a half-ingested archive, and the bit-identical
  contract with the offline report holds without locks.

Backpressure is **explicit load-shedding**, not silent buffering: when
the ingest queue is full, the ``append`` is rejected immediately with a
``busy`` response carrying a suggested retry delay, the rejection is
journaled, and ``serve.shed`` counts it. Clients (see
:func:`repro.serve.client.submit_archive`) back off and retry; the
daemon's memory stays bounded by ``queue_size`` frames regardless of how
fast clients push.

Graceful shutdown (``stop``): stop accepting connections, drain the
ingest queue, flush and close every session, journal the final metrics
snapshot. Because sessions publish their archive atomically on *every*
ingest, even a SIGKILL leaves archives that ``memgaze validate-trace``
accepts — graceful shutdown just guarantees nothing queued is dropped.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path

from repro._util.timers import StageTimers
from repro.core.artifacts import ArtifactStore
from repro.core.parallel import ParallelEngine
from repro.core.report import payload_json
from repro.serve.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_chunk,
    pack_frame,
    read_frame,
)
from repro.serve.session import SessionManager
from repro.trace.tracefile import TraceMeta

__all__ = ["ServeConfig", "TraceServer"]


@dataclass
class ServeConfig:
    """Daemon knobs; defaults suit tests and single-host use."""

    root: Path | str = "serve-state"
    host: str = "127.0.0.1"
    port: int = 0  # 0: let the OS pick; the bound port is self.port
    queue_size: int = 64
    workers: int = 1
    chunk_size: int | None = None
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
    #: busy responses carry this suggested client backoff
    retry_ms: int = 50
    #: accept the ``shutdown`` message (tests and local use; a shared
    #: daemon would disable it)
    allow_shutdown: bool = True


class TraceServer:
    """The streaming service: sockets in front, one worker thread behind.

    ``ingest_hook`` is a test seam: a callable invoked at the start of
    every ingest, *on the worker thread* — a test that blocks in it
    holds the worker, fills the bounded queue, and observes
    deterministic load-shedding.
    """

    def __init__(
        self,
        config: ServeConfig | None = None,
        *,
        journal=None,
        metrics=None,
        ingest_hook=None,
    ) -> None:
        self.config = config or ServeConfig()
        self.journal = journal
        self.metrics = metrics
        self.timers = StageTimers()
        self._ingest_hook = ingest_hook
        self.port: int | None = None
        self._server: asyncio.AbstractServer | None = None
        self._queue: asyncio.Queue | None = None
        self._worker: asyncio.Task | None = None
        self._pool: ThreadPoolExecutor | None = None
        self._stopping = asyncio.Event()
        self.manager: SessionManager | None = None
        self.engine: ParallelEngine | None = None

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        """Bind the socket and start the ingest worker."""
        cfg = self.config
        root = Path(cfg.root)
        store = ArtifactStore(
            root / "cache", journal=self.journal, metrics=self.metrics
        )
        self.engine = ParallelEngine(
            workers=cfg.workers,
            chunk_size=cfg.chunk_size,
            store=store,
            journal=self.journal,
            metrics=self.metrics,
        )
        self.manager = SessionManager(
            root / "sessions", journal=self.journal, metrics=self.metrics
        )
        self._queue = asyncio.Queue(maxsize=cfg.queue_size)
        # ONE thread: ingest and query interleave but never overlap, so
        # a query always sees a complete, settled archive.
        self._pool = ThreadPoolExecutor(max_workers=1)
        self._worker = asyncio.create_task(self._ingest_worker())
        self._server = await asyncio.start_server(
            self._handle_client, cfg.host, cfg.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.journal is not None:
            self.journal.emit(
                "serve-start",
                host=cfg.host,
                port=self.port,
                root=str(root),
                queue_size=cfg.queue_size,
            )

    async def serve_until_stopped(self) -> None:
        """Run until :meth:`stop` (or a ``shutdown`` frame) fires."""
        await self._stopping.wait()
        await self._shutdown()

    async def stop(self) -> None:
        """Request a graceful shutdown (idempotent)."""
        self._stopping.set()

    async def _shutdown(self) -> None:
        """Drain the queue, flush sessions, close everything."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._queue is not None:
            await self._queue.join()
        if self._worker is not None:
            self._worker.cancel()
            try:
                await self._worker
            except asyncio.CancelledError:
                pass
        closed = self.manager.close_all() if self.manager is not None else []
        if self.journal is not None:
            self.journal.emit("serve-stop", sessions_flushed=len(closed))
            self.journal.record_timers(self.timers)
            if self.metrics is not None:
                self.journal.record_metrics(self.metrics)
        if self._pool is not None:
            self._pool.shutdown(wait=True)
        if self.engine is not None:
            self.engine.close()

    # -- the ingest pipeline ---------------------------------------------------

    async def _ingest_worker(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            name, events, sample_id = await self._queue.get()
            try:
                await loop.run_in_executor(
                    self._pool, self._do_ingest, name, events, sample_id
                )
            except Exception as exc:  # keep the worker alive
                if self.journal is not None:
                    self.journal.warning(
                        f"ingest failed: {type(exc).__name__}: {exc}",
                        session=name,
                    )
                if self.metrics is not None:
                    self.metrics.counter("serve.ingest_errors").inc()
            finally:
                self._queue.task_done()
                self._gauge_depth()

    def _do_ingest(self, name: str, events, sample_id) -> None:
        """Worker-thread body of one accepted append."""
        if self._ingest_hook is not None:
            self._ingest_hook(name, len(events))
        session = self.manager.get(name)
        t0 = time.perf_counter()
        info = session.ingest(events, sample_id, self.engine)
        self.timers.add("serve-ingest", time.perf_counter() - t0, items=len(events))
        if self.metrics is not None:
            self.metrics.counter("serve.accepted").inc()
            self.metrics.counter("serve.events_ingested").inc(len(events))
        if session.journal is not None:
            session.journal.emit("chunk-ingested", **info)

    def _gauge_depth(self) -> None:
        if self.metrics is not None and self._queue is not None:
            self.metrics.gauge("serve.queue_depth").set(self._queue.qsize())

    # -- per-connection protocol loop ------------------------------------------

    async def _handle_client(self, reader, writer) -> None:
        opened: set[str] = set()
        try:
            while True:
                try:
                    header, payload = await read_frame(
                        reader, self.config.max_frame_bytes
                    )
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                try:
                    response = await self._dispatch(header, payload, opened)
                except ProtocolError as exc:
                    response = ({"type": "error", "error": str(exc)}, b"")
                except (KeyError, ValueError) as exc:
                    response = ({"type": "error", "error": str(exc)}, b"")
                writer.write(pack_frame(*response))
                await writer.drain()
                if header.get("type") == "shutdown" and self._stopping.is_set():
                    break
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(
        self, header: dict, payload: bytes, opened: set[str]
    ) -> tuple[dict, bytes]:
        kind = header.get("type")
        if kind == "ping":
            return {"type": "ok", "port": self.port}, b""

        if kind == "open":
            if header.get("protocol") != PROTOCOL_VERSION:
                raise ProtocolError(
                    f"protocol version mismatch: client "
                    f"{header.get('protocol')!r}, server {PROTOCOL_VERSION}"
                )
            name = header.get("session")
            meta = TraceMeta.from_json(
                payload.decode("utf-8")
            ) if payload else TraceMeta(module=str(name))
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(
                self._pool, self.manager.open, name, meta
            )
            opened.add(name)
            return {"type": "ok", "session": name}, b""

        if kind == "append":
            name = header.get("session")
            if name not in opened:
                raise ProtocolError(f"append before open for session {name!r}")
            events, sample_id = decode_chunk(header, payload)
            try:
                self._queue.put_nowait((name, events, sample_id))
            except asyncio.QueueFull:
                if self.metrics is not None:
                    self.metrics.counter("serve.shed").inc()
                if self.journal is not None:
                    self.journal.warning(
                        "ingest queue full — append load-shed",
                        session=name,
                        n_events=int(len(events)),
                        queue_size=self.config.queue_size,
                        reason="queue-full",
                    )
                return {
                    "type": "busy",
                    "retry_ms": self.config.retry_ms,
                    "queue_size": self.config.queue_size,
                }, b""
            self._gauge_depth()
            return {"type": "ok", "queued": True}, b""

        if kind == "query":
            name = header.get("session")
            session = self.manager.get(name)
            passes = header.get("passes")  # None: full report
            loop = asyncio.get_running_loop()
            info, payload_obj = await loop.run_in_executor(
                self._pool, session.query, passes, self.engine
            )
            if self.metrics is not None:
                self.metrics.counter("serve.queries").inc()
            text = payload_json(payload_obj)
            return {"type": "result", **info}, text.encode("utf-8")

        if kind == "close":
            name = header.get("session")
            if self._queue is not None:
                await self._queue.join()  # everything queued lands first
            info = self.manager.close(name)
            opened.discard(name)
            return {"type": "ok", **info}, b""

        if kind == "shutdown":
            if not self.config.allow_shutdown:
                raise ProtocolError("shutdown is disabled on this server")
            await self.stop()
            return {"type": "ok", "stopping": True}, b""

        raise ProtocolError(f"unknown message type {kind!r}")
