"""Wire format of the streaming analysis service.

Every message — either direction — is one **frame**::

    +----------------+-----------------+------------------+
    | !II fixed part | header bytes    | payload bytes    |
    | (json_len,     | UTF-8 JSON      | raw array bytes  |
    |  payload_len)  | object          | (may be empty)   |
    +----------------+-----------------+------------------+

The 8-byte fixed part is two big-endian ``uint32`` lengths; the header
is a JSON object whose ``type`` field names the message; the payload
carries bulk binary data (event records, sample ids) *outside* the JSON
so arrays cross the socket as raw bytes, never base64.

Client requests: ``open``, ``append``, ``query``, ``close``, ``ping``,
``shutdown``. Server responses: ``ok``, ``result``, ``busy`` (the
load-shedding rejection — see :mod:`repro.serve.daemon`; it carries
``retry_ms``, the shed ``scope`` (``"session"`` or ``"global"``), and
``queue_depth``, the rejected session's queued-append count, so a
multi-session client can throttle exactly the stream that is backed
up), ``error``.

Event chunks travel as ``events.tobytes()`` (:data:`EVENT_DTYPE`,
little-endian packed records) followed by the optional ``int32`` sample
ids; the header records both lengths so the receiver can split and
validate the payload exactly (:func:`encode_chunk` /
:func:`decode_chunk`).

Frames are bounded: a peer advertising a header or payload larger than
``max_bytes`` is rejected with :class:`ProtocolError` *before* any
allocation, so a malicious or broken client cannot balloon the daemon.
"""

from __future__ import annotations

import asyncio
import json
import struct

import numpy as np

from repro.trace.event import EVENT_DTYPE

__all__ = [
    "PROTOCOL_VERSION",
    "DEFAULT_MAX_FRAME_BYTES",
    "ProtocolError",
    "pack_frame",
    "read_frame",
    "read_frame_sync",
    "write_frame_sync",
    "encode_chunk",
    "decode_chunk",
]

#: bumped when the frame layout or message schema changes; ``open``
#: carries it so mismatched peers fail fast with a clear error.
PROTOCOL_VERSION = 1

#: default ceiling for one frame (header + payload). Large enough for a
#: multi-million-event append, small enough to bound a connection's
#: memory; both sides enforce it.
DEFAULT_MAX_FRAME_BYTES = 256 * 1024 * 1024

_FIXED = struct.Struct("!II")


class ProtocolError(Exception):
    """A malformed, oversized, or out-of-contract frame."""


def pack_frame(header: dict, payload: bytes = b"") -> bytes:
    """Serialize one frame: fixed lengths + JSON header + payload."""
    blob = json.dumps(header, sort_keys=True, separators=(",", ":")).encode("utf-8")
    return _FIXED.pack(len(blob), len(payload)) + blob + payload


def _parse_fixed(fixed: bytes, max_bytes: int) -> tuple[int, int]:
    json_len, payload_len = _FIXED.unpack(fixed)
    if json_len == 0:
        raise ProtocolError("frame has an empty header")
    if json_len + payload_len > max_bytes:
        raise ProtocolError(
            f"frame of {json_len + payload_len:,} bytes exceeds the "
            f"{max_bytes:,}-byte limit"
        )
    return json_len, payload_len


def _parse_header(blob: bytes) -> dict:
    try:
        header = json.loads(blob.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as e:
        raise ProtocolError(f"unparsable frame header: {e}") from e
    if not isinstance(header, dict) or "type" not in header:
        raise ProtocolError("frame header must be an object with a 'type' field")
    return header


async def read_frame(
    reader: asyncio.StreamReader, max_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> tuple[dict, bytes]:
    """Read one frame from an asyncio stream.

    Raises :class:`asyncio.IncompleteReadError` on a cleanly closed
    peer (zero bytes read) and :class:`ProtocolError` on garbage.
    """
    fixed = await reader.readexactly(_FIXED.size)
    json_len, payload_len = _parse_fixed(fixed, max_bytes)
    header = _parse_header(await reader.readexactly(json_len))
    payload = await reader.readexactly(payload_len) if payload_len else b""
    return header, payload


def _read_all(fp, n: int) -> bytes:
    chunks: list[bytes] = []
    remaining = n
    while remaining > 0:
        got = fp.read(remaining)
        if not got:
            raise ProtocolError(
                f"connection closed mid-frame ({n - remaining} of {n} bytes)"
            )
        chunks.append(got)
        remaining -= len(got)
    return b"".join(chunks)


def read_frame_sync(fp, max_bytes: int = DEFAULT_MAX_FRAME_BYTES) -> tuple[dict, bytes]:
    """Blocking :func:`read_frame` over a socket file object.

    Raises :class:`EOFError` when the peer closed before a frame began.
    """
    fixed = fp.read(_FIXED.size)
    if not fixed:
        raise EOFError("connection closed")
    if len(fixed) < _FIXED.size:
        fixed += _read_all(fp, _FIXED.size - len(fixed))
    json_len, payload_len = _parse_fixed(fixed, max_bytes)
    header = _parse_header(_read_all(fp, json_len))
    payload = _read_all(fp, payload_len) if payload_len else b""
    return header, payload


def write_frame_sync(fp, header: dict, payload: bytes = b"") -> None:
    """Blocking frame write (single buffered write + flush)."""
    fp.write(pack_frame(header, payload))
    fp.flush()


# -- event chunk encoding ------------------------------------------------------


def encode_chunk(
    events: np.ndarray, sample_id: np.ndarray | None
) -> tuple[dict, bytes]:
    """Header fields + payload bytes for one event chunk.

    The receiver reconstructs the arrays exactly: EVENT_DTYPE records
    first, then the optional ``int32`` sample ids.
    """
    if events.dtype != EVENT_DTYPE:
        raise TypeError(f"expected EVENT_DTYPE events, got {events.dtype}")
    payload = events.tobytes()
    fields = {"n_events": int(len(events)), "n_sid": None}
    if sample_id is not None:
        sample_id = np.ascontiguousarray(sample_id, dtype=np.int32)
        if len(sample_id) != len(events):
            raise ValueError("sample_id length must match events")
        fields["n_sid"] = int(len(sample_id))
        payload += sample_id.tobytes()
    return fields, payload


def decode_chunk(header: dict, payload: bytes) -> tuple[np.ndarray, np.ndarray | None]:
    """Inverse of :func:`encode_chunk`; validates the payload geometry."""
    try:
        n_events = int(header["n_events"])
        n_sid = header.get("n_sid")
    except (KeyError, TypeError, ValueError) as e:
        raise ProtocolError(f"append header missing chunk geometry: {e}") from e
    if n_events < 0:
        raise ProtocolError(f"negative n_events: {n_events}")
    ev_bytes = n_events * EVENT_DTYPE.itemsize
    sid_bytes = 0 if n_sid is None else int(n_sid) * 4
    if n_sid is not None and int(n_sid) != n_events:
        raise ProtocolError(f"sample_id length {n_sid} != n_events {n_events}")
    if len(payload) != ev_bytes + sid_bytes:
        raise ProtocolError(
            f"payload holds {len(payload)} bytes, geometry implies "
            f"{ev_bytes + sid_bytes}"
        )
    events = np.frombuffer(payload[:ev_bytes], dtype=EVENT_DTYPE)
    sample_id = (
        None
        if n_sid is None
        else np.frombuffer(payload[ev_bytes:], dtype=np.int32)
    )
    return events, sample_id
