"""Per-stream session state for the streaming analysis service.

A :class:`ServeSession` owns one client stream's growing trace: the
in-memory event arrays, the on-disk archive they are flushed to, and the
analysis freshness loop. Every accepted chunk

1. appends to the in-memory arrays,
2. **atomically rewrites** the session archive
   (:func:`repro.trace.tracefile.write_trace` with ``atomic=True``), so
   concurrent readers — live queries, an offline ``memgaze report``, a
   crashing daemon's survivors — only ever see complete archives, and
3. drives :meth:`ParallelEngine.analyze_file` over the archive, which
   warms the content-addressed :class:`~repro.core.artifacts.ArtifactStore`
   under the archive's *new* digest via the prefix-incremental path:
   only the appended tail is scanned, the cached prefix partials merge in.

A query then loads the archive through the same
:func:`repro.trace.loader.load_trace_collection` +
:meth:`ParallelEngine.run_passes` path the offline CLI uses — the store
is warm, so the scan is skipped, and the resulting JSON payload is
byte-identical to ``memgaze report --json`` over the same archive.

The :class:`SessionManager` maps stream names to sessions; it does no
locking because it never needs any. Each shard worker process of the
daemon (:mod:`repro.serve.shard`) owns one manager over the shared
``sessions/`` directory, every session is routed to exactly one worker
(``crc32(name) % serve_workers``), and that worker executes the
session's ingests and queries strictly in arrival order — which is what
makes "the archive never changes mid-query" true. Re-opening a session
rehydrates its on-disk archive *in whichever worker owns the name*, so
the ownership survives daemon restarts, worker crashes, and
``--serve-workers`` changes (the route moves, the archive follows).
"""

from __future__ import annotations

import re
from pathlib import Path

import numpy as np

from repro.core.artifacts import ArtifactStore
from repro.core.report import full_report_payload, passes_payload, viz_report_payload
from repro.trace.compress import sample_ratio_from
from repro.trace.loader import load_trace_collection
from repro.trace.tracefile import TraceMeta, write_trace

__all__ = ["ServeSession", "SessionManager"]

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,99}$")


def _check_name(name: str) -> str:
    """Session names become file names; reject anything path-like."""
    if not isinstance(name, str) or not _NAME_RE.match(name):
        raise ValueError(
            f"invalid session name {name!r}: use letters, digits, '.', '_', "
            "'-' (max 100 chars, no leading '.')"
        )
    return name


class ServeSession:
    """One client stream: a growing archive plus its analysis freshness."""

    def __init__(self, name: str, root: Path, meta: TraceMeta, journal=None) -> None:
        self.name = _check_name(name)
        self.archive = root / f"{self.name}.npz"
        self.meta = meta
        self.journal = journal
        self._events: list[np.ndarray] = []
        self._sids: list[np.ndarray] | None = []
        self.n_chunks = 0
        self.n_events = 0
        #: how the last freshness analysis ran ("incremental" after the
        #: first chunk, when appends start new samples)
        self.last_mode: str | None = None
        self.last_skipped = 0
        self.closed = False

    def rehydrate(self) -> bool:
        """Adopt an existing session archive (re-attach after a close).

        Returns True when an archive was found and loaded: its events,
        sample ids, and metadata replace the open request's, so appends
        extend the stored trace and queries work immediately. The
        adopted events count as one prior chunk.
        """
        if not self.archive.exists():
            return False
        from repro.trace.tracefile import read_trace

        events, meta, sample_id = read_trace(self.archive)
        self.meta = meta
        self._events = [events]
        self._sids = None if sample_id is None else [sample_id]
        self.n_chunks = 1
        self.n_events = int(len(events))
        return True

    # -- ingest (called inside the session's owning shard worker) --------------

    def ingest(self, events: np.ndarray, sample_id: np.ndarray | None, engine) -> dict:
        """Append one chunk, publish the archive, refresh the analysis.

        Returns a small summary dict for the journal/ack. A chunk with
        no sample ids degrades the whole session to sid-less (reuse
        becomes chunk-scoped, incremental re-analysis stops matching) —
        journaled once, on the degrading chunk.
        """
        self._events.append(np.asarray(events))
        if self._sids is not None:
            if sample_id is None:
                if self.n_chunks and self.journal is not None:
                    self.journal.warning(
                        "chunk carries no sample ids: session archive "
                        "degrades to sid-less (chunk-scoped reuse, no "
                        "incremental re-analysis)",
                        chunk=self.n_chunks,
                    )
                self._sids = None
            else:
                self._sids.append(np.asarray(sample_id, dtype=np.int32))
        self.n_chunks += 1
        self.n_events += int(len(events))

        all_events = np.concatenate(self._events) if self._events else events
        all_sids = (
            None if self._sids is None else np.concatenate(self._sids)
        )
        write_trace(self.archive, all_events, self.meta, all_sids, atomic=True)

        analysis = engine.analyze_file(self.archive)
        self.last_mode = analysis.mode
        self.last_skipped = analysis.skipped_events
        return {
            "chunk": self.n_chunks,
            "n_events": self.n_events,
            "mode": analysis.mode,
            "skipped_events": analysis.skipped_events,
        }

    # -- query (same shard worker, so the archive is stable) -------------------

    def query(self, passes: list[str] | None, engine, viz: bool = False) -> tuple[dict, dict]:
        """Analyze the archive as it stands; returns ``(info, payload)``.

        ``passes=None`` builds the full-report payload; a list of names
        builds the ``--passes`` payload; ``viz=True`` builds the
        visual-report payload (:func:`repro.core.report.
        viz_report_payload`) the daemon's dashboard renders. Either way
        the archive is loaded through the shared loader and analyzed
        through the same engine path the offline CLI uses, keyed by the
        archive's content digest — so partials warmed by ingest are
        reused and the payload is byte-identical to the offline report.
        """
        if self.n_chunks == 0:
            raise ValueError("session has no ingested chunks yet")
        loaded = load_trace_collection(self.archive, journal=self.journal)
        col = loaded.collection
        rho = sample_ratio_from(col)
        store_key = None
        if loaded.clean and engine.store is not None:
            store_key = ArtifactStore.archive_digest(self.archive)
        token = engine.window_token()
        if viz:
            payload = viz_report_payload(
                self.meta.module,
                col,
                rho,
                loaded.fn_names,
                engine,
                window_token=token,
                store_key=store_key,
            )
        elif passes is None:
            payload = full_report_payload(
                self.meta.module,
                col,
                rho,
                loaded.fn_names,
                engine,
                window_token=token,
                store_key=store_key,
            )
        else:
            results = engine.run_passes(
                col.events,
                list(passes),
                sample_id=col.sample_id,
                rho=rho,
                fn_names=loaded.fn_names,
                window_id=(token, "whole"),
                store_key=store_key,
            )
            payload = passes_payload(self.meta.module, col, rho, passes, results)
        info = {
            "session": self.name,
            "n_chunks": self.n_chunks,
            "n_events": self.n_events,
            "mode": self.last_mode,
            "skipped_events": self.last_skipped,
        }
        return info, payload

    def summary(self) -> dict:
        """Closing summary for the ``close`` ack and the journal."""
        return {
            "session": self.name,
            "archive": str(self.archive),
            "n_chunks": self.n_chunks,
            "n_events": self.n_events,
            "mode": self.last_mode,
        }


class SessionManager:
    """Name → session map plus the shared archive directory."""

    def __init__(self, root, journal=None, metrics=None) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.journal = journal
        self.metrics = metrics
        self.sessions: dict[str, ServeSession] = {}

    def open(self, name: str, meta: TraceMeta) -> ServeSession:
        """Create (or re-attach to) the named session.

        A name whose archive already exists on disk — a previous daemon
        run, or a session closed earlier in this one — is *re-attached*:
        the archive's own events and metadata are rehydrated so new
        appends extend the existing trace instead of shadowing it.
        """
        existing = self.sessions.get(name)
        if existing is not None:
            return existing
        bound = self.journal.bind(session=name) if self.journal is not None else None
        session = ServeSession(name, self.root, meta, journal=bound)
        rehydrated = session.rehydrate()
        self.sessions[name] = session
        if self.metrics is not None:
            self.metrics.gauge("serve.sessions_active").set(len(self.sessions))
        if bound is not None:
            bound.emit(
                "session-open",
                archive=str(session.archive),
                rehydrated=rehydrated,
                n_events=session.n_events,
            )
        return session

    def get(self, name: str) -> ServeSession:
        session = self.sessions.get(name)
        if session is None:
            raise KeyError(f"no open session named {name!r}")
        return session

    def close(self, name: str) -> dict:
        """Detach a session; its archive stays on disk, valid."""
        session = self.get(name)
        session.closed = True
        info = session.summary()
        del self.sessions[name]
        if self.metrics is not None:
            self.metrics.gauge("serve.sessions_active").set(len(self.sessions))
        if session.journal is not None:
            session.journal.emit("session-close", **info)
        return info

    def close_all(self) -> list[dict]:
        """Drain every remaining session (graceful-shutdown path)."""
        return [self.close(name) for name in list(self.sessions)]
