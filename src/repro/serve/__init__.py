"""Streaming analysis service: live trace ingest + incremental analysis.

The batch pipeline waits for a finished archive; this package turns the
prefix-incremental analysis path (:mod:`repro.core.artifacts` +
:class:`repro.trace.tracefile.PrefixSkip`) into a long-lived daemon so a
trace can be *queried while it is still being written*:

* :mod:`repro.serve.protocol` — the length-prefixed wire format shared
  by daemon and client (JSON header + raw array payload);
* :mod:`repro.serve.session` — per-stream session state: the growing
  archive, its analysis snapshot, and the ingest/query workers;
* :mod:`repro.serve.daemon` — the asyncio server: bounded ingest queue
  with explicit load-shedding, graceful drain-and-flush shutdown;
* :mod:`repro.serve.client` — a small blocking client library backing
  ``memgaze submit`` / ``memgaze query``.

The service contract is the same bit-identical one the parallel engine
honors: a live ``query`` response equals ``memgaze report --json
--passes ...`` run offline on an archive holding exactly the chunks
ingested so far (``docs/serving.md``).
"""

from repro.serve.client import ServeBusy, ServeClient, ServeError, submit_archive
from repro.serve.daemon import ServeConfig, TraceServer
from repro.serve.protocol import ProtocolError
from repro.serve.session import SessionManager, ServeSession

__all__ = [
    "ProtocolError",
    "ServeBusy",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServeSession",
    "SessionManager",
    "TraceServer",
    "submit_archive",
]
