"""Streaming analysis service: live trace ingest + incremental analysis.

The batch pipeline waits for a finished archive; this package turns the
prefix-incremental analysis path (:mod:`repro.core.artifacts` +
:class:`repro.trace.tracefile.PrefixSkip`) into a long-lived daemon so a
trace can be *queried while it is still being written*:

* :mod:`repro.serve.protocol` — the length-prefixed wire format shared
  by daemon and client (JSON header + raw array payload);
* :mod:`repro.serve.session` — per-stream session state: the growing
  archive, its analysis snapshot, and the ingest/query paths;
* :mod:`repro.serve.shard` — the session-shard worker processes: each
  session is pinned to one worker (``crc32(name) % serve_workers``) so
  per-session ordering is preserved while independent sessions run
  concurrently;
* :mod:`repro.serve.daemon` — the asyncio server: per-worker dispatch
  queues, layered (per-session + global) load-shedding, worker-crash
  isolation, graceful drain-and-flush shutdown;
* :mod:`repro.serve.client` — a small blocking client library backing
  ``memgaze submit`` / ``memgaze query``.

The service contract is the same bit-identical one the parallel engine
honors: a live ``query`` response equals ``memgaze report --json
--passes ...`` run offline on an archive holding exactly the chunks
ingested so far, per session at any worker count (``docs/serving.md``).
"""

from repro.serve.client import ServeBusy, ServeClient, ServeError, submit_archive
from repro.serve.daemon import ServeConfig, TraceServer
from repro.serve.protocol import ProtocolError
from repro.serve.session import SessionManager, ServeSession
from repro.serve.shard import ServeOpError, WorkerCrashed, route_session

__all__ = [
    "ProtocolError",
    "ServeBusy",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServeOpError",
    "ServeSession",
    "SessionManager",
    "TraceServer",
    "WorkerCrashed",
    "route_session",
    "submit_archive",
]
