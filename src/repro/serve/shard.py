"""Session-shard workers: the process pool behind ``memgaze serve``.

The daemon routes every session to exactly one :class:`ShardWorker` —
a persistent child process — chosen by :func:`route_session`
(``crc32(name) % n_workers``, *not* the salted builtin ``hash``, so the
route is stable across daemon restarts and documented in the operator's
handbook). One worker executes its sessions' operations strictly in
arrival order, which is what preserves per-session ordering — and with
it the live-query == offline-report byte-identity — while sessions on
*different* workers run genuinely concurrently.

Each worker process owns the full per-session machinery the old
single-executor daemon held in one thread: a
:class:`~repro.serve.session.SessionManager` over the shared
``<root>/sessions`` directory, a :class:`~repro.core.parallel.
ParallelEngine`, and an :class:`~repro.core.artifacts.ArtifactStore`
over the shared ``<root>/cache``. Sharing the directories is safe
because the routing is deterministic (no two workers ever touch the
same session archive), archive publication is atomic
(``write_trace(..., atomic=True)``), the artifact cache writes via
``os.replace``, and the run journal appends with ``O_APPEND``.

The wire between daemon and worker is one duplex pipe carrying small
dict requests (event arrays ride along pickled) and dict replies::

    {"op": "open"|"ingest"|"query"|"close"|"stop", "name": ..., ...}
    {"ok": True, ...} | {"ok": False, "etype": ..., "error": ...}

A dead worker surfaces as :class:`WorkerCrashed` on the next round
trip; the daemon respawns the worker (fresh process, empty session
map — archives on disk survive and rehydrate on reopen) and turns the
failed operation into a per-session error instead of a daemon death.
Workers also watch the pipe themselves: daemon death reads as EOF and
the worker exits rather than leaking.
"""

from __future__ import annotations

import multiprocessing
import time
import zlib
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

__all__ = [
    "route_session",
    "ServeOpError",
    "WorkerCrashed",
    "ShardWorker",
]


def route_session(name: str, n_workers: int) -> int:
    """The worker index owning ``name``: ``crc32(name) % n_workers``.

    Deterministic and restart-stable (unlike builtin ``hash``, which is
    salted per process), so a session always lands on the same worker
    for a given ``--serve-workers`` and tooling can predict placement.
    """
    return zlib.crc32(name.encode("utf-8")) % max(1, int(n_workers))


class ServeOpError(Exception):
    """A session operation failed inside (or en route to) its worker."""


class WorkerCrashed(ServeOpError):
    """The worker process died mid-conversation (pipe EOF/EPIPE)."""

    def __init__(self, index: int) -> None:
        super().__init__(f"serve worker {index} crashed")
        self.index = index


def _mp_context():
    # fork keeps test seams (closures over mp.Event) and the inherited
    # journal descriptor working; spawn is the non-unix fallback, where
    # hooks and journals must pickle
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _worker_main(
    conn,
    index: int,
    root,
    journal,
    engine_kwargs: dict,
    ingest_hook,
    query_hook,
) -> None:
    """The worker process body: one blocking request/reply loop.

    Requests for one worker are answered strictly in arrival order —
    the per-session ordering guarantee lives here. The loop survives
    per-operation exceptions (they become error replies) and exits on
    ``stop`` or on pipe EOF (daemon death).
    """
    from repro.core.artifacts import ArtifactStore
    from repro.core.parallel import ParallelEngine
    from repro.core.report import payload_json
    from repro.obs.metrics import MetricsRegistry
    from repro.serve.session import SessionManager

    root = Path(root)
    metrics = MetricsRegistry()
    store = ArtifactStore(root / "cache", journal=journal, metrics=metrics)
    engine = ParallelEngine(
        store=store, journal=journal, metrics=metrics, **engine_kwargs
    )
    manager = SessionManager(root / "sessions", journal=journal, metrics=None)

    while True:
        try:
            req = conn.recv()
        except (EOFError, OSError):
            break  # daemon is gone; don't linger
        op = req.get("op")
        try:
            if op == "stop":
                closed = manager.close_all()
                engine.close()
                conn.send(
                    {"ok": True, "closed": closed, "metrics": metrics.as_dict()}
                )
                break
            name = req.get("name")
            if op == "open":
                session = manager.open(name, req["meta"])
                reply = {
                    "ok": True,
                    "session": session.name,
                    "n_events": session.n_events,
                }
            elif op == "ingest":
                if ingest_hook is not None:
                    ingest_hook(name, len(req["events"]))
                session = manager.get(name)
                t0 = time.perf_counter()
                info = session.ingest(req["events"], req["sample_id"], engine)
                seconds = time.perf_counter() - t0
                if session.journal is not None:
                    session.journal.emit("chunk-ingested", **info)
                reply = {
                    "ok": True,
                    "info": info,
                    "seconds": seconds,
                    "n_chunk_events": int(len(req["events"])),
                }
            elif op == "query":
                if query_hook is not None:
                    query_hook(name, req["passes"])
                session = manager.get(name)
                info, payload = session.query(
                    req["passes"], engine, viz=bool(req.get("viz"))
                )
                reply = {"ok": True, "info": info, "text": payload_json(payload)}
            elif op == "close":
                reply = {"ok": True, "info": manager.close(name)}
            else:
                reply = {
                    "ok": False,
                    "etype": "ProtocolError",
                    "error": f"unknown worker op {op!r}",
                }
        except Exception as exc:  # the worker survives; the op fails
            reply = {"ok": False, "etype": type(exc).__name__, "error": str(exc)}
        try:
            conn.send(reply)
        except (OSError, BrokenPipeError):
            break
    conn.close()


class ShardWorker:
    """Daemon-side handle of one persistent session-shard process.

    Holds the process, its pipe, a dedicated one-thread executor the
    asyncio daemon uses for the blocking round trips (one thread per
    worker keeps round trips FIFO without blocking the event loop), the
    worker's bounded dispatch queue, and the daemon's view of which
    sessions the worker currently owns.
    """

    def __init__(
        self,
        index: int,
        root,
        *,
        journal=None,
        engine_kwargs: dict | None = None,
        ingest_hook=None,
        query_hook=None,
    ) -> None:
        self.index = index
        self._root = root
        self._journal = journal
        self._engine_kwargs = dict(engine_kwargs or {})
        self._ingest_hook = ingest_hook
        self._query_hook = query_hook
        self.process = None
        self.conn = None
        self.sessions: set[str] = set()
        self.restarts = 0
        # created lazily by the daemon once its loop runs
        self.queue = None
        self.executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"serve-shard-{index}"
        )

    # -- lifecycle -------------------------------------------------------------

    def spawn(self) -> None:
        """Start (or restart) the worker process."""
        ctx = _mp_context()
        parent, child = ctx.Pipe()
        self.process = ctx.Process(
            target=_worker_main,
            args=(
                child,
                self.index,
                str(self._root),
                self._journal,
                self._engine_kwargs,
                self._ingest_hook,
                self._query_hook,
            ),
            name=f"memgaze-serve-shard-{self.index}",
        )
        self.process.start()
        child.close()  # the parent's EOF detector needs the only child end closed
        self.conn = parent

    def respawn(self) -> None:
        """Replace a crashed process; its in-memory sessions are gone."""
        if self.process is not None:
            self.process.join(timeout=5)
        if self.conn is not None:
            self.conn.close()
        self.restarts += 1
        self.sessions.clear()
        self.spawn()

    # -- blocking round trips (run on self.executor, never the loop) -----------

    def request(self, req: dict) -> dict:
        """One FIFO round trip; raises :class:`WorkerCrashed` on death."""
        try:
            self.conn.send(req)
            return self.conn.recv()
        except (EOFError, OSError, BrokenPipeError) as exc:
            raise WorkerCrashed(self.index) from exc

    def stop(self) -> dict:
        """Graceful stop: flush every owned session, join the process.

        Returns the worker's closing reply — session summaries plus its
        metrics-registry snapshot, which the daemon merges into the
        shared registry (the instruments' merges are exact and
        order-free, see :mod:`repro.obs.metrics`).
        """
        reply = self.request({"op": "stop"})
        self.process.join(timeout=60)
        self.conn.close()
        return reply

    def kill(self) -> None:
        """Hard teardown for abnormal daemon exit paths (idempotent)."""
        if self.process is not None and self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=5)
        if self.conn is not None:
            self.conn.close()
        self.executor.shutdown(wait=False)
