"""Vectorised left-rank counting (the engine room of the stack-distance kernel).

:func:`count_le_left` answers, for every position ``i`` of an integer
array ``a`` — optionally segmented into contiguous groups — the query

    ``rank(i) = #{ j < i : group[j] == group[i] and a[j] <= a[i] }``

without a Python-level loop. It is the exact-integer primitive behind
the vectorised reuse-distance kernel (:mod:`repro.core.reuse`): with
``prev[i]`` the index of the previous same-block access inside the
window, the spatio-temporal reuse distance collapses to
``D[i] = rank(i) - prev[i] - 1`` (see ``docs/performance.md`` for the
derivation), so one rank sweep replaces the per-event Fenwick walk.

The algorithm is a bottom-up mergesort run on all groups at once, in
which each level is a handful of numpy array operations:

* runs of width ``w`` are kept sorted in place; encoding each element
  as ``value + pair_id * K`` (``K`` larger than the value range,
  ``pair_id`` a cumulative counter that restarts runs at group
  boundaries) makes one stable ``argsort`` per level *be* the merge of
  every (left, right) run pair simultaneously — stable radix sort on
  int64 keys, no comparisons in Python;
* stability puts tied left-run elements before right-run elements, so
  a right-run element's merged position minus its within-run index is
  exactly "how many left-sibling elements are <= me" — the count the
  rank needs — for free.

Levels stop at the longest group, so the cost is
O(n log(max group length)) radix-sort work. All arithmetic is int64
and exact: results are bit-identical to the reference Fenwick loop for
any input.
"""

from __future__ import annotations

import numpy as np

__all__ = ["count_le_left"]


def count_le_left(values: np.ndarray, groups: np.ndarray | None = None) -> np.ndarray:
    """Per-position count of earlier same-group elements ``<=`` this one.

    ``groups``, when given, must hold contiguous group ids (equal values
    adjacent, e.g. a non-decreasing window index); counting never
    crosses a group boundary. Returns an int64 array of ``len(values)``.
    Values may be any integer dtype (they are densified internally, so
    magnitude never overflows the merge encoding).
    """
    a = np.asarray(values)
    n = a.size
    out = np.zeros(n, dtype=np.int64)
    if n <= 1:
        return out
    pos = np.arange(n, dtype=np.int64)
    if groups is None:
        lpos = pos
        group_break = np.zeros(n, dtype=bool)
        maxlen = n
    else:
        g = np.asarray(groups)
        if g.size != n:
            raise ValueError("groups length must match values")
        group_break = np.empty(n, dtype=bool)
        group_break[0] = False
        group_break[1:] = g[1:] != g[:-1]
        starts = np.concatenate([[0], np.flatnonzero(group_break)])
        # local position within the group, a property of the slot alone
        lpos = pos - starts[np.cumsum(group_break)]
        maxlen = int(np.diff(np.append(starts, n)).max())

    # densify: replace values by their sorted-unique rank so the pair
    # encoding below stays well inside int64 for any input magnitudes
    # (k * pair_id <= n * n < 2**63 for any array that fits in memory)
    val = np.unique(a, return_inverse=True)[1].astype(np.int64)
    k = int(val.max()) + 1
    orig = pos.copy()

    shift = 0  # current run width is 2**shift (bit ops beat int64 div/mod)
    while (1 << shift) < maxlen:
        pair_mask = (2 << shift) - 1
        # pair ids: contiguous, monotone, restarting at group boundaries
        brk = group_break | ((lpos & pair_mask) == 0)
        brk[0] = False
        pair_id = np.cumsum(brk)
        # one stable sort merges every (left, right) run pair at once;
        # element at sorted rank r lands in slot r (pairs are contiguous
        # slot ranges in slot order)
        order = np.argsort(val + pair_id * k, kind="stable")
        val = val[order]
        orig = orig[order]
        # a right-run element's merged-pair index minus its within-run
        # index is the number of left-sibling elements <= it (stability
        # keeps tied left elements first)
        old_lpos = lpos[order]
        right = np.flatnonzero(old_lpos & (1 << shift))
        cnt_le = (lpos[right] & pair_mask) - (old_lpos[right] & (pair_mask >> 1))
        out[orig[right]] += cnt_le
        shift += 1
    return out
