"""A small least-recently-used map with hit/miss accounting.

Used to memoize merged analysis partials per window
(:class:`repro.core.parallel.ParallelEngine`) and available to any layer
that needs bounded memoization. Not thread-safe; callers own their
cache.
"""

from __future__ import annotations

from collections import OrderedDict

__all__ = ["LRUCache"]


class LRUCache:
    """A capacity-bounded LRU map.

    ``get`` marks the key most recently used; ``put`` inserts (or
    overwrites) and evicts the least recently used entries beyond
    ``capacity``. ``hits``/``misses`` count ``get`` outcomes for
    observability (``memgaze report --stats`` prints them).
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        self.capacity = capacity
        self._data: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key) -> bool:
        return key in self._data

    def get(self, key):
        """The cached value for ``key``, or None (marks it most recent)."""
        if key in self._data:
            self._data.move_to_end(key)
            self.hits += 1
            return self._data[key]
        self.misses += 1
        return None

    def put(self, key, value) -> None:
        """Insert ``key``, evicting the least recently used entry if full."""
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)
