"""Plain-text table rendering for the paper-style reports.

The benchmark harness prints the same rows the paper's tables report;
``format_table`` renders them with aligned columns so the output is
directly comparable to the published tables.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["format_table"]


def _cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
