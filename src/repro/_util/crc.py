"""Batched CRC32 over array chunk views, without intermediate copies.

The trace-health layer checksums archives in :data:`HEALTH_CHUNK_EVENTS`
sized chunks. The original sweep materialised every chunk with
``chunk.tobytes()`` before hashing — one full copy of the member per
audit. ``zlib.crc32`` accepts any C-contiguous buffer, so hashing a
zero-copy byte view of each chunk produces identical checksums while
touching the array bytes exactly once. :func:`crc32_chunks` is the one
shared sweep used by the archive writer, the health auditor, and the
streaming prefix-skip path, so all three stay bit-for-bit in agreement
about chunk geometry.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["crc32_chunks", "crc32_of"]


def _byte_view(arr: np.ndarray) -> memoryview:
    """Flat ``uint8`` view of a contiguous array's raw bytes (no copy)."""
    if not arr.flags.c_contiguous:
        # slices of archive members are always contiguous; anything else
        # (a strided caller view) must pay for one packed copy
        arr = np.ascontiguousarray(arr)
    return memoryview(arr).cast("B")


def crc32_of(arr: np.ndarray) -> int:
    """CRC32 of one array's raw bytes, equal to ``crc32(arr.tobytes())``."""
    return zlib.crc32(_byte_view(arr))


def crc32_chunks(arr: np.ndarray, step: int, *, at_least_one: bool = False) -> list[int]:
    """Per-chunk CRC32s of ``arr`` in chunks of ``step`` records.

    Equivalent to ``[crc32(arr[i:i+step].tobytes()) for i in
    range(0, len(arr), step)]`` without the per-chunk copies. With
    ``at_least_one`` an empty array still yields one checksum (of zero
    bytes) — the archive health record's layout for empty traces, which
    content digests and cache keys depend on.
    """
    if step <= 0:
        raise ValueError(f"step must be > 0, got {step}")
    n = len(arr)
    if n == 0:
        return [zlib.crc32(b"")] if at_least_one else []
    buf = _byte_view(arr)
    item = arr.dtype.itemsize
    return [
        zlib.crc32(buf[lo * item : min(lo + step, n) * item])
        for lo in range(0, n, step)
    ]
