"""Wall-clock timing helper used by the toolchain-time benchmarks."""

from __future__ import annotations

import time
from types import TracebackType

__all__ = ["Timer"]


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    >>> with Timer() as t:
    ...     pass
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        assert self._start is not None
        self.elapsed = time.perf_counter() - self._start

    def restart(self) -> None:
        """Reset the start point for reuse of the same object."""
        self._start = time.perf_counter()
        self.elapsed = 0.0
