"""Wall-clock timing helpers: one-shot timers and per-stage counters.

:class:`Timer` measures a single region (used by the toolchain-time
benchmarks). :class:`StageTimers` is an accumulating registry for
pipeline instrumentation: each named stage collects total elapsed time,
call count, and an optional item count, from which it reports
throughput (items/s). The parallel analysis engine records its
plan/scatter/compute/merge stages here, and ``memgaze report --stats``
prints the rendered table. :meth:`StageTimers.as_records` is the bridge
into the observability layer: the run journal
(:meth:`repro.obs.journal.RunJournal.record_timers`) and the
``--metrics`` JSON export both consume it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from types import TracebackType

__all__ = ["Timer", "StageStats", "StageTimers"]


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    >>> with Timer() as t:
    ...     pass
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        assert self._start is not None
        self.elapsed = time.perf_counter() - self._start

    def restart(self) -> None:
        """Reset the start point for reuse of the same object."""
        self._start = time.perf_counter()
        self.elapsed = 0.0


@dataclass
class StageStats:
    """Accumulated statistics for one named stage."""

    seconds: float = 0.0
    calls: int = 0
    items: int = 0

    @property
    def throughput(self) -> float:
        """Items per second (0.0 when no time has accumulated)."""
        return self.items / self.seconds if self.seconds > 0 else 0.0

    def as_dict(self) -> dict:
        """Plain-JSON snapshot (what the run journal and metrics export)."""
        return {
            "seconds": self.seconds,
            "calls": self.calls,
            "items": self.items,
            "throughput": self.throughput,
        }


class _StageRegion:
    """Context manager that adds its elapsed time to a stage on exit."""

    def __init__(self, timers: "StageTimers", name: str, items: int) -> None:
        self._timers = timers
        self._name = name
        self._items = items
        self._start = 0.0

    def __enter__(self) -> "_StageRegion":
        self._start = time.perf_counter()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self._timers.add(
            self._name, time.perf_counter() - self._start, items=self._items
        )


@dataclass
class StageTimers:
    """Accumulating per-stage timing registry.

    >>> timers = StageTimers()
    >>> with timers.stage("merge", items=100):
    ...     pass
    >>> timers.stats["merge"].calls
    1
    """

    stats: dict[str, StageStats] = field(default_factory=dict)

    def stage(self, name: str, items: int = 0) -> _StageRegion:
        """Time a region; elapsed seconds accumulate under ``name``."""
        return _StageRegion(self, name, items)

    def add(self, name: str, seconds: float, items: int = 0) -> None:
        """Record ``seconds`` (and ``items`` processed) against ``name``."""
        s = self.stats.setdefault(name, StageStats())
        s.seconds += seconds
        s.calls += 1
        s.items += items

    def merge(self, other: "StageTimers") -> None:
        """Fold another registry's accumulated stats into this one."""
        for name, s in other.stats.items():
            mine = self.stats.setdefault(name, StageStats())
            mine.seconds += s.seconds
            mine.calls += s.calls
            mine.items += s.items

    def reset(self) -> None:
        """Drop all accumulated statistics."""
        self.stats.clear()

    def as_records(self) -> list[dict]:
        """One plain-JSON record per stage — the journal/metrics bridge.

        :meth:`~repro.obs.journal.RunJournal.record_timers` emits each
        record as a ``stage-summary`` journal line, and the CLI's
        ``--metrics`` export embeds them under ``"stages"``.
        """
        return [{"stage": name, **s.as_dict()} for name, s in self.stats.items()]

    def report(self, title: str = "stage timings") -> str:
        """Render the accumulated stages as an aligned text table."""
        lines = [f"== {title} =="]
        if not self.stats:
            lines.append("  (no stages recorded)")
            return "\n".join(lines)
        width = max(len(n) for n in self.stats)
        for name, s in self.stats.items():
            row = f"  {name:<{width}}  {s.seconds * 1e3:10.2f} ms  x{s.calls}"
            if s.items:
                row += f"  {s.items:>12,} items  {s.throughput:14,.0f} items/s"
            lines.append(row)
        return "\n".join(lines)
