"""Fenwick (binary-indexed) tree over integer positions.

Used by the reuse-distance computation (``repro.core.reuse``): the classic
O(n log n) stack-distance algorithm keeps one bit per trace position that
marks the *most recent* access to each block, and counts marked positions
in a suffix with a prefix-sum query.
"""

from __future__ import annotations

import numpy as np

__all__ = ["FenwickTree"]


class FenwickTree:
    """Prefix-sum tree over ``n`` integer-valued slots, 0-indexed externally.

    Supports point update and prefix/range queries in O(log n). Values may
    be negative (needed to *unmark* a position when a block is re-accessed).
    """

    __slots__ = ("_n", "_tree")

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError(f"size must be non-negative, got {n}")
        self._n = n
        # slot 0 unused internally; 1-indexed tree
        self._tree = np.zeros(n + 1, dtype=np.int64)

    @property
    def size(self) -> int:
        """Number of slots."""
        return self._n

    def add(self, i: int, delta: int) -> None:
        """Add ``delta`` to slot ``i`` (0-indexed)."""
        if not 0 <= i < self._n:
            raise IndexError(f"index {i} out of range [0, {self._n})")
        tree = self._tree
        i += 1
        while i <= self._n:
            tree[i] += delta
            i += i & (-i)

    def prefix_sum(self, i: int) -> int:
        """Sum of slots ``[0, i]`` (0-indexed, inclusive).

        ``i == -1`` returns 0 (the empty prefix).
        """
        if i >= self._n:
            raise IndexError(f"index {i} out of range [0, {self._n})")
        total = 0
        tree = self._tree
        i += 1
        while i > 0:
            total += int(tree[i])
            i -= i & (-i)
        return total

    def range_sum(self, lo: int, hi: int) -> int:
        """Sum of slots ``[lo, hi]`` inclusive; empty when ``lo > hi``."""
        if lo > hi:
            return 0
        return self.prefix_sum(hi) - (self.prefix_sum(lo - 1) if lo > 0 else 0)

    def total(self) -> int:
        """Sum of every slot."""
        if self._n == 0:
            return 0
        return self.prefix_sum(self._n - 1)
