"""Deterministic random-number plumbing.

Every stochastic component (graph generators, irregular-access
microbenchmarks, the perf drop model) takes an explicit seed or
``numpy.random.Generator``; these helpers derive independent child
generators so that experiments are reproducible end to end while
sub-components stay statistically decoupled.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["derive_rng", "spawn_rngs"]


def derive_rng(
    seed_or_rng: int | np.random.Generator | None, *context: str | int
) -> np.random.Generator:
    """Return a generator derived from ``seed_or_rng`` and a context key.

    Passing the same seed with the same context always yields the same
    stream; different contexts yield decoupled streams. A ``Generator`` is
    passed through unchanged (the caller owns its state).
    """
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    entropy: list[int] = [] if seed_or_rng is None else [int(seed_or_rng)]
    for item in context:
        if isinstance(item, str):
            # stable, platform-independent string hash
            entropy.append(int.from_bytes(item.encode("utf-8")[:8].ljust(8, b"\0"), "little"))
        else:
            entropy.append(int(item))
    return np.random.default_rng(np.random.SeedSequence(entropy))


def spawn_rngs(
    seed_or_rng: int | np.random.Generator | None, n: int
) -> Sequence[np.random.Generator]:
    """Return ``n`` mutually independent generators."""
    if isinstance(seed_or_rng, np.random.Generator):
        seq = seed_or_rng.bit_generator.seed_seq  # type: ignore[attr-defined]
        if seq is None:  # pragma: no cover - non-SeedSequence generators
            seq = np.random.SeedSequence()
    else:
        seq = np.random.SeedSequence(seed_or_rng)
    return [np.random.default_rng(child) for child in seq.spawn(n)]
