"""A small persistent on-disk cache with atomic writes and LRU eviction.

One entry per file under a root directory: ``<name>.mgc`` holding a
4-byte magic, a CRC32 of the payload, and the pickled value. The layer
is deliberately dumb — it knows nothing about traces or passes; the
content-addressed key discipline lives in
:mod:`repro.core.artifacts`. What it does guarantee:

* **atomic publication** — ``put`` writes to a temp file in the same
  directory and ``os.replace``\\ s it into place, so a concurrent reader
  sees either the old entry, the new entry, or a miss — never a torn
  file, even with several processes sharing one cache directory;
* **corruption tolerance** — ``get`` verifies the magic and the CRC
  before unpickling; any damage (bit flips, truncation, a foreign
  file) is a counted-and-journaled miss and the damaged file is
  removed, never an exception;
* **bounded size** — with ``max_bytes`` set, ``put`` evicts the
  least-recently-*used* entries (``get`` refreshes an entry's mtime)
  until the cache fits. A reader racing an eviction simply misses.

Misses return the module-level :data:`MISS` sentinel — entries may
legitimately hold falsy values (empty arrays, zero counts), so ``None``
cannot signal absence.

Observability is duck-typed and optional: pass anything with the
:class:`~repro.obs.journal.RunJournal` / \
:class:`~repro.obs.metrics.MetricsRegistry` emit/counter surface and
hits, misses, stores, evictions, corrupt entries and byte volumes are
accounted under ``cache.*`` (see ``docs/caching.md`` for the catalog).
"""

from __future__ import annotations

import os
import pickle
import re
import struct
import tempfile
import zlib
from pathlib import Path

__all__ = ["MISS", "DiskCache"]

#: Sentinel returned by :meth:`DiskCache.get` when an entry is absent or
#: damaged (cached values may be falsy, so ``None`` cannot mean "miss").
MISS = object()

_MAGIC = b"MGC1"
_SUFFIX = ".mgc"
_TMP_PREFIX = ".tmp-"
_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


class DiskCache:
    """A directory of named, checksummed, pickled entries.

    ``max_bytes=None`` disables eviction. The directory is created
    lazily on the first ``put``; ``get``/``names``/``stats`` on a
    missing directory behave as an empty cache.
    """

    def __init__(
        self,
        root,
        *,
        max_bytes: int | None = None,
        journal=None,
        metrics=None,
    ) -> None:
        self.root = Path(root)
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError(f"max_bytes must be > 0, got {max_bytes}")
        self.max_bytes = max_bytes
        self.journal = journal
        self.metrics = metrics
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.corrupt = 0

    # -- accounting -----------------------------------------------------------

    def _count(self, counter: str, n: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter(f"cache.{counter}").inc(n)

    def _miss(self, name: str, reason: str) -> None:
        self.misses += 1
        self._count("misses")
        if self.journal is not None:
            self.journal.emit("cache", op="miss", name=name, reason=reason)

    # -- entry paths ----------------------------------------------------------

    def _path(self, name: str) -> Path:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid cache entry name {name!r}")
        return self.root / (name + _SUFFIX)

    def names(self, prefix: str = "") -> list[str]:
        """Entry names currently on disk (sorted), optionally filtered."""
        try:
            found = [
                p.name[: -len(_SUFFIX)]
                for p in self.root.iterdir()
                if p.name.endswith(_SUFFIX) and not p.name.startswith(_TMP_PREFIX)
            ]
        except (FileNotFoundError, NotADirectoryError):
            return []
        return sorted(n for n in found if n.startswith(prefix))

    # -- read / write ---------------------------------------------------------

    def get(self, name: str):
        """The stored value, or :data:`MISS`. Damage is a journaled miss."""
        path = self._path(name)
        try:
            blob = path.read_bytes()
        except (FileNotFoundError, NotADirectoryError):
            self._miss(name, "absent")
            return MISS
        except OSError:
            self._miss(name, "unreadable")
            return MISS
        if len(blob) < 8 or blob[:4] != _MAGIC:
            return self._drop_corrupt(name, path, "bad header")
        (crc,) = struct.unpack("<I", blob[4:8])
        body = blob[8:]
        if zlib.crc32(body) != crc:
            return self._drop_corrupt(name, path, "checksum mismatch")
        try:
            value = pickle.loads(body)
        except Exception as exc:  # damaged pickle stream
            return self._drop_corrupt(name, path, f"unpicklable: {type(exc).__name__}")
        try:  # refresh recency for mtime-LRU eviction
            os.utime(path)
        except OSError:
            pass  # evicted between read and touch: the value is still good
        self.hits += 1
        self._count("hits")
        self._count("bytes_read", len(blob))
        if self.journal is not None:
            self.journal.emit("cache", op="hit", name=name, bytes=len(blob))
        return value

    def _drop_corrupt(self, name: str, path: Path, detail: str):
        """A damaged entry: journal it, remove it, report a miss."""
        self.corrupt += 1
        self._count("corrupt")
        if self.journal is not None:
            self.journal.warning(
                f"corrupt cache entry dropped: {detail}", name=name, path=str(path)
            )
        try:
            path.unlink()
        except OSError:
            pass
        self._miss(name, "corrupt")
        return MISS

    def put(self, name: str, value) -> None:
        """Store ``value`` under ``name`` atomically, then evict if over budget."""
        path = self._path(name)
        body = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        blob = _MAGIC + struct.pack("<I", zlib.crc32(body)) + body
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(prefix=_TMP_PREFIX, suffix=_SUFFIX, dir=self.root)
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(blob)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stores += 1
        self._count("stores")
        self._count("bytes_written", len(blob))
        if self.journal is not None:
            self.journal.emit("cache", op="store", name=name, bytes=len(blob))
        if self.max_bytes is not None:
            self._evict(self.max_bytes)

    def delete(self, name: str) -> bool:
        """Remove one entry; True when a file was actually removed."""
        try:
            self._path(name).unlink()
            return True
        except OSError:
            return False

    # -- maintenance ----------------------------------------------------------

    def _listing(self) -> list[tuple[float, int, Path]]:
        """(mtime, size, path) of every entry file, oldest first."""
        rows: list[tuple[float, int, Path]] = []
        try:
            entries = list(self.root.iterdir())
        except (FileNotFoundError, NotADirectoryError):
            return rows
        for p in entries:
            if not p.name.endswith(_SUFFIX):
                continue
            try:
                st = p.stat()
            except OSError:
                continue  # removed by a concurrent evictor
            rows.append((st.st_mtime, st.st_size, p))
        rows.sort()
        return rows

    def _evict(self, max_bytes: int) -> int:
        """Remove least-recently-used entries until the cache fits."""
        rows = self._listing()
        total = sum(size for _, size, _ in rows)
        removed = 0
        for _, size, path in rows:
            if total <= max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue  # lost the race to another evictor: already gone
            total -= size
            removed += 1
        if removed:
            self.evictions += removed
            self._count("evictions", removed)
            if self.journal is not None:
                self.journal.emit(
                    "cache", op="evict", n_entries=removed, bytes_kept=total
                )
        return removed

    def prune(self, max_bytes: int) -> int:
        """Explicitly evict down to ``max_bytes``; returns entries removed."""
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        return self._evict(max_bytes)

    def clear(self) -> int:
        """Remove every entry (and stale temp files); returns entries removed."""
        removed = 0
        try:
            entries = list(self.root.iterdir())
        except (FileNotFoundError, NotADirectoryError):
            return 0
        for p in entries:
            if not p.name.endswith(_SUFFIX):
                continue
            try:
                p.unlink()
            except OSError:
                continue
            if not p.name.startswith(_TMP_PREFIX):
                removed += 1
        return removed

    def stats(self) -> dict:
        """On-disk totals plus this process's session counters."""
        rows = self._listing()
        return {
            "root": str(self.root),
            "entries": len(rows),
            "bytes": sum(size for _, size, _ in rows),
            "max_bytes": self.max_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "corrupt": self.corrupt,
        }
