"""Internal utilities shared across the MemGaze reproduction.

Nothing in this package is part of the public API; modules here provide
small, well-tested primitives (order-statistic trees, deterministic RNG
plumbing, wall-clock timers, and plain-text table rendering) that the
substrate and analysis layers build on.
"""

from repro._util.fenwick import FenwickTree
from repro._util.lru import LRUCache
from repro._util.rng import derive_rng, spawn_rngs
from repro._util.tables import format_table
from repro._util.timers import Timer
from repro._util.validate import (
    check_fraction,
    check_positive,
    check_power_of_two,
)

__all__ = [
    "FenwickTree",
    "LRUCache",
    "derive_rng",
    "spawn_rngs",
    "format_table",
    "Timer",
    "check_fraction",
    "check_positive",
    "check_power_of_two",
]
