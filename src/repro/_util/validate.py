"""Argument-validation helpers with consistent error messages."""

from __future__ import annotations

__all__ = ["check_positive", "check_fraction", "check_power_of_two"]


def check_positive(name: str, value: float, *, strict: bool = True) -> None:
    """Raise ``ValueError`` unless ``value`` is positive (or >= 0)."""
    if strict and value <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    if not strict and value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")


def check_fraction(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value`` lies in [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")


def check_power_of_two(name: str, value: int) -> None:
    """Raise ``ValueError`` unless ``value`` is a positive power of two."""
    if value <= 0 or (value & (value - 1)) != 0:
        raise ValueError(f"{name} must be a positive power of two, got {value}")
