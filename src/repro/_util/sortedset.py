"""Set algebra over sorted-unique arrays, without re-sorting from scratch.

The engine's mergeable partials (`DiagnosticsPartial`, `CapturesPartial`
— see ``repro.core.passes``) keep their block-id state as **sorted
unique** arrays; that invariant is established once per chunk and every
merge preserves it. ``np.union1d`` and friends cannot exploit it — they
re-sort the concatenation from scratch on every fold, which made the
merge stage O(chunks x footprint log footprint) and, on large traces,
as expensive as the scans themselves.

These kernels assume the invariant instead: concatenating two sorted
runs and sorting with ``kind="stable"`` (timsort) is a galloping merge,
linear in practice, and membership against a sorted array is one
``searchsorted``. Outputs are bit-identical to the ``np.*1d``
equivalents — same values, same dtype, same (sorted unique) order —
pinned by ``tests/_util/test_sortedset.py``.

Preconditions are the caller's contract: each input must be sorted and
duplicate-free. Nothing here checks (a check would cost the O(n) the
kernels save).
"""

from __future__ import annotations

import numpy as np

__all__ = ["union_sorted", "intersect_sorted", "setxor_sorted", "setdiff_sorted"]


def _merged(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Sorted concatenation of two sorted arrays (stable = galloping merge)."""
    c = np.concatenate([a, b])
    c.sort(kind="stable")
    return c


def union_sorted(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``a | b`` for sorted-unique inputs; equals ``np.union1d(a, b)``."""
    c = _merged(a, b)
    if len(c) == 0:
        return c
    keep = np.empty(len(c), dtype=bool)
    keep[0] = True
    np.not_equal(c[1:], c[:-1], out=keep[1:])
    return c[keep]


def intersect_sorted(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``a & b`` for sorted-unique inputs; equals ``np.intersect1d``.

    Each value appears at most once per side, so a cross-side duplicate
    in the merged run marks exactly one intersection element.
    """
    c = _merged(a, b)
    if len(c) == 0:
        return c
    return c[:-1][c[1:] == c[:-1]]


def setxor_sorted(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``a ^ b`` for sorted-unique inputs; equals ``np.setxor1d``."""
    c = _merged(a, b)
    if len(c) == 0:
        return c
    dup = c[1:] == c[:-1]
    solo = np.ones(len(c), dtype=bool)
    solo[1:] &= ~dup
    solo[:-1] &= ~dup
    return c[solo]


def setdiff_sorted(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``a - b`` for sorted-unique inputs; equals ``np.setdiff1d(...,
    assume_unique=True)`` on such inputs."""
    if len(a) == 0 or len(b) == 0:
        return a
    idx = np.searchsorted(b, a)
    idx[idx == len(b)] = len(b) - 1
    return a[b[idx] != a]
