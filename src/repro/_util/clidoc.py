"""Generated CLI reference: ``memgaze`` parser → markdown.

``docs/cli.md`` is *rendered from* :func:`repro.cli.build_parser`, never
written by hand, so it cannot drift from the real flags:

* regenerate with ``PYTHONPATH=src python -m repro._util.clidoc > docs/cli.md``;
* ``tests/docs/test_cli_reference.py`` re-renders it and fails the build
  when the committed file differs from the parser.

The renderer walks the parser's subcommands and emits one section per
verb with its positionals and options — name, value placeholder,
default, and help text — in the parser's declaration order (which is
deterministic), so identical parsers always render identical bytes.
"""

from __future__ import annotations

import argparse

__all__ = ["render_cli_markdown"]

_HEADER = """\
# `memgaze` command reference

> **Generated file — do not edit.** Regenerate with
> `PYTHONPATH=src python -m repro._util.clidoc > docs/cli.md`;
> `tests/docs/test_cli_reference.py` fails when this file drifts from
> the argument parser in `src/repro/cli.py`.
"""


def _option_name(action: argparse.Action) -> str:
    """The flag cell: every alias, plus a metavar for valued options."""
    if not action.option_strings:
        return f"`{action.dest}`"
    names = ", ".join(f"`{s}`" for s in action.option_strings)
    if isinstance(
        action, (argparse._StoreTrueAction, argparse.BooleanOptionalAction)
    ) or action.nargs == 0:
        return names
    if action.choices is not None:
        return f"{names} `{{{','.join(str(c) for c in action.choices)}}}`"
    metavar = action.metavar or action.dest.upper()
    return f"{names} `{metavar}`"


def _default_cell(action: argparse.Action) -> str:
    if not action.option_strings or isinstance(action, argparse._StoreTrueAction):
        return ""
    if action.required:
        return "required"
    if action.default is None or action.default is argparse.SUPPRESS:
        return ""
    return f"`{action.default}`"


def _escape(text: str) -> str:
    return " ".join((text or "").split()).replace("|", "\\|")


def _render_actions(sub: argparse.ArgumentParser, lines: list[str]) -> None:
    actions = [
        a
        for a in sub._actions
        if not isinstance(a, (argparse._HelpAction, argparse._SubParsersAction))
    ]
    if not actions:
        return
    lines.append("| argument | default | description |")
    lines.append("| --- | --- | --- |")
    for a in actions:
        lines.append(
            f"| {_option_name(a)} | {_default_cell(a)} | {_escape(a.help or '')} |"
        )
    lines.append("")


def render_cli_markdown(parser: argparse.ArgumentParser | None = None) -> str:
    """Render the full ``memgaze`` reference as deterministic markdown."""
    if parser is None:
        from repro.cli import build_parser

        parser = build_parser()
    lines: list[str] = [_HEADER]
    lines.append(f"`{parser.prog}` — {_escape(parser.description or '')}")
    lines.append("")
    subactions = [
        a for a in parser._actions if isinstance(a, argparse._SubParsersAction)
    ]
    for subaction in subactions:
        # _choices_actions carries (name, help) in declaration order;
        # choices maps names (and aliases) to the subparsers themselves
        for choice in subaction._choices_actions:
            sub = subaction.choices[choice.dest]
            lines.append(f"## `{parser.prog} {choice.dest}`")
            lines.append("")
            if choice.help:
                lines.append(f"{_escape(choice.help)}.")
                lines.append("")
            usage = " ".join(sub.format_usage().split())
            if usage.startswith("usage: "):
                usage = usage[len("usage: ") :]
            lines.append(f"```\n{usage}\n```")
            lines.append("")
            _render_actions(sub, lines)
    return "\n".join(lines).rstrip() + "\n"


if __name__ == "__main__":  # pragma: no cover - exercised via the drift test
    print(render_cli_markdown(), end="")
