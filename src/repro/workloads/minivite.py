"""miniVite-style Louvain community detection (paper SS:VII-A).

One Louvain phase over an undirected graph, structured like miniVite's
hotspot: per vertex, ``buildMap`` inspects the neighboring communities
and accumulates edge weights into a *map* object, ``map.insert`` is the
map's logical insert, and ``getMax`` scans the map for the best-gain
community. The three variants differ only in the map implementation:

* **v1** — chained open hash (``std::unordered_map``-like): irregular
  bucket/chain chases (:class:`~repro.simmem.datastructs.OpenHashMap`);
* **v2** — hopscotch closed hash at the default initial capacity:
  strided probes, but per-instance dynamic resizing copies the table
  repeatedly (:class:`~repro.simmem.datastructs.HopscotchMap`);
* **v3** — hopscotch right-sized per vertex degree: strided probes and
  no resizing.

A map instance is constructed per vertex and freed after use; the
simulated allocator recycles freed blocks, so the map object occupies a
stable hot address range — the paper's Table V 'map (hash table)' region.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.simmem.address_space import AddressSpace
from repro.simmem.datastructs.array import FlatArray
from repro.simmem.datastructs.hopscotch import HopscotchMap
from repro.simmem.datastructs.open_hash import OpenHashMap
from repro.simmem.recorder import AccessRecorder
from repro.trace.event import LoadClass
from repro.workloads.cost import MemoryCostModel
from repro.workloads.gap.graphs import build_csr, kronecker_edges

__all__ = ["MINIVITE_VARIANTS", "MiniViteResult", "run_minivite", "modularity"]

MINIVITE_VARIANTS = ("v1", "v2", "v3")


@dataclass
class MiniViteResult:
    """One miniVite run: trace, solution, and bookkeeping."""

    variant: str
    events: np.ndarray
    fn_names: dict[int, str]
    source_map: dict[int, tuple[str, str, int]]
    communities: np.ndarray
    modularity: float
    n_iterations: int
    n_moves: int
    sim_time: float  # memory-cost-model 'run time'
    wall_time: float
    space: AddressSpace
    region_extents: dict[str, tuple[int, int]] = field(default_factory=dict)
    phase_bounds: dict[str, tuple[int, int]] = field(default_factory=dict)

    @property
    def n_loads(self) -> int:
        """Retired loads (the sampling population size)."""
        return len(self.events) + int(self.events["n_const"].sum())


def _make_map(variant: str, space: AddressSpace, recorder: AccessRecorder, degree: int):
    if variant == "v1":
        return OpenHashMap(space, recorder, n_buckets=16, name="map")
    if variant == "v2":
        # the library default: a minimal table that grows by doubling
        return HopscotchMap(space, recorder, capacity=16, name="map")
    if variant == "v3":
        return HopscotchMap(space, recorder, right_size_for=max(degree, 1), name="map")
    raise ValueError(f"unknown variant {variant!r}; expected one of {MINIVITE_VARIANTS}")


def modularity(n: int, edges: np.ndarray, comm: np.ndarray) -> float:
    """Newman modularity of partition ``comm`` over undirected ``edges``.

    ``edges`` are directed pairs (both directions present after
    symmetrisation); self-loops ignored.
    """
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    edges = edges[edges[:, 0] != edges[:, 1]]
    m2 = len(edges)  # = 2m for a symmetrised edge list
    if m2 == 0:
        return 0.0
    same = comm[edges[:, 0]] == comm[edges[:, 1]]
    e_in = same.sum() / m2
    deg = np.bincount(edges[:, 0], minlength=n).astype(np.float64)
    a = np.bincount(comm, weights=deg)
    return float(e_in - np.sum((a / m2) ** 2))


def run_minivite(
    variant: str = "v1",
    scale: int = 9,
    edge_factor: int = 8,
    seed: int = 0,
    max_iters: int = 3,
    min_moves_frac: float = 0.01,
) -> MiniViteResult:
    """Run Louvain with the given map variant and record its access trace.

    ``scale``/``edge_factor`` follow the Kronecker generator; the graph
    is symmetrised. Iterations stop when fewer than ``min_moves_frac`` of
    vertices move (or at ``max_iters``).
    """
    t0 = time.perf_counter()
    space = AddressSpace()
    recorder = AccessRecorder()

    n, edges = kronecker_edges(scale, edge_factor, seed)
    with recorder.scope("graph_gen", "minivite.py"):
        graph = build_csr(space, recorder, n, edges, symmetrize=True, name="graph")
    gen_end = recorder.n_recorded

    sym_edges = np.concatenate([edges, edges[:, ::-1]])
    sym_edges = sym_edges[sym_edges[:, 0] != sym_edges[:, 1]]

    comm = FlatArray(space, recorder, n, name="comm")
    comm.fill(np.arange(n))
    deg = graph.degrees().astype(np.float64)
    ktot = FlatArray(space, recorder, n, name="comm-degree", dtype=np.float64)
    ktot.fill(deg)
    m2 = float(deg.sum())
    if m2 == 0:
        raise ValueError("graph has no edges")

    n_iterations = 0
    total_moves = 0
    for _ in range(max_iters):
        n_iterations += 1
        moves = 0
        for v in range(n):
            dv = int(deg[v])
            if dv == 0:
                continue
            with recorder.scope("buildMap", "minivite.py"):
                neigh = graph.neighbors(v)
                vcomms = comm.gather(neigh)
                map_ = _make_map(variant, space, recorder, dv)
                for c in vcomms:
                    with recorder.scope("map.insert", "minivite.py"):
                        map_.insert(int(c), 1.0, accumulate=True)
                recorder.touch_const(len(neigh))  # loop-control scalars
            with recorder.scope("getMax", "minivite.py"):
                items = map_.items()
                ki = deg[v]
                cur = int(comm.data[v])
                best_c, best_gain = cur, -np.inf
                for c, w in items:
                    ktot.load(int(c), pattern=LoadClass.IRREGULAR)
                    a_c = float(ktot.data[int(c)]) - (ki if int(c) == cur else 0.0)
                    gain = w - ki * a_c / m2
                    if gain > best_gain or (gain == best_gain and int(c) < best_c):
                        best_c, best_gain = int(c), gain
                recorder.touch_const(len(items))
            for region in map_.regions():
                space.free(region)
            if best_c != cur:
                comm.store(v, best_c)
                ktot.store(cur, ktot.data[cur] - ki)
                ktot.store(best_c, ktot.data[best_c] + ki)
                moves += 1
        total_moves += moves
        if moves < max(1, int(min_moves_frac * n)):
            break

    events = recorder.finalize()
    q = modularity(n, sym_edges, comm.data.astype(np.int64))
    extents = {}
    for label in ("map", "map-nodes", "graph-targets", "graph-offsets", "comm", "comm-degree"):
        try:
            extents[label] = space.extent_of(label)
        except KeyError:
            pass
    return MiniViteResult(
        variant=variant,
        events=events,
        fn_names=recorder.function_names,
        source_map=recorder.source_map(),
        communities=comm.data.astype(np.int64),
        modularity=q,
        n_iterations=n_iterations,
        n_moves=total_moves,
        sim_time=MemoryCostModel().runtime(events),
        wall_time=time.perf_counter() - t0,
        space=space,
        region_extents=extents,
        phase_bounds={
            "graph_gen": (0, gen_end),
            "modularity": (gen_end, len(events)),
        },
    )
