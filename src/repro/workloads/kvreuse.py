"""KV-cache style reuse streams (what-if sweep inputs).

Memory-augmented serving systems read a per-request *KV cache*: a
stable prefix (system prompt / shared context) that every request
re-scans, followed by a freshly generated tail that is read a few times
and abandoned. The resulting load streams have a reuse structure unlike
the graph/array workloads — long-lived strided prefix re-scans layered
under short-lived irregular tail attention — which is exactly the
regime where cache-geometry what-ifs (``cache_sweep``) are
interesting: the prefix fits or does not fit, and interleaving
concurrent sessions stretches its reuse distance past a capacity that
one session alone would hit in.

Three variants:

* **prefix** — one session whose requests re-scan a large stable
  prefix, each followed by a short unstable tail: prefix reuse
  dominates, so hit ratio falls off a cliff at the prefix size.
* **tail** — a small prefix under long, once-read tails: streaming
  behaviour, weak reuse at every capacity.
* **sessions** — several sessions served round-robin, each re-scanning
  its *own* prefix: per-session reuse is prefix-sized, but the
  interleaving multiplies the observed reuse distance by the session
  count, so capacities between one and N prefixes separate the
  variants.

Every variant records through the standard simmem collector, so traces
flow through sampling, compression, and analysis like any other
workload (``memgaze trace --workload kvreuse:sessions``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util.rng import derive_rng
from repro.simmem.address_space import AddressSpace
from repro.simmem.datastructs.array import FlatArray
from repro.simmem.recorder import AccessRecorder
from repro.trace.event import LoadClass

__all__ = ["KVREUSE_VARIANTS", "KVReuseResult", "run_kvreuse"]

KVREUSE_VARIANTS = ("prefix", "tail", "sessions")

#: one KV block per simulated cache line
_BLOCK_BYTES = 64


@dataclass
class KVReuseResult:
    """One serving run: the recorded trace plus stream bookkeeping."""

    variant: str
    events: np.ndarray
    fn_names: dict[int, str]
    n_sessions: int
    n_requests: int
    prefix_blocks: int
    n_blocks: int
    space: AddressSpace

    @property
    def n_loads(self) -> int:
        """Retired loads (the sampling population size)."""
        return len(self.events) + int(self.events["n_const"].sum())


def _variant_shape(variant: str, scale: int) -> tuple[int, int, int, int, int]:
    """(sessions, prefix blocks per session, requests, tail_lo, tail_hi)."""
    if variant == "prefix":
        return 1, 32 * scale, 6 * scale, 2, max(3, scale // 2)
    if variant == "tail":
        return 1, 4 * scale, 4 * scale, 2 * scale, 4 * scale
    if variant == "sessions":
        return 4, 8 * scale, 8 * scale, 2, max(3, scale // 2)
    raise ValueError(
        f"unknown variant {variant!r}; expected one of {KVREUSE_VARIANTS}"
    )


def run_kvreuse(
    variant: str = "prefix",
    scale: int = 10,
    seed: int = 0,
) -> KVReuseResult:
    """Serve a request stream over a simulated KV-block pool.

    ``scale`` sets prefix sizes, request counts, and tail lengths (all
    linear or near-linear in ``scale``); the same ``(variant, scale,
    seed)`` always produces the same trace.
    """
    if scale <= 0:
        raise ValueError(f"scale must be > 0, got {scale}")
    sessions, prefix, requests, tail_lo, tail_hi = _variant_shape(variant, scale)
    rng = derive_rng(seed, "kvreuse", variant, scale)

    space = AddressSpace()
    rec = AccessRecorder()
    tail_lens = rng.integers(tail_lo, tail_hi + 1, size=requests)
    n_blocks = sessions * prefix + int(tail_lens.sum()) + 1
    kv = FlatArray(space, rec, n_blocks, elem_size=_BLOCK_BYTES, name="kv-pool")

    # session s owns prefix blocks [s*prefix, (s+1)*prefix); tails are
    # appended from the shared allocation cursor, so concurrent sessions'
    # tails interleave in the pool like a real block allocator's would
    cursor = sessions * prefix
    tails: list[list[int]] = [[] for _ in range(sessions)]

    for r in range(requests):
        s = r % sessions
        lo = s * prefix
        with rec.scope("prefix_scan", "kvreuse.py"):
            # the stable prefix: every request of the session re-reads it
            kv.load_range(lo, lo + prefix)
            rec.touch_const(prefix)  # position counters
        with rec.scope("decode_attend", "kvreuse.py"):
            for _ in range(int(tail_lens[r])):
                tails[s].append(cursor)
                cursor += 1
                # attention over the recent context: the last few tail
                # blocks (data-dependent order), plus a couple of probes
                # back into the stable prefix
                recent = np.asarray(tails[s][-8:], dtype=np.int64)
                kv.gather(rng.permutation(recent), pattern=LoadClass.IRREGULAR)
                probes = lo + rng.integers(0, prefix, size=2)
                kv.gather(probes, pattern=LoadClass.IRREGULAR)
                rec.touch_const(3)  # step/length/score scalars
        if variant == "tail":
            # unstable: the session's context is dropped after each
            # request, so tails are read during their own request only
            tails[s] = []

    return KVReuseResult(
        variant=variant,
        events=rec.finalize(),
        fn_names=rec.function_names,
        n_sessions=sessions,
        n_requests=requests,
        prefix_blocks=prefix,
        n_blocks=n_blocks,
        space=space,
    )
