"""GAP-style Connected Components: ``cc`` (Afforest) vs ``cc-sv``
(Shiloach-Vishkin) (paper SS:VII-C).

The hot memory object is the component array *cc*:

* ``cc-sv`` — Shiloach-Vishkin iterates hook-and-compress passes over the
  whole edge list until nothing changes: per edge, irregular gathers of
  both endpoints' labels, then a pointer-jumping compression sweep.
* ``cc`` — Afforest [38] first links every vertex through a small sample
  of its neighbors (the subgraph-sampling phase), compresses, identifies
  the largest intermediate component, and only processes the *remaining*
  vertices' full adjacency — more accesses per processed vertex
  (union-find chases with path compression) but far less total work.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.simmem.address_space import AddressSpace
from repro.simmem.datastructs.array import FlatArray
from repro.simmem.datastructs.csr import CSRGraph
from repro.simmem.recorder import AccessRecorder
from repro.trace.event import LoadClass
from repro.workloads.cost import MemoryCostModel
from repro.workloads.gap.graphs import build_csr, kronecker_edges

__all__ = ["CCResult", "run_cc"]


@dataclass
class CCResult:
    """One Connected-Components run."""

    algorithm: str  # "cc" | "cc-sv"
    events: np.ndarray
    fn_names: dict[int, str]
    components: np.ndarray
    n_iterations: int
    sim_time: float
    wall_time: float
    space: AddressSpace
    region_extents: dict[str, tuple[int, int]] = field(default_factory=dict)
    phase_bounds: dict[str, tuple[int, int]] = field(default_factory=dict)

    @property
    def n_loads(self) -> int:
        """Retired loads including suppressed constants."""
        return len(self.events) + int(self.events["n_const"].sum())


class _UnionFind:
    """GAP-style union-find over an instrumented component array."""

    def __init__(self, comp: FlatArray) -> None:
        self.comp = comp

    def find(self, x: int) -> int:
        """Find with path halving; every hop is an irregular load."""
        comp = self.comp
        cx = int(comp.load(x, pattern=LoadClass.IRREGULAR))
        while cx != x:
            grand = int(comp.load(cx, pattern=LoadClass.IRREGULAR))
            comp.store(x, grand)  # path halving
            x = grand
            cx = int(comp.load(x, pattern=LoadClass.IRREGULAR))
        return x

    def link(self, u: int, v: int) -> None:
        """GAP's Link: hook the higher root under the lower."""
        comp = self.comp
        p1 = int(comp.load(u, pattern=LoadClass.IRREGULAR))
        p2 = int(comp.load(v, pattern=LoadClass.IRREGULAR))
        while p1 != p2:
            high, low = (p1, p2) if p1 > p2 else (p2, p1)
            p_high = int(comp.load(high, pattern=LoadClass.IRREGULAR))
            if p_high == high:
                comp.store(high, low)
                return
            if p_high == low:
                return
            comp.store(high, low)  # compress while walking
            p1, p2 = p_high, low


def _compress_all(comp: FlatArray, n: int) -> None:
    """Full pointer-jumping compression sweep (strided reads + chases)."""
    for v in range(n):
        cv = int(comp.load(v, pattern=LoadClass.STRIDED))
        while True:
            ccv = int(comp.load(cv, pattern=LoadClass.IRREGULAR))
            if ccv == cv:
                break
            cv = ccv
        comp.store(v, cv)


def _run_afforest(
    graph: CSRGraph,
    comp: FlatArray,
    recorder: AccessRecorder,
    neighbor_rounds: int = 2,
) -> int:
    n = graph.n
    uf = _UnionFind(comp)
    with recorder.scope("afforest", "cc.py"):
        # phase 1: subgraph sampling — link through the first k neighbors
        for r in range(neighbor_rounds):
            for v in range(n):
                lo = int(graph.offsets.data[v])
                hi = int(graph.offsets.data[v + 1])
                if lo + r < hi:
                    graph.offsets.load(v)
                    graph.offsets.load(v + 1)
                    u = int(graph.targets.load(lo + r, pattern=LoadClass.STRIDED))
                    uf.link(v, u)
        _compress_all(comp, n)
        # phase 2: find the most frequent intermediate component (sampled)
        sample = comp.data[:: max(1, n // 1024)]
        comp.load_range(0, n, step=max(1, n // 1024))
        vals, counts = np.unique(sample, return_counts=True)
        giant = int(vals[np.argmax(counts)])
        recorder.touch_const(len(sample))
        # phase 3: finish only vertices outside the giant component
        for v in range(n):
            cv = int(comp.load(v, pattern=LoadClass.STRIDED))
            if cv == giant:
                continue
            neigh = graph.neighbors(v)
            for u in neigh[neighbor_rounds:]:
                uf.link(v, int(u))
        _compress_all(comp, n)
    return 1


def _run_sv(graph: CSRGraph, comp: FlatArray, recorder: AccessRecorder) -> int:
    n = graph.n
    iterations = 0
    with recorder.scope("shiloach_vishkin", "cc.py"):
        while True:
            iterations += 1
            changed = False
            for u in range(n):
                neigh = graph.neighbors(u)
                if len(neigh) == 0:
                    continue
                comp_u = int(comp.load(u, pattern=LoadClass.STRIDED))
                comp_neigh = comp.gather(neigh)  # irregular
                for v, comp_v in zip(neigh, comp_neigh):
                    comp_v = int(comp_v)
                    if comp_v < comp_u:
                        parent = int(comp.load(comp_u, pattern=LoadClass.IRREGULAR))
                        if parent == comp_u:
                            comp.store(comp_u, comp_v)
                            changed = True
                            comp_u = comp_v
            # pointer jumping
            for v in range(n):
                cv = int(comp.load(v, pattern=LoadClass.STRIDED))
                while True:
                    ccv = int(comp.load(cv, pattern=LoadClass.IRREGULAR))
                    if ccv == cv:
                        break
                    cv = ccv
                comp.store(v, cv)
            if not changed:
                break
    return iterations


def run_cc(
    algorithm: str = "cc",
    scale: int = 10,
    edge_factor: int = 8,
    seed: int = 0,
) -> CCResult:
    """Run Connected Components over a Kronecker graph, recording loads."""
    if algorithm not in ("cc", "cc-sv"):
        raise ValueError(f"algorithm must be 'cc' or 'cc-sv', got {algorithm!r}")
    t0 = time.perf_counter()
    space = AddressSpace()
    recorder = AccessRecorder()

    n, edges = kronecker_edges(scale, edge_factor, seed)
    with recorder.scope("graph_gen", "cc.py"):
        graph = build_csr(space, recorder, n, edges, symmetrize=True, name="graph")
    gen_end = recorder.n_recorded

    comp = FlatArray(space, recorder, n, name="cc")
    comp.fill(np.arange(n))
    if algorithm == "cc":
        n_iterations = _run_afforest(graph, comp, recorder)
    else:
        n_iterations = _run_sv(graph, comp, recorder)

    events = recorder.finalize()
    extents = {}
    for label in ("cc", "graph-targets", "graph-offsets"):
        try:
            extents[label] = space.extent_of(label)
        except KeyError:
            pass
    return CCResult(
        algorithm=algorithm,
        events=events,
        fn_names=recorder.function_names,
        components=comp.data.copy(),
        n_iterations=n_iterations,
        sim_time=MemoryCostModel().runtime(events),
        wall_time=time.perf_counter() - t0,
        space=space,
        region_extents=extents,
        phase_bounds={
            "graph_gen": (0, gen_end),
            "components": (gen_end, len(events)),
        },
    )
