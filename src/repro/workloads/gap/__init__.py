"""GAP-style graph workloads (paper SS:VII-C).

* :mod:`repro.workloads.gap.graphs` — Kronecker (RMAT) and uniform graph
  generators plus instrumented CSR construction (the 'graph build' phase
  the paper's time analysis separates out);
* :mod:`repro.workloads.gap.pagerank` — PageRank: ``pr`` (Gauss-Seidel,
  in-place score updates) and ``pr-spmv`` (Jacobi, next-iteration score
  vector);
* :mod:`repro.workloads.gap.cc` — Connected Components: ``cc`` (Afforest
  with subgraph sampling) and ``cc-sv`` (Shiloach-Vishkin).
"""

from repro.workloads.gap.graphs import build_csr, kronecker_edges, uniform_edges
from repro.workloads.gap.pagerank import PageRankResult, run_pagerank
from repro.workloads.gap.cc import CCResult, run_cc

__all__ = [
    "build_csr",
    "kronecker_edges",
    "uniform_edges",
    "PageRankResult",
    "run_pagerank",
    "CCResult",
    "run_cc",
]
