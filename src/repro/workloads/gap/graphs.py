"""Graph generators and instrumented CSR construction.

The GAP benchmark suite evaluates on Kronecker (RMAT-style) graphs of
scale 22; the same generator is provided here (vectorised bit-recursive
sampling) at configurable scale, plus a uniform Erdos-Renyi-style
generator. Construction through :func:`build_csr` records the 'graph
build' phase's access stream, which the paper's per-phase overhead
analysis (Fig. 7) distinguishes from the algorithm phase.
"""

from __future__ import annotations

import numpy as np

from repro._util.rng import derive_rng
from repro.simmem.address_space import AddressSpace
from repro.simmem.datastructs.csr import CSRGraph
from repro.simmem.recorder import AccessRecorder
from repro.trace.event import LoadClass

__all__ = ["kronecker_edges", "uniform_edges", "build_csr"]

# GAP's RMAT parameters
_A, _B, _C = 0.57, 0.19, 0.19


def kronecker_edges(
    scale: int, edge_factor: int = 16, seed: int | np.random.Generator = 0
) -> tuple[int, np.ndarray]:
    """(n, edges): an RMAT graph with ``2**scale`` vertices.

    Vectorised: each of the ``scale`` address bits of both endpoints is
    sampled independently per edge with the RMAT quadrant probabilities.
    """
    if scale <= 0:
        raise ValueError(f"scale must be > 0, got {scale}")
    if edge_factor <= 0:
        raise ValueError(f"edge_factor must be > 0, got {edge_factor}")
    rng = derive_rng(seed, "kronecker", scale)
    n = 1 << scale
    m = n * edge_factor
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    for bit in range(scale):
        r = rng.random(m)
        # quadrant: a (0,0), b (0,1), c (1,0), d (1,1)
        src_bit = (r >= _A + _B).astype(np.int64)
        dst_bit = ((r >= _A) & (r < _A + _B) | (r >= _A + _B + _C)).astype(np.int64)
        src |= src_bit << bit
        dst |= dst_bit << bit
    # permute vertex labels to break the RMAT degree/label correlation
    relabel = rng.permutation(n)
    return n, np.column_stack([relabel[src], relabel[dst]])


def uniform_edges(
    n: int, avg_degree: int = 16, seed: int | np.random.Generator = 0
) -> np.ndarray:
    """Uniform random directed edges: ``n * avg_degree`` endpoint pairs."""
    if n <= 1:
        raise ValueError(f"n must be > 1, got {n}")
    if avg_degree <= 0:
        raise ValueError(f"avg_degree must be > 0, got {avg_degree}")
    rng = derive_rng(seed, "uniform-graph", n)
    m = n * avg_degree
    return np.column_stack(
        [rng.integers(0, n, m, dtype=np.int64), rng.integers(0, n, m, dtype=np.int64)]
    )


def build_csr(
    space: AddressSpace,
    recorder: AccessRecorder,
    n: int,
    edges: np.ndarray,
    *,
    symmetrize: bool = True,
    name: str = "graph",
) -> CSRGraph:
    """Instrumented CSR construction (the 'graph build' phase).

    Records the dominant loads of a counting-sort CSR build: a strided
    sweep of the edge list, irregular gathers of per-vertex counters, and
    a second sweep placing targets.
    """
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    with recorder.scope("graph_build"):
        site_str = recorder.scoped_site(LoadClass.STRIDED, "edges")
        site_irr = recorder.scoped_site(LoadClass.IRREGULAR, "counters")
        # pass 1: read each edge (strided) and bump its source counter (irregular)
        edge_buf = space.malloc(max(16, edges.size * 8), "edge-buffer")
        counters = space.malloc(max(16, n * 8), "degree-counters")
        recorder.record_many(site_str, edge_buf.base + np.arange(edges.size) * 8)
        srcs = edges[:, 0] if not symmetrize else np.concatenate([edges[:, 0], edges[:, 1]])
        recorder.record_many(site_irr, counters.base + srcs * 8)
        # pass 2: place each target (read edge again, irregular offset gather)
        recorder.record_many(site_str, edge_buf.base + np.arange(edges.size) * 8)
        recorder.record_many(site_irr, counters.base + srcs * 8)
        graph = CSRGraph.from_edges(
            space, recorder, n, edges, symmetrize=symmetrize, name=name
        )
        space.free(edge_buf)
        space.free(counters)
    return graph
