"""GAP-style PageRank: ``pr`` (Gauss-Seidel) vs ``pr-spmv`` (Jacobi).

Both pull rank through incoming edges; the hot memory object is
*o-score* — the per-vertex outgoing contribution (score / out-degree),
gathered irregularly through the adjacency (paper Table IX).

* ``pr-spmv`` (Jacobi / SpMV style): per iteration, a strided sweep
  recomputes the whole o-score vector from the previous iteration's
  scores, then every vertex accumulates its neighbors' contributions
  into a *separate* next-score vector — updates are saved until the
  next iteration.
* ``pr`` (Gauss-Seidel style): scores and o-score update **in place**
  the moment a vertex's new rank is known, so later vertices in the same
  sweep already observe fresh contributions. That both converges in
  fewer iterations (fewer accesses) and shortens o-score reuse
  intervals (smaller D) — the paper's observed win.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.simmem.address_space import AddressSpace
from repro.simmem.datastructs.array import FlatArray
from repro.simmem.recorder import AccessRecorder
from repro.trace.event import LoadClass
from repro.workloads.cost import MemoryCostModel
from repro.workloads.gap.graphs import build_csr, kronecker_edges

__all__ = ["PageRankResult", "run_pagerank"]

_DAMPING = 0.85


@dataclass
class PageRankResult:
    """One PageRank run."""

    algorithm: str  # "pr" | "pr-spmv"
    events: np.ndarray
    fn_names: dict[int, str]
    scores: np.ndarray
    n_iterations: int
    sim_time: float
    wall_time: float
    space: AddressSpace
    region_extents: dict[str, tuple[int, int]] = field(default_factory=dict)
    phase_bounds: dict[str, tuple[int, int]] = field(default_factory=dict)

    @property
    def n_loads(self) -> int:
        """Retired loads including suppressed constants."""
        return len(self.events) + int(self.events["n_const"].sum())


def run_pagerank(
    algorithm: str = "pr",
    scale: int = 10,
    edge_factor: int = 8,
    seed: int = 0,
    max_iters: int = 20,
    tolerance: float = 1e-2,
) -> PageRankResult:
    """Run PageRank over a Kronecker graph and record its access trace."""
    if algorithm not in ("pr", "pr-spmv"):
        raise ValueError(f"algorithm must be 'pr' or 'pr-spmv', got {algorithm!r}")
    t0 = time.perf_counter()
    space = AddressSpace()
    recorder = AccessRecorder()

    n, edges = kronecker_edges(scale, edge_factor, seed)
    with recorder.scope("graph_gen", "pagerank.py"):
        graph = build_csr(space, recorder, n, edges, symmetrize=True, name="graph")
    gen_end = recorder.n_recorded

    deg = np.maximum(graph.degrees(), 1).astype(np.float64)
    scores = FlatArray(space, recorder, n, name="scores", dtype=np.float64)
    scores.fill(np.full(n, 1.0 / n))
    oscore = FlatArray(space, recorder, n, name="o-score", dtype=np.float64)
    oscore.fill(scores.data / deg)
    base_rank = (1.0 - _DAMPING) / n

    fn = "rank" if algorithm == "pr" else "rank_spmv"
    n_iterations = 0
    with recorder.scope(fn, "pagerank.py"):
        if algorithm == "pr-spmv":
            next_scores = FlatArray(space, recorder, n, name="next-scores", dtype=np.float64)
            # SpMV keeps the matrix explicit: one value (1/deg of the
            # source) per stored edge, read alongside each adjacency run.
            # pr avoids this traffic by folding 1/deg into o-score.
            edge_vals = FlatArray(
                space, recorder, max(1, graph.m), name="edge-vals", dtype=np.float64
            )
            edge_vals.fill(1.0)
        for _ in range(max_iters):
            n_iterations += 1
            error = 0.0
            if algorithm == "pr-spmv":
                # Jacobi: refresh the whole o-score vector from old scores
                scores.load_range(0, n)
                oscore.store_many(np.arange(n), scores.data / deg)
            for v in range(n):
                neigh = graph.neighbors(v)
                if len(neigh):
                    contrib = oscore.gather(neigh)  # irregular: the hot object
                    if algorithm == "pr-spmv":
                        lo = int(graph.offsets.data[v])
                        edge_vals.load_range(lo, lo + len(neigh))
                    incoming = float(contrib.sum())
                else:
                    incoming = 0.0
                new_score = base_rank + _DAMPING * incoming
                recorder.touch_const(2)  # base_rank, damping scalars
                old = float(scores.load(v, pattern=LoadClass.STRIDED))
                error += abs(new_score - old)
                if algorithm == "pr":
                    # Gauss-Seidel: publish immediately
                    scores.store(v, new_score)
                    oscore.store(v, new_score / deg[v])
                else:
                    next_scores.store(v, new_score)
            if algorithm == "pr-spmv":
                scores.store_many(np.arange(n), next_scores.data)
            if error < tolerance:
                break

    events = recorder.finalize()
    extents = {}
    for label in ("o-score", "scores", "graph-targets", "graph-offsets"):
        try:
            extents[label] = space.extent_of(label)
        except KeyError:
            pass
    return PageRankResult(
        algorithm=algorithm,
        events=events,
        fn_names=recorder.function_names,
        scores=scores.data.copy(),
        n_iterations=n_iterations,
        sim_time=MemoryCostModel().runtime(events),
        wall_time=time.perf_counter() - t0,
        space=space,
        region_extents=extents,
        phase_bounds={
            "graph_gen": (0, gen_end),
            "rank": (gen_end, len(events)),
        },
    )
