"""The paper's workloads (SS:VI-VII).

* :mod:`repro.workloads.microbench` — composable strided/irregular
  microbenchmarks written in the synthetic ISA ('str<k>', 'irr', joined
  with '/' for conditional and '|' for series composition);
* :mod:`repro.workloads.minivite` — Louvain community detection with the
  three hash-map variants of the paper's miniVite case study;
* :mod:`repro.workloads.gap` — GAP-style PageRank (pr, pr-spmv) and
  Connected Components (cc Afforest, cc-sv Shiloach-Vishkin);
* :mod:`repro.workloads.darknet` — Darknet-style conv-net inference
  (im2col + gemm) with AlexNet-like and ResNet152-like layer stacks;
* :mod:`repro.workloads.kvreuse` — KV-cache style serving streams
  (stable prefixes, unstable tails, interleaved sessions) feeding the
  ``cache_sweep`` what-if pass.
"""

from repro.workloads.microbench import (
    MICROBENCH_SPECS,
    MicrobenchResult,
    build_microbench,
    run_microbench,
)
from repro.workloads.kernels import KERNELS, KernelResult, build_kernel, run_kernel
from repro.workloads.cost import MemoryCostModel
from repro.workloads.parallel import interleave_streams, split_vertices

__all__ = [
    "MICROBENCH_SPECS",
    "MicrobenchResult",
    "build_microbench",
    "run_microbench",
    "KERNELS",
    "KernelResult",
    "build_kernel",
    "run_kernel",
    "MemoryCostModel",
    "interleave_streams",
    "split_vertices",
]
