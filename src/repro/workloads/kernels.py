"""Classic HPC kernels authored in the synthetic ISA.

Beyond the pattern microbenchmarks, these kernels exercise the static
classifier on the code shapes real compilers emit: nested and blocked
loop nests with derived induction variables at several levels, stencils
with multiple literal offsets off one IV, gathers through index arrays,
and reductions. Each builds a module whose ``main`` repeats the kernel,
so the full toolchain (classify -> instrument -> execute -> rebuild) can
run on it.

Kernels
-------
``matmul``      C[i,j] += A[i,k] * B[k,j]: ikj order; A strided by row,
                B strided with stride 8*n (column walk), C strided.
``stencil``     out[i] = sum(in[i-r .. i+r]): 2r+1 strided loads sharing
                one IV through offset literals.
``gather``      out[i] = table[idx[i]]: strided index load + irregular
                gather — the SpMV/graph access signature.
``reduction``   s += a[i]: one strided load per iteration, accumulator
                in a register.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util.rng import derive_rng
from repro.instrument.classify import LoadInfo, classify_module
from repro.instrument.instrumenter import InstrumentResult, instrument_module
from repro.instrument.rebuild import rebuild_trace
from repro.isa.builder import ProgramBuilder
from repro.isa.interp import Interpreter
from repro.isa.program import Module
from repro.simmem.address_space import AddressSpace, Region
from repro.trace.overhead import ExecCounts

__all__ = ["KERNELS", "KernelResult", "build_kernel", "run_kernel"]


@dataclass
class KernelResult:
    """One kernel run through the full toolchain."""

    kernel: str
    module: Module
    classes: dict[int, LoadInfo]
    instrumentation: InstrumentResult
    events_full: np.ndarray
    events_observed: np.ndarray
    counts: ExecCounts
    space: AddressSpace
    regions: dict[str, Region]
    fn_names: dict[int, str]
    rv: int

    @property
    def n_loads(self) -> int:
        """Retired loads."""
        return self.counts.n_loads


def _build_matmul(n: int) -> ProgramBuilder:
    b = ProgramBuilder("matmul", source_file="matmul.c")
    with b.proc("matmul", params=("A", "B", "C")) as p:
        with p.loop("i", 0, n):
            p.mul("arow", "i", 8 * n)  # byte offset of A's row i
            with p.loop("k", 0, n):
                p.mul("ak", "k", 8)
                p.add("aoff", "arow", "ak")
                p.load("a", base="A", index="aoff")  # A[i,k], strided
                p.mul("brow", "k", 8 * n)
                with p.loop("j", 0, n):
                    p.mul("bj", "j", 8)
                    p.add("boff", "brow", "bj")
                    p.load("bv", base="B", index="boff")  # B[k,j], strided
                    p.mul("prod", "a", "bv")
                    p.mul("crow", "i", 8 * n)
                    p.add("coff", "crow", "bj")
                    p.load("cv", base="C", index="coff")  # C[i,j], strided
                    p.add("cv", "cv", "prod")
                    p.store("cv", base="C", index="coff")
        p.ret(0)
    return b


def _build_stencil(n: int, radius: int = 2) -> ProgramBuilder:
    b = ProgramBuilder("stencil", source_file="stencil.c")
    with b.proc("stencil", params=("src", "dst")) as p:
        with p.loop("i", radius, n - radius):
            p.mul("off", "i", 8)
            p.mov("acc", 0)
            for d in range(-radius, radius + 1):
                p.load(f"v{d + radius}", base="src", index="off", offset=8 * d)
                p.add("acc", "acc", f"v{d + radius}")
            p.store("acc", base="dst", index="off")
        p.ret(0)
    return b


def _build_gather(n: int) -> ProgramBuilder:
    b = ProgramBuilder("gather", source_file="gather.c")
    with b.proc("gather", params=("idx", "table", "out")) as p:
        p.mov("acc", 0)
        with p.loop("i", 0, n):
            p.load("j", base="idx", index="i", scale=8)  # strided
            p.load("v", base="table", index="j", scale=8)  # irregular
            p.add("acc", "acc", "v")
            p.store("v", base="out", index="i", scale=8)
        p.ret("acc")
    return b


def _build_reduction(n: int) -> ProgramBuilder:
    b = ProgramBuilder("reduction", source_file="reduction.c")
    with b.proc("reduction", params=("a",)) as p:
        p.mov("acc", 0)
        with p.loop("i", 0, n):
            p.load("v", base="a", index="i", scale=8)
            p.add("acc", "acc", "v")
        p.ret("acc")
    return b


KERNELS: dict[str, dict] = {
    "matmul": {"builder": _build_matmul, "entry": "matmul", "arrays": ("A", "B", "C"), "default_n": 16},
    "stencil": {"builder": _build_stencil, "entry": "stencil", "arrays": ("src", "dst"), "default_n": 1024},
    "gather": {"builder": _build_gather, "entry": "gather", "arrays": ("idx", "table", "out"), "default_n": 1024},
    "reduction": {"builder": _build_reduction, "entry": "reduction", "arrays": ("a",), "default_n": 2048},
}


def build_kernel(name: str, n: int | None = None, repeats: int = 4) -> Module:
    """Build the module for kernel ``name`` with ``main`` repeating it."""
    spec = KERNELS.get(name)
    if spec is None:
        raise ValueError(f"unknown kernel {name!r}; available: {sorted(KERNELS)}")
    n = n or spec["default_n"]
    if repeats <= 0:
        raise ValueError(f"repeats must be > 0, got {repeats}")
    b = spec["builder"](n)
    params = tuple(spec["arrays"])
    with b.proc("main", params=params) as p:
        with p.loop("rep", 0, repeats):
            p.call("rv", spec["entry"], *params)
        p.ret("rv")
    return b.build()


def run_kernel(
    name: str, n: int | None = None, repeats: int = 4, seed: int = 0
) -> KernelResult:
    """Run kernel ``name`` through the full toolchain."""
    spec = KERNELS[name] if name in KERNELS else None
    if spec is None:
        raise ValueError(f"unknown kernel {name!r}; available: {sorted(KERNELS)}")
    n = n or spec["default_n"]
    module = build_kernel(name, n, repeats)
    classes = classify_module(module)
    inst = instrument_module(module, classes)

    space = AddressSpace()
    rng = derive_rng(seed, "kernel", name)
    regions: dict[str, Region] = {}
    elems = n * n if name == "matmul" else n
    for arr in spec["arrays"]:
        regions[arr] = space.malloc(8 * elems, arr)
    if name == "gather":
        for i, j in enumerate(rng.integers(0, n, n)):
            space.store_value(regions["idx"].base + 8 * i, int(j))
    args = [regions[a].base for a in spec["arrays"]]

    cls_map = {a: i.cls for a, i in classes.items()}
    oracle = Interpreter(module, space, cls_map).run("main", *args, mode="oracle")
    res = Interpreter(inst.module, space).run("main", *args, mode="instrumented")
    observed = rebuild_trace(res.packets, inst.annotations)
    return KernelResult(
        kernel=name,
        module=module,
        classes=classes,
        instrumentation=inst,
        events_full=oracle.events,
        events_observed=observed,
        counts=ExecCounts(
            n_instrs=res.n_instrs,
            n_loads=res.n_loads,
            n_stores=res.n_stores,
            n_ptwrites=res.n_ptwrites,
        ),
        space=space,
        regions=regions,
        fn_names={fid: nm for nm, fid in module.proc_ids().items()},
        rv=res.rv,
    )
