"""Darknet-style convolutional inference: im2col + gemm (paper SS:VII-B).

Darknet lowers every convolution to ``im2col`` (unfold input patches into
a column matrix **B**) followed by ``gemm`` (**C** = **A** x **B**, where
**A** holds the layer's filters, ``M = out_channels``,
``K = in_channels * k * k``, ``N = out_h * out_w``). Darknet's gemm_nn
uses the i-k-j loop order with an unrolled inner loop over ``j`` — all
loads strided, which is why the paper reports ``F_str% = 100`` for both
kernels.

Two scaled-down layer stacks reproduce the case study's contrast:

* **alexnet** — few layers with strongly varying shapes (big early
  spatial dims, channel counts jumping), so per-interval footprint
  growth swings;
* **resnet152** — many uniform bottleneck-style layers whose spatial
  dims shrink stage by stage while channels grow, giving a much larger
  total footprint and a smoother time profile.

Inference also has darknet's signature *high store rate* (im2col writes
every column element, gemm updates C in the inner loop), which the
overhead model turns into the paper's 5-7x worst-case tracing slowdown.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.simmem.address_space import AddressSpace
from repro.simmem.datastructs.array import FlatArray
from repro.simmem.recorder import AccessRecorder
from repro.trace.event import LoadClass
from repro.workloads.cost import MemoryCostModel

__all__ = ["LayerSpec", "MODELS", "DarknetResult", "run_darknet"]


@dataclass(frozen=True)
class LayerSpec:
    """One convolution, already lowered to gemm dims."""

    m: int  # out channels
    k: int  # in_channels * kernel_h * kernel_w
    n: int  # out_h * out_w

    def __post_init__(self) -> None:
        if min(self.m, self.k, self.n) <= 0:
            raise ValueError(f"layer dims must be positive: {self}")


#: Scaled-down layer stacks (1/8th-ish channels, shrunken spatial dims).
MODELS: dict[str, tuple[LayerSpec, ...]] = {
    "alexnet": (
        LayerSpec(m=8, k=27, n=98),  # conv1: 11x11-ish on big spatial
        LayerSpec(m=16, k=36, n=64),  # conv2
        LayerSpec(m=24, k=72, n=25),  # conv3
        LayerSpec(m=24, k=108, n=25),  # conv4
        LayerSpec(m=16, k=108, n=25),  # conv5
        LayerSpec(m=32, k=32, n=9),  # fc-as-gemm tail
    ),
    # uniform bottleneck-style stages: constant M, K growing as N shrinks,
    # so per-layer work and footprint growth stay nearly flat (the paper's
    # "more consistent convolutional structure")
    "resnet152": tuple(
        [LayerSpec(m=24, k=48, n=48)] * 4
        + [LayerSpec(m=24, k=64, n=36)] * 4
        + [LayerSpec(m=24, k=96, n=24)] * 4
        + [LayerSpec(m=24, k=144, n=16)] * 4
    ),
}


@dataclass
class DarknetResult:
    """One inference run."""

    model: str
    events: np.ndarray
    fn_names: dict[int, str]
    n_layers: int
    n_stores: int
    sim_time: float
    wall_time: float
    space: AddressSpace
    region_extents: dict[str, tuple[int, int]] = field(default_factory=dict)
    layer_bounds: list[tuple[int, int]] = field(default_factory=list)

    @property
    def n_loads(self) -> int:
        """Retired loads including suppressed constants."""
        return len(self.events) + int(self.events["n_const"].sum())


def _im2col(
    recorder: AccessRecorder,
    input_arr: FlatArray,
    col: FlatArray,
    k: int,
    n: int,
    seed_offsets: np.ndarray,
) -> None:
    """Unfold input patches into the column buffer.

    For each of the ``k`` filter elements, the source pixels of all ``n``
    output positions form a contiguous (strided) run at a per-element
    offset — Darknet's im2col_cpu inner loop.
    """
    with recorder.scope("im2col", "darknet.py"):
        for r in range(k):
            start = int(seed_offsets[r])
            idx = (start + np.arange(n)) % input_arr.n
            site = recorder.scoped_site(LoadClass.STRIDED, input_arr.region.name)
            recorder.record_many(site, input_arr.addr_of(idx))
            col.store_many(r * n + np.arange(n), 0.0)
        recorder.touch_const(k)


def _gemm(
    recorder: AccessRecorder,
    a: FlatArray,
    b: FlatArray,
    c: FlatArray,
    m: int,
    k: int,
    n: int,
) -> None:
    """C += A x B with darknet's i-k-j loop order (all strided)."""
    with recorder.scope("gemm", "darknet.py"):
        site_a = recorder.scoped_site(LoadClass.STRIDED, a.region.name)
        site_b = recorder.scoped_site(LoadClass.STRIDED, b.region.name)
        site_c = recorder.scoped_site(LoadClass.STRIDED, c.region.name)
        col_idx = np.arange(n, dtype=np.int64)
        for i in range(m):
            for kk in range(k):
                recorder.record(site_a, a.region.base + (i * k + kk) * a.elem_size)
                a_val = float(a.data[i * k + kk])
                # inner j loop: load B row, read-modify-write C row
                recorder.record_many(site_b, b.region.base + (kk * n + col_idx) * b.elem_size)
                recorder.record_many(site_c, c.region.base + (i * n + col_idx) * c.elem_size)
                c.data[i * n : i * n + n] += a_val * b.data[kk * n : kk * n + n]
                c.n_stores += n
            recorder.touch_const(1)


def run_darknet(model: str = "alexnet", seed: int = 0) -> DarknetResult:
    """Run one scaled-down inference and record its access trace."""
    if model not in MODELS:
        raise ValueError(f"unknown model {model!r}; expected one of {sorted(MODELS)}")
    t0 = time.perf_counter()
    rng = np.random.default_rng(seed)
    space = AddressSpace()
    recorder = AccessRecorder()
    layers = MODELS[model]

    # per-layer filter matrices; network input
    weights = [
        FlatArray(space, recorder, l.m * l.k, elem_size=4, name="weights", dtype=np.float64)
        for l in layers
    ]
    for w in weights:
        w.fill(rng.normal(0, 0.1, w.n))
    max_in = max(max(l.k * l.n, l.m * l.n) for l in layers)
    input_arr = FlatArray(space, recorder, max_in, elem_size=4, name="gemm-io", dtype=np.float64)
    input_arr.fill(rng.normal(0, 1, input_arr.n))

    layer_bounds: list[tuple[int, int]] = []
    n_stores = 0
    current = input_arr
    for li, layer in enumerate(layers):
        start = recorder.n_recorded
        col = FlatArray(space, recorder, layer.k * layer.n, elem_size=4, name="col-buffer", dtype=np.float64)
        out = FlatArray(space, recorder, layer.m * layer.n, elem_size=4, name="gemm-io", dtype=np.float64)
        offsets = rng.integers(0, max(1, current.n - layer.n), size=layer.k)
        _im2col(recorder, current, col, layer.k, layer.n, offsets)
        n_stores += layer.k * layer.n
        col.fill(rng.normal(0, 1, col.n))  # payload values (unrecorded setup)
        _gemm(recorder, weights[li], col, out, layer.m, layer.k, layer.n)
        n_stores += layer.m * layer.k * layer.n
        # activations and column buffers stay allocated (skip connections
        # and batched reuse keep them alive in real frameworks), so the
        # network's footprint accumulates layer by layer
        current = out
        layer_bounds.append((start, recorder.n_recorded))

    events = recorder.finalize()
    extents = {}
    for label in ("weights", "gemm-io", "col-buffer"):
        try:
            extents[label] = space.extent_of(label)
        except KeyError:
            pass
    return DarknetResult(
        model=model,
        events=events,
        fn_names=recorder.function_names,
        n_layers=len(layers),
        n_stores=n_stores,
        sim_time=MemoryCostModel().runtime(events),
        wall_time=time.perf_counter() - t0,
        space=space,
        region_extents=extents,
        layer_bounds=layer_bounds,
    )
