"""Composable access-pattern microbenchmarks (paper SS:VI).

The paper's microbenchmarks "simulate accesses to both dense and sparse
data structures and vary access patterns, data reuse, access sparsity,
and access likelihood", naming patterns ``str<k>`` (strided with stride
step k) and ``irr`` (irregular), composed conditionally (``/``) or in
series (``|``). They exercise short-lived access sequences that become
hotspots by repeating the kernel many times.

These are written in the synthetic ISA so the whole toolchain runs:
static classification, ptwrite insertion with Constant-load proxies,
instrumented execution, packet rebuild. Per segment:

* ``str<k>`` — a counted loop loading ``arr[i*k]``: the address register
  is a derived induction variable, classified Strided;
* ``irr`` — a pointer chase over a single-cycle permutation
  (``v = arr[v]``): the index register is load-defined, Irregular;
* ``A/B`` — per iteration a data-dependent branch picks one step of A or
  one of B (access likelihood);
* ``A|B`` — A's loop runs, then B's (series phases).

``opt_level`` mimics compiler optimisation for the compression study:
'O0' spills locals, adding three frame-relative Constant loads per
iteration; 'O3' keeps one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util.rng import derive_rng
from repro.instrument.classify import LoadInfo, classify_module
from repro.instrument.instrumenter import InstrumentResult, instrument_module
from repro.instrument.rebuild import rebuild_trace
from repro.isa.builder import ProcBuilder, ProgramBuilder
from repro.isa.interp import Interpreter
from repro.isa.program import Module
from repro.simmem.address_space import AddressSpace, Region
from repro.trace.overhead import ExecCounts

__all__ = [
    "MICROBENCH_SPECS",
    "MicrobenchResult",
    "parse_spec",
    "build_microbench",
    "run_microbench",
]

#: The microbenchmark suite used by the evaluation benches.
MICROBENCH_SPECS = [
    "str1",
    "str4",
    "str8",
    "irr",
    "str1|irr",
    "str4/irr",
    "irr/str2",
    "str2|str8|irr",
]


@dataclass
class MicrobenchResult:
    """Everything one microbenchmark run produces."""

    spec: str
    module: Module
    classes: dict[int, LoadInfo]
    instrumentation: InstrumentResult
    events_full: np.ndarray  # oracle trace: every load, uncompressed
    events_observed: np.ndarray  # rebuilt compressed instrumented trace
    counts: ExecCounts  # instrumented-run dynamic counts
    counts_baseline: ExecCounts  # uninstrumented-run dynamic counts
    space: AddressSpace
    regions: dict[str, Region]
    fn_names: dict[int, str]

    @property
    def n_loads(self) -> int:
        """Retired loads of the run (the sampling population)."""
        return self.counts.n_loads


def parse_spec(spec: str) -> list[tuple[str, ...]]:
    """Parse 'str4/irr|str1' into segments of conditional alternatives."""
    if not spec:
        raise ValueError("empty microbenchmark spec")
    segments: list[tuple[str, ...]] = []
    for seg in spec.split("|"):
        alts = tuple(a.strip() for a in seg.split("/"))
        if not 1 <= len(alts) <= 2:
            raise ValueError(f"segment {seg!r} must have 1 or 2 alternatives")
        for alt in alts:
            if alt != "irr" and not (alt.startswith("str") and alt[3:].isdigit()):
                raise ValueError(f"unknown pattern {alt!r} in spec {spec!r}")
        segments.append(alts)
    return segments


def _stride_of(pattern: str) -> int:
    return int(pattern[3:])


def _emit_chase_step(p: ProcBuilder, reg: str) -> None:
    p.load(reg, base="arr", index=reg, scale=8)


def _build_segment(
    b: ProgramBuilder, name: str, alts: tuple[str, ...], n_elems: int, opt_level: str
) -> None:
    """One segment procedure: params (arr, cond); 'v' chases, 'i' strides.

    Optimisation is modelled as real compilers behave: O3 unrolls the
    pattern loop by 4 and keeps one frame scalar per iteration (Constant
    share ~20%, compression ~1.2x), while O0 runs rolled with one frame
    load per element load (Constant share ~50%, compression ~2x).
    """
    unroll = 4 if opt_level == "O3" else 1
    with b.proc(name, params=("arr", "cond")) as p:
        p.mov("v", 0)
        if len(alts) == 1:
            pattern = alts[0]
            if pattern == "irr":
                with p.loop("i", 0, n_elems // unroll):
                    p.load_local("t0", offset=8)
                    for _ in range(unroll):
                        _emit_chase_step(p, "v")
            else:
                k = max(1, _stride_of(pattern))
                with p.loop("i", 0, n_elems // (k * unroll)):
                    p.load_local("t0", offset=8)
                    p.mul("ik", "i", k * unroll)
                    for x in range(unroll):
                        p.load("v", base="arr", index="ik", scale=8, offset=8 * x * k)
        else:
            a, c = alts
            with p.loop("i", 0, n_elems):
                if opt_level == "O0":
                    p.load_local("t0", offset=8)
                p.load("cv", base="cond", index="i", scale=8)
                with p.if_else("eq", "cv", 0) as otherwise:
                    if a == "irr":
                        _emit_chase_step(p, "v")
                    else:
                        p.mul("ik", "i", max(1, _stride_of(a)))
                        p.load("v", base="arr", index="ik", scale=8)
                    otherwise()
                    if c == "irr":
                        _emit_chase_step(p, "v")
                    else:
                        p.mul("ik2", "i", max(1, _stride_of(c)))
                        p.load("v", base="arr", index="ik2", scale=8)
        p.ret("v")


def build_microbench(
    spec: str, n_elems: int = 4096, repeats: int = 20, opt_level: str = "O3"
) -> Module:
    """Build the microbenchmark module for ``spec``.

    ``main(arr, cond)`` repeats the segment sequence ``repeats`` times,
    making the short-lived sequences a hotspot (the paper repeats 100x).
    """
    if n_elems <= 0 or (n_elems & (n_elems - 1)) != 0:
        raise ValueError(f"n_elems must be a positive power of two, got {n_elems}")
    if repeats <= 0:
        raise ValueError(f"repeats must be > 0, got {repeats}")
    if opt_level not in ("O0", "O3"):
        raise ValueError(f"opt_level must be 'O0' or 'O3', got {opt_level}")
    segments = parse_spec(spec)
    b = ProgramBuilder(f"ubench-{spec}-{opt_level}")
    seg_names = []
    for j, alts in enumerate(segments):
        name = f"seg{j}_" + "_or_".join(alts)
        _build_segment(b, name, alts, n_elems, opt_level)
        seg_names.append(name)
    with b.proc("main", params=("arr", "cond")) as p:
        with p.loop("rep", 0, repeats):
            for name in seg_names:
                p.call("rv", name, "arr", "cond")
        p.ret(0)
    return b.build()


def _setup_data(
    space: AddressSpace, n_elems: int, seed: int
) -> dict[str, Region]:
    """Allocate and fill the chase array and the branch-condition array."""
    rng = derive_rng(seed, "microbench-data")
    arr = space.malloc(n_elems * 8, "arr")
    cond = space.malloc(n_elems * 8, "cond")
    # Sattolo single-cycle permutation: v = arr[v] visits every element
    perm = np.arange(n_elems)
    for i in range(n_elems - 1, 0, -1):
        j = int(rng.integers(0, i))
        perm[i], perm[j] = perm[j], perm[i]
    cycle = np.empty(n_elems, dtype=np.int64)
    cycle[perm[:-1]] = perm[1:]
    cycle[perm[-1]] = perm[0]
    flips = rng.integers(0, 2, n_elems)
    for i in range(n_elems):
        space.store_value(arr.base + 8 * i, int(cycle[i]))
        space.store_value(cond.base + 8 * i, int(flips[i]))
    return {"arr": arr, "cond": cond}


def run_microbench(
    spec: str,
    n_elems: int = 4096,
    repeats: int = 20,
    opt_level: str = "O3",
    seed: int = 0,
) -> MicrobenchResult:
    """Build, classify, instrument, and execute a microbenchmark.

    Runs the *uninstrumented* module in oracle mode for the ground-truth
    full trace, then the instrumented module for the packet stream, and
    rebuilds the compressed observed trace from the packets.
    """
    module = build_microbench(spec, n_elems, repeats, opt_level)
    classes = classify_module(module)
    inst = instrument_module(module, classes)

    space = AddressSpace()
    regions = _setup_data(space, n_elems, seed)
    cls_map = {addr: info.cls for addr, info in classes.items()}

    oracle = Interpreter(module, space, cls_map).run(
        "main", regions["arr"].base, regions["cond"].base, mode="oracle"
    )
    instrumented = Interpreter(inst.module, space).run(
        "main", regions["arr"].base, regions["cond"].base, mode="instrumented"
    )
    observed = rebuild_trace(instrumented.packets, inst.annotations)
    fn_names = {fid: name for name, fid in module.proc_ids().items()}
    return MicrobenchResult(
        spec=spec,
        module=module,
        classes=classes,
        instrumentation=inst,
        events_full=oracle.events,
        events_observed=observed,
        counts=ExecCounts(
            n_instrs=instrumented.n_instrs,
            n_loads=instrumented.n_loads,
            n_stores=instrumented.n_stores,
            n_ptwrites=instrumented.n_ptwrites,
        ),
        counts_baseline=ExecCounts(
            n_instrs=oracle.n_instrs,
            n_loads=oracle.n_loads,
            n_stores=oracle.n_stores,
            n_ptwrites=oracle.n_ptwrites,
        ),
        space=space,
        regions=regions,
        fn_names=fn_names,
    )
