"""Memory-access cost model for simulated application run times.

The paper reports wall-clock run times for the miniVite/GAP variants;
their orderings come from memory behaviour (irregular misses vs strided
prefetched traffic). We cannot time native code, so variant 'run times'
are produced by a simple access-cost model over the full observed stream:
Constant and Strided loads hit (prefetchers hide strided latency),
Irregular loads pay a miss factor. The model is deliberately coarse — the
benches check *orderings and rough ratios*, not absolute seconds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trace.event import EVENT_DTYPE, LoadClass

__all__ = ["MemoryCostModel"]


@dataclass(frozen=True)
class MemoryCostModel:
    """Per-access costs in arbitrary time units."""

    c_const: float = 1.0
    c_strided: float = 1.0
    c_irregular: float = 60.0  # ~DRAM miss + TLB vs prefetched stream
    c_compute: float = 0.5  # non-memory work accompanying each access

    def runtime(self, events: np.ndarray) -> float:
        """Simulated run time of the execution that produced ``events``.

        Includes the Constant loads suppressed into ``n_const`` proxies.
        """
        if events.dtype != EVENT_DTYPE:
            raise TypeError(f"expected EVENT_DTYPE events, got {events.dtype}")
        cls = events["cls"]
        n_const = int((cls == int(LoadClass.CONSTANT)).sum()) + int(
            events["n_const"].sum()
        )
        n_str = int((cls == int(LoadClass.STRIDED)).sum())
        n_irr = int((cls == int(LoadClass.IRREGULAR)).sum())
        total = n_const + n_str + n_irr
        return (
            self.c_const * n_const
            + self.c_strided * n_str
            + self.c_irregular * n_irr
            + self.c_compute * total
        )
