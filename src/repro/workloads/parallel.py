"""Thread interleaving: sampling under CPU parallelism (paper SS:VI).

"All application benchmarks support OpenMP and are executed with and
without parallelism. However, note that our analysis focuses on memory
behavior and is *orthogonal* to CPU parallelism."

This module makes that claim testable: :func:`interleave_streams` merges
per-thread record streams the way a core-multiplexed trace would observe
them (threads advance in bursts of a scheduling quantum), renumbering
timestamps into one retirement order. The orthogonality claim then says
the *intensive* diagnostics (footprint growth, class mix) of the merged
trace match the single-threaded ones — checked in
``tests/workloads/test_parallel.py``.

:func:`split_vertices` is the helper workloads use to partition their
outer loop across simulated threads.
"""

from __future__ import annotations

import numpy as np

from repro._util.rng import derive_rng
from repro.trace.event import EVENT_DTYPE, concat_events

__all__ = ["interleave_streams", "split_vertices"]


def split_vertices(n: int, n_threads: int) -> list[np.ndarray]:
    """Contiguous partition of ``range(n)`` across ``n_threads`` (OpenMP
    static scheduling)."""
    if n_threads <= 0:
        raise ValueError(f"n_threads must be > 0, got {n_threads}")
    return [chunk for chunk in np.array_split(np.arange(n), n_threads)]


def interleave_streams(
    streams: list[np.ndarray],
    *,
    quantum: int = 256,
    jitter: float = 0.5,
    seed: int = 0,
) -> np.ndarray:
    """Merge per-thread record streams into one observed trace.

    Threads advance round-robin in bursts of roughly ``quantum`` records
    (±``jitter`` relative spread — real cores drift), until every stream
    drains. Output timestamps are the merged retirement order, which is
    exactly what a shared load counter would produce.
    """
    for s in streams:
        if s.dtype != EVENT_DTYPE:
            raise TypeError(f"expected EVENT_DTYPE streams, got {s.dtype}")
    if quantum <= 0:
        raise ValueError(f"quantum must be > 0, got {quantum}")
    if not 0 <= jitter < 1:
        raise ValueError(f"jitter must be in [0, 1), got {jitter}")
    rng = derive_rng(seed, "interleave")
    cursors = [0] * len(streams)
    pieces: list[np.ndarray] = []
    remaining = sum(len(s) for s in streams)
    while remaining > 0:
        for tid, stream in enumerate(streams):
            lo = cursors[tid]
            if lo >= len(stream):
                continue
            burst = quantum
            if jitter:
                burst = max(1, int(quantum * (1 + jitter * (rng.random() * 2 - 1))))
            hi = min(len(stream), lo + burst)
            pieces.append(stream[lo:hi])
            cursors[tid] = hi
            remaining -= hi - lo
    out = concat_events(pieces)
    out["t"] = np.arange(len(out), dtype=np.uint64)
    return out
