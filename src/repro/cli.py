"""Command-line interface: ``memgaze``.

Three subcommands mirror the tool's workflow:

``memgaze trace``
    Run a bundled workload, collect a sampled trace with the given
    period/buffer, and write it to a ``.npz`` trace archive.

``memgaze report``
    Read a trace archive and print the analyses: whole-trace footprint
    diagnostics, per-function code windows, hot memory regions (zoom),
    locality over time, working-set curve, and sampling confidence.
    ``--workers N`` shards the window analyses over a process pool
    (bit-identical results; see :mod:`repro.core.parallel`),
    ``--chunk-size`` overrides the shard size, ``--shm``/``--no-shm``
    toggles the zero-copy shared-memory shard handoff,
    ``--reuse-kernel`` picks the reuse-distance kernel
    (``docs/performance.md``), and ``--stats`` prints per-stage
    timings, throughput, and cache hit rates.

``memgaze info``
    Show a trace archive's collection metadata.

``memgaze validate-trace``
    Audit a trace archive's health: schema, per-chunk checksums,
    truncation/bit-flip/schema findings (see :mod:`repro.trace.health`).

Observability: ``--journal PATH`` (on ``trace`` and ``report``) appends
a structured JSONL run journal — one line per pipeline stage with
timings, item counts, and rho/kappa/window parameters — and ``report
--metrics PATH`` writes the pipeline metrics registry plus per-stage
timings as JSON. Reading a damaged archive degrades gracefully: the
verified event prefix is analyzed and every recovery step is journaled
as a warning instead of crashing (``docs/observability.md``).

Workloads are named ``family:variant``::

    ubench:str4/irr      microbenchmark spec (ISA path)
    minivite:v1|v2|v3    Louvain with the three map variants
    pagerank:pr|pr-spmv  GAP-style PageRank
    cc:cc|cc-sv          GAP-style Connected Components
    darknet:alexnet|resnet152
    kvreuse:prefix|tail|sessions   KV-cache serving streams

Example::

    memgaze trace --workload minivite:v2 --period 12000 --buffer 1024 -o v2.npz
    memgaze report v2.npz --functions --regions --working-set
    memgaze report v2.npz --workers 4 --stats
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

import numpy as np

from repro.core.confidence import code_window_confidence
from repro.core.interval_tree import access_interval_metrics
from repro.core.parallel import ParallelEngine
from repro.core.passes import UnknownPassError, get_pass, list_passes
from repro.core.report import (
    format_quantity,
    full_report_payload,
    passes_payload,
    payload_json,
    render_function_table,
    render_interval_table,
    render_region_table,
)
from repro.core.zoom import ZoomConfig, location_zoom, zoom_leaves
from repro.core.workingset import working_set_curve
from repro.trace.collector import collect_sampled_trace
from repro.trace.compress import compression_ratio, sample_ratio_from
from repro.trace.sampler import SamplingConfig
from repro.trace.tracefile import TraceFormatError, TraceMeta, write_trace

__all__ = ["main", "build_parser"]


# -- workload runners -----------------------------------------------------------


def _run_workload(name: str, scale: int, seed: int):
    """Run ``family:variant``; returns (events, n_loads, fn_names, label)."""
    family, _, variant = name.partition(":")
    if family == "ubench":
        from repro.workloads.microbench import run_microbench

        spec = variant or "str4/irr"
        r = run_microbench(spec, n_elems=1 << max(8, scale), repeats=60, seed=seed)
        return r.events_observed, r.n_loads, r.fn_names, f"ubench {spec}"
    if family == "minivite":
        from repro.workloads.minivite import run_minivite

        r = run_minivite(variant or "v1", scale=scale, seed=seed, max_iters=2)
        return r.events, r.n_loads, r.fn_names, f"miniVite {r.variant}"
    if family == "pagerank":
        from repro.workloads.gap.pagerank import run_pagerank

        r = run_pagerank(variant or "pr", scale=scale, seed=seed)
        return r.events, r.n_loads, r.fn_names, f"PageRank {r.algorithm}"
    if family == "cc":
        from repro.workloads.gap.cc import run_cc

        r = run_cc(variant or "cc", scale=scale, seed=seed)
        return r.events, r.n_loads, r.fn_names, f"CC {r.algorithm}"
    if family == "darknet":
        from repro.workloads.darknet import run_darknet

        r = run_darknet(variant or "alexnet", seed=seed)
        return r.events, r.n_loads, r.fn_names, f"Darknet {r.model}"
    if family == "kvreuse":
        from repro.workloads.kvreuse import KVREUSE_VARIANTS, run_kvreuse

        v = variant or "prefix"
        if v not in KVREUSE_VARIANTS:
            raise SystemExit(
                f"unknown kvreuse variant {v!r}; pick one of "
                f"{', '.join(KVREUSE_VARIANTS)}"
            )
        r = run_kvreuse(v, scale=scale, seed=seed)
        return r.events, r.n_loads, r.fn_names, f"KV-reuse {r.variant}"
    raise SystemExit(f"unknown workload family {family!r} (see memgaze trace -h)")


# -- subcommands ------------------------------------------------------------------


def _cmd_trace(args: argparse.Namespace) -> int:
    journal = _open_journal(args)
    events, n_loads, fn_names, label = _run_workload(args.workload, args.scale, args.seed)
    cfg = SamplingConfig(
        period=args.period,
        buffer_capacity=args.buffer,
        fill_jitter=0.0 if args.deterministic else 0.15,
        seed=args.seed,
    )
    if journal is not None:
        with journal.stage("trace", workload=args.workload, period=cfg.period,
                           buffer_capacity=cfg.buffer_capacity, mode=args.mode):
            col = collect_sampled_trace(events, n_loads, cfg, mode=args.mode)
    else:
        col = collect_sampled_trace(events, n_loads, cfg, mode=args.mode)
    meta = TraceMeta(
        module=label,
        kind="sampled",
        period=cfg.period,
        buffer_capacity=cfg.buffer_capacity,
        n_loads_total=n_loads,
        n_samples=col.n_samples,
        extra={"fn_names": {str(k): v for k, v in fn_names.items()}, "mode": args.mode},
    )
    size = write_trace(args.output, col.events, meta, col.sample_id)
    if journal is not None:
        journal.emit(
            "trace-written",
            path=str(args.output),
            bytes=size,
            n_observed=len(events),
            n_sampled=len(col.events),
            n_samples=col.n_samples,
            rho=sample_ratio_from(col),
            kappa=compression_ratio(col.events),
        )
        journal.close()
    frac = len(col.events) / max(1, len(events))
    print(f"{label}: {n_loads:,} loads, {len(events):,} records")
    print(
        f"sampled {len(col.events):,} records in {col.n_samples} samples "
        f"({frac:.1%} of the observed stream)"
    )
    print(f"wrote {args.output} ({size:,} bytes)")
    return 0


def _open_journal(args) -> "object | None":
    """Build a :class:`RunJournal` when ``--journal`` was given."""
    path = getattr(args, "journal", None)
    if not path:
        return None
    from repro.obs.journal import RunJournal

    return RunJournal(path)


def _require_trace_path(path, command: str = "memgaze") -> None:
    """Exit with a clear message when a trace archive path does not exist.

    Accepts the same path forms the readers do (``numpy`` appends
    ``.npz`` when missing), so the check never rejects a loadable path.
    """
    p = Path(path)
    if p.exists() or p.with_name(p.name + ".npz").exists():
        return
    raise SystemExit(f"{command}: no such trace archive: {path}")


def _load(path, journal=None) -> "LoadedTrace":
    """Read a trace archive through the shared loader, reporting degradation.

    Delegates to :func:`repro.trace.loader.load_trace_collection` — the
    same path the streaming service's live queries use, which is what
    keeps ``report --json`` byte-identical to a live query. This wrapper
    adds the CLI conventions: a missing path exits immediately; an
    archive whose only damage is a truncated tail is reported as *still
    growing* (a writer may be appending — the verified prefix is
    analyzed, not an error); real damage (bit-flips, schema drift)
    prints every finding; an unrecoverable archive aborts.

    The returned :class:`~repro.trace.loader.LoadedTrace` carries the
    health verdict: ``clean`` is False when recovery ran — the events in
    memory are then a *prefix* of the archive, so its health digest no
    longer addresses them (the analysis cache must stay off), and
    renderers surface the ``findings`` (the HTML report shows them in a
    warning banner).
    """
    from repro.trace.loader import load_trace_collection

    _require_trace_path(path)
    try:
        loaded = load_trace_collection(path, journal=journal)
    except TraceFormatError as exc:
        raise SystemExit(f"memgaze: unrecoverable trace archive: {exc}") from exc
    n_events = len(loaded.collection.events)
    if loaded.growing:
        print(
            f"warning: {path}: archive tail is incomplete but undamaged — "
            f"it appears to be still growing; analyzing the verified "
            f"prefix of {n_events:,} events",
            file=sys.stderr,
        )
    elif not loaded.clean:
        for f in loaded.findings:
            print(f"warning: {path}: [{f.kind}] {f.detail}", file=sys.stderr)
        print(
            f"warning: {path}: damaged archive; analyzing the verified "
            f"prefix of {n_events:,} events",
            file=sys.stderr,
        )
    return loaded


def _degraded_note(loaded: "LoadedTrace") -> dict | None:
    """The payload's ``degraded`` dict for a recovered archive (else None).

    Attached only when recovery ran, so clean payloads stay byte-for-byte
    what they always were.
    """
    if loaded.clean:
        return None
    return {
        "growing": loaded.growing,
        "n_events": int(len(loaded.collection.events)),
        "findings": [
            {"kind": f.kind, "detail": f.detail} for f in loaded.findings
        ],
    }


def _cmd_info(args: argparse.Namespace) -> int:
    loaded = _load(args.trace)
    col, meta, fn_names = loaded.collection, loaded.meta, loaded.fn_names
    print(f"module:        {meta.module}")
    print(f"kind:          {meta.kind}")
    print(f"period (w+z):  {meta.period:,} loads")
    print(f"buffer:        {meta.buffer_capacity} records")
    print(f"samples:       {col.n_samples} (mean w = {col.mean_w:.0f})")
    print(f"records:       {len(col.events):,}")
    print(f"loads total:   {col.n_loads_total:,}")
    print(f"rho:           {sample_ratio_from(col):.1f}")
    print(f"kappa:         {compression_ratio(col.events):.2f}")
    print(f"functions:     {', '.join(sorted(fn_names.values())) or '(unnamed)'}")
    return 0


def _default_cache_dir() -> Path:
    """The analysis-cache directory used when ``--cache-dir`` is not given."""
    env = os.environ.get("MEMGAZE_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "memgaze"


def _cmd_report(args: argparse.Namespace) -> int:
    journal = _open_journal(args)
    metrics = None
    if args.metrics:
        from repro.obs.metrics import MetricsRegistry

        metrics = MetricsRegistry()
    loaded = _load(args.trace, journal=journal)
    col, meta, fn_names, clean = (
        loaded.collection,
        loaded.meta,
        loaded.fn_names,
        loaded.clean,
    )
    if len(col.events) == 0:
        print("trace is empty")
        return 1
    rho = sample_ratio_from(col)

    # --cache-dir alone enables the cache; --no-cache always wins
    use_cache = args.cache is True or (
        args.cache is None and args.cache_dir is not None
    )
    store = None
    store_key = None
    if use_cache:
        from repro.core.artifacts import ArtifactStore

        store = ArtifactStore(
            args.cache_dir or _default_cache_dir(), journal=journal, metrics=metrics
        )
        if clean:
            store_key = ArtifactStore.archive_digest(args.trace)
            if store_key is None and journal is not None:
                journal.warning(
                    "archive has no usable health record; analysis cache disabled",
                    path=str(args.trace),
                )
        elif journal is not None:
            journal.warning(
                "damaged archive: only a recovered prefix is analyzed, so the "
                "analysis cache is disabled for this run",
                path=str(args.trace),
            )
    if args.reuse_kernel:
        # via the environment so forked pool workers pick the same kernel
        os.environ["MEMGAZE_REUSE_KERNEL"] = args.reuse_kernel
    if args.cache_kernel:
        os.environ["MEMGAZE_CACHE_KERNEL"] = args.cache_kernel
    try:
        # validate the cache-kernel env here, before the pool forks, so a
        # typo'd MEMGAZE_CACHE_KERNEL is the CLI's uniform error rather
        # than a bare ValueError from deep inside a worker's scan
        from repro.core.cachesim import default_cache_kernel

        default_cache_kernel()
    except ValueError as exc:
        raise SystemExit(f"memgaze report: {exc}") from exc
    engine = ParallelEngine(
        workers=args.workers,
        chunk_size=args.chunk_size,
        store=store,
        journal=journal,
        metrics=metrics,
        shm=args.shm,
    )
    token = engine.window_token()

    if args.html:
        # one self-contained page rendered from the viz payload — the
        # same payload the serve dashboard polls, through the same
        # template path, so live and offline renderings of identical
        # archive bytes are byte-identical. A damaged archive renders
        # the verified prefix with a warning banner instead of failing.
        from repro.core.report import viz_report_payload
        from repro.viz import render_html

        extra = None
        if args.passes:
            extra = [s.strip() for s in args.passes.split(",") if s.strip()]
        try:
            payload = viz_report_payload(
                meta.module,
                col,
                rho,
                fn_names,
                engine,
                window_token=token,
                store_key=store_key,
                degraded=_degraded_note(loaded),
                extra_passes=extra,
            )
        except (UnknownPassError, ValueError) as exc:
            raise SystemExit(f"memgaze report: {exc}") from exc
        text = render_html(payload)
        out = Path(args.html)
        out.write_text(text, encoding="utf-8")
        print(f"wrote {out} ({len(text.encode('utf-8')):,} bytes)")
        _report_tail(args, engine, journal, metrics)
        return 0

    if args.json:
        # the canonical machine-readable payload — built by the same
        # helpers the streaming daemon serves, so this output is
        # byte-identical to a live `memgaze query` over the same bytes
        try:
            if args.passes:
                requested = [s.strip() for s in args.passes.split(",") if s.strip()]
                results = engine.run_passes(
                    col.events,
                    requested,
                    sample_id=col.sample_id,
                    rho=rho,
                    fn_names=fn_names,
                    window_id=(token, "whole"),
                    store_key=store_key,
                )
                payload = passes_payload(meta.module, col, rho, requested, results)
            else:
                payload = full_report_payload(
                    meta.module,
                    col,
                    rho,
                    fn_names,
                    engine,
                    window_token=token,
                    store_key=store_key,
                )
        except (UnknownPassError, ValueError) as exc:
            raise SystemExit(f"memgaze report: {exc}") from exc
        print(payload_json(payload))
        _report_tail(args, engine, journal, metrics)
        return 0

    if args.passes:
        requested = [s.strip() for s in args.passes.split(",") if s.strip()]
        try:
            results = engine.run_passes(
                col.events,
                requested,
                sample_id=col.sample_id,
                rho=rho,
                fn_names=fn_names,
                window_id=(token, "whole"),
                store_key=store_key,
            )
        except (UnknownPassError, ValueError) as exc:
            raise SystemExit(f"memgaze report: {exc}") from exc
        print(f"== {meta.module}: analysis passes ==")
        for name in requested:
            print(f"\n== pass: {name} ==")
            print(get_pass(name).render(results[name]))
        _report_tail(args, engine, journal, metrics)
        return 0

    everything = not (
        args.functions
        or args.regions
        or args.intervals
        or args.working_set
        or args.confidence
        or args.hotspots
        or args.phases
    )

    # the header metrics run as ONE fused scan: each shard of the trace
    # is visited once for diagnostics and (when shown) hotspots together
    header = ["diagnostics"] + (["hotspot"] if everything or args.hotspots else [])
    if everything or args.functions:
        header.append("windows")
    results = engine.run_passes(
        col.events,
        header,
        sample_id=col.sample_id,
        rho=rho,
        fn_names=fn_names,
        window_id=(token, "whole"),
        store_key=store_key,
    )
    d = results["diagnostics"]
    print(f"== {meta.module}: footprint access diagnostics ==")
    print(f"A (est):   {format_quantity(d.A_est)}    F (est): {format_quantity(d.F_est)}")
    print(f"dF:        {d.dF:.3f}   F_str%: {d.F_str_pct:.1f}   A_const%: {d.A_const_pct:.1f}")

    if everything or args.hotspots:
        print("\n== hotspots ==")
        for h in results["hotspot"]:
            print(f"  {h.function:<20} {100 * h.share:5.1f}%  ({format_quantity(h.n_accesses)} sampled loads)")

    if everything or args.functions:
        print()
        print(
            render_function_table(
                results["windows"],
                title="code windows (per-function locality)",
            )
        )

    if everything or args.regions:
        root = location_zoom(
            col.events,
            ZoomConfig(hot_threshold=args.hot_threshold),
            sample_id=col.sample_id,
            fn_names=fn_names,
        )
        leaves = zoom_leaves(root, min_pct=args.min_region_pct)[: args.max_regions]
        rows = []
        for leaf in leaves:
            top_fn = leaf.functions.most_common(1)
            name = f"{leaf.base:#x} ({top_fn[0][0]})" if top_fn else f"{leaf.base:#x}"
            rows.append((name, leaf))
        print()
        print(render_region_table(rows, title="hot memory regions (location zoom)", show_max_d=True))

    if args.intervals or everything:
        n = args.intervals or 8
        rows = access_interval_metrics(
            col.events,
            n,
            rho=rho,
            reuse_block=64,
            sample_id=col.sample_id,
            engine=engine,
            cache_token=token,
        )
        print()
        print(render_interval_table(rows, title=f"locality over {n} access intervals"))

    if everything or args.working_set:
        print("\n== working set (4 KiB pages) ==")
        for p in working_set_curve(col, n_intervals=args.intervals or 8):
            print(
                f"  interval {p.interval}: ~{format_quantity(p.pages_est)} pages "
                f"({p.mb_est:.1f} MiB est), reuse {100 * p.captured_fraction:.0f}%"
            )

    if everything or args.phases:
        from repro.core.phases import detect_phases

        print("\n== execution phases ==")
        for p in detect_phases(col):
            print(
                f"  phase {p.index}: loads [{p.t_start:,}, {p.t_end:,})  "
                f"{p.label:<9} strided {100 * p.strided_share:.0f}%  "
                f"dF={p.diagnostics.dF:.3f}  ({p.n_samples} samples)"
            )

    if everything or args.confidence:
        print("\n== sampling confidence ==")
        conf = code_window_confidence(col, fn_names)
        for name, c in sorted(conf.items(), key=lambda kv: -kv[1].A_est):
            lo, hi = c.ci95
            flag = "  UNDERSAMPLED" if c.undersampled else ""
            print(
                f"  {name:<20} A~{format_quantity(c.A_est):>8}  "
                f"CI95 [{format_quantity(lo)}, {format_quantity(hi)}]  "
                f"{c.n_samples_present}/{c.n_samples_total} samples{flag}"
            )

    _report_tail(args, engine, journal, metrics)
    return 0


def _report_tail(args, engine, journal, metrics) -> None:
    """Shared ``report`` epilogue: stats, journal/metrics export, shutdown."""
    if args.stats:
        print()
        print(engine.timers.report(title="analysis stage timings"))
        print(
            f"  cache: {engine.cache.hits} hits / {engine.cache.misses} misses "
            f"({len(engine.cache)} entries)"
        )
        if engine.store is not None:
            s = engine.store.stats()
            print(
                f"  disk cache: {s['hits']} hits / {s['misses']} misses "
                f"({s['entries']} entries, {s['bytes']:,} bytes at {s['root']})"
            )
    if journal is not None:
        journal.record_timers(engine.timers)
        if metrics is not None:
            journal.record_metrics(metrics)
    if args.metrics:
        export = {
            "trace": str(args.trace),
            "run": journal.run_id if journal is not None else None,
            "metrics": metrics.as_dict(),
            "stages": engine.timers.as_records(),
            "cache": {
                "hits": engine.cache.hits,
                "misses": engine.cache.misses,
                "entries": len(engine.cache),
            },
        }
        if engine.store is not None:
            export["disk_cache"] = engine.store.stats()
        with open(args.metrics, "w", encoding="utf-8") as fh:
            json.dump(export, fh, indent=2, sort_keys=True)
            fh.write("\n")
    if journal is not None:
        journal.close()
    engine.close()


def _cmd_passes(args: argparse.Namespace) -> int:
    """List the registered analysis passes (``memgaze passes``)."""
    print("registered analysis passes (memgaze report --passes name,...):\n")
    for p in list_passes():
        print(f"  {p.name:<12} {p.description}")
        if p.requires:
            print(f"{'':14}requires: {', '.join(p.requires)}")
        if p.defaults:
            defaults = ", ".join(f"{k}={v!r}" for k, v in sorted(p.defaults.items()))
            print(f"{'':14}defaults: {defaults}")
        if p.needs:
            print(f"{'':14}needs:    {', '.join(p.needs)} (API-only pass)")
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    from repro.core.diff import diff_traces

    before = _load(args.before)
    after = _load(args.after)
    col_b, meta_b, fn_b = before.collection, before.meta, before.fn_names
    col_a, meta_a, fn_a = after.collection, after.meta, after.fn_names
    diff = diff_traces(
        col_b,
        col_a,
        fn_b,
        fn_a,
        label_before=meta_b.module,
        label_after=meta_a.module,
    )
    print(diff.render(top=args.top))
    return 0


def _cmd_matrix(args: argparse.Namespace) -> int:
    """Analyze a corpus of archives and gate regressions (``memgaze matrix``)."""
    from repro.core.corpus import CorpusSpec, CorpusSpecError
    from repro.core.diff import ThresholdError, Thresholds, corpus_diff
    from repro.core.matrix import run_matrix

    journal = _open_journal(args)
    metrics = None
    if args.metrics:
        from repro.obs.metrics import MetricsRegistry

        metrics = MetricsRegistry()
    try:
        spec = CorpusSpec.load(args.spec, baseline=args.baseline)
    except CorpusSpecError as exc:
        raise SystemExit(f"memgaze matrix: {exc}") from exc
    if args.cache_sweep:
        # force the what-if sweep on for every cell (specs can also opt
        # in per cell with `cache_sweep = true`)
        import dataclasses

        spec = dataclasses.replace(
            spec,
            cells=tuple(dataclasses.replace(c, cache_sweep=True) for c in spec.cells),
        )
    thresholds = None
    if args.gate:
        try:
            thresholds = Thresholds.from_file(args.gate)
        except ThresholdError as exc:
            raise SystemExit(f"memgaze matrix: {exc}") from exc

    # --cache-dir alone enables the cache; --no-cache always wins
    use_cache = args.cache is True or (
        args.cache is None and args.cache_dir is not None
    )
    cache_dir = (args.cache_dir or _default_cache_dir()) if use_cache else None
    try:
        result = run_matrix(
            spec,
            cache_dir=cache_dir,
            workers=args.workers,
            chunk_size=args.chunk_size,
            journal=journal,
            metrics=metrics,
        )
    except TraceFormatError as exc:
        raise SystemExit(
            f"memgaze matrix: unrecoverable trace archive: {exc}"
        ) from exc
    payload = result.corpus_payload()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(payload_json(payload) + "\n")

    try:
        diff = corpus_diff(payload, thresholds, min_accesses=args.min_accesses)
    except ThresholdError as exc:
        raise SystemExit(f"memgaze matrix: {exc}") from exc
    verdict = diff.verdict_payload()
    regressed = [c.label for c in diff.cells if c.regressed]
    if metrics is not None:
        metrics.counter("matrix.regressions").inc(len(regressed))
    if journal is not None:
        journal.emit(
            "matrix-verdict",
            corpus=spec.name,
            baseline=diff.baseline,
            verdict=diff.verdict,
            gated=args.gate is not None,
            regressed_cells=regressed,
        )
    if args.verdict:
        with open(args.verdict, "w", encoding="utf-8") as fh:
            fh.write(payload_json(verdict) + "\n")

    if args.json:
        # with a gate the machine-readable product is the verdict;
        # otherwise it is the aggregated corpus payload itself
        print(payload_json(verdict if args.gate else payload))
    else:
        print(
            f"== corpus {spec.name}: {len(result.cells)} cells "
            f"(baseline {spec.baseline}) =="
        )
        for label, r in sorted(result.cells.items()):
            marker = "*" if label == spec.baseline else " "
            print(
                f" {marker} {label:<20} {r.mode:<12} "
                f"{r.n_events:>12,} events  {r.seconds:8.3f}s"
            )
        print()
        print(diff.render(top=args.top))

    if args.metrics:
        export = {
            "spec": str(args.spec),
            "run": journal.run_id if journal is not None else None,
            "metrics": metrics.as_dict(),
            "modes": dict(result.modes),
            "verdict": diff.verdict,
        }
        with open(args.metrics, "w", encoding="utf-8") as fh:
            json.dump(export, fh, indent=2, sort_keys=True)
            fh.write("\n")
    if journal is not None:
        if metrics is not None:
            journal.record_metrics(metrics)
        journal.close()
    return 1 if (args.gate and diff.verdict == "regressed") else 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.core.histograms import mape, window_histogram

    events, n_loads, fn_names, label = _run_workload(args.workload, args.scale, args.seed)
    cfg = SamplingConfig(period=args.period, buffer_capacity=args.buffer, seed=args.seed)
    col = collect_sampled_trace(events, n_loads, cfg)
    frac = len(col.events) / max(1, len(events))
    print(f"{label}: sampled {frac:.1%} of {len(events):,} records "
          f"({col.n_samples} samples)")
    sizes = [8, 16, 32, 64, 128, 256]
    worst = 0.0
    for metric in ("F", "F_str", "F_irr"):
        _, sampled = window_histogram(col.events, metric, sizes=sizes, sample_id=col.sample_id)
        _, full = window_histogram(events, metric, sizes=sizes)
        err = mape(sampled, full)
        shown = f"{err:5.1f}%" if np.isfinite(err) else "    -"
        print(f"  {metric:<6} trace-window MAPE: {shown}")
        if np.isfinite(err):
            worst = max(worst, err)
    verdict = "OK (within the paper's <25% bound)" if worst < 25 else "HIGH"
    print(f"worst MAPE: {worst:.1f}%  -> {verdict}")
    return 0 if worst < 25 else 1


def _cmd_validate_trace(args: argparse.Namespace) -> int:
    from repro.trace.health import validate

    _require_trace_path(args.trace, "memgaze validate-trace")
    report = validate(args.trace)
    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0 if report.ok else 1


def _cmd_cache(args: argparse.Namespace) -> int:
    """Inspect or maintain the persistent analysis cache (``memgaze cache``)."""
    from repro.core.artifacts import ArtifactStore

    root = Path(args.cache_dir) if args.cache_dir else _default_cache_dir()
    if root.exists() and not root.is_dir():
        raise SystemExit(f"memgaze cache: not a directory: {root}")
    if args.action == "stats":
        if not root.exists():
            print(f"cache {root}: empty (directory does not exist)")
            return 0
        store = ArtifactStore(root)
        s = store.stats()
        print(f"cache {s['root']}:")
        print(f"  entries: {s['entries']}")
        print(f"  bytes:   {s['bytes']:,}")
        return 0
    if args.action == "prune":
        if args.max_bytes is None:
            raise SystemExit(
                "memgaze cache prune: --max-bytes is required "
                "(use 'memgaze cache clear' to remove everything)"
            )
        if not root.exists():
            print(f"cache {root}: empty (directory does not exist)")
            return 0
        store = ArtifactStore(root)
        before = store.stats()
        removed = store.prune(args.max_bytes)
        after = store.stats()
        print(
            f"pruned {removed} entries "
            f"({before['bytes'] - after['bytes']:,} bytes freed, "
            f"{after['entries']} entries / {after['bytes']:,} bytes remain)"
        )
        return 0
    if args.action == "clear":
        if not root.exists():
            print(f"cache {root}: empty (directory does not exist)")
            return 0
        store = ArtifactStore(root)
        removed = store.clear()
        print(f"cleared {removed} entries from {root}")
        return 0
    raise SystemExit(f"memgaze cache: unknown action {args.action!r}")  # pragma: no cover


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the streaming analysis daemon (``memgaze serve``)."""
    import asyncio
    import signal

    from repro.obs.metrics import MetricsRegistry
    from repro.serve.daemon import ServeConfig, TraceServer

    journal = _open_journal(args)
    metrics = MetricsRegistry()
    serve_workers = args.serve_workers
    if serve_workers is None:
        serve_workers = int(os.environ.get("MEMGAZE_SERVE_WORKERS", "1"))
    config = ServeConfig(
        root=args.root,
        host=args.host,
        port=args.port,
        queue_size=args.queue_size,
        workers=args.workers,
        chunk_size=args.chunk_size,
        serve_workers=serve_workers,
        session_queue_size=args.session_queue_size,
        dashboard=args.dashboard,
        dashboard_port=args.dashboard_port,
    )

    async def run() -> None:
        server = TraceServer(config, journal=journal, metrics=metrics)
        await server.start()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, lambda: asyncio.ensure_future(server.stop()))
            except NotImplementedError:  # pragma: no cover - non-unix
                pass
        if args.port_file:
            Path(args.port_file).write_text(f"{server.port}\n", encoding="utf-8")
        print(
            f"memgaze serve: listening on {config.host}:{server.port} "
            f"({config.serve_workers} session worker"
            f"{'s' if config.serve_workers != 1 else ''})",
            flush=True,
        )
        if server.dashboard_port is not None:
            if args.dashboard_port_file:
                Path(args.dashboard_port_file).write_text(
                    f"{server.dashboard_port}\n", encoding="utf-8"
                )
            print(
                f"memgaze serve: dashboard on "
                f"http://{config.host}:{server.dashboard_port}/",
                flush=True,
            )
        await server.serve_until_stopped()

    asyncio.run(run())
    if journal is not None:
        journal.close()
    print("memgaze serve: stopped")
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    """Stream an existing archive into a live session (``memgaze submit``)."""
    from repro.serve.client import ServeError, submit_archive

    _require_trace_path(args.trace, "memgaze submit")
    session = args.session or Path(args.trace).stem
    try:
        info = submit_archive(
            args.trace,
            host=args.host,
            port=args.port,
            session=session,
            chunk_size=args.chunk_size,
        )
    except (ServeError, ConnectionError, OSError) as exc:
        raise SystemExit(f"memgaze submit: {exc}") from exc
    shed = f" ({info['n_shed']} sheds absorbed)" if info["n_shed"] else ""
    print(
        f"submitted {info['n_events']:,} events in {info['n_chunks']} chunks "
        f"to session {session!r}{shed}"
    )
    if info.get("archive"):
        print(f"session archive: {info['archive']}")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    """Query a live session's analysis (``memgaze query``)."""
    from repro.serve.client import ServeClient, ServeError

    passes = None
    if args.passes:
        passes = [s.strip() for s in args.passes.split(",") if s.strip()]
    try:
        with ServeClient(args.host, args.port) as client:
            client.open(args.session)
            info, payload = client.query(args.session, passes)
    except (ServeError, ConnectionError, OSError) as exc:
        raise SystemExit(f"memgaze query: {exc}") from exc
    if args.verbose:
        print(
            f"# session {info['session']}: {info['n_chunks']} chunks, "
            f"{info['n_events']:,} events, last ingest mode "
            f"{info.get('mode')!r}",
            file=sys.stderr,
        )
    print(payload)
    return 0


# -- parser -------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    """The ``memgaze`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="memgaze", description="MemGaze: sampled memory trace analysis"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_trace = sub.add_parser("trace", help="run a workload and collect a sampled trace")
    p_trace.add_argument("--workload", required=True, help="family:variant (see module docs)")
    p_trace.add_argument("--scale", type=int, default=10, help="workload scale (graphs: log2 vertices)")
    p_trace.add_argument("--period", type=int, default=12_000, help="sample period w+z in loads")
    p_trace.add_argument("--buffer", type=int, default=1024, help="PT buffer capacity in records")
    p_trace.add_argument("--mode", choices=["continuous", "sampled_only"], default="continuous")
    p_trace.add_argument("--seed", type=int, default=0)
    p_trace.add_argument("--deterministic", action="store_true", help="disable buffer fill jitter")
    p_trace.add_argument("-o", "--output", required=True, help="output .npz trace archive")
    p_trace.add_argument(
        "--journal", default=None, metavar="PATH",
        help="append a JSONL run journal of collection stages to PATH",
    )
    p_trace.set_defaults(fn=_cmd_trace)

    p_info = sub.add_parser("info", help="show a trace archive's metadata")
    p_info.add_argument("trace")
    p_info.set_defaults(fn=_cmd_info)

    p_report = sub.add_parser("report", help="analyze a trace archive")
    p_report.add_argument("trace")
    p_report.add_argument("--functions", action="store_true", help="code-window table")
    p_report.add_argument("--regions", action="store_true", help="location-zoom table")
    p_report.add_argument("--intervals", type=int, default=0, help="locality over N access intervals")
    p_report.add_argument("--working-set", action="store_true", help="working-set curve")
    p_report.add_argument("--confidence", action="store_true", help="undersampling report")
    p_report.add_argument("--hotspots", action="store_true", help="hot-function ranking")
    p_report.add_argument(
        "--json", action="store_true",
        help="print the canonical machine-readable payload instead of tables "
        "(full report, or exactly --passes when given); byte-identical to a "
        "live 'memgaze query' over the same archive bytes",
    )
    p_report.add_argument(
        "--passes", default=None, metavar="NAME[,NAME...]",
        help="run exactly these registered analysis passes, fused in one scan "
        "(see 'memgaze passes' for the list)",
    )
    p_report.add_argument(
        "--html", default=None, metavar="OUT.html",
        help="render one self-contained HTML report (inline SVG/CSS/JS, no "
        "external fetches): interval-tree flamegraph, phases, heatmaps, "
        "reuse histogram, sortable tables; with --passes cache_sweep the "
        "what-if grid is included; a damaged archive renders its verified "
        "prefix behind a warning banner",
    )
    p_report.add_argument("--phases", action="store_true", help="phase segmentation")
    p_report.add_argument("--hot-threshold", type=float, default=0.10)
    p_report.add_argument("--min-region-pct", type=float, default=2.0)
    p_report.add_argument("--max-regions", type=int, default=10)
    p_report.add_argument(
        "--workers", type=int, default=1,
        help="analysis worker processes (>1 shards windows across a pool)",
    )
    p_report.add_argument(
        "--chunk-size", type=int, default=None,
        help="events per shard (default: auto from trace size and workers)",
    )
    p_report.add_argument(
        "--shm", action=argparse.BooleanOptionalAction, default=None,
        help="hand shards to workers through zero-copy shared memory "
        "(default: on unless MEMGAZE_SHM=0; --no-shm pickles event "
        "slices instead — results are bit-identical either way)",
    )
    p_report.add_argument(
        "--reuse-kernel", choices=["vector", "fenwick"], default=None,
        help="reuse-distance kernel: 'vector' (numpy batched mergesort, "
        "the default) or 'fenwick' (reference per-event loop); both are "
        "bit-identical (sets MEMGAZE_REUSE_KERNEL so pool workers inherit)",
    )
    p_report.add_argument(
        "--cache-kernel", choices=["auto", "vector", "python"], default=None,
        help="cache-simulation kernel for cachesim-backed passes: 'vector' "
        "(set-local stack distances), 'python' (reference per-access loop), "
        "or 'auto' (vector unless prefetching); bit-identical (sets "
        "MEMGAZE_CACHE_KERNEL so pool workers inherit)",
    )
    p_report.add_argument(
        "--stats", action="store_true",
        help="print per-stage analysis timings, throughput, and cache hits",
    )
    p_report.add_argument(
        "--journal", default=None, metavar="PATH",
        help="append a JSONL run journal of every pipeline stage to PATH",
    )
    p_report.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="write the pipeline metrics registry (plus stage timings) as JSON",
    )
    p_report.add_argument(
        "--cache", action=argparse.BooleanOptionalAction, default=None,
        help="reuse pass results from the persistent analysis cache "
        "(--no-cache disables it even when --cache-dir is given)",
    )
    p_report.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="analysis cache directory (implies --cache; default: "
        "$MEMGAZE_CACHE_DIR or ~/.cache/memgaze)",
    )
    p_report.set_defaults(fn=_cmd_report)

    p_passes = sub.add_parser(
        "passes", help="list the registered analysis passes and their parameters"
    )
    p_passes.set_defaults(fn=_cmd_passes)

    p_diff = sub.add_parser("diff", help="compare two trace archives per function")
    p_diff.add_argument("before")
    p_diff.add_argument("after")
    p_diff.add_argument("--top", type=int, default=12, help="movers to show")
    p_diff.set_defaults(fn=_cmd_diff)

    p_matrix = sub.add_parser(
        "matrix",
        help="analyze a corpus of trace archives, N-way diff against a "
        "baseline, and gate regressions for CI",
    )
    p_matrix.add_argument(
        "spec",
        help="corpus spec file (.toml/.json with [[cell]] tables) or a "
        "directory of .npz archives (one cell per archive, labelled by stem)",
    )
    p_matrix.add_argument(
        "--baseline", default=None, metavar="LABEL",
        help="cell label to diff every other cell against (default: the "
        "spec's 'baseline', or the first cell)",
    )
    p_matrix.add_argument(
        "-o", "--output", default=None, metavar="PATH",
        help="write the aggregated corpus payload (canonical JSON) to PATH",
    )
    p_matrix.add_argument(
        "--json", action="store_true",
        help="print canonical JSON instead of tables: the corpus payload, "
        "or the verdict payload when --gate is given",
    )
    p_matrix.add_argument(
        "--gate", default=None, metavar="THRESHOLDS",
        help="regression thresholds file (.toml/.json, one [metric] table "
        "with max_abs/max_rel bounds); exit 1 when any cell regresses "
        "past a bound (exactly-at-threshold passes)",
    )
    p_matrix.add_argument(
        "--verdict", default=None, metavar="PATH",
        help="write the machine-readable per-cell per-metric verdict JSON "
        "to PATH (written for pass and regressed runs alike)",
    )
    p_matrix.add_argument(
        "--cache-sweep", action="store_true",
        help="run the cache-geometry what-if sweep for every cell (adds "
        "the cache_sweep pass to cell payloads and enables the cache.* "
        "gate metrics; specs can also opt in per cell)",
    )
    p_matrix.add_argument("--top", type=int, default=12, help="function movers to show per cell")
    p_matrix.add_argument(
        "--min-accesses", type=int, default=100,
        help="drop functions below this many observed records on both sides",
    )
    p_matrix.add_argument(
        "--workers", type=int, default=1,
        help="analysis worker processes per cell (>1 shards chunks across a pool)",
    )
    p_matrix.add_argument(
        "--chunk-size", type=int, default=None,
        help="events per streamed chunk (default: engine auto)",
    )
    p_matrix.add_argument(
        "--cache", action=argparse.BooleanOptionalAction, default=None,
        help="serve warm cells from the persistent analysis cache "
        "(--no-cache disables it even when --cache-dir is given)",
    )
    p_matrix.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="analysis cache directory (implies --cache; default: "
        "$MEMGAZE_CACHE_DIR or ~/.cache/memgaze)",
    )
    p_matrix.add_argument(
        "--journal", default=None, metavar="PATH",
        help="append a JSONL run journal (matrix-cell/matrix-run/"
        "matrix-verdict lines plus the engine's) to PATH",
    )
    p_matrix.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="write the matrix.* metrics registry plus per-cell modes as JSON",
    )
    p_matrix.set_defaults(fn=_cmd_matrix)

    p_val = sub.add_parser(
        "validate", help="Fig.6-style accuracy check: sampled vs full metrics"
    )
    p_val.add_argument("--workload", required=True)
    p_val.add_argument("--scale", type=int, default=10)
    p_val.add_argument("--period", type=int, default=9_973)
    p_val.add_argument("--buffer", type=int, default=1024)
    p_val.add_argument("--seed", type=int, default=0)
    p_val.set_defaults(fn=_cmd_validate)

    p_cache = sub.add_parser(
        "cache", help="inspect or maintain the persistent analysis cache"
    )
    p_cache.add_argument(
        "action", choices=["stats", "prune", "clear"],
        help="stats: show entry/byte counts; prune: evict oldest entries "
        "down to --max-bytes; clear: remove every entry",
    )
    p_cache.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache directory (default: $MEMGAZE_CACHE_DIR or ~/.cache/memgaze)",
    )
    p_cache.add_argument(
        "--max-bytes", type=int, default=None,
        help="size bound for prune (bytes)",
    )
    p_cache.set_defaults(fn=_cmd_cache)

    p_health = sub.add_parser(
        "validate-trace",
        help="audit a trace archive: schema, per-chunk checksums, damage findings",
    )
    p_health.add_argument("trace")
    p_health.add_argument("--json", action="store_true", help="machine-readable report")
    p_health.set_defaults(fn=_cmd_validate_trace)

    p_serve = sub.add_parser(
        "serve",
        help="run the streaming analysis daemon (live trace ingest + query)",
    )
    p_serve.add_argument(
        "--root", required=True, metavar="DIR",
        help="state directory: per-session archives plus the analysis cache",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=0,
        help="TCP port (0: let the OS pick; see --port-file)",
    )
    p_serve.add_argument(
        "--port-file", default=None, metavar="PATH",
        help="write the bound port here once listening (for --port 0)",
    )
    p_serve.add_argument(
        "--queue-size", type=int, default=64,
        help="daemon-wide bound on queued appends; a full queue sheds "
        "appends with an explicit 'busy' response",
    )
    p_serve.add_argument(
        "--session-queue-size", type=int, default=16,
        help="per-session cap on queued appends (inner backpressure "
        "layer); one flooding session is shed before it can fill the "
        "global queue",
    )
    p_serve.add_argument(
        "--serve-workers", type=int, default=None, metavar="N",
        help="session-shard worker processes; each session is pinned to "
        "one worker by crc32(session) mod N, so per-session ordering is "
        "preserved while independent sessions run concurrently "
        "(default: $MEMGAZE_SERVE_WORKERS or 1)",
    )
    p_serve.add_argument(
        "--workers", type=int, default=1,
        help="analysis worker processes per ingest/query (see report --workers)",
    )
    p_serve.add_argument(
        "--chunk-size", type=int, default=None,
        help="events per analysis shard (default: auto)",
    )
    p_serve.add_argument(
        "--journal", default=None, metavar="PATH",
        help="append a JSONL run journal (per-session lines are tagged)",
    )
    p_serve.add_argument(
        "--dashboard", action="store_true",
        help="serve a live HTML dashboard over HTTP alongside the framed "
        "protocol: GET / lists sessions, GET /report?session=NAME renders "
        "the session's current analysis through the same template as "
        "'memgaze report --html' (off by default; the daemon's protocol "
        "behavior is unchanged without it)",
    )
    p_serve.add_argument(
        "--dashboard-port", type=int, default=0, metavar="PORT",
        help="dashboard TCP port (0: let the OS pick; see --dashboard-port-file)",
    )
    p_serve.add_argument(
        "--dashboard-port-file", default=None, metavar="PATH",
        help="write the bound dashboard port here once listening",
    )
    p_serve.set_defaults(fn=_cmd_serve)

    p_submit = sub.add_parser(
        "submit", help="stream a trace archive into a running daemon"
    )
    p_submit.add_argument("trace")
    p_submit.add_argument("--host", default="127.0.0.1")
    p_submit.add_argument("--port", type=int, required=True)
    p_submit.add_argument(
        "--session", default=None,
        help="session name (default: the archive's stem)",
    )
    p_submit.add_argument(
        "--chunk-size", type=int, default=1 << 16,
        help="events per append frame (sample-aligned)",
    )
    p_submit.set_defaults(fn=_cmd_submit)

    p_query = sub.add_parser(
        "query", help="query a live session's analysis from a running daemon"
    )
    p_query.add_argument("session")
    p_query.add_argument("--host", default="127.0.0.1")
    p_query.add_argument("--port", type=int, required=True)
    p_query.add_argument(
        "--passes", default=None, metavar="NAME[,NAME...]",
        help="query exactly these passes (default: the full report payload)",
    )
    p_query.add_argument(
        "--verbose", action="store_true",
        help="print session state (chunks, events, ingest mode) to stderr",
    )
    p_query.set_defaults(fn=_cmd_query)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
