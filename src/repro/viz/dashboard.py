"""The serve daemon's live dashboard (``memgaze serve --dashboard``).

A deliberately small HTTP endpoint written directly on asyncio streams —
no framework, no thread — living in the daemon's event loop next to the
framed protocol listener. Routes:

``GET /``
    Session index: every session visible on disk or open in a shard
    worker, linking to its live view. Auto-refreshes via a meta-refresh
    tag (no JS required to just watch the list).
``GET /view?session=NAME``
    Polling wrapper: an ``<iframe>`` of ``/report`` reloaded on a
    timer. The polling lives *here*, in the wrapper, so ``/report``
    itself stays pure content.
``GET /report?session=NAME``
    The session's current analysis rendered through
    :func:`repro.viz.template.render_html` — the exact template path of
    the offline ``memgaze report --html``. The payload arrives as the
    worker's canonical JSON and is rendered from the parsed dict, and
    canonical JSON round-trips floats exactly, so for a quiesced session
    these bytes equal the offline rendering of the same archive.
``GET /sessions``
    The index's data as JSON (``{"sessions": [...]}``).

The handler speaks minimal HTTP/1.1: it reads one request, answers with
``Content-Length`` and ``Connection: close``, and closes. That is all a
browser, ``curl``, or ``urllib`` needs, and it keeps the attack surface
of what is a loopback diagnostics endpoint small.
"""

from __future__ import annotations

import asyncio
import html
import json
from urllib.parse import parse_qs, urlsplit

__all__ = ["DashboardServer"]

_INDEX_TMPL = """<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<meta http-equiv="refresh" content="3">
<title>memgaze dashboard</title>
<style>
body {{ font: 14px/1.5 system-ui, sans-serif; margin: 2em auto; max-width: 640px; }}
table {{ border-collapse: collapse; width: 100%; }}
th, td {{ text-align: left; padding: 4px 10px; border-bottom: 1px solid #e0e0e0; }}
.empty {{ color: #777; }}
</style></head><body>
<h1>memgaze live sessions</h1>
{body}
</body></html>
"""

_VIEW_TMPL = """<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<title>memgaze live: {name}</title>
<style>
body {{ margin: 0; font: 13px system-ui, sans-serif; }}
header {{ padding: 6px 12px; background: #1c2330; color: #fff; }}
iframe {{ border: 0; width: 100%; height: calc(100vh - 34px); }}
</style></head><body>
<header>live view of session <strong>{name}</strong> — re-rendered every
{interval} s (<a style="color:#9cf" href="/">all sessions</a>)</header>
<iframe id="live" src="/report?session={name}"></iframe>
<script>
setInterval(function () {{
  var f = document.getElementById("live");
  f.src = "/report?session={name}&r=" + Date.now();
}}, {interval} * 1000);
</script>
</body></html>
"""


class DashboardServer:
    """HTTP front end over daemon-provided callbacks.

    ``query(name)`` is an awaitable returning the session's viz payload
    as canonical JSON text (the daemon routes it through the owning
    shard worker's FIFO, so it sees a stable archive). ``sessions()``
    returns ``(all_names, open_names)``. The server owns no analysis
    state of its own — it is a renderer over the query protocol.
    """

    def __init__(self, *, query, sessions, journal=None, metrics=None) -> None:
        self._query = query
        self._sessions = sessions
        self.journal = journal
        self.metrics = metrics
        self.port: int | None = None
        self._server: asyncio.AbstractServer | None = None

    async def start(self, host: str, port: int = 0) -> int:
        """Bind and listen; returns the bound port."""
        self._server = await asyncio.start_server(self._handle, host, port)
        self.port = self._server.sockets[0].getsockname()[1]
        if self.journal is not None:
            self.journal.emit("dashboard-start", host=host, port=self.port)
        return self.port

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- one request per connection --------------------------------------------

    async def _handle(self, reader, writer) -> None:
        try:
            request = await asyncio.wait_for(reader.readline(), timeout=10.0)
            parts = request.decode("latin-1").split()
            if len(parts) < 2:
                return
            method, target = parts[0], parts[1]
            while True:  # drain headers; we need none of them
                line = await asyncio.wait_for(reader.readline(), timeout=10.0)
                if line in (b"\r\n", b"\n", b""):
                    break
            if self.metrics is not None:
                self.metrics.counter("serve.dashboard.requests").inc()
            if method != "GET":
                await self._send(writer, 405, "text/plain", b"method not allowed\n")
                return
            status, ctype, body = await self._route(target)
            await self._send(writer, status, ctype, body)
        except (asyncio.TimeoutError, ConnectionError, OSError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _route(self, target: str) -> tuple[int, str, bytes]:
        url = urlsplit(target)
        params = parse_qs(url.query)
        name = (params.get("session") or [None])[0]
        try:
            if url.path == "/":
                return 200, "text/html; charset=utf-8", self._index()
            if url.path == "/sessions":
                names, open_names = self._sessions()
                body = json.dumps(
                    {
                        "sessions": [
                            {"name": n, "open": n in open_names} for n in names
                        ]
                    },
                    indent=2,
                    sort_keys=True,
                ).encode("utf-8")
                return 200, "application/json", body
            if url.path == "/view":
                if not name:
                    return 400, "text/plain", b"missing ?session=NAME\n"
                body = _VIEW_TMPL.format(
                    name=html.escape(name, quote=True), interval=3
                ).encode("utf-8")
                return 200, "text/html; charset=utf-8", body
            if url.path == "/report":
                if not name:
                    return 400, "text/plain", b"missing ?session=NAME\n"
                from repro.viz.template import render_html

                text = await self._query(name)
                page = render_html(json.loads(text))
                return 200, "text/html; charset=utf-8", page.encode("utf-8")
            return 404, "text/plain", b"not found\n"
        except KeyError as exc:
            return 404, "text/plain", f"{exc.args[0]}\n".encode("utf-8")
        except Exception as exc:  # surface, don't kill the daemon loop
            if self.metrics is not None:
                self.metrics.counter("serve.dashboard.errors").inc()
            if self.journal is not None:
                self.journal.warning(
                    f"dashboard request failed: {type(exc).__name__}: {exc}",
                    path=url.path,
                    session=name,
                )
            return 503, "text/plain", f"{type(exc).__name__}: {exc}\n".encode("utf-8")

    def _index(self) -> bytes:
        names, open_names = self._sessions()
        if not names:
            body = '<p class="empty">no sessions yet — stream one with <code>memgaze submit</code></p>'
        else:
            rows = "".join(
                "<tr><td><a href=\"/view?session={n}\">{n}</a></td>"
                "<td>{state}</td></tr>".format(
                    n=html.escape(n, quote=True),
                    state="open" if n in open_names else "on disk",
                )
                for n in names
            )
            body = (
                "<table><thead><tr><th>session</th><th>state</th></tr></thead>"
                f"<tbody>{rows}</tbody></table>"
            )
        return _INDEX_TMPL.format(body=body).encode("utf-8")

    async def _send(self, writer, status: int, ctype: str, body: bytes) -> None:
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  405: "Method Not Allowed", 503: "Service Unavailable"}.get(
            status, "OK"
        )
        writer.write(
            (
                f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: {ctype}\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n"
            ).encode("latin-1")
        )
        writer.write(body)
        await writer.drain()
