"""Self-contained HTML rendering of report payloads (``report --html``).

The package is layered so every stage is golden-testable:

``viewmodel``
    :func:`build_viewmodel` — the pure payload → viewmodel transform.
    Deterministic bytes for a given payload; no environment leaks.
``charts``
    SVG builders (flame tree, heatmap grids, histogram bars) over
    viewmodel substructures. Pure string functions.
``template``
    :func:`render_html` — assembles the one self-contained page with
    ``string.Template``: inline CSS/JS, no external fetches.
``dashboard``
    The daemon's live view (``memgaze serve --dashboard``): a small
    asyncio HTTP endpoint that polls the query protocol and renders
    through the *same* template path, so a live rendering of a
    quiesced session is byte-identical to the offline one.
``validate``
    Stdlib ``html.parser`` checker (balanced tags, no external URLs)
    shared by tests and CI: ``python -m repro.viz.validate FILE``.
"""

from repro.viz.template import render_html, render_viewmodel
from repro.viz.viewmodel import VIEWMODEL_SCHEMA, build_viewmodel, viewmodel_json

__all__ = [
    "VIEWMODEL_SCHEMA",
    "build_viewmodel",
    "viewmodel_json",
    "render_html",
    "render_viewmodel",
]
