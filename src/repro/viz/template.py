"""Assembly of the one self-contained HTML report page.

:func:`render_html` is the single template path for both renderers: the
offline ``memgaze report --html`` and the live daemon dashboard call it
with a (jsonable) payload dict and get exactly the same bytes for the
same payload. The page embeds the canonical viewmodel JSON verbatim in
``<script type="application/json" id="memgaze-viewmodel">`` — it powers
the inline JS (table sorting, flamegraph zoom) and gives tests a lossless
round-trip of every numeric value the page shows. Everything is inline:
CSS, JS, SVG; no URL on the page points off-host.
"""

from __future__ import annotations

import html
import math
from string import Template

from repro.viz.charts import (
    svg_flame_tree,
    svg_heatmap,
    svg_phase_strip,
    svg_reuse_histogram,
)
from repro.viz.viewmodel import build_viewmodel, viewmodel_json

__all__ = ["render_html", "render_viewmodel"]


def _esc(s) -> str:
    return html.escape(str(s), quote=True)


def _fmt(value, kind: str = "number") -> str:
    """Humanised display text for one cell (raw value rides in data-v)."""
    if value is None:
        return "-"
    if kind == "quantity":
        from repro.core.report import format_quantity

        return format_quantity(float(value))
    if kind == "percent":
        return f"{float(value):.1f}%"
    if kind == "ratio":
        return f"{float(value):.3f}"
    if kind == "count":
        return f"{int(value):,}"
    if kind == "hex":
        return f"{int(value):#x}"
    v = float(value)
    if math.isfinite(v) and v == int(v):
        return f"{int(v):,}"
    return format(v, ".4g")


def _cell(value, kind: str = "number") -> str:
    if isinstance(value, str):
        return f'<td data-v="{_esc(value)}">{_esc(value)}</td>'
    raw = "" if value is None else format(float(value), ".17g")
    return f'<td class="num" data-v="{raw}">{_esc(_fmt(value, kind))}</td>'


def _table(table_id: str, columns: list[tuple[str, str]], rows: list[list]) -> str:
    """A sortable table; ``columns`` is [(header, kind)], rows hold raw values."""
    head = "".join(
        f'<th data-col="{i}" title="click to sort">{_esc(name)}</th>'
        for i, (name, _kind) in enumerate(columns)
    )
    body = []
    for row in rows:
        cells = "".join(_cell(v, columns[i][1]) for i, v in enumerate(row))
        body.append(f"<tr>{cells}</tr>")
    return (
        f'<table class="sortable" id="{table_id}">'
        f"<thead><tr>{head}</tr></thead><tbody>{''.join(body)}</tbody></table>"
    )


def _section(title: str, body: str, note: str = "") -> str:
    if not body:
        return ""
    note_html = f'<p class="note">{_esc(note)}</p>' if note else ""
    return f"<section><h2>{_esc(title)}</h2>{note_html}{body}</section>"


def _banner(degraded: dict | None) -> str:
    if not degraded:
        return ""
    n = degraded.get("n_events", 0)
    if degraded.get("growing"):
        what = (
            "archive tail is incomplete but undamaged — it appears to be "
            "still growing"
        )
    else:
        what = "damaged archive"
    findings = degraded.get("findings") or []
    items = "".join(
        f"<li><code>{_esc(f.get('kind', '?'))}</code> {_esc(f.get('detail', ''))}</li>"
        for f in findings
    )
    listing = f"<ul>{items}</ul>" if items else ""
    return (
        '<div class="banner" role="alert"><strong>warning:</strong> '
        f"{_esc(what)}; this report covers the verified prefix of "
        f"{n:,} events.{listing}</div>"
    )


def _summary_html(tiles: list[dict]) -> str:
    out = []
    for t in tiles:
        out.append(
            '<div class="tile"><span class="value">'
            f"{_esc(_fmt(t.get('value'), t.get('kind', 'number')))}</span>"
            f"<span class=\"label\">{_esc(t.get('label', ''))}</span></div>"
        )
    return f'<div class="tiles">{"".join(out)}</div>'


def _functions_html(rows: list[dict]) -> str:
    if not rows:
        return ""
    cols = [
        ("function", "text"),
        ("A (est)", "quantity"),
        ("F (est)", "quantity"),
        ("dF", "ratio"),
        ("F_str%", "percent"),
        ("A observed", "count"),
    ]
    data = [
        [r["function"], r["A_est"], r["F_est"], r["dF"], r["F_str_pct"], r["A_obs"]]
        for r in rows
    ]
    return _table("functions", cols, data)


def _hotspots_html(rows: list[dict]) -> str:
    if not rows:
        return ""
    cols = [("function", "text"), ("share", "percent"), ("sampled loads", "count")]
    data = [
        [r["function"], 100.0 * r["share"] if r["share"] is not None else None, r["n_accesses"]]
        for r in rows
    ]
    return _table("hotspots", cols, data)


def _regions_html(rows: list[dict]) -> str:
    if not rows:
        return ""
    cols = [
        ("region", "text"),
        ("size (bytes)", "count"),
        ("accesses", "count"),
        ("% of total", "percent"),
        ("mean D", "ratio"),
        ("max D", "count"),
        ("blocks", "count"),
        ("A/block", "ratio"),
    ]
    data = [
        [
            r.get("name", ""),
            r.get("size"),
            r.get("n_accesses"),
            r.get("pct_of_total"),
            r.get("d_mean"),
            r.get("d_max"),
            r.get("n_blocks"),
            r.get("accesses_per_block"),
        ]
        for r in rows
    ]
    return _table("regions", cols, data)


def _intervals_html(rows: list[dict]) -> str:
    if not rows:
        return ""
    cols = [
        ("interval", "count"),
        ("F", "quantity"),
        ("dF", "ratio"),
        ("D", "ratio"),
        ("A", "quantity"),
        ("A observed", "count"),
    ]
    data = [
        [r["interval"], r["F"], r["dF"], r["D"], r["A"], r["A_obs"]] for r in rows
    ]
    return _table("intervals", cols, data)


def _sweep_html(rows: list[dict] | None) -> str:
    if not rows:
        return ""
    cols = [
        ("size (bytes)", "count"),
        ("line", "count"),
        ("ways", "count"),
        ("sets", "count"),
        ("hit ratio", "percent"),
        ("predicted", "percent"),
    ]
    data = [
        [
            r["size_bytes"],
            r["line_bytes"],
            r["ways"],
            r["n_sets"],
            100.0 * r["hit_ratio"] if r["hit_ratio"] is not None else None,
            100.0 * r["predicted_hit_ratio"]
            if r["predicted_hit_ratio"] is not None
            else None,
        ]
        for r in rows
    ]
    return _table("sweep", cols, data)


def _heatmaps_html(heatmaps: list[dict]) -> str:
    parts = []
    for hm in heatmaps:
        svg = svg_heatmap(hm)
        if not svg:
            continue
        name = hm.get("name", "")
        parts.append(f'<figure><figcaption>{_esc(name)}</figcaption>{svg}</figure>')
    return "".join(parts)


def _embed_json(text: str) -> str:
    # "</script>"-proof: JSON never needs a bare "</"
    return text.replace("</", "<\\/")


_CSS = """
:root { color-scheme: light; }
body { font: 14px/1.45 system-ui, sans-serif; margin: 0 auto; max-width: 960px;
       padding: 0 18px 48px; color: #1c2330; background: #fcfcfa; }
h1 { font-size: 21px; margin: 22px 0 2px; }
h2 { font-size: 16px; margin: 26px 0 6px; border-bottom: 1px solid #d8dbe2;
     padding-bottom: 3px; }
.meta { color: #5a6372; margin: 0 0 14px; }
.note { color: #5a6372; font-size: 12px; margin: 2px 0 8px; }
.banner { background: #fdf3d7; border: 1px solid #e3c96e; border-radius: 6px;
          padding: 10px 14px; margin: 14px 0; }
.banner ul { margin: 6px 0 0 18px; }
.tiles { display: flex; flex-wrap: wrap; gap: 10px; }
.tile { background: #ffffff; border: 1px solid #e2e5ea; border-radius: 8px;
        padding: 8px 14px; min-width: 96px; }
.tile .value { display: block; font-size: 18px; font-weight: 600; }
.tile .label { display: block; font-size: 11px; color: #5a6372; }
table { border-collapse: collapse; width: 100%; margin: 6px 0; }
th, td { text-align: left; padding: 4px 10px; border-bottom: 1px solid #e8eaee;
         font-variant-numeric: tabular-nums; }
td.num { text-align: right; }
th { cursor: pointer; user-select: none; background: #f1f2f5; font-size: 12px; }
th.sorted-asc::after { content: " \\2191"; }
th.sorted-desc::after { content: " \\2193"; }
figure { margin: 10px 0; }
figcaption { font-size: 12px; color: #5a6372; margin-bottom: 3px; }
svg.chart { max-width: 100%; height: auto; background: #ffffff;
            border: 1px solid #e2e5ea; border-radius: 6px; }
svg .tick { font: 10px system-ui, sans-serif; fill: #5a6372; }
svg .axis { stroke: #c8ccd4; stroke-width: 1; }
svg .phaselabel { font: 11px system-ui, sans-serif; fill: #ffffff; }
svg .framelabel { font: 11px system-ui, sans-serif; fill: #2a2318;
                  pointer-events: none; }
svg .frame { stroke: #fcfcfa; stroke-width: 0.6; cursor: pointer; }
button.reset { font: 12px system-ui, sans-serif; margin: 4px 0; }
footer { margin-top: 34px; color: #8a8f98; font-size: 12px; }
"""

_JS = """
(function () {
  "use strict";
  // -- sortable tables: sort by the raw value in data-v ----------------------
  function cellKey(row, col) {
    var v = row.children[col].getAttribute("data-v");
    var f = parseFloat(v);
    return isNaN(f) ? v : f;
  }
  document.querySelectorAll("table.sortable th").forEach(function (th) {
    th.addEventListener("click", function () {
      var table = th.closest("table");
      var col = parseInt(th.getAttribute("data-col"), 10);
      var asc = !th.classList.contains("sorted-asc");
      table.querySelectorAll("th").forEach(function (h) {
        h.classList.remove("sorted-asc", "sorted-desc");
      });
      th.classList.add(asc ? "sorted-asc" : "sorted-desc");
      var body = table.tBodies[0];
      Array.prototype.slice.call(body.rows)
        .sort(function (a, b) {
          var ka = cellKey(a, col), kb = cellKey(b, col);
          if (ka < kb) return asc ? -1 : 1;
          if (ka > kb) return asc ? 1 : -1;
          return 0;
        })
        .forEach(function (row) { body.appendChild(row); });
    });
  });
  // -- flamegraph zoom: rescale x from each node's data-t0/t1 ----------------
  var flame = document.getElementById("flame");
  if (flame) {
    var root0 = parseFloat(flame.getAttribute("data-t0"));
    var root1 = parseFloat(flame.getAttribute("data-t1"));
    var width = flame.viewBox.baseVal.width;
    function rescale(lo, hi) {
      var span = Math.max(hi - lo, 1);
      flame.querySelectorAll("rect.frame").forEach(function (r) {
        var t0 = parseFloat(r.getAttribute("data-t0"));
        var t1 = parseFloat(r.getAttribute("data-t1"));
        var x = (t0 - lo) / span * width;
        var w = Math.max((t1 - t0) / span * width, 0.5);
        r.setAttribute("x", x);
        r.setAttribute("width", w);
        r.style.display = (t1 <= lo || t0 >= hi) ? "none" : "";
      });
      flame.querySelectorAll("text.framelabel").forEach(function (t) {
        var t0 = parseFloat(t.getAttribute("data-t0"));
        var t1 = parseFloat(t.getAttribute("data-t1"));
        var w = Math.max((t1 - t0) / span * width, 0.5);
        t.setAttribute("x", (t0 - lo) / span * width + 4);
        t.style.display = (t1 <= lo || t0 >= hi || w < 64) ? "none" : "";
      });
    }
    flame.addEventListener("click", function (ev) {
      var r = ev.target.closest("rect.frame");
      if (r) {
        rescale(parseFloat(r.getAttribute("data-t0")),
                parseFloat(r.getAttribute("data-t1")));
      }
    });
    var reset = document.getElementById("flame-reset");
    if (reset) {
      reset.addEventListener("click", function () { rescale(root0, root1); });
    }
  }
})();
"""

_PAGE = Template(
    """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>$title</title>
<style>$css</style>
</head>
<body>
$body
<script type="application/json" id="memgaze-viewmodel">
$viewmodel
</script>
<script>$js</script>
</body>
</html>
"""
)


def render_viewmodel(vm: dict) -> str:
    """Render a prebuilt viewmodel to the final HTML page string."""
    meta = vm.get("meta", {})
    head = (
        f"<h1>{_esc(vm.get('title', 'MemGaze report'))}</h1>"
        f'<p class="meta">{meta.get("n_events", 0):,} sampled records in '
        f'{meta.get("n_samples", 0):,} samples &middot; '
        f'{meta.get("n_loads_total", 0):,} loads total &middot; '
        f'rho {_fmt(meta.get("rho"), "ratio")}</p>'
    )
    flame = svg_flame_tree(vm.get("tree"))
    if flame:
        flame = (
            '<button class="reset" id="flame-reset">reset zoom</button>' + flame
        )
    body = "".join(
        [
            head,
            _banner(vm.get("degraded")),
            _section("Summary", _summary_html(vm.get("summary", []))),
            _section(
                "Execution interval tree",
                flame,
                "click an interval to zoom; colors encode footprint growth "
                "(purple rows are per-function leaves)",
            ),
            _section("Execution phases", svg_phase_strip(vm.get("phases", []))),
            _section("Hot functions", _hotspots_html(vm.get("hotspots", []))),
            _section("Code windows (per-function locality)", _functions_html(vm.get("functions", []))),
            _section("Hot memory regions (location zoom)", _regions_html(vm.get("regions", []))),
            _section("Locality over access intervals", _intervals_html(vm.get("intervals", []))),
            _section(
                "Reuse-distance histogram",
                svg_reuse_histogram(vm.get("reuse")),
                "log2-binned spatio-temporal reuse distance D; bar height on a sqrt scale",
            ),
            _section("Per-region access heatmaps", _heatmaps_html(vm.get("heatmaps", []))),
            _section("Cache what-if sweep", _sweep_html(vm.get("sweep"))),
            "<footer>memgaze report &middot; self-contained (inline SVG/CSS/JS, "
            "no external resources)</footer>",
        ]
    )
    return _PAGE.substitute(
        title=_esc(vm.get("title", "MemGaze report")),
        css=_CSS,
        js=_JS,
        body=body,
        viewmodel=_embed_json(viewmodel_json(vm)),
    )


def render_html(payload: dict) -> str:
    """The one template path: payload → viewmodel → page bytes."""
    return render_viewmodel(build_viewmodel(payload))
