"""Payload → viewmodel: the pure content layer of the HTML report.

:func:`build_viewmodel` turns a canonical report payload (the dict built
by :func:`repro.core.report.full_report_payload` or
:func:`repro.core.report.viz_report_payload`) into the *viewmodel*: the
exact data the page renders, holding raw numeric values (never
pre-formatted strings). Like the payloads it consumes, the viewmodel
carries no path, timestamp, or host — only trace content — so
:func:`viewmodel_json` serializes byte-identically for identical
payloads. The golden suite freezes those bytes, and the rendered page
embeds them verbatim (``<script type="application/json">``), which is
what makes live-vs-offline byte comparisons meaningful end to end.

Every section degrades to an explicit empty value (``[]`` / ``None``)
when its payload source is absent, so a plain ``full_report_payload``
(no ``viz`` section, no ``cache_sweep``) still renders.
"""

from __future__ import annotations

import json

__all__ = ["VIEWMODEL_SCHEMA", "build_viewmodel", "viewmodel_json"]

#: Bump when the viewmodel layout changes; golden fixtures pin it.
VIEWMODEL_SCHEMA = 1


def _num(x, default=0.0):
    """A finite float, or ``None`` (NaN/inf never reach the viewmodel)."""
    if x is None:
        return None
    try:
        v = float(x)
    except (TypeError, ValueError):
        return default
    if v != v or v in (float("inf"), float("-inf")):
        return None
    return v


def _fn_pcts(d: dict) -> tuple[float, float]:
    """(F_str%, dF_str%) recomputed from a diagnostics jsonable dict."""
    denom_f = d.get("F_str", 0) + d.get("F_irr", 0)
    f_str_pct = 100.0 * d.get("F_str", 0) / denom_f if denom_f else 0.0
    denom_g = d.get("dF_str", 0.0) + d.get("dF_irr", 0.0)
    df_str_pct = 100.0 * d.get("dF_str", 0.0) / denom_g if denom_g else 0.0
    return f_str_pct, df_str_pct


def _reuse_section(reuse: dict | None) -> dict | None:
    """Histogram bins trimmed to the populated prefix, plus the moments."""
    if not reuse:
        return None
    counts = [int(c) for c in reuse.get("counts", [])]
    last = 0
    for i, c in enumerate(counts):
        if c:
            last = i + 1
    counts = counts[: max(last, 1)] if counts else [0]
    labels = []
    for k in range(len(counts)):
        if k == 0:
            labels.append("0")
        elif k == 1:
            labels.append("1")
        else:
            labels.append(f"[{2 ** (k - 1)},{2 ** k})")
    n_reuse = int(reuse.get("n_reuse", 0))
    d_sum = int(reuse.get("d_sum", 0))
    return {
        "counts": counts,
        "labels": labels,
        "n_cold": int(reuse.get("n_cold", 0)),
        "n_reuse": n_reuse,
        "d_max": int(reuse.get("d_max", 0)),
        "mean": d_sum / n_reuse if n_reuse else 0.0,
        "scope": reuse.get("scope", "sample"),
    }


def _function_rows(functions: dict) -> list[dict]:
    """Per-function table rows, hottest (A_est) first, name-tiebroken."""
    rows = []

    def hotness(name: str) -> tuple[float, str]:
        a = _num(functions[name].get("A_est"), 0.0)
        return (-(a if a is not None else 0.0), name)

    for name in sorted(functions, key=hotness):
        d = functions[name]
        f_str_pct, df_str_pct = _fn_pcts(d)
        rows.append(
            {
                "function": name,
                "A_obs": int(d.get("A_obs", 0)),
                "A_est": _num(d.get("A_est")),
                "F_est": _num(d.get("F_est")),
                "dF": _num(d.get("dF")),
                "F_str_pct": _num(f_str_pct),
                "dF_str_pct": _num(df_str_pct),
            }
        )
    return rows


def _summary_tiles(payload: dict) -> list[dict]:
    """The headline stat tiles (paper Table IV row for the whole trace)."""
    passes = payload.get("passes", {})
    d = passes.get("diagnostics") or {}
    tiles = [
        {"label": "accesses (est)", "value": _num(d.get("A_est")), "kind": "quantity"},
        {"label": "footprint (est)", "value": _num(d.get("F_est")), "kind": "quantity"},
        {"label": "growth dF", "value": _num(d.get("dF")), "kind": "ratio"},
    ]
    if d:
        f_str_pct, _ = _fn_pcts(d)
        tiles.append({"label": "strided F%", "value": _num(f_str_pct), "kind": "percent"})
        tiles.append(
            {"label": "constant A%", "value": _num(d.get("A_const_pct")), "kind": "percent"}
        )
    cap = passes.get("captures")
    if cap:
        tiles.append(
            {"label": "captures", "value": _num(cap.get("captures"), 0.0), "kind": "count"}
        )
        tiles.append(
            {"label": "survivals", "value": _num(cap.get("survivals"), 0.0), "kind": "count"}
        )
    reuse = _reuse_section(passes.get("reuse"))
    if reuse:
        tiles.append({"label": "mean reuse D", "value": _num(reuse["mean"]), "kind": "ratio"})
    return tiles


def _sweep_rows(sweep) -> list[dict] | None:
    """Cache what-if grid rows, as serialized by the cache_sweep pass."""
    if not sweep:
        return None
    rows = []
    for r in sweep:
        rows.append(
            {
                "size_bytes": int(r.get("size_bytes", 0)),
                "line_bytes": int(r.get("line_bytes", 0)),
                "ways": int(r.get("ways", 0)),
                "n_sets": int(r.get("n_sets", 0)),
                "hit_ratio": _num(r.get("hit_ratio")),
                "predicted_hit_ratio": _num(r.get("predicted_hit_ratio")),
                "n_accesses": int(r.get("n_accesses", 0)),
            }
        )
    return rows


def build_viewmodel(payload: dict) -> dict:
    """The viewmodel dict for one report payload (pure, deterministic).

    Input is a *jsonable* payload dict; output is a jsonable dict whose
    canonical serialization (:func:`viewmodel_json`) is stable byte-wise
    across processes, cache states, and live-vs-offline render paths.
    """
    passes = payload.get("passes", {})
    viz = payload.get("viz") or {}
    module = payload.get("module", "")
    vm = {
        "schema": VIEWMODEL_SCHEMA,
        "title": f"MemGaze report — {module}",
        "meta": {
            "module": module,
            "n_events": int(payload.get("n_events", 0)),
            "n_samples": int(payload.get("n_samples", 0)),
            "n_loads_total": int(payload.get("n_loads_total", 0)),
            "rho": _num(payload.get("rho"), 1.0),
            "payload_schema": payload.get("schema"),
        },
        "summary": _summary_tiles(payload),
        "functions": _function_rows(payload.get("functions", {})),
        "hotspots": [
            {
                "function": h.get("function", ""),
                "share": _num(h.get("share")),
                "n_accesses": int(h.get("n_accesses", 0)),
            }
            for h in passes.get("hotspot", []) or []
        ],
        "reuse": _reuse_section(passes.get("reuse")),
        "intervals": [
            {
                "interval": int(r.get("interval", i)),
                "F": _num(r.get("F")),
                "dF": _num(r.get("dF")),
                "D": _num(r.get("D")),
                "A": _num(r.get("A")),
                "A_obs": int(r.get("A_obs", 0)),
            }
            for i, r in enumerate(viz.get("intervals", []) or [])
        ],
        "phases": list(viz.get("phases", []) or []),
        "tree": viz.get("tree"),
        "regions": list(viz.get("regions", []) or []),
        "heatmaps": list(viz.get("heatmaps", []) or []),
        "sweep": _sweep_rows(passes.get("cache_sweep")),
        "degraded": payload.get("degraded"),
    }
    return vm


def viewmodel_json(viewmodel: dict) -> str:
    """Canonical viewmodel serialization (sorted keys, 2-space indent).

    The same convention as :func:`repro.core.report.payload_json`; the
    golden suite freezes exactly this string, and the template embeds
    exactly this string into the page.
    """
    return json.dumps(viewmodel, indent=2, sort_keys=True)
