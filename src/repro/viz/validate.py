"""Self-contained HTML validation, shared by tests and CI.

:func:`validate_html` parses a page with the stdlib ``html.parser`` and
returns a list of problems (empty = valid):

* unbalanced tags (a close with no matching open, or opens left at EOF);
* any reference that would leave the file — ``http(s)://`` or
  protocol-relative ``//`` values in ``src``/``href``/``data``/…
  attributes, ``<script src>``, ``<link href>``, ``@import``/``url()``
  fetches inside CSS;
* no embedded viewmodel (``script#memgaze-viewmodel`` missing or not
  parseable as JSON).

Run it from a shell (the CI ``html-smoke`` job does)::

    python -m repro.viz.validate report.html
"""

from __future__ import annotations

import json
import re
import sys
from html.parser import HTMLParser

__all__ = ["validate_html", "main"]

#: HTML5 void elements: no close tag expected.
_VOID = {
    "area", "base", "br", "col", "embed", "hr", "img", "input",
    "link", "meta", "param", "source", "track", "wbr",
}

#: Attributes whose value is a fetchable reference.
_REF_ATTRS = {"src", "href", "xlink:href", "data", "poster", "action", "formaction"}

_EXTERNAL = re.compile(r"^\s*(https?:)?//", re.IGNORECASE)
_CSS_FETCH = re.compile(r"@import\b|url\(\s*['\"]?\s*(https?:)?//", re.IGNORECASE)


class _Checker(HTMLParser):
    def __init__(self) -> None:
        super().__init__(convert_charrefs=True)
        self.problems: list[str] = []
        self.stack: list[str] = []
        self._in_style = False
        self._viewmodel: str | None = None
        self._capture_viewmodel = False

    # -- tag balance -----------------------------------------------------------

    def handle_starttag(self, tag, attrs) -> None:
        if tag not in _VOID:
            self.stack.append(tag)
        if tag == "style":
            self._in_style = True
        attrs = dict(attrs)
        if tag == "script":
            if "src" in attrs:
                self.problems.append(f"external script: src={attrs['src']!r}")
            self._capture_viewmodel = attrs.get("id") == "memgaze-viewmodel"
            if self._capture_viewmodel:
                self._viewmodel = ""
        if tag == "link" and "href" in attrs:
            self.problems.append(f"external link: href={attrs['href']!r}")
        for name, value in attrs.items():
            if name in _REF_ATTRS and value and _EXTERNAL.match(value):
                self.problems.append(f"external reference: <{tag} {name}={value!r}>")
            if name == "style" and value and _CSS_FETCH.search(value):
                self.problems.append(f"external CSS fetch in <{tag} style=...>")

    def handle_startendtag(self, tag, attrs) -> None:
        # self-closing: balanced by construction, but still check refs
        self.handle_starttag(tag, attrs)
        if tag not in _VOID and self.stack and self.stack[-1] == tag:
            self.stack.pop()

    def handle_endtag(self, tag) -> None:
        if tag in _VOID:
            return
        if tag == "style":
            self._in_style = False
        if tag == "script":
            self._capture_viewmodel = False
        if not self.stack:
            self.problems.append(f"unmatched close tag </{tag}>")
            return
        if self.stack[-1] == tag:
            self.stack.pop()
            return
        if tag in self.stack:  # mis-nested: report and unwind to it
            self.problems.append(
                f"mis-nested close tag </{tag}> (open stack ends with "
                f"<{self.stack[-1]}>)"
            )
            while self.stack and self.stack[-1] != tag:
                self.stack.pop()
            if self.stack:
                self.stack.pop()
        else:
            self.problems.append(f"unmatched close tag </{tag}>")

    def handle_data(self, data) -> None:
        if self._in_style and _CSS_FETCH.search(data):
            self.problems.append("external CSS fetch in <style> block")
        if self._capture_viewmodel:
            self._viewmodel = (self._viewmodel or "") + data

    # -- result ----------------------------------------------------------------

    def finish(self) -> list[str]:
        for tag in self.stack:
            self.problems.append(f"unclosed tag <{tag}>")
        if self._viewmodel is None:
            self.problems.append("no embedded viewmodel (script#memgaze-viewmodel)")
        else:
            try:
                json.loads(self._viewmodel.replace("<\\/", "</"))
            except ValueError as exc:
                self.problems.append(f"embedded viewmodel is not valid JSON: {exc}")
        return self.problems


def validate_html(text: str) -> list[str]:
    """Problems found in one page; an empty list means it passed."""
    checker = _Checker()
    checker.feed(text)
    checker.close()
    return checker.finish()


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.viz.validate FILE [FILE...]`` — exit 1 on problems."""
    paths = list(sys.argv[1:] if argv is None else argv)
    if not paths:
        print("usage: python -m repro.viz.validate FILE [FILE...]", file=sys.stderr)
        return 2
    bad = 0
    for path in paths:
        with open(path, "r", encoding="utf-8") as fh:
            problems = validate_html(fh.read())
        if problems:
            bad += 1
            for p in problems:
                print(f"{path}: {p}")
        else:
            print(f"{path}: OK (self-contained, balanced)")
    return 1 if bad else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
