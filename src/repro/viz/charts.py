"""Inline SVG chart builders for the HTML report.

Pure string functions over viewmodel substructures: same input, same
bytes. Every coordinate goes through :func:`_n`, which renders finite
numbers with ``%.6g`` and maps anything non-finite to ``0`` — so even a
degenerate section (zero events, a single sample, an all-NaN heatmap)
emits well-formed SVG with finite coordinates, which the property suite
asserts. No external fonts, images, or stylesheets are referenced.
"""

from __future__ import annotations

import html
import math

__all__ = [
    "svg_reuse_histogram",
    "svg_phase_strip",
    "svg_flame_tree",
    "svg_heatmap",
]


def _n(x) -> str:
    """One numeric SVG attribute: finite, deterministic, compact."""
    try:
        v = float(x)
    except (TypeError, ValueError):
        return "0"
    if not math.isfinite(v):
        return "0"
    if v == int(v) and abs(v) < 1e15:
        return str(int(v))
    return format(v, ".6g")


def _esc(s) -> str:
    return html.escape(str(s), quote=True)


def _ramp(frac: float, lo=(0xF3, 0xF6, 0xFB), hi=(0x14, 0x3A, 0x7B)) -> str:
    """Linear two-color ramp; ``frac`` outside [0,1] (or NaN) clamps."""
    if not math.isfinite(frac):
        frac = 0.0
    frac = min(1.0, max(0.0, frac))
    rgb = tuple(round(a + (b - a) * frac) for a, b in zip(lo, hi))
    return "#{:02x}{:02x}{:02x}".format(*rgb)


_PHASE_FILL = {"regular": "#4c8f5d", "irregular": "#b0563c", "mixed": "#c7a13c"}


def svg_reuse_histogram(reuse: dict | None, *, width: int = 660, height: int = 190) -> str:
    """Log2-binned reuse-distance histogram as vertical bars."""
    if not reuse or not reuse.get("counts"):
        return ""
    counts = reuse["counts"]
    labels = reuse.get("labels", [str(i) for i in range(len(counts))])
    top = max(max(counts), 1)
    pad_l, pad_b, pad_t = 10, 34, 8
    plot_h = height - pad_b - pad_t
    bw = (width - 2 * pad_l) / max(len(counts), 1)
    parts = [
        f'<svg class="chart" viewBox="0 0 {width} {height}" '
        f'width="{width}" height="{height}" role="img" '
        'aria-label="reuse distance histogram">'
    ]
    for i, c in enumerate(counts):
        # sqrt scale keeps the long tail visible without hiding the head
        h = plot_h * math.sqrt(c / top) if c > 0 else 0.0
        x = pad_l + i * bw
        y = pad_t + plot_h - h
        parts.append(
            f'<rect x="{_n(x + 1)}" y="{_n(y)}" width="{_n(max(bw - 2, 1))}" '
            f'height="{_n(h)}" fill="{_ramp(c / top)}">'
            f"<title>D in {_esc(labels[i])}: {c} accesses</title></rect>"
        )
        if len(counts) <= 24 or i % 2 == 0:
            parts.append(
                f'<text x="{_n(x + bw / 2)}" y="{_n(height - pad_b + 14)}" '
                f'class="tick" text-anchor="middle">{_esc(labels[i])}</text>'
            )
    parts.append(
        f'<line x1="{_n(pad_l)}" y1="{_n(pad_t + plot_h)}" '
        f'x2="{_n(width - pad_l)}" y2="{_n(pad_t + plot_h)}" class="axis"/>'
    )
    parts.append("</svg>")
    return "".join(parts)


def svg_phase_strip(phases: list[dict], *, width: int = 900, height: int = 46) -> str:
    """Execution phases as one labelled horizontal strip over load time."""
    if not phases:
        return ""
    t_lo = min(int(p.get("t_start", 0)) for p in phases)
    t_hi = max(int(p.get("t_end", 1)) for p in phases)
    span = max(t_hi - t_lo, 1)
    parts = [
        f'<svg class="chart" viewBox="0 0 {width} {height}" '
        f'width="{width}" height="{height}" role="img" aria-label="execution phases">'
    ]
    for p in phases:
        x = (int(p.get("t_start", 0)) - t_lo) / span * width
        w = max((int(p.get("t_end", 0)) - int(p.get("t_start", 0))) / span * width, 1.0)
        label = p.get("label", "mixed")
        fill = _PHASE_FILL.get(label, "#8a8f98")
        share = p.get("strided_share")
        share_pct = f"{100 * share:.0f}%" if isinstance(share, (int, float)) else "-"
        parts.append(
            f'<rect x="{_n(x)}" y="6" width="{_n(w)}" height="{height - 24}" '
            f'fill="{fill}" class="phase"><title>phase {p.get("index", 0)}: '
            f"{_esc(label)}, strided {share_pct}, "
            f'{p.get("n_samples", 0)} samples</title></rect>'
        )
        if w > 56:
            parts.append(
                f'<text x="{_n(x + w / 2)}" y="{_n(height / 2 - 1)}" class="phaselabel" '
                f'text-anchor="middle">{_esc(label)}</text>'
            )
    parts.append(
        f'<text x="0" y="{height - 4}" class="tick">t={t_lo}</text>'
        f'<text x="{width}" y="{height - 4}" class="tick" text-anchor="end">t={t_hi}</text>'
    )
    parts.append("</svg>")
    return "".join(parts)


def _tree_rows(tree: dict) -> list[list[dict]]:
    """Breadth-first levels of the serialized interval tree."""
    rows, frontier = [], [tree]
    while frontier:
        rows.append(frontier)
        frontier = [c for node in frontier for c in node.get("children", [])]
    return rows


def svg_flame_tree(tree: dict | None, *, width: int = 900, row_h: int = 22) -> str:
    """The execution interval tree as a zoomable flamegraph.

    Row 0 is the root interval; each row below splits it in time. Leaf
    function nodes render in their own hue. Rect fills encode footprint
    growth (dF). Each rect carries ``data-t0``/``data-t1`` so the inline
    JS can re-scale the x axis on click (zoom) without re-rendering.
    """
    if not tree:
        return ""
    rows = _tree_rows(tree)
    t_lo, t_hi = int(tree.get("t_start", 0)), int(tree.get("t_end", 1))
    span = max(t_hi - t_lo, 1)
    height = row_h * len(rows) + 20
    parts = [
        f'<svg class="chart" id="flame" viewBox="0 0 {width} {height}" '
        f'width="{width}" height="{height}" data-t0="{t_lo}" data-t1="{t_hi}" '
        'role="img" aria-label="execution interval tree">'
    ]
    max_df = max(
        (n.get("df") or 0.0 for row in rows for n in row if n.get("df") is not None),
        default=0.0,
    )
    for depth, row in enumerate(rows):
        y = depth * row_h + 2
        for node in row:
            n_t0 = int(node.get("t_start", t_lo))
            n_t1 = int(node.get("t_end", n_t0 + 1))
            x = (n_t0 - t_lo) / span * width
            w = max((n_t1 - n_t0) / span * width, 0.5)
            fn = node.get("function")
            df = node.get("df")
            if fn:
                fill = "#7b5ea7"
            else:
                fill = _ramp((df or 0.0) / max_df if max_df > 0 else 0.0,
                             lo=(0xE8, 0xC9, 0x9B), hi=(0xA6, 0x3A, 0x2A))
            label = fn or f"level {node.get('level', 0)}"
            title = (
                f"{label}: t [{n_t0}, {n_t1}), "
                f"A_obs {node.get('a_obs', 0)}, dF {df if df is not None else '-'}"
            )
            parts.append(
                f'<rect class="frame" x="{_n(x)}" y="{_n(y)}" width="{_n(w)}" '
                f'height="{row_h - 3}" fill="{fill}" data-t0="{n_t0}" data-t1="{n_t1}">'
                f"<title>{_esc(title)}</title></rect>"
            )
            if w > 64:
                parts.append(
                    f'<text x="{_n(x + 4)}" y="{_n(y + row_h - 9)}" class="framelabel" '
                    f'data-t0="{n_t0}" data-t1="{n_t1}">{_esc(label)}</text>'
                )
    parts.append("</svg>")
    return "".join(parts)


def _heat_grid(matrix, top: float, x0: float, cell_w: float, cell_h: float, reuse: bool) -> str:
    cells = []
    for r, row in enumerate(matrix):
        for c, v in enumerate(row):
            if v is None:
                continue
            v = float(v)
            if not math.isfinite(v):
                continue
            v = max(v, 0.0)  # a negative cell must not crash log1p
            frac = math.log1p(v) / math.log1p(top) if top > 0 else 0.0
            fill = (
                _ramp(frac, lo=(0xF5, 0xEE, 0xE6), hi=(0x8C, 0x2F, 0x6B))
                if reuse
                else _ramp(frac)
            )
            cells.append(
                f'<rect x="{_n(x0 + c * cell_w)}" y="{_n(r * cell_h)}" '
                f'width="{_n(cell_w)}" height="{_n(cell_h)}" fill="{fill}">'
                f"<title>page {r}, bin {c}: {_n(v)}</title></rect>"
            )
    return "".join(cells)


def svg_heatmap(hm: dict, *, cell: int = 11) -> str:
    """One region's (page × time) access-count and mean-reuse grids."""
    counts = hm.get("counts") or []
    reuse = hm.get("reuse") or []
    if not counts or not counts[0]:
        return ""
    n_pages, n_bins = len(counts), len(counts[0])
    gap = 28
    grid_w = n_bins * cell
    width = grid_w * 2 + gap
    height = n_pages * cell + 18
    top_c = max((float(v) for row in counts for v in row), default=0.0)
    finite_reuse = [
        float(v)
        for row in reuse
        for v in row
        if v is not None and math.isfinite(float(v))
    ]
    top_r = max(finite_reuse, default=0.0)
    parts = [
        f'<svg class="chart" viewBox="0 0 {width} {height}" '
        f'width="{width}" height="{height}" role="img" aria-label="access heatmap">'
    ]
    parts.append(_heat_grid(counts, top_c, 0, cell, cell, reuse=False))
    parts.append(_heat_grid(reuse, top_r, grid_w + gap, cell, cell, reuse=True))
    parts.append(
        f'<text x="0" y="{height - 4}" class="tick">accesses / (page, time)</text>'
        f'<text x="{grid_w + gap}" y="{height - 4}" class="tick">mean reuse D</text>'
    )
    parts.append("</svg>")
    return "".join(parts)
