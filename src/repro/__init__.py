"""MemGaze reproduction: load-level sampled memory trace analysis.

A Python reproduction of *MemGaze: Rapid and Effective Load-Level Memory
Trace Analysis* (Kilic et al., IEEE CLUSTER 2022). The package provides:

* the paper's analysis layer — footprint, footprint growth,
  spatio-temporal reuse distance, footprint access diagnostics, trace /
  code windows, execution interval trees, location zooming, heatmaps
  (:mod:`repro.core`);
* the measurement model — ptwrite packets, PT circular buffer, sampling
  trigger, perf drop model, class-based trace compression with its
  rho/kappa decompression math, trace files, and the analytic overhead
  model (:mod:`repro.trace`);
* the instrumentation toolchain over a synthetic binary substrate —
  load classification, ptwrite insertion with per-block Constant-load
  proxies, annotation files, source attribution
  (:mod:`repro.instrument`, :mod:`repro.isa`);
* a simulated address space with instrumented data structures for
  library-path workloads (:mod:`repro.simmem`);
* the paper's workloads — microbenchmarks, miniVite-style Louvain with
  three hash-map variants, GAP-style PageRank and Connected Components,
  and Darknet-style im2col+gemm inference (:mod:`repro.workloads`).

Quickstart::

    from repro import MemGaze, AnalysisConfig, SamplingConfig
    from repro.workloads.microbench import run_microbench

    events, info = run_microbench("str4|irr", n=100_000, seed=0)
    mg = MemGaze(AnalysisConfig(SamplingConfig(period=10_000,
                                               buffer_capacity=2048)))
    result = mg.analyze_events(events, n_loads_total=info.n_loads)
    print(result.diagnostics)
"""

from repro.core import (
    AnalysisConfig,
    FootprintDiagnostics,
    MemGaze,
    MemGazeResult,
    ZoomConfig,
    access_heatmap,
    access_interval_metrics,
    code_windows,
    compute_diagnostics,
    footprint,
    footprint_growth,
    location_zoom,
    mape,
    mean_reuse_distance,
    reuse_distances,
    reuse_intervals,
    window_histogram,
)
from repro.trace import (
    LoadClass,
    OverheadModel,
    PTMode,
    SamplingConfig,
    collect_full_trace,
    collect_sampled_trace,
    compression_ratio,
    read_trace,
    sample_ratio,
    write_trace,
)
from repro.simmem import AccessRecorder, AddressSpace

__version__ = "0.1.0"

__all__ = [
    "AnalysisConfig",
    "FootprintDiagnostics",
    "MemGaze",
    "MemGazeResult",
    "ZoomConfig",
    "access_heatmap",
    "access_interval_metrics",
    "code_windows",
    "compute_diagnostics",
    "footprint",
    "footprint_growth",
    "location_zoom",
    "mape",
    "mean_reuse_distance",
    "reuse_distances",
    "reuse_intervals",
    "window_histogram",
    "LoadClass",
    "OverheadModel",
    "PTMode",
    "SamplingConfig",
    "collect_full_trace",
    "collect_sampled_trace",
    "compression_ratio",
    "read_trace",
    "sample_ratio",
    "write_trace",
    "AccessRecorder",
    "AddressSpace",
    "__version__",
]
