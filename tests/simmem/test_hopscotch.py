"""Tests for the hopscotch closed hash table (miniVite v2/v3 map)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.simmem.address_space import AddressSpace
from repro.simmem.datastructs.hopscotch import HopscotchMap
from repro.simmem.recorder import AccessRecorder
from repro.trace.event import LoadClass


@pytest.fixture
def hmap(space, recorder):
    return HopscotchMap(space, recorder, capacity=32)


class TestSemantics:
    def test_insert_find(self, hmap):
        hmap.insert(1, 10.0)
        hmap.insert(2, 20.0)
        assert hmap.find(1) == 10.0
        assert hmap.find(2) == 20.0
        assert hmap.find(3) is None

    def test_update_and_accumulate(self, hmap):
        hmap.insert(1, 1.0)
        hmap.insert(1, 5.0)
        assert hmap.find(1) == 5.0
        hmap.insert(1, 2.0, accumulate=True)
        assert hmap.find(1) == 7.0
        assert len(hmap) == 1

    def test_resize_preserves_contents(self, space, recorder):
        m = HopscotchMap(space, recorder, capacity=16)
        for k in range(100):
            m.insert(k, float(k))
        assert m.n_resizes > 0
        for k in range(100):
            assert m.find(k) == float(k)

    def test_right_sized_never_resizes(self, space, recorder):
        m = HopscotchMap(space, recorder, right_size_for=100)
        for k in range(100):
            m.insert(k, float(k))
        assert m.n_resizes == 0
        assert m.right_sized

    def test_capacity_for_is_tight(self):
        cap = HopscotchMap.capacity_for(100)
        assert cap % HopscotchMap.H == 0
        assert cap >= 100 / 0.75
        assert cap < 100 / 0.75 + 2 * HopscotchMap.H

    def test_items(self, hmap):
        for k in (5, 3, 9):
            hmap.insert(k, float(k))
        assert sorted(hmap.items()) == [(3, 3.0), (5, 5.0), (9, 9.0)]

    def test_neighborhood_invariant(self, space, recorder, rng):
        """Every key is within H slots of its home bucket."""
        m = HopscotchMap(space, recorder, capacity=32)
        for k in rng.integers(0, 10_000, 60):
            m.insert(int(k), 1.0)
        for s in np.flatnonzero(m._keys != -1):
            key = int(m._keys[s])
            home = m._home(key)
            assert (s - home) % m.capacity < m.H

    def test_bad_load_factor(self, space, recorder):
        with pytest.raises(ValueError):
            HopscotchMap(space, recorder, max_load_factor=1.5)


class TestAccessBehaviour:
    def test_probes_are_mostly_strided(self, space, recorder):
        m = HopscotchMap(space, recorder, capacity=64)
        for k in range(30):
            m.insert(k, 0.0)
        for k in range(30):
            m.find(k)
        ev = recorder.finalize()
        counts = np.bincount(ev["cls"], minlength=3)
        assert counts[int(LoadClass.STRIDED)] > counts[int(LoadClass.IRREGULAR)]

    def test_items_is_one_strided_sweep(self, space, recorder):
        m = HopscotchMap(space, recorder, capacity=32)
        m.insert(1, 1.0)
        before = recorder.n_recorded
        m.items()
        ev_count = recorder.n_recorded - before
        assert ev_count == m.capacity

    def test_resize_burst_recorded(self, space, recorder):
        m = HopscotchMap(space, recorder, capacity=16)
        for k in range(13):  # crosses 0.75 * 16
            m.insert(k, 0.0)
        assert m.n_resizes >= 1

    def test_single_region(self, space, recorder):
        m = HopscotchMap(space, recorder, capacity=32, name="map")
        assert [r.name for r in m.regions()] == ["map"]


@settings(max_examples=30, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.integers(0, 40), st.floats(-10, 10, allow_nan=False)),
        max_size=80,
    )
)
def test_matches_dict_model(ops):
    """Property: behaves exactly like a dict even across resizes."""
    space, recorder = AddressSpace(), AccessRecorder()
    m = HopscotchMap(space, recorder, capacity=16)
    model: dict[int, float] = {}
    for k, v in ops:
        m.insert(k, v)
        model[k] = v
    assert len(m) == len(model)
    for k in range(41):
        assert m.find(k) == model.get(k)
