"""Tests for instrumented CSR graph storage."""

import numpy as np
import pytest

from repro.simmem.datastructs.csr import CSRGraph
from repro.trace.event import LoadClass


@pytest.fixture
def graph(space, recorder):
    # 0 -> 1,2 ; 1 -> 2 ; 2 -> (none)
    offsets = np.array([0, 2, 3, 3])
    targets = np.array([1, 2, 2])
    return CSRGraph(space, recorder, offsets, targets)


class TestConstruction:
    def test_shape(self, graph):
        assert graph.n == 3
        assert graph.m == 3

    def test_invalid_offsets(self, space, recorder):
        with pytest.raises(ValueError):
            CSRGraph(space, recorder, np.array([1, 2]), np.array([0]))
        with pytest.raises(ValueError):
            CSRGraph(space, recorder, np.array([0, 2, 1]), np.array([0]))
        with pytest.raises(ValueError):
            CSRGraph(space, recorder, np.array([0]), np.array([], dtype=np.int64))

    def test_from_edges_dedups_and_sorts(self, space, recorder):
        edges = np.array([[1, 0], [0, 1], [0, 1], [0, 0]])
        g = CSRGraph.from_edges(space, recorder, 2, edges)
        assert list(g.neighbors(0, record=False)) == [1]
        assert list(g.neighbors(1, record=False)) == [0]

    def test_from_edges_symmetrize(self, space, recorder):
        edges = np.array([[0, 1]])
        g = CSRGraph.from_edges(space, recorder, 3, edges, symmetrize=True)
        assert list(g.neighbors(1, record=False)) == [0]

    def test_from_edges_empty(self, space, recorder):
        g = CSRGraph.from_edges(space, recorder, 3, np.empty((0, 2)))
        assert g.m == 0
        assert list(g.degrees()) == [0, 0, 0]


class TestAccess:
    def test_neighbors_values(self, graph):
        assert list(graph.neighbors(0)) == [1, 2]
        assert list(graph.neighbors(2)) == []

    def test_neighbors_records_offsets_and_run(self, graph, recorder):
        graph.neighbors(0)
        ev = recorder.finalize()
        # 2 offset loads + 2 contiguous target loads
        assert len(ev) == 4
        assert np.all(ev["cls"] == int(LoadClass.STRIDED))

    def test_record_false_suppresses(self, graph, recorder):
        graph.neighbors(0, record=False)
        assert recorder.n_recorded == 0

    def test_degree(self, graph, recorder):
        assert graph.degree(0) == 2
        assert graph.degree(2, record=False) == 0

    def test_degrees_vector(self, graph):
        assert list(graph.degrees()) == [2, 1, 0]

    def test_out_of_range(self, graph):
        with pytest.raises(IndexError):
            graph.neighbors(3)
