"""Tests for the instrumented flat array."""

import numpy as np
import pytest

from repro.simmem.datastructs.array import FlatArray
from repro.trace.event import LoadClass


@pytest.fixture
def arr(space, recorder):
    a = FlatArray(space, recorder, 16, name="arr")
    a.fill(np.arange(16) * 10)
    return a


class TestConstruction:
    def test_region_size(self, arr):
        assert arr.region.size == 16 * 8
        assert arr.region.name == "arr"

    def test_bad_args(self, space, recorder):
        with pytest.raises(ValueError):
            FlatArray(space, recorder, 0)
        with pytest.raises(ValueError):
            FlatArray(space, recorder, 4, elem_size=0)


class TestLoads:
    def test_load_records_event(self, arr, recorder):
        assert arr.load(3) == 30
        ev = recorder.finalize()
        assert ev["addr"][0] == arr.region.base + 24
        assert ev["cls"][0] == int(LoadClass.STRIDED)

    def test_load_pattern_override(self, arr, recorder):
        arr.load(3, pattern=LoadClass.IRREGULAR)
        ev = recorder.finalize()
        assert ev["cls"][0] == int(LoadClass.IRREGULAR)

    def test_gather(self, arr, recorder):
        vals = arr.gather([5, 1, 5])
        assert list(vals) == [50, 10, 50]
        ev = recorder.finalize()
        assert len(ev) == 3
        assert ev["cls"][0] == int(LoadClass.IRREGULAR)

    def test_load_range_and_sweep(self, arr, recorder):
        assert list(arr.load_range(2, 6)) == [20, 30, 40, 50]
        assert len(arr.sweep()) == 16
        ev = recorder.finalize()
        assert len(ev) == 4 + 16
        assert np.all(ev["cls"] == int(LoadClass.STRIDED))

    def test_load_range_step(self, arr, recorder):
        assert list(arr.load_range(0, 8, step=2)) == [0, 20, 40, 60]
        assert recorder.n_recorded == 4

    def test_bounds_checked(self, arr):
        with pytest.raises(IndexError):
            arr.load(16)
        with pytest.raises(IndexError):
            arr.gather([99])
        with pytest.raises(IndexError):
            arr.load_range(0, 17)

    def test_addr_of(self, arr):
        assert arr.addr_of(2) == arr.region.base + 16
        assert list(arr.addr_of([0, 1])) == [arr.region.base, arr.region.base + 8]


class TestStores:
    def test_store_not_recorded(self, arr, recorder):
        arr.store(0, 99)
        assert arr.data[0] == 99
        assert recorder.n_recorded == 0
        assert arr.n_stores == 1

    def test_store_many(self, arr):
        arr.store_many([1, 2], [5, 6])
        assert arr.data[1] == 5 and arr.data[2] == 6
        assert arr.n_stores == 2

    def test_scope_attribution(self, space, recorder):
        a = FlatArray(space, recorder, 4, name="x")
        with recorder.scope("hot_fn"):
            a.load(0)
        ev = recorder.finalize()
        assert recorder.function_names[int(ev["fn"][0])] == "hot_fn"
