"""Tests for the chained open hash table (miniVite v1 map)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.simmem.address_space import AddressSpace
from repro.simmem.datastructs.open_hash import OpenHashMap
from repro.simmem.recorder import AccessRecorder
from repro.trace.event import LoadClass


@pytest.fixture
def omap(space, recorder):
    return OpenHashMap(space, recorder, n_buckets=4)


class TestSemantics:
    def test_insert_find(self, omap):
        omap.insert(1, 10.0)
        omap.insert(2, 20.0)
        assert omap.find(1) == 10.0
        assert omap.find(2) == 20.0
        assert omap.find(3) is None

    def test_update(self, omap):
        omap.insert(1, 10.0)
        omap.insert(1, 11.0)
        assert omap.find(1) == 11.0
        assert len(omap) == 1

    def test_accumulate(self, omap):
        omap.insert(1, 1.0, accumulate=True)
        omap.insert(1, 2.0, accumulate=True)
        assert omap.find(1) == 3.0

    def test_rehash_preserves_contents(self, omap):
        for k in range(50):
            omap.insert(k, float(k))
        assert omap.n_rehashes > 0
        for k in range(50):
            assert omap.find(k) == float(k)

    def test_items(self, omap):
        for k in (3, 1, 2):
            omap.insert(k, float(k))
        assert sorted(omap.items()) == [(1, 1.0), (2, 2.0), (3, 3.0)]

    def test_load_factor(self, omap):
        for k in range(4):
            omap.insert(k, 0.0)
        assert omap.load_factor <= omap.max_load_factor + 1e-9

    def test_bad_args(self, space, recorder):
        with pytest.raises(ValueError):
            OpenHashMap(space, recorder, n_buckets=0)
        with pytest.raises(ValueError):
            OpenHashMap(space, recorder, max_load_factor=0)


class TestAccessBehaviour:
    def test_all_loads_irregular(self, space, recorder):
        m = OpenHashMap(space, recorder, n_buckets=4)
        for k in range(20):
            m.insert(k, 0.0)
        m.find(5)
        m.items()
        ev = recorder.finalize()
        assert np.all(ev["cls"] == int(LoadClass.IRREGULAR))

    def test_chain_walk_costs_loads(self, space, recorder):
        # one bucket forces a chain; longer chains need more loads
        m = OpenHashMap(space, recorder, n_buckets=1, max_load_factor=100.0)
        for k in range(8):
            m.insert(k, 0.0)
        before = recorder.n_recorded
        m.find(0)  # inserted first -> deepest in the chain
        deep = recorder.n_recorded - before
        before = recorder.n_recorded
        m.find(7)  # linked at head
        shallow = recorder.n_recorded - before
        assert deep > shallow

    def test_regions_cover_buckets_and_nodes(self, space, recorder):
        m = OpenHashMap(space, recorder, n_buckets=4, name="map")
        m.insert(1, 1.0)
        names = {r.name for r in m.regions()}
        assert names == {"map", "map-nodes"}


@settings(max_examples=30)
@given(
    ops=st.lists(
        st.tuples(st.integers(0, 30), st.floats(-10, 10, allow_nan=False)),
        max_size=60,
    )
)
def test_matches_dict_model(ops):
    """Property: behaves exactly like a dict under insert/find."""
    space, recorder = AddressSpace(), AccessRecorder()
    m = OpenHashMap(space, recorder, n_buckets=2)
    model: dict[int, float] = {}
    for k, v in ops:
        m.insert(k, v)
        model[k] = v
    assert len(m) == len(model)
    for k in range(31):
        assert m.find(k) == model.get(k)
    assert sorted(m.items()) == sorted(model.items())
