"""Tests for the access recorder."""

import numpy as np
import pytest

from repro.trace.event import LoadClass


class TestSites:
    def test_site_ips_unique(self, recorder):
        s1 = recorder.site("f", LoadClass.STRIDED)
        s2 = recorder.site("f", LoadClass.IRREGULAR)
        s3 = recorder.site("g", LoadClass.STRIDED)
        assert len({s1.ip, s2.ip, s3.ip}) == 3

    def test_function_ids_stable(self, recorder):
        assert recorder.function("a") == recorder.function("a")
        assert recorder.function("a") != recorder.function("b")

    def test_source_map(self, recorder):
        s = recorder.site("f", LoadClass.STRIDED, file="f.py", line=12)
        assert recorder.source_map()[s.ip] == ("f", "f.py", 12)


class TestScoping:
    def test_default_scope_is_main(self, recorder):
        assert recorder.current_fn == "main"

    def test_nested_scopes(self, recorder):
        with recorder.scope("outer"):
            assert recorder.current_fn == "outer"
            with recorder.scope("inner"):
                assert recorder.current_fn == "inner"
            assert recorder.current_fn == "outer"
        assert recorder.current_fn == "main"

    def test_scoped_site_cached_per_fn_and_class(self, recorder):
        with recorder.scope("f"):
            a = recorder.scoped_site(LoadClass.STRIDED, "arr")
            b = recorder.scoped_site(LoadClass.STRIDED, "arr")
            c = recorder.scoped_site(LoadClass.IRREGULAR, "arr")
        with recorder.scope("g"):
            d = recorder.scoped_site(LoadClass.STRIDED, "arr")
        assert a is b
        assert a is not c
        assert a is not d

    def test_touch_const_emits_proxy(self, recorder):
        with recorder.scope("f"):
            recorder.touch_const(5)
        ev = recorder.finalize()
        assert len(ev) == 1
        assert ev["cls"][0] == int(LoadClass.CONSTANT)
        assert ev["n_const"][0] == 4

    def test_touch_const_zero_noop(self, recorder):
        recorder.touch_const(0)
        assert recorder.n_recorded == 0


class TestRecording:
    def test_scalar_order_preserved(self, recorder):
        s = recorder.site("f", LoadClass.STRIDED)
        for addr in (5, 3, 9):
            recorder.record(s, addr)
        ev = recorder.finalize()
        assert list(ev["addr"]) == [5, 3, 9]
        assert list(ev["t"]) == [0, 1, 2]

    def test_mixed_scalar_and_vector_order(self, recorder):
        s = recorder.site("f", LoadClass.STRIDED)
        recorder.record(s, 1)
        recorder.record_many(s, np.array([2, 3]))
        recorder.record(s, 4)
        ev = recorder.finalize()
        assert list(ev["addr"]) == [1, 2, 3, 4]

    def test_record_many_empty(self, recorder):
        s = recorder.site("f", LoadClass.STRIDED)
        recorder.record_many(s, np.array([], dtype=np.uint64))
        assert recorder.n_recorded == 0

    def test_fields_filled(self, recorder):
        s = recorder.site("f", LoadClass.IRREGULAR)
        recorder.record(s, 7, n_const=2)
        ev = recorder.finalize()
        assert ev["ip"][0] == s.ip
        assert ev["cls"][0] == int(LoadClass.IRREGULAR)
        assert ev["n_const"][0] == 2
        assert ev["fn"][0] == s.fn_id

    def test_n_recorded_counts_both_paths(self, recorder):
        s = recorder.site("f", LoadClass.STRIDED)
        recorder.record(s, 1)
        recorder.record_many(s, np.array([2, 3, 4]))
        assert recorder.n_recorded == 4

    def test_finalize_once(self, recorder):
        recorder.finalize()
        with pytest.raises(RuntimeError):
            recorder.finalize()

    def test_empty_finalize(self, recorder):
        assert len(recorder.finalize()) == 0

    def test_function_names(self, recorder):
        recorder.site("alpha", LoadClass.STRIDED)
        recorder.site("beta", LoadClass.STRIDED)
        names = recorder.function_names
        assert set(names.values()) == {"alpha", "beta"}
